//! Data-center offload walkthrough: the full DUST protocol lifecycle on
//! the Fig. 5 testbed — registration, STATs, placement, Offload-Request /
//! Offload-ACK, a destination failure with REP replica substitution, and
//! resource reclaim — driven by the discrete-event simulator.
//!
//! ```sh
//! cargo run -p dust --example datacenter_offload
//! ```

use dust::prelude::*;
use dust::sim::scenarios;

fn main() {
    let (graph, dut) = testbed_topology();
    println!(
        "testbed: {} nodes / {} links, DUT = n{}",
        graph.node_count(),
        graph.edge_count(),
        dut.0
    );

    // Build the simulation: the DUT runs the ten-agent deployment; the two
    // servers are idle offload targets. A destination failure at t = 60 s
    // (whichever server hosts the DUT's agents goes dark) exercises
    // keepalive → REP before the node revives at t = 120 s.
    let mut sim = Simulation::builder()
        .graph(graph)
        .nodes(scenarios::testbed_nodes(dut))
        .traffic(TrafficModel::testbed())
        .dust(scenarios::testbed_dust_config())
        .duration_ms(180_000) // 3 simulated minutes
        .full_monitoring_offload(true)
        .kill_at(60_000, NodeId(4))
        .revive_at(120_000, NodeId(4))
        .build()
        .expect("testbed knobs are consistent");

    let report = sim.run();

    println!("\n-- protocol activity --");
    println!("placement rounds with assignments: {}", report.placements_with_assignments);
    println!("offload transfers applied:         {}", report.transfers_applied);
    println!("REP replica substitutions:         {}", report.replicas_applied);
    println!("orphaned hostings:                 {}", report.orphaned);

    println!("\n-- DUT resource trajectory (device CPU %, 30 s buckets) --");
    let duration = report.end_ms;
    let mut t = 0;
    while t < duration {
        let end = (t + 30_000).min(duration);
        if let Some(cpu) = report.mean(dut, "device-cpu", t, end) {
            let mem = report.mean(dut, "device-mem", t, end).unwrap_or(f64::NAN);
            let bar = "#".repeat((cpu / 2.0) as usize);
            println!(
                "  [{:>3}s..{:>3}s] cpu {:5.1}%  mem {:5.1}%  {}",
                t / 1000,
                end / 1000,
                cpu,
                mem,
                bar
            );
        }
        t = end;
    }

    println!("\n-- where did the agents end up? --");
    for n in sim.nodes() {
        if !n.hosted_agents.is_empty() {
            let names: Vec<&str> = n.hosted_agents.iter().map(|(_, a)| a.kind.name()).collect();
            println!("  n{} hosts {} agents: {}", n.id.0, names.len(), names.join(", "));
        }
    }
    let dut_node = &sim.nodes()[dut.index()];
    println!(
        "  DUT keeps {} local agents, {} offloaded",
        dut_node.local_agents().len(),
        dut_node.offloaded_agents.len()
    );
}
