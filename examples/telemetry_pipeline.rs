//! Telemetry pipeline tour: monitor agents → TSDB → Gorilla compression →
//! time-series federation, plus the QoS discard policy for offloaded data.
//!
//! ```sh
//! cargo run -p dust --example telemetry_pipeline
//! ```

use dust::prelude::*;
use dust::proto::{admit, ClassifiedLoad};

fn main() {
    // ---- agents write per-node series --------------------------------------
    let agents = MonitorAgent::standard_deployment();
    println!("standard deployment: {} agents", agents.len());
    for a in &agents {
        println!(
            "  {:24} base {:4.1}% cpu, {:5.1} MiB, {:5.1} Mb/interval at 20% traffic",
            a.kind.name(),
            a.kind.cpu_base_percent(),
            a.kind.mem_mib(),
            a.kind.data_mb_per_interval(0.2)
        );
    }
    let load = aggregate_load(&agents, 0.2);
    println!(
        "aggregate at 20% line rate: {:.1}% of one core, {:.2} GiB, {:.1} Mb/interval",
        load.cpu_percent,
        load.mem_mib / 1024.0,
        load.data_mb
    );

    // ---- three switches feed a federation ----------------------------------
    let mut fed = Federation::new();
    for (i, phase) in [(0u32, 0.0f64), (1, 1.0), (2, 2.0)] {
        let db = fed.store_mut(NodeId(i));
        for t in 0..600u64 {
            // per-second CPU with a slow wave + per-node phase
            let v = 50.0 + 20.0 * ((t as f64 / 60.0) + phase).sin();
            db.append("device-cpu", t * 1000, v);
        }
    }
    let fleet = fed.query("device-cpu", 0, 600_000, 60_000, dust::telemetry::Aggregation::Mean);
    println!("\nfederated fleet-mean CPU, 60 s buckets:");
    for p in fleet.points() {
        println!(
            "  t={:>3}s  {:5.1}%  {}",
            p.ts_ms / 1000,
            p.value,
            "*".repeat((p.value / 2.0) as usize)
        );
    }

    // ---- in-situ compression before shipping off-device --------------------
    let series = fed.store(NodeId(0)).unwrap().series("device-cpu").unwrap();
    let block = compress(series);
    println!(
        "\ncompression: {} points, {} bytes compressed vs {} raw ({:.1}x)",
        block.count,
        block.size_bytes(),
        block.count * 16,
        block.ratio()
    );
    let restored = decompress(&block).expect("lossless");
    assert_eq!(restored.points(), series.points());
    println!("round-trip verified lossless");

    // ---- QoS: offloaded telemetry is discarded first under congestion ------
    println!("\nQoS under congestion (1 Gbps link):");
    let loads = [
        ClassifiedLoad { priority: Priority::NetworkControl, mbps: 50.0 },
        ClassifiedLoad { priority: Priority::DataPlane, mbps: 800.0 },
        ClassifiedLoad { priority: Priority::LocalTelemetry, mbps: 100.0 },
        ClassifiedLoad { priority: Priority::OffloadedTelemetry, mbps: 200.0 },
    ];
    let admitted = admit(&loads, 1000.0);
    for (l, a) in loads.iter().zip(&admitted) {
        println!("  {:22?} offered {:6.1} Mbps → admitted {:6.1} Mbps", l.priority, l.mbps, a);
    }
}
