//! Scalability study: ILP-vs-heuristic across the paper's four fat-tree
//! sizes (§V-B) — a condensed, runnable version of Figs. 11 and 12.
//!
//! ```sh
//! cargo run --release -p dust --example scalability_study
//! ```

use dust::prelude::*;
use std::time::Instant;

fn main() {
    let seed = 2024;
    let iterations = 5;
    // The fast DP engine keeps this example snappy; the bench harness uses
    // the paper-faithful enumeration engine for the timing figures.
    let cfg = DustConfig::paper_defaults().with_engine(PathEngine::HopBoundedDp);

    println!(
        "{:>6} {:>7} {:>8} {:>12} {:>12} {:>9}",
        "k", "nodes", "edges", "ILP(ms)", "heur(ms)", "HFR(%)"
    );
    for (k, nodes, edges) in paper_sizes() {
        let ft = FatTree::with_default_links(k);
        assert_eq!(ft.node_count(), nodes);
        assert_eq!(ft.edge_count(), edges);

        // recommended hop bounds from the paper: 10 (4-k), 7 (8-k), 4 (16-k)
        let max_hop = match k {
            4 => Some(10),
            8 => Some(7),
            16 => Some(4),
            _ => Some(3),
        };
        let cfg = cfg.with_max_hop(max_hop);

        let mut ilp_ms = 0.0;
        let mut heur_ms = 0.0;
        let mut hfr = 0.0;
        let mut ilp_runs = 0u32;
        for it in 0..iterations {
            let nmdb = random_nmdb(&ft.graph, &cfg, &ScenarioParams::default(), seed + it);
            // ILP only up to 16-k: the paper, too, stops optimizing at 320
            // nodes and runs heuristic-only at 5120 (Fig. 12).
            if k <= 16 {
                let t = Instant::now();
                let _ = optimize(&nmdb, &cfg, SolverBackend::Transportation);
                ilp_ms += t.elapsed().as_secs_f64() * 1e3;
                ilp_runs += 1;
            }
            let t = Instant::now();
            let h = heuristic(&nmdb, &cfg);
            heur_ms += t.elapsed().as_secs_f64() * 1e3;
            hfr += h.hfr_percent();
        }
        let ilp = if ilp_runs > 0 {
            format!("{:12.2}", ilp_ms / f64::from(ilp_runs))
        } else {
            format!("{:>12}", "—")
        };
        println!(
            "{:>6} {:>7} {:>8} {} {:12.2} {:9.2}",
            k,
            nodes,
            edges,
            ilp,
            heur_ms / iterations as f64,
            hfr / iterations as f64,
        );
    }
    println!("\nShape check (paper): HFR falls with scale (~n^-0.5); heuristic stays");
    println!("tractable at 5120 nodes while the ILP's cost explodes with max-hop.");
}
