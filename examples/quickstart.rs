//! Quickstart: run the DUST placement engine on the paper's illustrative
//! 7-node topology (Fig. 4) and on a small fat-tree.
//!
//! ```sh
//! cargo run -p dust --example quickstart
//! ```

use dust::prelude::*;
use dust::topology::topologies;

fn main() {
    // ---- Fig. 4: one Busy node (S1), two candidates (S2, S6) --------------
    println!("== Fig. 4 example: 7 nodes, 7 edges ==");
    let graph = topologies::example7(Link::new(10_000.0, 0.5));
    let (busy, candidates) = topologies::example7_roles();

    // Node states: S1 overloaded at 92 %, S2/S6 idle, the rest neutral.
    let cfg = DustConfig::paper_defaults(); // C_max 80, CO_max 50, x_min 5
    let states: Vec<NodeState> = graph
        .nodes()
        .map(|n| {
            if n == busy {
                NodeState::new(92.0, 150.0) // 12 points over C_max, 150 Mb to move
            } else if candidates.contains(&n) {
                NodeState::new(25.0, 10.0)
            } else {
                NodeState::new(65.0, 10.0) // relay nodes
            }
        })
        .collect();
    let nmdb = Nmdb::new(graph, states);

    let placement = optimize(&nmdb, &cfg, SolverBackend::Transportation);
    println!("status: {:?}, beta = {:.6} s·%", placement.status, placement.beta);
    for a in &placement.assignments {
        let route = a.route.as_ref().expect("optimal assignments carry routes");
        let via: Vec<String> = route.nodes.iter().map(|n| format!("S{}", n.0 + 1)).collect();
        println!(
            "  offload {:5.1}% from S{} to S{} over {} ({} hops, T_rmin {:.4}s)",
            a.amount,
            a.from.0 + 1,
            a.to.0 + 1,
            via.join("→"),
            route.hops(),
            a.t_rmin
        );
    }

    // ---- the same engine on a 4-k fat-tree with a random state ------------
    println!("\n== 4-port fat-tree (20 switches), random state, seed 7 ==");
    let ft = FatTree::with_default_links(4);
    let nmdb = random_nmdb(&ft.graph, &cfg, &ScenarioParams::default(), 7);
    println!(
        "busy nodes: {:?}, candidates: {}",
        nmdb.busy_nodes(&cfg),
        nmdb.candidate_nodes(&cfg).len()
    );

    let exact = optimize(&nmdb, &cfg, SolverBackend::Transportation);
    println!(
        "ILP:        {:?}, beta {:.6}, {} assignments, mean hops {:?}",
        exact.status,
        exact.beta,
        exact.assignments.len(),
        exact.mean_hops()
    );

    let h = heuristic(&nmdb, &cfg);
    println!(
        "heuristic:  placed {:.1} of {:.1} capacity-% one-hop, HFR {:.1}%",
        h.total_cs - h.total_cse,
        h.total_cs,
        h.hfr_percent()
    );
}
