//! Heterogeneous fleet: DPUs, servers, and switches with different
//! platform capacities (the κ coefficient of §IV-A's industry note), plus
//! the *integral* agent-level placement — whole monitor agents, not
//! fractional capacity — solved by branch-and-bound.
//!
//! ```sh
//! cargo run -p dust --example heterogeneous_fleet
//! ```

use dust::prelude::*;
use dust::topology::topologies;

fn main() {
    // Leaf-spine fabric: 2 spines, 3 leaves, 2 servers per leaf.
    let graph = topologies::leaf_spine(2, 3, 2, Link::new(25_000.0, 0.3));
    println!("leaf-spine fabric: {} nodes / {} links", graph.node_count(), graph.edge_count());

    // Node mix: the first leaf (node 2) is overloaded. Servers are beefier
    // platforms: one offloaded percent only costs them κ = 0.4; one spine
    // runs legacy firmware and refuses offloading entirely.
    let states: Vec<NodeState> = graph
        .nodes()
        .map(|n| match n.0 {
            0 => NodeState::new(30.0, 5.0),                  // spine 0: candidate
            1 => NodeState::new(30.0, 5.0).non_offloading(), // spine 1: legacy
            2 => NodeState::new(90.0, 220.0),                // leaf 0: Busy, Cs = 10
            3 | 4 => NodeState::new(60.0, 5.0),              // other leaves: neutral
            _ => NodeState::new(20.0, 2.0).with_capacity_factor(0.4), // servers
        })
        .collect();
    let nmdb = Nmdb::new(graph, states);
    let cfg = DustConfig::paper_defaults(); // C_max 80, CO_max 50

    println!("\n-- roles --");
    for n in nmdb.graph.nodes() {
        println!(
            "  node {}  util {:5.1}%  κ {:.1}  {:?}  (Cs {:.1} / Cd {:.1})",
            n.0,
            nmdb.state(n).utilization,
            nmdb.state(n).capacity_factor,
            nmdb.role(n, &cfg),
            nmdb.cs(n, &cfg),
            nmdb.cd(n, &cfg),
        );
    }

    // Continuous placement: κ = 0.4 servers absorb 2.5x their headroom in
    // source units, so they dominate the solution.
    let p = optimize(&nmdb, &cfg, SolverBackend::Transportation);
    println!("\n-- continuous placement ({:?}) --", p.status);
    for a in &p.assignments {
        println!(
            "  move {:5.2}% from {} to {} (T_rmin {:.5}s)",
            a.amount, a.from.0, a.to.0, a.t_rmin
        );
    }
    println!("  beta = {:.6}", p.beta);

    // Integral placement: the Busy leaf's excess is made of indivisible
    // monitor agents with distinct weights.
    let agents = MonitorAgent::standard_deployment();
    let units: Vec<WorkUnit> = agents
        .iter()
        .map(|a| WorkUnit {
            owner: NodeId(2),
            // device-level share on the 8-core leaf at 20 % traffic
            weight: a.kind.cpu_percent(0.2) / 8.0,
        })
        .collect();
    let total: f64 = units.iter().map(|u| u.weight).sum();
    println!(
        "\n-- integral placement: {} agents, {:.1}% total device share, Cs = {:.1}% --",
        units.len(),
        total,
        nmdb.cs(NodeId(2), &cfg)
    );
    let r = optimize_integral(&nmdb, &cfg, &units);
    if r.feasible {
        let mut moved = 0.0;
        for m in &r.moves {
            let a = &agents[m.unit];
            println!(
                "  agent {:24} ({:4.2}%) → node {}",
                a.kind.name(),
                units[m.unit].weight,
                m.to.0
            );
            moved += units[m.unit].weight;
        }
        println!(
            "  moved {:.2}% in {} units (continuous optimum would move exactly {:.2}%)",
            moved,
            r.moves.len(),
            nmdb.cs(NodeId(2), &cfg)
        );
        println!("  integral beta = {:.6} (continuous beta = {:.6})", r.beta, p.beta);
    } else {
        println!("  no integral placement exists");
    }
}
