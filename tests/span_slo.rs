//! Integration tests for the trace-analysis tier: causal span trees,
//! the online SLO engine, and the flight-recorder post-mortem path —
//! all driven through the public `dust` facade the way `dustctl` is.
//!
//! The common thread is determinism: every artifact below (span
//! forests, per-phase quantiles, breach lists, post-mortem dumps) is a
//! pure function of the recorded trace, so two runs at the same seed
//! must agree byte for byte.

use dust::prelude::*;

const SEED: u64 = 42;
const DURATION_MS: u64 = 60_000;

fn testbed_forest() -> (SpanForest, SimReport) {
    let obs = ObsHandle::recording(SEED);
    let report = testbed_observed(DURATION_MS, SEED, obs.clone());
    let trace = obs.trace_snapshot().unwrap();
    (build_spans(&trace), report)
}

#[test]
fn every_testbed_transfer_reconstructs_as_a_complete_span_tree() {
    let (forest, report) = testbed_forest();
    assert!(report.transfers_applied > 0, "testbed must offload");
    assert_eq!(forest.orphan_events, 0, "no event may be stranded without its opener");

    let transfers: Vec<_> = forest.transfers().collect();
    assert!(!transfers.is_empty());
    for f in &transfers {
        assert!(f.complete, "{:?} must be complete on a perfect wire", f.flow);
        assert!(
            f.phase("offer").is_some() && f.phase("confirm").is_some(),
            "{:?} must carry the handshake phases, got {:?}",
            f.flow,
            f.phases
        );
        assert!(f.backoffs.is_empty(), "no retransmits on a perfect wire");
        assert!(
            matches!(f.outcome, SpanOutcome::Hosted | SpanOutcome::Released),
            "{:?} ended {:?}",
            f.flow,
            f.outcome
        );
    }
    // every registration ACKed, every node accounted for
    let (_, regs, rounds) = forest.kind_counts();
    assert_eq!(regs, 6, "all six testbed nodes register");
    assert!(rounds > 0, "placement rounds are flows too");
}

#[test]
fn per_phase_quantiles_are_byte_identical_across_runs() {
    let (a, _) = testbed_forest();
    let (b, _) = testbed_forest();
    assert_eq!(a, b, "span forests must match field for field");
    let (ha, hb) = (a.phase_histograms(), b.phase_histograms());
    assert_eq!(ha.len(), hb.len());
    for (name, h) in &ha {
        assert_eq!(h.encode(), hb[name].encode(), "phase {name}: histogram text encodings diverge");
        for q in [0.5, 0.99] {
            assert_eq!(
                h.quantile(q).map(f64::to_bits),
                hb[name].quantile(q).map(f64::to_bits),
                "phase {name}: p{} diverges",
                q * 100.0
            );
        }
    }
    assert_eq!(a.critical_path(), b.critical_path());
}

#[test]
fn lossy_transfers_grow_backoff_children_but_stay_complete() {
    let faults = FaultConfig::symmetric(FaultProfile {
        drop: 0.2,
        duplicate: 0.1,
        delay_ms: 20,
        jitter_ms: 100,
    });
    let obs = ObsHandle::recording(7);
    let r = chaos_with_faults_observed(faults, 120_000, 7, obs.clone());
    assert!(r.offer_retries > 0, "20 % loss must force retransmits");
    let forest = build_spans(&obs.trace_snapshot().unwrap());
    let backoffs: usize = forest.flows.iter().map(|f| f.backoffs.len()).sum();
    assert!(backoffs > 0, "retransmits must surface as backoff spans");
    assert_eq!(forest.orphan_events, 0, "loss may delay flows, never orphan them");
    for f in forest.transfers() {
        assert!(f.complete, "{:?}: lossy flows must still causally close", f.flow);
    }
}

#[test]
fn slo_breaches_are_traced_deterministically_and_digested() {
    let faults = FaultConfig::symmetric(FaultProfile {
        drop: 0.25,
        duplicate: 0.1,
        delay_ms: 20,
        jitter_ms: 100,
    });
    let spec = SloSpec::parse("retransmit_rate<=0.0,convergence<=1").unwrap();
    let run = |seed: u64| {
        let obs = ObsHandle::recording(seed);
        let (r, engine) = chaos_with_slo(faults, 60_000, seed, obs.clone(), &spec);
        (r, engine, obs)
    };
    let (ra, ea, oa) = run(9);
    let (rb, eb, ob) = run(9);
    assert_eq!(ra, rb);
    assert!(ea.breached());
    assert_eq!(ea.breaches(), eb.breaches(), "breach lists must reproduce exactly");
    assert_eq!(ea.report(), eb.report());
    assert_eq!(oa.digest(), ob.digest(), "SloBreach events are part of the digest");
    assert_eq!(oa.counter("slo.breaches"), ea.breaches().len() as u64);
    // the breach events round-trip through the trace with their payloads
    let traced: Vec<_> = oa
        .trace_snapshot()
        .unwrap()
        .entries()
        .iter()
        .filter_map(|e| match e.event {
            TraceEvent::SloBreach { rule, node, value_m } => Some((rule, node, value_m)),
            _ => None,
        })
        .collect();
    assert_eq!(traced.len(), ea.breaches().len());
    for (b, (rule, node, value_m)) in ea.breaches().iter().zip(&traced) {
        assert_eq!((b.rule, b.node_code(), b.value_m()), (*rule, *node, *value_m));
    }
}

#[test]
fn post_mortem_dump_is_deterministic_and_window_bounded() {
    let run = || {
        let obs = ObsHandle::recording(SEED);
        testbed_observed(DURATION_MS, SEED, obs.clone());
        obs.post_mortem("invariant: agent census diverged").unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "same seed, same dump, byte for byte");
    assert!(a.starts_with("postmortem reason=invariant:_agent_census_diverged seed=42 "), "{a}");
    let last = a.lines().last().unwrap();
    assert!(last.starts_with("digest "), "dump must close with its own digest: {last}");
    // window-bounded: the dump holds at most the flight capacity + header + digest
    let events = a.lines().count() - 2;
    assert!(events <= dust::obs::DEFAULT_FLIGHT_CAPACITY, "{events} events in dump");
}
