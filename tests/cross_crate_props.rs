//! Cross-crate seeded tests: invariants that only hold when every layer
//! cooperates (topology costs → LP optimum → placement → protocol).

use dust::lp::{solve, Cmp, Problem, Status};
use dust::prelude::*;
use dust::topology::SplitMix64;

/// Rebuild a placement as an explicit LP from first principles and check
/// the optimizer's β matches.
fn beta_via_raw_lp(nmdb: &Nmdb, cfg: &DustConfig) -> Option<f64> {
    let busy = nmdb.busy_nodes(cfg);
    let cands = nmdb.candidate_nodes(cfg);
    if busy.is_empty() {
        return Some(0.0);
    }
    let data: Vec<f64> = busy.iter().map(|&b| nmdb.state(b).data_mb).collect();
    let costs =
        CostMatrix::build(&nmdb.graph, &busy, &cands, &data, cfg.max_hop, PathEngine::HopBoundedDp);
    let mut p = Problem::new();
    let mut vars = Vec::new();
    for r in 0..busy.len() {
        for c in 0..cands.len() {
            let t = costs.at(r, c);
            vars.push(t.is_finite().then(|| p.add_nonneg(t)));
        }
    }
    for (r, &b) in busy.iter().enumerate() {
        let terms: Vec<_> =
            (0..cands.len()).filter_map(|c| vars[r * cands.len() + c].map(|v| (v, 1.0))).collect();
        p.add_constraint(&terms, Cmp::Eq, nmdb.cs(b, cfg));
    }
    for (c, &o) in cands.iter().enumerate() {
        let terms: Vec<_> =
            (0..busy.len()).filter_map(|r| vars[r * cands.len() + c].map(|v| (v, 1.0))).collect();
        p.add_constraint(&terms, Cmp::Le, nmdb.cd(o, cfg));
    }
    let s = solve(&p);
    (s.status == Status::Optimal).then_some(s.objective)
}

/// The full placement pipeline equals a hand-built LP of Eq. 3.
#[test]
fn placement_equals_first_principles_lp() {
    for outer in 0..16u64 {
        let seed = SplitMix64::new(outer).next_u64();
        let ft = FatTree::with_default_links(4);
        let cfg = DustConfig::paper_defaults().with_engine(PathEngine::HopBoundedDp);
        let nmdb = random_nmdb(&ft.graph, &cfg, &ScenarioParams::default(), seed);
        let p = optimize(&nmdb, &cfg, SolverBackend::Transportation);
        let raw = beta_via_raw_lp(&nmdb, &cfg);
        match (p.status, raw) {
            (PlacementStatus::Optimal, Some(beta)) => {
                assert!(
                    (p.beta - beta).abs() <= 1e-5 * (1.0 + beta.abs()),
                    "seed {seed}: pipeline {} vs raw LP {}",
                    p.beta,
                    beta
                );
            }
            (PlacementStatus::Infeasible, None) => {}
            (PlacementStatus::NoBusyNodes, Some(b)) => assert!(b.abs() < 1e-9, "seed {seed}"),
            (a, b) => panic!("seed {seed}: status mismatch {a:?} vs {b:?}"),
        }
    }
}

/// Applying an optimal placement to the NMDB de-busies every node
/// without overloading any candidate.
#[test]
fn applying_placement_debusies_network() {
    for outer in 0..16u64 {
        let seed = SplitMix64::new(1000 + outer).next_u64();
        let ft = FatTree::with_default_links(4);
        let cfg = DustConfig::paper_defaults().with_engine(PathEngine::HopBoundedDp);
        let mut nmdb = random_nmdb(&ft.graph, &cfg, &ScenarioParams::default(), seed);
        let p = optimize(&nmdb, &cfg, SolverBackend::Transportation);
        if p.status != PlacementStatus::Optimal {
            continue;
        }
        for a in &p.assignments {
            nmdb.apply_transfer(a.from, a.to, a.amount);
        }
        for n in nmdb.graph.nodes() {
            let u = nmdb.state(n).utilization;
            assert!(
                u <= cfg.c_max + 1e-6 || nmdb.role(n, &cfg) != Role::Busy || u - cfg.c_max < 1e-6,
                "seed {seed}: node {n:?} still busy at {u}"
            );
            assert!(u <= 100.0 + 1e-9, "seed {seed}");
        }
        // ex-candidates must not exceed CO_max (constraint 3a post-state)
        for &o in &p.candidates {
            assert!(
                nmdb.state(o).utilization <= cfg.co_max + 1e-6,
                "seed {seed}: candidate {o:?} overloaded to {}",
                nmdb.state(o).utilization
            );
        }
    }
}

/// Protocol-driven placement (Manager assembling its own NMDB from
/// STATs) agrees with direct optimization on the same state.
#[test]
fn manager_snapshot_matches_direct_optimization() {
    for seed in 0u64..16 {
        let ft = FatTree::with_default_links(2); // 5 switches: quick
        let cfg = DustConfig::paper_defaults().with_engine(PathEngine::HopBoundedDp);
        let nmdb = random_nmdb(&ft.graph, &cfg, &ScenarioParams::default(), seed);
        let mut manager =
            Manager::new(ft.graph.clone(), cfg, SolverBackend::Transportation, 1_000, 4_000)
                .unwrap();
        let mut clients: Vec<Client> =
            ft.graph.nodes().map(|n| Client::new(n, true, 100.0)).collect();
        for c in clients.iter_mut() {
            let reg = c.register(0);
            for env in manager.handle(0, &reg) {
                c.handle(0, &env.msg);
            }
        }
        for (i, c) in clients.iter_mut().enumerate() {
            let st = nmdb.state(NodeId(i as u32));
            c.observe(st.utilization, st.data_mb);
            for m in c.tick(1_000) {
                manager.handle(1_000, &m);
            }
        }
        let direct = optimize(&nmdb, &cfg, SolverBackend::Transportation);
        let (via_manager, _) = manager.run_placement(1_001);
        // link utilizations differ (manager snapshot clones the topology as
        // built), so only compare status and totals — the graph is shared.
        assert_eq!(direct.status, via_manager.status, "seed {seed}");
        if direct.status == PlacementStatus::Optimal {
            assert!(
                (direct.total_offloaded() - via_manager.total_offloaded()).abs() < 1e-6,
                "seed {seed}"
            );
        }
    }
}
