//! Full-system end-to-end tests on the discrete-event simulator: the whole
//! stack (topology → telemetry cost model → protocol → optimizer → physical
//! agent movement) must reproduce the paper's headline behaviours.

use dust::prelude::*;
use dust::sim::scenarios;

#[test]
fn fig6_cpu_and_memory_reductions() {
    let r = fig6_contrast(120_000, 2024);
    assert!(r.transfers > 0, "DUST must offload in the testbed scenario");
    // Paper: CPU 31 % → 15 % (≈ 52 % less), memory 70 % → 62 % (≈ 12 % less).
    assert!((r.local_cpu - 31.0).abs() < 3.0, "local cpu {}", r.local_cpu);
    assert!(r.dust_cpu < 18.0, "dust cpu {}", r.dust_cpu);
    assert!(r.cpu_reduction_percent() > 40.0, "cpu cut {}", r.cpu_reduction_percent());
    assert!((r.local_mem - 70.0).abs() < 3.0, "local mem {}", r.local_mem);
    assert!((r.dust_mem - 62.0).abs() < 3.0, "dust mem {}", r.dust_mem);
    assert!(
        r.mem_reduction_percent() > 7.0 && r.mem_reduction_percent() < 20.0,
        "mem cut {}",
        r.mem_reduction_percent()
    );
}

#[test]
fn fig1_shape_monotone_with_spikes() {
    let rows = fig1_curve(&[0.0, 0.05, 0.1, 0.15, 0.2], 61_000, 9);
    // CPU grows monotonically with traffic
    for w in rows.windows(2) {
        assert!(w[1].mean_cpu_percent > w[0].mean_cpu_percent);
    }
    // at the paper's 20 % line rate: ~100 % steady average, ~600 % spikes
    let top = rows.last().unwrap();
    assert!(top.mean_cpu_percent > 90.0, "mean {}", top.mean_cpu_percent);
    assert!(
        top.peak_cpu_percent > 500.0 && top.peak_cpu_percent < 700.0,
        "peak {}",
        top.peak_cpu_percent
    );
}

#[test]
fn destination_failure_is_survived() {
    let (graph, dut) = testbed_topology();
    let mut sim = Simulation::builder()
        .graph(graph)
        .nodes(scenarios::testbed_nodes(dut))
        .traffic(TrafficModel::testbed())
        .dust(scenarios::testbed_dust_config())
        .duration_ms(120_000)
        .full_monitoring_offload(true)
        // kill a server mid-run; the fleet must re-home or orphan cleanly
        .kill_at(40_000, NodeId(4))
        .build()
        .expect("testbed knobs are consistent");
    let report = sim.run();
    // agents are conserved: 10 total, somewhere
    let hosted_elsewhere: usize =
        sim.nodes().iter().map(|n| n.hosted_agents.iter().filter(|(o, _)| *o == dut).count()).sum();
    let local = sim.nodes()[dut.index()].local_agents().len();
    assert_eq!(local + hosted_elsewhere, 10, "agents lost or duplicated");
    // if the failed node was the host, a replica substitution happened
    if report.replicas_applied > 0 {
        assert!(sim.nodes()[4].hosted_agents.is_empty(), "failed node must no longer host");
    }
}

#[test]
fn baseline_run_keeps_everything_local() {
    let (graph, dut) = testbed_topology();
    let mut sim = Simulation::builder()
        .graph(graph)
        .nodes(scenarios::testbed_nodes(dut))
        .traffic(TrafficModel::testbed())
        .dust(scenarios::testbed_dust_config())
        .dust_enabled(false)
        .duration_ms(60_000)
        .build()
        .expect("testbed knobs are consistent");
    let report = sim.run();
    assert_eq!(report.transfers_applied, 0);
    assert_eq!(sim.nodes()[dut.index()].local_agents().len(), 10);
    // metric series were still recorded
    assert!(report.mean(dut, "device-cpu", 0, 60_000).is_some());
}

#[test]
fn simulation_is_deterministic_across_runs() {
    let build = || {
        let (graph, dut) = testbed_topology();
        Simulation::builder()
            .graph(graph)
            .nodes(scenarios::testbed_nodes(dut))
            .traffic(TrafficModel::testbed())
            .dust(scenarios::testbed_dust_config())
            .duration_ms(60_000)
            .full_monitoring_offload(true)
            .seed(31)
            .build()
            .expect("testbed knobs are consistent")
    };
    let r1 = build().run();
    let r2 = build().run();
    let (_, dut) = testbed_topology();
    assert_eq!(r1.transfers_applied, r2.transfers_applied);
    assert_eq!(r1.mean(dut, "device-cpu", 0, 60_000), r2.mean(dut, "device-cpu", 0, 60_000));
    assert_eq!(r1.mean(dut, "device-mem", 0, 60_000), r2.mean(dut, "device-mem", 0, 60_000));
}

#[test]
fn diurnal_traffic_drives_offload_and_reclaim() {
    // a traffic wave that pushes the DUT over threshold only at the peak:
    // the system should offload at the peak; the Busy node's demand then
    // falls with the trough, enabling reclaim (Release) — verify at least
    // that transfers happen and the run stays consistent.
    let (graph, dut) = testbed_topology();
    let traffic = TrafficModel::Diurnal {
        mean: 0.12,
        amplitude: 0.1,
        period_ms: 120_000,
        noise: 0.0,
        seed: 0,
    };
    let mut sim = Simulation::builder()
        .graph(graph)
        .nodes(scenarios::testbed_nodes(dut))
        .traffic(traffic)
        .dust(scenarios::testbed_dust_config())
        .duration_ms(240_000)
        .build()
        .expect("testbed knobs are consistent");
    let report = sim.run();
    assert!(report.transfers_applied > 0, "peak traffic must trigger offload");
    // conservation again
    let hosted: usize =
        sim.nodes().iter().map(|n| n.hosted_agents.iter().filter(|(o, _)| *o == dut).count()).sum();
    assert_eq!(sim.nodes()[dut.index()].local_agents().len() + hosted, 10);
}

#[test]
fn telemetry_flows_recorded_without_loss_on_idle_fabric() {
    // the testbed fabric at 20 % load has ample headroom: offloaded
    // telemetry must flow with zero drops, and the series must exist
    let (graph, dut) = testbed_topology();
    let mut sim = Simulation::builder()
        .graph(graph)
        .nodes(scenarios::testbed_nodes(dut))
        .traffic(TrafficModel::testbed())
        .dust(scenarios::testbed_dust_config())
        .duration_ms(60_000)
        .full_monitoring_offload(true)
        .build()
        .expect("testbed knobs are consistent");
    let report = sim.run();
    assert!(report.transfers_applied > 0);
    let db = report.federation.store(dut).expect("DUT records flow series");
    let admitted = db.series("telemetry-admitted-mbps").expect("admitted series");
    assert!(!admitted.is_empty());
    assert!(admitted.points().iter().all(|p| p.value > 0.0));
    let dropped = db.series("telemetry-dropped").expect("dropped series");
    assert!(
        dropped.points().iter().all(|p| p.value == 0.0),
        "no congestion loss expected on an idle fabric"
    );
}

#[test]
fn lossy_control_plane_end_to_end() {
    // the whole stack under a hostile control plane: 25 % drop, 10 %
    // duplication, 120 ms of jitter-driven reordering. The retry/expiry
    // machinery must still offload, never lose a monitor agent, and
    // leave Manager and Client ledgers agreeing once traffic settles.
    let r = chaos_with_faults(
        FaultConfig::symmetric(FaultProfile {
            drop: 0.25,
            duplicate: 0.1,
            delay_ms: 20,
            jitter_ms: 120,
        }),
        180_000,
        99,
    );
    assert!(r.msgs_dropped > 0, "fault gate must actually fire");
    assert!(r.transfers > 0, "offloading must survive 25 % loss");
    assert_eq!(r.agents_present, r.agents_expected, "monitor agents conserved");
    assert_eq!(r.unconfirmed_stale, 0, "no offer outlives its retry budget");
    assert!(r.ledgers_consistent, "manager and client ledgers diverged");

    // determinism across the full e2e path
    let again = chaos_with_faults(
        FaultConfig::symmetric(FaultProfile {
            drop: 0.25,
            duplicate: 0.1,
            delay_ms: 20,
            jitter_ms: 120,
        }),
        180_000,
        99,
    );
    assert_eq!(r, again, "same seed must reproduce identical counters");
}
