//! Cross-crate metrics-conservation property tests.
//!
//! The observability counters are not free-floating telemetry — they obey
//! exact conservation identities that tie the protocol, simulator, and
//! fault gate together. Each identity is checked over at least twelve
//! seeds spanning a ladder of loss rates:
//!
//! * **offers**: every offer the Manager ever sent is accounted for —
//!   confirmed, refused, abandoned, or still in flight (unconfirmed) when
//!   time ran out. Nothing vanishes, nothing is double-counted.
//! * **ledger**: the simulator's active-transfer set equals the running
//!   sum of applied transfers and replicas minus releases and superseded
//!   entries.
//! * **fault gate**: per direction, `delivered + dropped` equals
//!   `sent + duplicated` — the gate may reshape traffic but never
//!   miscounts it.
//! * **non-perturbation**: a chaos run with the recorder attached is
//!   bit-identical to the same run without it.

use dust::prelude::*;
use dust::sim::scenarios::{testbed_dust_config, testbed_nodes};

const SEEDS: u64 = 12;
const DURATION_MS: u64 = 45_000;

/// Loss ladder cycled across seeds so the identities are exercised on the
/// perfect wire and under light, heavy, and extreme loss alike.
fn loss_for(seed: u64) -> f64 {
    [0.0, 0.1, 0.2, 0.4][(seed % 4) as usize]
}

fn faults_for(seed: u64) -> FaultConfig {
    let loss = loss_for(seed);
    FaultConfig::symmetric(FaultProfile {
        drop: loss,
        duplicate: loss / 2.0,
        delay_ms: 20,
        jitter_ms: 100,
    })
}

/// Build and run the Fig. 5 testbed chaos scenario with the recorder
/// attached, returning the finished simulation (for ledger access) and
/// its observability handle.
fn run_observed(seed: u64) -> (Simulation, ObsHandle) {
    let (graph, dut) = testbed_topology();
    let obs = ObsHandle::recording(seed);
    let mut sim = Simulation::builder()
        .graph(graph)
        .nodes(testbed_nodes(dut))
        .traffic(TrafficModel::testbed())
        .dust(testbed_dust_config())
        .duration_ms(DURATION_MS)
        .seed(seed)
        .full_monitoring_offload(true)
        .faults(faults_for(seed))
        .obs(obs.clone())
        .build()
        .expect("testbed knobs are consistent");
    sim.run();
    (sim, obs)
}

#[test]
fn offers_are_conserved() {
    for seed in 0..SEEDS {
        let (sim, obs) = run_observed(seed);
        let inflight = sim.manager().hostings().values().filter(|h| !h.confirmed).count() as u64;
        let sent = obs.counter("proto.offers_sent");
        let confirmed = obs.counter("proto.offers_confirmed");
        let refused = obs.counter("proto.offers_refused");
        let abandoned = obs.counter("proto.offers_abandoned");
        assert!(sent > 0, "seed {seed}: no offers at all");
        assert_eq!(
            sent,
            confirmed + refused + abandoned + inflight,
            "seed {seed} (loss {}): offers leak — sent {sent} != confirmed {confirmed} \
             + refused {refused} + abandoned {abandoned} + inflight {inflight}",
            loss_for(seed),
        );
    }
}

#[test]
fn transfer_ledger_is_conserved() {
    for seed in 0..SEEDS {
        let (sim, obs) = run_observed(seed);
        let applied = obs.counter("sim.transfers_applied") as i64;
        let replicas = obs.counter("sim.replicas_applied") as i64;
        let released = obs.counter("sim.releases_applied") as i64;
        let superseded = obs.counter("sim.transfers_superseded") as i64;
        let expected = applied + replicas - released - superseded;
        assert_eq!(
            sim.active_transfers() as i64,
            expected,
            "seed {seed} (loss {}): ledger drift — active {} != {applied} + {replicas} \
             - {released} - {superseded}",
            loss_for(seed),
            sim.active_transfers(),
        );
    }
}

#[test]
fn fault_gate_counts_per_direction_are_conserved() {
    for seed in 0..SEEDS {
        let (_, obs) = run_observed(seed);
        for dir in ["sim.transport.to_client", "sim.transport.to_manager"] {
            let sent = obs.counter(&format!("{dir}.sent"));
            let delivered = obs.counter(&format!("{dir}.delivered"));
            let dropped = obs.counter(&format!("{dir}.dropped"));
            let duplicated = obs.counter(&format!("{dir}.duplicated"));
            assert!(sent > 0, "seed {seed}: no traffic through {dir}");
            assert_eq!(
                delivered + dropped,
                sent + duplicated,
                "seed {seed} (loss {}) {dir}: gate miscount — delivered {delivered} \
                 + dropped {dropped} != sent {sent} + duplicated {duplicated}",
                loss_for(seed),
            );
        }
    }
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    // The recorder must be write-only with respect to the simulation:
    // attaching it cannot change a single outcome. ChaosResult carries
    // every externally visible number of a run, so plain-vs-observed
    // equality at the same seed is the whole contract.
    for seed in 0..SEEDS {
        let faults = faults_for(seed);
        let plain = chaos_with_faults(faults, DURATION_MS, seed);
        let observed =
            chaos_with_faults_observed(faults, DURATION_MS, seed, ObsHandle::recording(seed));
        assert_eq!(plain, observed, "seed {seed}: recorder perturbed the run");
    }
}

#[test]
fn merged_metrics_equal_the_sum_of_runs() {
    // Snapshot merging is how a sweep aggregates per-run registries; the
    // merge of two runs' counters must equal their arithmetic sum.
    let (_, a) = run_observed(1);
    let (_, b) = run_observed(2);
    let ma = a.metrics().unwrap();
    let mb = b.metrics().unwrap();
    let mut merged = ma.snapshot();
    merged.merge(&mb);
    for name in ["proto.offers_sent", "sim.transfers_applied", "sim.transport.to_client.sent"] {
        assert_eq!(
            merged.counter(name),
            ma.counter(name) + mb.counter(name),
            "merge broke counter {name}"
        );
    }
}
