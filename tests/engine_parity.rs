//! Tick-vs-event core parity: the redesigned event-driven core must be
//! observably indistinguishable from the legacy fixed-tick core.
//!
//! "Observably" is strict: for the same scenario, seed, and fault
//! profile, the two cores must produce bit-identical traces (same
//! digest, same binary encoding), identical metrics text, and identical
//! report counters. The event core is free to reorder *work* internally
//! (lazy link application, epoch-cached resource walks) but never to
//! reorder or change any *observable* event.
//!
//! A seeded sweep stands in for a property test: a fixed set of seeds
//! chosen at authoring time, run over both the perfect-wire testbed and
//! a lossy chaos profile. Any divergence names the seed that broke.

use dust::prelude::*;

/// Seeds for the parity sweep. Deliberately spread: small, large,
/// bit-dense, and the golden-trace seeds themselves.
const SEEDS: [u64; 5] = [1, 7, 42, 0xDEAD_BEEF, u64::MAX - 3];

fn assert_obs_equal(scenario: &str, seed: u64, tick: &ObsHandle, event: &ObsHandle) {
    let tt = tick.trace_snapshot().unwrap();
    let te = event.trace_snapshot().unwrap();
    assert_eq!(
        tt.digest(),
        te.digest(),
        "{scenario} seed {seed}: trace digests diverge (tick {:016x} vs event {:016x})",
        tt.digest(),
        te.digest()
    );
    assert_eq!(tt.to_binary(), te.to_binary(), "{scenario} seed {seed}: binary traces diverge");
    assert_eq!(
        tick.metrics().unwrap().to_text(),
        event.metrics().unwrap().to_text(),
        "{scenario} seed {seed}: metrics snapshots diverge"
    );
}

#[test]
fn testbed_cores_agree_at_every_seed() {
    for seed in SEEDS {
        let tick_obs = ObsHandle::recording(seed);
        let tick = testbed_observed_on(30_000, seed, tick_obs.clone(), EngineKind::Tick);
        let event_obs = ObsHandle::recording(seed);
        let event = testbed_observed_on(30_000, seed, event_obs.clone(), EngineKind::Event);

        assert_obs_equal("testbed", seed, &tick_obs, &event_obs);
        assert_eq!(tick.transfers_applied, event.transfers_applied, "seed {seed}");
        assert_eq!(tick.replicas_applied, event.replicas_applied, "seed {seed}");
        assert_eq!(tick.placements_with_assignments, event.placements_with_assignments);
        assert_eq!(tick.placement_rounds, event.placement_rounds, "seed {seed}");
        assert_eq!(tick.msgs_sent, event.msgs_sent, "seed {seed}");
        assert_eq!(tick.first_transfer_ms, event.first_transfer_ms, "seed {seed}");
        assert_eq!(tick.events_processed, event.events_processed, "seed {seed}");
        assert_eq!(tick.end_ms, event.end_ms, "seed {seed}");
    }
}

#[test]
fn chaos_cores_agree_at_every_seed() {
    let faults = FaultConfig::symmetric(FaultProfile {
        drop: 0.2,
        duplicate: 0.1,
        delay_ms: 20,
        jitter_ms: 100,
    });
    for seed in SEEDS {
        let tick_obs = ObsHandle::recording(seed);
        let tick =
            chaos_with_faults_observed_on(faults, 60_000, seed, tick_obs.clone(), EngineKind::Tick);
        let event_obs = ObsHandle::recording(seed);
        let event = chaos_with_faults_observed_on(
            faults,
            60_000,
            seed,
            event_obs.clone(),
            EngineKind::Event,
        );

        assert_obs_equal("chaos", seed, &tick_obs, &event_obs);
        // ChaosResult derives PartialEq over every protocol counter.
        assert_eq!(tick, event, "chaos seed {seed}: protocol outcomes diverge");
    }
}

#[test]
fn registry_scenarios_agree_at_every_seed() {
    // The four PR-8 registry scenarios (INT sampling costs, diurnal and
    // flash-crowd traffic, storm cascades) must hold the same parity
    // contract as the hand-rolled scenarios above: whatever machinery a
    // scenario exercises, both cores must observe it identically.
    for name in ["int_burst", "diurnal", "flash_crowd", "zone_storm"] {
        let sc = registry::find(name).expect("registered scenario");
        for seed in SEEDS {
            let run_on = |engine: EngineKind| {
                let knobs = ScenarioKnobs {
                    duration_ms: Some(30_000),
                    engine,
                    obs: ObsHandle::recording(seed),
                    ..ScenarioKnobs::seeded(seed)
                };
                let run = sc.run(&knobs).unwrap();
                (knobs.obs, run.report)
            };
            let (tick_obs, tick) = run_on(EngineKind::Tick);
            let (event_obs, event) = run_on(EngineKind::Event);
            assert_obs_equal(name, seed, &tick_obs, &event_obs);
            assert_eq!(tick.transfers_applied, event.transfers_applied, "{name} seed {seed}");
            assert_eq!(tick.msgs_sent, event.msgs_sent, "{name} seed {seed}");
            assert_eq!(tick.first_transfer_ms, event.first_transfer_ms, "{name} seed {seed}");
            assert_eq!(tick.events_processed, event.events_processed, "{name} seed {seed}");
            assert_eq!(tick.end_ms, event.end_ms, "{name} seed {seed}");
        }
    }
}

#[test]
fn federation_contents_identical_across_cores() {
    // Beyond counters: the time-series databases the run leaves behind
    // must hold the same points on the same nodes.
    let tick = testbed_observed_on(30_000, 42, ObsHandle::disabled(), EngineKind::Tick);
    let event = testbed_observed_on(30_000, 42, ObsHandle::disabled(), EngineKind::Event);
    let tick_nodes = tick.federation.nodes();
    assert_eq!(tick_nodes, event.federation.nodes(), "federation topology diverges");
    for n in tick_nodes {
        let a = tick.federation.store(n).unwrap();
        let b = event.federation.store(n).unwrap();
        assert_eq!(a.point_count(), b.point_count(), "node {n:?} point counts diverge");
    }
}

#[test]
fn scale_scenario_cores_agree() {
    // The bench workload itself (small k so the test stays quick): the
    // scenario whose speedup BENCH_seed.json gates must also be exact.
    let event = scale_fleet(4, 2_000, 3, EngineKind::Event);
    let tick = scale_fleet(4, 2_000, 3, EngineKind::Tick);
    assert_eq!(event.events_processed, tick.events_processed);
    assert_eq!(event.peak_queue_len, tick.peak_queue_len);
    assert_eq!(event.end_ms, tick.end_ms);
    assert_eq!(event.placement_rounds, tick.placement_rounds);
}
