//! Golden-trace regression tests.
//!
//! Two canned scenarios — the Fig. 5 testbed under a perfect wire and the
//! same testbed under 20 % control-plane loss — run at fixed seeds with
//! the trace recorder on. Each test runs its scenario twice in-process and
//! requires (a) the two traces to be bit-identical (digest, binary
//! encoding, and metrics text all equal) and (b) the digest and a handful
//! of load-bearing counters to match golden values checked in below.
//!
//! If a change legitimately alters protocol or solver behaviour, rerun
//! the tests, read the `got {digest:016x}` from the failure message, and
//! update the constants — that diff is the reviewable behavioural delta.

use dust::prelude::*;

/// Fixed seed for the perfect-wire testbed scenario.
const TESTBED_SEED: u64 = 42;
/// Simulated duration for the testbed scenario, ms.
const TESTBED_DURATION_MS: u64 = 60_000;

/// Fixed seed for the 20 %-loss chaos scenario.
const CHAOS_SEED: u64 = 7;
/// Simulated duration for the chaos scenario, ms.
const CHAOS_DURATION_MS: u64 = 120_000;

/// Golden digest of the testbed trace at `TESTBED_SEED`.
const TESTBED_DIGEST: u64 = 0x56baacf9a0c6e5d5;
/// Golden digest of the chaos trace at `CHAOS_SEED`.
const CHAOS_DIGEST: u64 = 0x0462984b186d8882;

fn run_testbed() -> (ObsHandle, SimReport) {
    let obs = ObsHandle::recording(TESTBED_SEED);
    let report = testbed_observed(TESTBED_DURATION_MS, TESTBED_SEED, obs.clone());
    (obs, report)
}

fn chaos_faults() -> FaultConfig {
    FaultConfig::symmetric(FaultProfile { drop: 0.2, duplicate: 0.1, delay_ms: 20, jitter_ms: 100 })
}

fn run_chaos() -> (ObsHandle, ChaosResult) {
    let obs = ObsHandle::recording(CHAOS_SEED);
    let result =
        chaos_with_faults_observed(chaos_faults(), CHAOS_DURATION_MS, CHAOS_SEED, obs.clone());
    (obs, result)
}

#[test]
fn testbed_trace_is_bit_identical_across_runs() {
    let (a, report_a) = run_testbed();
    let (b, report_b) = run_testbed();
    assert!(report_a.transfers_applied > 0, "testbed run must offload");
    assert_eq!(report_a.transfers_applied, report_b.transfers_applied);

    let ta = a.trace_snapshot().unwrap();
    let tb = b.trace_snapshot().unwrap();
    TraceAssert::new(&ta).assert_same_digest(&tb);
    assert_eq!(ta.to_binary(), tb.to_binary(), "binary encodings diverge");
    assert_eq!(
        a.metrics().unwrap().to_text(),
        b.metrics().unwrap().to_text(),
        "metrics snapshots diverge"
    );
}

#[test]
fn testbed_trace_matches_golden_digest() {
    let (obs, _) = run_testbed();
    let trace = obs.trace_snapshot().unwrap();
    // a failure writes the trace tail to target/postmortem/ so CI can
    // upload the black box next to the red test
    TraceAssert::new(&trace)
        .with_postmortem("target/postmortem/testbed_golden.txt")
        .expect("Register")
        .expect("Offer")
        .expect("OfferAccepted")
        .expect("TransferApplied")
        .assert_digest(TESTBED_DIGEST);
}

#[test]
fn chaos_trace_is_bit_identical_across_runs() {
    let (a, result_a) = run_chaos();
    let (b, result_b) = run_chaos();
    assert_eq!(result_a, result_b, "chaos outcomes diverge at the same seed");
    assert!(result_a.msgs_dropped > 0, "20% loss must drop something");

    let ta = a.trace_snapshot().unwrap();
    let tb = b.trace_snapshot().unwrap();
    TraceAssert::new(&ta).assert_same_digest(&tb);
    assert_eq!(ta.to_binary(), tb.to_binary(), "binary encodings diverge");
    assert_eq!(
        a.metrics().unwrap().to_text(),
        b.metrics().unwrap().to_text(),
        "metrics snapshots diverge"
    );
}

#[test]
fn chaos_trace_matches_golden_digest() {
    let (obs, _) = run_chaos();
    let trace = obs.trace_snapshot().unwrap();
    TraceAssert::new(&trace)
        .with_postmortem("target/postmortem/chaos_golden.txt")
        .expect("FaultDrop")
        .expect("Retransmit")
        .expect("TransferApplied")
        .assert_digest(CHAOS_DIGEST);
}

/// Fixed seed for the four registry scenarios pinned below.
const SCENARIO_SEED: u64 = 42;

/// Golden digests of the registry scenarios at `SCENARIO_SEED`, default
/// durations, default (event) core, each entry's own SLO spec attached
/// (a registry run always attaches one, and the evaluation events are
/// part of the trace).
const INT_BURST_DIGEST: u64 = 0x79a6b30453fa311f;
const DIURNAL_DIGEST: u64 = 0xfc936cf3e05a3066;
const FLASH_CROWD_DIGEST: u64 = 0x028c1eec925a8662;
const ZONE_STORM_DIGEST: u64 = 0xed3d8c01dc80f20f;

fn run_scenario(name: &str) -> ObsHandle {
    let sc = registry::find(name).expect("registered scenario");
    let knobs = ScenarioKnobs {
        obs: ObsHandle::recording(SCENARIO_SEED),
        ..ScenarioKnobs::seeded(SCENARIO_SEED)
    };
    let run = sc.run(&knobs).unwrap();
    assert!(!run.breached(), "{name} must pass its attached SLO:\n{}", run.slo.report());
    assert!(run.report.transfers_applied > 0, "{name} must offload");
    knobs.obs
}

#[test]
fn registry_scenarios_are_bit_identical_across_runs() {
    for name in ["int_burst", "diurnal", "flash_crowd", "zone_storm"] {
        let a = run_scenario(name);
        let b = run_scenario(name);
        let ta = a.trace_snapshot().unwrap();
        let tb = b.trace_snapshot().unwrap();
        TraceAssert::new(&ta).assert_same_digest(&tb);
        assert_eq!(ta.to_binary(), tb.to_binary(), "{name}: binary encodings diverge");
        assert_eq!(
            a.metrics().unwrap().to_text(),
            b.metrics().unwrap().to_text(),
            "{name}: metrics snapshots diverge"
        );
    }
}

#[test]
fn int_burst_trace_matches_golden_digest() {
    let obs = run_scenario("int_burst");
    let trace = obs.trace_snapshot().unwrap();
    TraceAssert::new(&trace)
        .with_postmortem("target/postmortem/int_burst_golden.txt")
        .expect("Register")
        .expect("Offer")
        .expect("TransferApplied")
        .assert_digest(INT_BURST_DIGEST);
}

#[test]
fn diurnal_trace_matches_golden_digest() {
    let obs = run_scenario("diurnal");
    let trace = obs.trace_snapshot().unwrap();
    TraceAssert::new(&trace)
        .with_postmortem("target/postmortem/diurnal_golden.txt")
        .expect("TransferApplied")
        .assert_digest(DIURNAL_DIGEST);
}

#[test]
fn flash_crowd_trace_matches_golden_digest() {
    let obs = run_scenario("flash_crowd");
    let trace = obs.trace_snapshot().unwrap();
    TraceAssert::new(&trace)
        .with_postmortem("target/postmortem/flash_crowd_golden.txt")
        .expect("TransferApplied")
        .assert_digest(FLASH_CROWD_DIGEST);
}

#[test]
fn zone_storm_trace_matches_golden_digest() {
    let obs = run_scenario("zone_storm");
    let trace = obs.trace_snapshot().unwrap();
    assert!(obs.counter("sim.storm_cascades") > 0, "the storm must cascade");
    TraceAssert::new(&trace)
        .with_postmortem("target/postmortem/zone_storm_golden.txt")
        .expect("StormCascade")
        .expect("TransferApplied")
        .assert_digest(ZONE_STORM_DIGEST);
}

#[test]
fn trace_binary_format_is_versioned_and_round_trips() {
    use dust::obs::{DecodedTrace, TRACE_FORMAT_VERSION, TRACE_MAGIC};
    // The golden digests above are only comparable across builds that
    // speak the same trace format. Pin the version: bumping it is a
    // deliberate act that must arrive in the same diff as new digests.
    assert_eq!(TRACE_FORMAT_VERSION, 2, "format bumped — re-record the golden digests");

    let (obs, _) = run_testbed();
    let trace = obs.trace_snapshot().unwrap();
    let bytes = trace.to_binary();
    assert_eq!(&bytes[..4], &TRACE_MAGIC, "stream must open with the magic");

    let decoded: DecodedTrace = dust::obs::Trace::decode_binary(&bytes).unwrap();
    assert_eq!(decoded.version, TRACE_FORMAT_VERSION);
    assert_eq!(decoded.seed, TESTBED_SEED);
    assert_eq!(decoded.lines.len(), trace.len());
    assert_eq!(decoded.digest, TESTBED_DIGEST, "decode must reproduce the golden digest");

    // a future-format stream fails loudly, not with a digest mismatch
    let mut future = bytes.clone();
    future[4] = 0xff;
    future[5] = 0xff;
    let err = dust::obs::Trace::decode_binary(&future).unwrap_err();
    assert!(err.contains("golden digests are format-versioned"), "{err}");
    let err = dust::obs::Trace::decode_binary(b"nope").unwrap_err();
    assert!(err.contains("bad magic") || err.contains("truncated"), "{err}");
}

#[test]
fn golden_counters_hold() {
    // A few load-bearing counters pinned alongside the digests: these
    // change only when protocol or solver behaviour changes, and their
    // diff localizes *what* moved when a digest test goes red.
    let (testbed, _) = run_testbed();
    let (chaos, _) = run_chaos();
    let got = [
        ("testbed proto.offers_sent", testbed.counter("proto.offers_sent")),
        ("testbed proto.offers_confirmed", testbed.counter("proto.offers_confirmed")),
        ("testbed sim.transfers_applied", testbed.counter("sim.transfers_applied")),
        ("chaos proto.offers_sent", chaos.counter("proto.offers_sent")),
        ("chaos proto.offer_retransmits", chaos.counter("proto.offer_retransmits")),
        ("chaos sim.transport.to_client.dropped", chaos.counter("sim.transport.to_client.dropped")),
    ];
    let golden: [(&str, u64); 6] = [
        ("testbed proto.offers_sent", 6),
        ("testbed proto.offers_confirmed", 6),
        ("testbed sim.transfers_applied", 6),
        ("chaos proto.offers_sent", 6),
        ("chaos proto.offer_retransmits", 2),
        ("chaos sim.transport.to_client.dropped", 1),
    ];
    assert_eq!(got, golden, "golden counters moved");
}
