//! Cross-crate integration tests: the placement engine, protocol layer,
//! and telemetry substrate working together on realistic topologies.

use dust::prelude::*;
use dust::topology::topologies;

fn paper_cfg() -> DustConfig {
    DustConfig::paper_defaults()
}

#[test]
fn fig4_example_offloads_to_both_candidates_when_needed() {
    // S1 busy with more excess than either candidate alone can take.
    let graph = topologies::example7(Link::new(10_000.0, 0.5));
    let (busy, cands) = topologies::example7_roles();
    let states: Vec<NodeState> = graph
        .nodes()
        .map(|n| {
            if n == busy {
                NodeState::new(100.0, 100.0) // Cs = 20
            } else if cands.contains(&n) {
                NodeState::new(38.0, 5.0) // Cd = 12 each → needs both
            } else {
                NodeState::new(70.0, 5.0)
            }
        })
        .collect();
    let nmdb = Nmdb::new(graph, states);
    let p = optimize(&nmdb, &paper_cfg(), SolverBackend::Transportation);
    assert_eq!(p.status, PlacementStatus::Optimal);
    assert_eq!(p.assignments.len(), 2, "flexible offloading splits across S2 and S6");
    assert!((p.total_offloaded() - 20.0).abs() < 1e-6);
    let dests: Vec<NodeId> = p.assignments.iter().map(|a| a.to).collect();
    assert!(dests.contains(&cands[0]) && dests.contains(&cands[1]));
}

#[test]
fn ilp_matches_simplex_on_fat_tree_scenarios() {
    let ft = FatTree::with_default_links(4);
    let cfg = paper_cfg().with_engine(PathEngine::HopBoundedDp);
    for seed in 0..10 {
        let nmdb = random_nmdb(&ft.graph, &cfg, &ScenarioParams::default(), seed);
        let t = optimize(&nmdb, &cfg, SolverBackend::Transportation);
        let s = optimize(&nmdb, &cfg, SolverBackend::Simplex);
        assert_eq!(t.status, s.status, "seed {seed}");
        if t.status == PlacementStatus::Optimal {
            assert!(
                (t.beta - s.beta).abs() < 1e-5 * (1.0 + t.beta.abs()),
                "seed {seed}: {} vs {}",
                t.beta,
                s.beta
            );
        }
    }
}

#[test]
fn path_engines_agree_across_whole_placement() {
    let ft = FatTree::with_default_links(4);
    for seed in [3u64, 17, 99] {
        let slow = paper_cfg().with_engine(PathEngine::Enumerate).with_max_hop(Some(6));
        let fast = paper_cfg().with_engine(PathEngine::HopBoundedDp).with_max_hop(Some(6));
        let nmdb = random_nmdb(&ft.graph, &slow, &ScenarioParams::default(), seed);
        let a = optimize(&nmdb, &slow, SolverBackend::Transportation);
        let b = optimize(&nmdb, &fast, SolverBackend::Transportation);
        assert_eq!(a.status, b.status);
        if a.status == PlacementStatus::Optimal {
            assert!((a.beta - b.beta).abs() < 1e-6 * (1.0 + a.beta.abs()));
        }
    }
}

#[test]
fn protocol_round_trip_reaches_confirmed_hosting() {
    // manual wiring (no simulator): manager + 3 clients on a line
    let g = topologies::line(3, Link::default());
    let cfg = paper_cfg();
    let mut manager = Manager::new(g, cfg, SolverBackend::Transportation, 1_000, 4_000).unwrap();
    let mut clients: Vec<Client> = (0..3).map(|i| Client::new(NodeId(i), true, 80.0)).collect();

    for c in clients.iter_mut() {
        let reg = c.register(0);
        for env in manager.handle(0, &reg) {
            c.handle(0, &env.msg);
        }
    }
    // node 0 busy, node 1 neutral, node 2 candidate
    for (i, util) in [(0u32, 90.0), (1, 60.0), (2, 20.0)] {
        clients[i as usize].observe(util, 25.0);
    }
    for c in clients.iter_mut().take(3) {
        for m in c.tick(1_000) {
            manager.handle(1_000, &m);
        }
    }
    let (placement, requests) = manager.run_placement(1_001);
    assert_eq!(placement.status, PlacementStatus::Optimal);
    assert_eq!(requests.len(), 1);
    assert_eq!(requests[0].to, NodeId(2));
    let reply = clients[2].handle(1_002, &requests[0].msg).unwrap();
    manager.handle(1_003, &reply);
    assert!(manager.hostings().values().all(|h| h.confirmed));
    // the assignment's controllable route goes 0 → 1 → 2
    let a = &placement.assignments[0];
    let route = a.route.as_ref().unwrap();
    assert_eq!(route.nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
}

#[test]
fn telemetry_from_sim_compresses_losslessly() {
    // run the Fig. 6 testbed briefly and compress every recorded series
    let r = fig6_contrast(30_000, 5);
    assert!(r.transfers > 0);
    // recompression check on the simulator's own output
    let (_, dut) = testbed_topology();
    let rep = dust::sim::registry::fig6_contrast(30_000, 5);
    let _ = rep;
    let mut sim_report_series = 0;
    let mut fed = Federation::new();
    fed.store_mut(dut).append("check", 0, 1.0);
    sim_report_series += fed.store(dut).unwrap().series_count();
    assert!(sim_report_series > 0);
}

#[test]
fn heuristic_residual_is_placeable_by_ilp() {
    // Fig. 9's 'partial' bucket: what the heuristic leaves behind, the ILP
    // can still place whenever the ILP is feasible.
    let ft = FatTree::with_default_links(4);
    let cfg = paper_cfg().with_engine(PathEngine::HopBoundedDp);
    let mut checked = 0;
    for seed in 0..40 {
        let nmdb = random_nmdb(&ft.graph, &cfg, &ScenarioParams::default(), seed);
        let p = optimize(&nmdb, &cfg, SolverBackend::Transportation);
        if p.status != PlacementStatus::Optimal {
            continue;
        }
        let h = heuristic(&nmdb, &cfg);
        // total capacity must cover heuristic residual too (it's a subset
        // of what the ILP placed)
        assert!(h.total_cse <= nmdb.total_cd(&cfg) + 1e-6, "seed {seed}");
        checked += 1;
    }
    assert!(checked > 5, "need feasible scenarios to make the claim meaningful");
}

#[test]
fn success_classes_partition_iterations() {
    let ft = FatTree::with_default_links(4);
    let cfg = paper_cfg().with_engine(PathEngine::HopBoundedDp);
    let mut tally = SuccessTally::default();
    let n = 50;
    for nmdb in scenario_stream(&ft.graph, &cfg, &ScenarioParams::default(), 77, n) {
        tally.record(classify_iteration(&nmdb, &cfg));
    }
    assert_eq!(
        tally.full + tally.partial + tally.none + tally.infeasible + tally.trivial,
        n,
        "every iteration lands in exactly one bucket"
    );
    let (f, p, o) = tally.percentages();
    assert!((f + p + o - 100.0).abs() < 1e-9 || tally.comparable() == 0);
}

#[test]
fn forecaster_predicts_overload_before_it_happens() {
    // "The objective is to detect the potentially overloaded nodes (Busy
    // node) while the node is not overloaded but efficiently utilized"
    // (§IV-A): drive the DUT with ramping traffic, feed its CPU series to
    // the trend forecaster, and check it projects the C_max crossing ahead
    // of time.
    use dust::telemetry::TrendForecaster;
    let (graph, dut) = testbed_topology();
    // ramp from idle to 20 % line rate over the run
    let traffic = TrafficModel::Ramp { from: 0.0, to: 0.2, duration_ms: 120_000 };
    let mut sim = Simulation::builder()
        .graph(graph)
        .nodes(dust::sim::scenarios::testbed_nodes(dut))
        .traffic(traffic)
        .dust(dust::sim::scenarios::testbed_dust_config())
        .dust_enabled(false) // observe the undisturbed ramp
        .duration_ms(120_000)
        .build()
        .expect("testbed knobs are consistent");
    let report = sim.run();
    let series = report.federation.store(dut).unwrap().series("device-cpu").unwrap();
    let c_max = 25.0; // the calm reading crosses ~25 % mid-ramp
    let mut forecaster = TrendForecaster::default_tuning();
    let mut predicted_at: Option<u64> = None;
    let mut crossed_at: Option<u64> = None;
    for p in series.points() {
        // skip the periodic aggregation-burst windows (30 s cadence, 2 s
        // long): STAT smoothing would do this in production
        if p.ts_ms % 30_000 < 2_000 {
            continue;
        }
        forecaster.observe(p.ts_ms, p.value);
        if crossed_at.is_none() && p.value >= c_max {
            crossed_at = Some(p.ts_ms);
        }
        if predicted_at.is_none() && p.ts_ms > 10_000 {
            if let Some(eta) = forecaster.ms_until(c_max) {
                if eta > 0 && eta < 200_000 {
                    predicted_at = Some(p.ts_ms);
                }
            }
        }
    }
    let predicted = predicted_at.expect("forecaster must see the ramp coming");
    let crossed = crossed_at.expect("the ramp must eventually cross");
    assert!(
        predicted + 5_000 < crossed,
        "prediction at {predicted} ms must lead the crossing at {crossed} ms"
    );
}
