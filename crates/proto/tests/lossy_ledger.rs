//! Seeded lossy-transport tests for the Manager/Client pair.
//!
//! A deterministic shuttle carries every message through a SplitMix64-
//! driven fault gate that drops and duplicates envelopes. The protocol's
//! retry/expiry machinery (registration retransmit, offer expiry with
//! backoff, Release retransmit, idempotent duplicate handling) must keep
//! the two ledgers convergent: after the network calms down, every
//! confirmed hosting on the Manager is hosted by exactly the right client
//! with exactly the right amount, and no unconfirmed offer outlives its
//! retry budget.

use dust_core::{DustConfig, SolverBackend};
use dust_proto::{Client, ClientMsg, Envelope, Manager, ManagerMsg};
use dust_topology::{topologies, Link, NodeId, SplitMix64};
use std::collections::BTreeMap;

const STEP_MS: u64 = 100;
const UPDATE_INTERVAL_MS: u64 = 1_000;
const KEEPALIVE_TIMEOUT_MS: u64 = 4_000;

/// Drop/duplicate gate. Delivery stays in-order (reordering is exercised
/// by the simulator's transport; here we isolate loss and duplication).
struct Gate {
    rng: SplitMix64,
    drop: f64,
    dup: f64,
}

impl Gate {
    /// 0, 1, or 2 copies of the message, decided deterministically.
    fn copies(&mut self) -> usize {
        if self.rng.gen_bool(self.drop) {
            0
        } else if self.rng.gen_bool(self.dup) {
            2
        } else {
            1
        }
    }
}

struct Harness {
    manager: Manager,
    clients: BTreeMap<NodeId, Client>,
    /// Per-client observed local load (constant per scenario).
    load: BTreeMap<NodeId, (f64, f64)>,
    gate: Gate,
}

impl Harness {
    fn new(seed: u64, drop: f64, dup: f64) -> Self {
        let n = 4usize;
        let g = topologies::star(n, Link::default());
        let manager = Manager::new(
            g,
            DustConfig::paper_defaults(),
            SolverBackend::Transportation,
            UPDATE_INTERVAL_MS,
            KEEPALIVE_TIMEOUT_MS,
        )
        .unwrap();
        let mut clients = BTreeMap::new();
        let mut load = BTreeMap::new();
        for i in 0..n as u32 {
            clients.insert(NodeId(i), Client::new(NodeId(i), true, 90.0));
        }
        // hub is Busy, spokes have headroom
        load.insert(NodeId(0), (92.0, 120.0));
        load.insert(NodeId(1), (25.0, 10.0));
        load.insert(NodeId(2), (30.0, 10.0));
        load.insert(NodeId(3), (35.0, 10.0));
        Harness { manager, clients, load, gate: Gate { rng: SplitMix64::new(seed), drop, dup } }
    }

    /// Pass a client→manager message through the gate and deliver it,
    /// shuttling any manager replies straight back (also gated).
    fn send_to_manager(&mut self, now: u64, msg: &ClientMsg) {
        for _ in 0..self.gate.copies() {
            let replies = self.manager.handle(now, msg);
            self.deliver_all(now, replies);
        }
    }

    fn deliver_all(&mut self, now: u64, envs: Vec<Envelope<ManagerMsg>>) {
        for env in envs {
            for _ in 0..self.gate.copies() {
                let reply =
                    self.clients.get_mut(&env.to).expect("known client").handle(now, &env.msg);
                if let Some(reply) = reply {
                    self.send_to_manager(now, &reply);
                }
            }
        }
    }

    /// One simulated step: clients tick (registration retransmit, STAT,
    /// keepalive), manager ticks (expiry, REP, reclaim, Release retries),
    /// and a placement round fires every update interval.
    fn step(&mut self, now: u64, faults_on: bool) {
        if !faults_on {
            self.gate.drop = 0.0;
            self.gate.dup = 0.0;
        }
        let nodes: Vec<NodeId> = self.clients.keys().copied().collect();
        for id in nodes {
            let (u, d) = self.load[&id];
            let c = self.clients.get_mut(&id).unwrap();
            c.observe(u, d);
            for msg in c.tick(now) {
                self.send_to_manager(now, &msg);
            }
        }
        let maintenance = self.manager.tick(now);
        self.deliver_all(now, maintenance);
        if now.is_multiple_of(UPDATE_INTERVAL_MS) && self.manager.busy_detected() {
            let (_, offers) = self.manager.run_placement(now);
            self.deliver_all(now, offers);
        }
    }

    fn run(&mut self, from_ms: u64, to_ms: u64, faults_on: bool) {
        let mut now = from_ms;
        while now <= to_ms {
            self.step(now, faults_on);
            now += STEP_MS;
        }
    }
}

/// Ledger convergence under loss + duplication: lossy phase, then a calm
/// settling phase, then the invariants must hold exactly.
#[test]
fn ledgers_converge_under_loss_and_duplication() {
    for &loss in &[0.05, 0.2, 0.4] {
        for seed in 0..12u64 {
            let mut h = Harness::new(seed * 7 + 1, loss, loss / 2.0);
            // registration kicks the whole thing off — possibly lost,
            // retransmitted by the client until the ACK lands
            let regs: Vec<(NodeId, ClientMsg)> =
                h.clients.iter_mut().map(|(id, c)| (*id, c.register(0))).collect();
            for (_, reg) in regs {
                h.send_to_manager(0, &reg);
            }
            h.run(STEP_MS, 30_000, true);
            // calm network: retries drain, offers confirm or die
            h.run(30_100, 60_000, false);

            let ctx = format!("loss {loss} seed {seed}");
            // 1. the protocol made progress despite the loss
            let confirmed: Vec<_> = h.manager.hostings().values().filter(|x| x.confirmed).collect();
            assert!(!confirmed.is_empty(), "{ctx}: no hosting ever confirmed");
            // 2. no unconfirmed offer survives the settling phase
            assert!(
                h.manager.hostings().values().all(|x| x.confirmed),
                "{ctx}: zombie unconfirmed hosting outlived its retry budget"
            );
            // 3. every confirmed hosting is mirrored exactly on its client
            for hosting in &confirmed {
                let client = &h.clients[&hosting.to];
                let found = client.hosted().find(|(_, w)| {
                    w.from == hosting.from && (w.amount - hosting.amount).abs() < 1e-9
                });
                assert!(
                    found.is_some(),
                    "{ctx}: manager believes {:?} hosts {:?} but the client ledger disagrees",
                    hosting.to,
                    hosting.from,
                );
            }
            // 4. no divergent entries: every client-side hosting either
            //    matches the manager's record for that request id exactly
            //    (same owner, same amount — duplicated offers never
            //    double-book) or refers to a request the manager has
            //    closed out (e.g. a destination falsely declared dead
            //    after a streak of lost keepalives, whose workload was
            //    re-homed by REP). Never a same-id mismatch.
            for (id, c) in &h.clients {
                for (req, w) in c.hosted() {
                    if let Some(x) = h.manager.hostings().get(req) {
                        assert_eq!(x.to, *id, "{ctx}: request {req:?} hosted by the wrong node");
                        assert_eq!(x.from, w.from, "{ctx}: owner mismatch for {req:?}");
                        assert!(
                            (x.amount - w.amount).abs() < 1e-9,
                            "{ctx}: amount diverged for {req:?}: {} vs {}",
                            x.amount,
                            w.amount
                        );
                    }
                }
            }
            // 5. everyone finished registration (retransmit worked)
            for (id, c) in &h.clients {
                assert_eq!(
                    c.phase(),
                    dust_proto::ClientPhase::Active,
                    "{ctx}: client {id:?} never completed registration"
                );
            }
        }
    }
}

/// Same-seed runs are bit-identical: the fault gate and both state
/// machines are fully deterministic.
#[test]
fn lossy_runs_are_deterministic() {
    let snapshot = |seed: u64| {
        let mut h = Harness::new(seed, 0.25, 0.1);
        let regs: Vec<(NodeId, ClientMsg)> =
            h.clients.iter_mut().map(|(id, c)| (*id, c.register(0))).collect();
        for (_, reg) in regs {
            h.send_to_manager(0, &reg);
        }
        h.run(STEP_MS, 20_000, true);
        let hostings: Vec<String> =
            h.manager.hostings().iter().map(|(r, x)| format!("{r:?}:{x:?}")).collect();
        let ledgers: Vec<String> =
            h.clients.values().map(|c| format!("{:.12}", c.hosted_amount())).collect();
        (hostings, ledgers, h.manager.offer_retries(), h.manager.offers_abandoned())
    };
    assert_eq!(snapshot(42), snapshot(42));
    assert_eq!(snapshot(7), snapshot(7));
}

/// Sanity at 100 % loss: nothing ever confirms, nothing panics, and the
/// manager abandons every offer instead of leaking it.
#[test]
fn total_blackout_leaks_nothing() {
    let mut h = Harness::new(3, 1.0, 0.0);
    let regs: Vec<(NodeId, ClientMsg)> =
        h.clients.iter_mut().map(|(id, c)| (*id, c.register(0))).collect();
    for (_, reg) in regs {
        h.send_to_manager(0, &reg);
    }
    h.run(STEP_MS, 20_000, true);
    assert!(h.manager.registry().is_empty(), "no registration can survive 100 % loss");
    assert!(h.manager.hostings().is_empty());
    for c in h.clients.values() {
        assert_eq!(c.phase(), dust_proto::ClientPhase::Registering);
        assert_eq!(c.hosted_amount(), 0.0);
    }
}
