//! Property tests for the protocol state machines: random message
//! interleavings must never violate the bookkeeping invariants the rest of
//! the system relies on.

use dust_core::{DustConfig, SolverBackend};
use dust_proto::{Client, ClientMsg, Manager, ManagerMsg, RequestId};
use dust_topology::{topologies, Link, NodeId};
use proptest::prelude::*;

/// Random actions to throw at a client.
#[derive(Debug, Clone)]
enum ClientAction {
    Observe(f64, f64),
    Request { id: u64, amount: f64 },
    Release { id: u64 },
    Rep { id: u64, amount: f64 },
    Tick(u64),
}

fn arb_client_action() -> impl Strategy<Value = ClientAction> {
    prop_oneof![
        (0.0f64..100.0, 0.0f64..500.0).prop_map(|(u, d)| ClientAction::Observe(u, d)),
        (0u64..20, 0.1f64..30.0).prop_map(|(id, amount)| ClientAction::Request { id, amount }),
        (0u64..20).prop_map(|id| ClientAction::Release { id }),
        (0u64..20, 0.1f64..10.0).prop_map(|(id, amount)| ClientAction::Rep { id, amount }),
        (1u64..5_000).prop_map(ClientAction::Tick),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the Manager sends in whatever order, the client's hosted
    /// ledger stays consistent: non-negative, only accepted requests are
    /// hosted, releases remove exactly their request, and STAT always
    /// reports local + hosted load.
    #[test]
    fn client_ledger_consistent(actions in proptest::collection::vec(arb_client_action(), 1..60)) {
        let mut c = Client::new(NodeId(0), true, 80.0);
        let _ = c.register();
        c.handle(0, &ManagerMsg::Ack { update_interval_ms: 100 });
        let mut now = 0u64;
        let mut expected: std::collections::BTreeMap<u64, f64> = Default::default();
        let mut last_observed = 0.0f64;
        for a in actions {
            match a {
                ClientAction::Observe(u, d) => {
                    c.observe(u, d);
                    last_observed = u;
                }
                ClientAction::Request { id, amount } => {
                    let reply = c.handle(now, &ManagerMsg::OffloadRequest {
                        request: RequestId(id),
                        from: NodeId(9),
                        amount,
                        data_mb: 1.0,
                        route: None,
                    });
                    match reply {
                        Some(ClientMsg::OffloadAck { accept, request, .. }) => {
                            prop_assert_eq!(request, RequestId(id));
                            if accept {
                                // acceptance implies the ceiling held
                                prop_assert!(last_observed + expected.values().sum::<f64>() + amount <= 80.0 + 1e-9);
                                expected.insert(id, amount);
                            }
                        }
                        other => prop_assert!(false, "request must be answered, got {other:?}"),
                    }
                }
                ClientAction::Release { id } => {
                    c.handle(now, &ManagerMsg::Release { request: RequestId(id) });
                    expected.remove(&id);
                }
                ClientAction::Rep { id, amount } => {
                    let reply = c.handle(now, &ManagerMsg::Rep {
                        request: RequestId(id),
                        failed: NodeId(7),
                        from: NodeId(9),
                        amount,
                    });
                    let accepted =
                        matches!(reply, Some(ClientMsg::OffloadAck { accept: true, .. }));
                    prop_assert!(accepted, "REP must be accepted unconditionally");
                    expected.insert(id, amount);
                }
                ClientAction::Tick(dt) => {
                    now += dt;
                    for m in c.tick(now) {
                        if let ClientMsg::Stat { utilization, .. } = m {
                            let want = last_observed + expected.values().sum::<f64>();
                            prop_assert!((utilization - want).abs() < 1e-9,
                                "STAT {utilization} != observed {last_observed} + hosted");
                        }
                    }
                }
            }
            let hosted: f64 = expected.values().sum();
            prop_assert!((c.hosted_amount() - hosted).abs() < 1e-9,
                "ledger mismatch: {} vs {}", c.hosted_amount(), hosted);
            prop_assert!(c.hosted_amount() >= 0.0);
        }
    }

    /// Manager invariants under random STAT streams and placement rounds:
    /// request ids never repeat, confirmed hostings always reference
    /// registered nodes, and snapshots clamp dirty inputs.
    #[test]
    fn manager_bookkeeping_sound(
        utils in proptest::collection::vec((0u32..5, 0.0f64..150.0), 1..40),
        rounds in 1usize..4,
    ) {
        let g = topologies::star(5, Link::default());
        let mut m = Manager::new(
            g,
            DustConfig::paper_defaults(),
            SolverBackend::Transportation,
            100,
            400,
        );
        for n in 0..5u32 {
            m.handle(0, &ClientMsg::OffloadCapable { node: NodeId(n), capable: true });
        }
        let mut now = 1u64;
        let mut seen_requests: std::collections::BTreeSet<RequestId> = Default::default();
        for (n, u) in utils {
            // deliberately dirty utilizations above 100 — snapshot must clamp
            m.handle(now, &ClientMsg::Stat { node: NodeId(n), utilization: u.min(100.0), data_mb: 10.0 });
            now += 1;
        }
        for _ in 0..rounds {
            let (placement, outs) = m.run_placement(now);
            let _ = placement;
            for env in &outs {
                if let ManagerMsg::OffloadRequest { request, from, amount, .. } = &env.msg {
                    prop_assert!(seen_requests.insert(*request), "request id reuse");
                    prop_assert!(*amount > 0.0);
                    prop_assert!(from.0 < 5 && env.to.0 < 5);
                    prop_assert_ne!(*from, env.to, "never offload to yourself");
                    // accept every request so hostings confirm
                    m.handle(now, &ClientMsg::OffloadAck {
                        node: env.to,
                        request: *request,
                        accept: true,
                    });
                }
            }
            now += 10;
        }
        for h in m.hostings().values() {
            prop_assert!(m.registry().contains_key(&h.to));
            prop_assert!(m.registry().contains_key(&h.from));
            prop_assert!(h.amount > 0.0);
        }
        // snapshot is always a valid NMDB
        let db = m.snapshot();
        for s in &db.states {
            prop_assert!((0.0..=100.0).contains(&s.utilization));
            prop_assert!(s.data_mb >= 0.0);
        }
    }

    /// Keepalive timeouts never lose workloads: every confirmed hosting is
    /// either still hosted, re-homed by a REP, or recorded as orphaned.
    #[test]
    fn failures_conserve_hostings(fail_first in any::<bool>(), silence_ms in 500u64..5_000) {
        let g = topologies::line(3, Link::default());
        let mut m = Manager::new(
            g,
            DustConfig::paper_defaults(),
            SolverBackend::Transportation,
            100,
            400,
        );
        for n in 0..3u32 {
            m.handle(0, &ClientMsg::OffloadCapable { node: NodeId(n), capable: true });
        }
        m.handle(1, &ClientMsg::Stat { node: NodeId(0), utilization: 90.0, data_mb: 10.0 });
        m.handle(1, &ClientMsg::Stat { node: NodeId(1), utilization: 20.0, data_mb: 10.0 });
        m.handle(1, &ClientMsg::Stat { node: NodeId(2), utilization: 10.0, data_mb: 10.0 });
        let (_, outs) = m.run_placement(2);
        let before: usize = outs.len();
        for env in &outs {
            if let ManagerMsg::OffloadRequest { request, .. } = &env.msg {
                m.handle(3, &ClientMsg::OffloadAck { node: env.to, request: *request, accept: true });
            }
        }
        let confirmed = m.hostings().len();
        prop_assert_eq!(confirmed, before);

        // one destination goes silent; keep the other's records fresh
        let silent = if fail_first { NodeId(1) } else { NodeId(2) };
        let alive = if fail_first { NodeId(2) } else { NodeId(1) };
        let t = 3 + silence_ms;
        m.handle(t, &ClientMsg::Stat { node: alive, utilization: 10.0, data_mb: 10.0 });
        m.handle(t, &ClientMsg::Keepalive { node: alive });
        let _ = silent;
        let outs = m.tick(t + 1);
        // conservation: hostings + orphans == confirmed arrangements
        let after = m.hostings().len() + m.orphaned().len();
        prop_assert_eq!(after, confirmed, "arrangements lost or duplicated");
        // REPs (if any) went to the alive node
        for env in outs {
            if let ManagerMsg::Rep { .. } = env.msg {
                prop_assert_eq!(env.to, alive);
            }
        }
    }
}

use dust_proto::{decode_client, decode_manager, encode_client, encode_manager};
use dust_topology::{EdgeId, Path};

fn arb_route() -> impl Strategy<Value = Option<Path>> {
    prop_oneof![
        1 => Just(None),
        3 => proptest::collection::vec(0u32..10_000, 2..12).prop_map(|nodes| {
            let edges = (0..nodes.len() - 1).map(|i| EdgeId(i as u32)).collect();
            Some(Path { nodes: nodes.into_iter().map(NodeId).collect(), edges })
        }),
    ]
}

fn arb_client_msg() -> impl Strategy<Value = ClientMsg> {
    prop_oneof![
        (any::<u32>(), any::<bool>())
            .prop_map(|(n, c)| ClientMsg::OffloadCapable { node: NodeId(n), capable: c }),
        (any::<u32>(), any::<f64>(), any::<f64>()).prop_map(|(n, u, d)| ClientMsg::Stat {
            node: NodeId(n),
            utilization: u,
            data_mb: d
        }),
        (any::<u32>(), any::<u64>(), any::<bool>()).prop_map(|(n, r, a)| ClientMsg::OffloadAck {
            node: NodeId(n),
            request: RequestId(r),
            accept: a
        }),
        any::<u32>().prop_map(|n| ClientMsg::Keepalive { node: NodeId(n) }),
    ]
}

fn arb_manager_msg() -> impl Strategy<Value = ManagerMsg> {
    prop_oneof![
        any::<u64>().prop_map(|i| ManagerMsg::Ack { update_interval_ms: i }),
        (any::<u64>(), any::<u32>(), any::<f64>(), any::<f64>(), arb_route()).prop_map(
            |(r, f, a, d, route)| ManagerMsg::OffloadRequest {
                request: RequestId(r),
                from: NodeId(f),
                amount: a,
                data_mb: d,
                route,
            }
        ),
        (any::<u64>(), any::<u32>(), any::<u32>(), any::<f64>()).prop_map(|(r, x, f, a)| {
            ManagerMsg::Rep { request: RequestId(r), failed: NodeId(x), from: NodeId(f), amount: a }
        }),
        any::<u64>().prop_map(|r| ManagerMsg::Release { request: RequestId(r) }),
    ]
}

/// Bit-exact float comparison for message equality (NaN-safe).
fn msgs_bit_equal_c(a: &ClientMsg, b: &ClientMsg) -> bool {
    format!("{a:?}").replace("NaN", "nan") == format!("{b:?}").replace("NaN", "nan")
        || encode_client(a) == encode_client(b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every client message round-trips byte-exactly through the codec.
    #[test]
    fn codec_client_roundtrip(m in arb_client_msg()) {
        let bytes = encode_client(&m);
        let back = decode_client(&bytes).expect("decode");
        prop_assert!(msgs_bit_equal_c(&m, &back), "{m:?} vs {back:?}");
        // re-encoding is stable
        prop_assert_eq!(encode_client(&back), bytes);
    }

    /// Every manager message round-trips through the codec.
    #[test]
    fn codec_manager_roundtrip(m in arb_manager_msg()) {
        let bytes = encode_manager(&m);
        let back = decode_manager(&bytes).expect("decode");
        prop_assert_eq!(encode_manager(&back), bytes, "re-encode mismatch for {:?}", m);
    }

    /// Arbitrary byte soup never panics the decoders — they return errors.
    #[test]
    fn codec_decoders_are_total(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = decode_client(&bytes);
        let _ = decode_manager(&bytes);
    }

    /// Truncating a valid frame anywhere is always detected.
    #[test]
    fn codec_detects_truncation(m in arb_manager_msg(), frac in 0.0f64..1.0) {
        let bytes = encode_manager(&m);
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(decode_manager(&bytes[..cut]).is_err());
        }
    }
}
