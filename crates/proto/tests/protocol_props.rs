//! Seeded random-interleaving tests for the protocol state machines:
//! random message sequences must never violate the bookkeeping invariants
//! the rest of the system relies on.

use dust_core::{DustConfig, SolverBackend};
use dust_proto::{Client, ClientMsg, Manager, ManagerMsg, RequestId};
use dust_topology::{topologies, Link, NodeId, SplitMix64};

/// Random actions to throw at a client.
#[derive(Debug, Clone)]
enum ClientAction {
    Observe(f64, f64),
    Request { id: u64, amount: f64 },
    Release { id: u64 },
    Rep { id: u64, amount: f64 },
    Tick(u64),
}

fn arb_client_action(rng: &mut SplitMix64) -> ClientAction {
    match rng.below(5) {
        0 => ClientAction::Observe(rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 500.0)),
        1 => ClientAction::Request { id: rng.below(20), amount: rng.range_f64(0.1, 30.0) },
        2 => ClientAction::Release { id: rng.below(20) },
        3 => ClientAction::Rep { id: rng.below(20), amount: rng.range_f64(0.1, 10.0) },
        _ => ClientAction::Tick(rng.range_u64(1, 5_000)),
    }
}

/// Whatever the Manager sends in whatever order — including duplicates
/// and late retransmits — the client's hosted ledger stays consistent:
/// non-negative, only accepted requests are hosted, releases remove
/// exactly their request (and tombstone it against late duplicates), and
/// STAT always reports local + hosted load.
#[test]
fn client_ledger_consistent() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(seed);
        let actions: Vec<ClientAction> =
            (0..rng.range_u64(1, 60)).map(|_| arb_client_action(&mut rng)).collect();
        let mut c = Client::new(NodeId(0), true, 80.0);
        let _ = c.register(0);
        c.handle(0, &ManagerMsg::Ack { update_interval_ms: 100 });
        let mut now = 0u64;
        let mut expected: std::collections::BTreeMap<u64, f64> = Default::default();
        let mut released: std::collections::BTreeSet<u64> = Default::default();
        let mut last_observed = 0.0f64;
        for a in actions {
            match a {
                ClientAction::Observe(u, d) => {
                    c.observe(u, d);
                    last_observed = u;
                }
                ClientAction::Request { id, amount } => {
                    let dup = expected.contains_key(&id);
                    let reply = c.handle(
                        now,
                        &ManagerMsg::OffloadRequest {
                            request: RequestId(id),
                            from: NodeId(9),
                            amount,
                            data_mb: 1.0,
                            route: None,
                        },
                    );
                    match reply {
                        Some(ClientMsg::OffloadAck { accept, request, .. }) => {
                            assert_eq!(request, RequestId(id), "seed {seed}");
                            if released.contains(&id) {
                                assert!(!accept, "seed {seed}: released id must stay refused");
                            } else if dup {
                                // a duplicated offer re-confirms without
                                // double-booking: the ledger keeps the
                                // originally accepted amount
                                assert!(accept, "seed {seed}: duplicate must re-confirm");
                            } else if accept {
                                // acceptance implies the ceiling held
                                assert!(
                                    last_observed + expected.values().sum::<f64>() + amount
                                        <= 80.0 + 1e-9,
                                    "seed {seed}"
                                );
                                expected.insert(id, amount);
                            }
                        }
                        other => panic!("seed {seed}: request must be answered, got {other:?}"),
                    }
                }
                ClientAction::Release { id } => {
                    c.handle(now, &ManagerMsg::Release { request: RequestId(id) });
                    expected.remove(&id);
                    released.insert(id);
                }
                ClientAction::Rep { id, amount } => {
                    let reply = c.handle(
                        now,
                        &ManagerMsg::Rep {
                            request: RequestId(id),
                            failed: NodeId(7),
                            from: NodeId(9),
                            amount,
                            data_mb: 1.0,
                            route: None,
                        },
                    );
                    if released.contains(&id) {
                        assert!(
                            matches!(reply, Some(ClientMsg::OffloadAck { accept: false, .. })),
                            "seed {seed}: released id must stay refused"
                        );
                    } else {
                        assert!(
                            matches!(reply, Some(ClientMsg::OffloadAck { accept: true, .. })),
                            "seed {seed}: REP must be accepted unconditionally"
                        );
                        // a duplicated REP keeps the original amount
                        expected.entry(id).or_insert(amount);
                    }
                }
                ClientAction::Tick(dt) => {
                    now += dt;
                    for m in c.tick(now) {
                        if let ClientMsg::Stat { utilization, .. } = m {
                            let want = last_observed + expected.values().sum::<f64>();
                            assert!(
                                (utilization - want).abs() < 1e-9,
                                "seed {seed}: STAT {utilization} != observed {last_observed} + hosted"
                            );
                        }
                    }
                }
            }
            let hosted: f64 = expected.values().sum();
            assert!(
                (c.hosted_amount() - hosted).abs() < 1e-9,
                "seed {seed}: ledger mismatch: {} vs {}",
                c.hosted_amount(),
                hosted
            );
            assert!(c.hosted_amount() >= 0.0, "seed {seed}");
        }
    }
}

/// Manager invariants under random STAT streams and placement rounds:
/// request ids never repeat, confirmed hostings always reference
/// registered nodes, and snapshots clamp dirty inputs.
#[test]
fn manager_bookkeeping_sound() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(seed);
        let utils: Vec<(u32, f64)> = (0..rng.range_u64(1, 40))
            .map(|_| (rng.below(5) as u32, rng.range_f64(0.0, 150.0)))
            .collect();
        let rounds = rng.range_u64(1, 4) as usize;
        let g = topologies::star(5, Link::default());
        let mut m =
            Manager::new(g, DustConfig::paper_defaults(), SolverBackend::Transportation, 100, 400)
                .unwrap();
        for n in 0..5u32 {
            m.handle(0, &ClientMsg::OffloadCapable { node: NodeId(n), capable: true });
        }
        let mut now = 1u64;
        let mut seen_requests: std::collections::BTreeSet<RequestId> = Default::default();
        for (n, u) in utils {
            // deliberately dirty utilizations above 100 — snapshot must clamp
            m.handle(
                now,
                &ClientMsg::Stat { node: NodeId(n), utilization: u.min(100.0), data_mb: 10.0 },
            );
            now += 1;
        }
        for _ in 0..rounds {
            let (placement, outs) = m.run_placement(now);
            let _ = placement;
            for env in &outs {
                if let ManagerMsg::OffloadRequest { request, from, amount, .. } = &env.msg {
                    assert!(seen_requests.insert(*request), "seed {seed}: request id reuse");
                    assert!(*amount > 0.0, "seed {seed}");
                    assert!(from.0 < 5 && env.to.0 < 5, "seed {seed}");
                    assert_ne!(*from, env.to, "seed {seed}: never offload to yourself");
                    // accept every request so hostings confirm
                    m.handle(
                        now,
                        &ClientMsg::OffloadAck { node: env.to, request: *request, accept: true },
                    );
                }
            }
            now += 10;
        }
        for h in m.hostings().values() {
            assert!(m.registry().contains_key(&h.to), "seed {seed}");
            assert!(m.registry().contains_key(&h.from), "seed {seed}");
            assert!(h.amount > 0.0, "seed {seed}");
        }
        // snapshot is always a valid NMDB
        let db = m.snapshot();
        for s in &db.states {
            assert!((0.0..=100.0).contains(&s.utilization), "seed {seed}");
            assert!(s.data_mb >= 0.0, "seed {seed}");
        }
    }
}

/// Keepalive timeouts never lose workloads: every confirmed hosting is
/// either still hosted, re-homed by a REP, or recorded as orphaned.
#[test]
fn failures_conserve_hostings() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        let fail_first = rng.gen_bool(0.5);
        let silence_ms = rng.range_u64(500, 5_000);
        let g = topologies::line(3, Link::default());
        let mut m =
            Manager::new(g, DustConfig::paper_defaults(), SolverBackend::Transportation, 100, 400)
                .unwrap();
        for n in 0..3u32 {
            m.handle(0, &ClientMsg::OffloadCapable { node: NodeId(n), capable: true });
        }
        m.handle(1, &ClientMsg::Stat { node: NodeId(0), utilization: 90.0, data_mb: 10.0 });
        m.handle(1, &ClientMsg::Stat { node: NodeId(1), utilization: 20.0, data_mb: 10.0 });
        m.handle(1, &ClientMsg::Stat { node: NodeId(2), utilization: 10.0, data_mb: 10.0 });
        let (_, outs) = m.run_placement(2);
        let before: usize = outs.len();
        for env in &outs {
            if let ManagerMsg::OffloadRequest { request, .. } = &env.msg {
                m.handle(
                    3,
                    &ClientMsg::OffloadAck { node: env.to, request: *request, accept: true },
                );
            }
        }
        let confirmed = m.hostings().len();
        assert_eq!(confirmed, before, "seed {seed}");

        // one destination goes silent; keep the other's records fresh
        let silent = if fail_first { NodeId(1) } else { NodeId(2) };
        let alive = if fail_first { NodeId(2) } else { NodeId(1) };
        let t = 3 + silence_ms;
        m.handle(t, &ClientMsg::Stat { node: alive, utilization: 10.0, data_mb: 10.0 });
        m.handle(t, &ClientMsg::Keepalive { node: alive });
        let _ = silent;
        let outs = m.tick(t + 1);
        // conservation: hostings + orphans == confirmed arrangements
        let after = m.hostings().len() + m.orphaned().len();
        assert_eq!(after, confirmed, "seed {seed}: arrangements lost or duplicated");
        // REPs (if any) went to the alive node
        for env in outs {
            if let ManagerMsg::Rep { .. } = env.msg {
                assert_eq!(env.to, alive, "seed {seed}");
            }
        }
    }
}

use dust_proto::{decode_client, decode_manager, encode_client, encode_manager};
use dust_topology::{EdgeId, Path};

/// A possibly-absent random route (None on ~25 % of draws).
fn arb_route(rng: &mut SplitMix64) -> Option<Path> {
    if rng.below(4) == 0 {
        return None;
    }
    let n = rng.range_u64(2, 12) as usize;
    let nodes: Vec<NodeId> = (0..n).map(|_| NodeId(rng.below(10_000) as u32)).collect();
    let edges = (0..n - 1).map(|i| EdgeId(i as u32)).collect();
    Some(Path { nodes, edges })
}

/// A raw 64-bit pattern reinterpreted as f64: exercises NaNs, infinities,
/// subnormals, and negative zero in the codecs.
fn arb_f64_bits(rng: &mut SplitMix64) -> f64 {
    f64::from_bits(rng.next_u64())
}

fn arb_client_msg(rng: &mut SplitMix64) -> ClientMsg {
    match rng.below(4) {
        0 => ClientMsg::OffloadCapable {
            node: NodeId(rng.next_u64() as u32),
            capable: rng.gen_bool(0.5),
        },
        1 => ClientMsg::Stat {
            node: NodeId(rng.next_u64() as u32),
            utilization: arb_f64_bits(rng),
            data_mb: arb_f64_bits(rng),
        },
        2 => ClientMsg::OffloadAck {
            node: NodeId(rng.next_u64() as u32),
            request: RequestId(rng.next_u64()),
            accept: rng.gen_bool(0.5),
        },
        _ => ClientMsg::Keepalive { node: NodeId(rng.next_u64() as u32) },
    }
}

fn arb_manager_msg(rng: &mut SplitMix64) -> ManagerMsg {
    match rng.below(4) {
        0 => ManagerMsg::Ack { update_interval_ms: rng.next_u64() },
        1 => ManagerMsg::OffloadRequest {
            request: RequestId(rng.next_u64()),
            from: NodeId(rng.next_u64() as u32),
            amount: arb_f64_bits(rng),
            data_mb: arb_f64_bits(rng),
            route: arb_route(rng),
        },
        2 => ManagerMsg::Rep {
            request: RequestId(rng.next_u64()),
            failed: NodeId(rng.next_u64() as u32),
            from: NodeId(rng.next_u64() as u32),
            amount: arb_f64_bits(rng),
            data_mb: arb_f64_bits(rng),
            route: arb_route(rng),
        },
        _ => ManagerMsg::Release { request: RequestId(rng.next_u64()) },
    }
}

/// Bit-exact float comparison for message equality (NaN-safe).
fn msgs_bit_equal_c(a: &ClientMsg, b: &ClientMsg) -> bool {
    format!("{a:?}").replace("NaN", "nan") == format!("{b:?}").replace("NaN", "nan")
        || encode_client(a) == encode_client(b)
}

/// Every client message round-trips byte-exactly through the codec.
#[test]
fn codec_client_roundtrip() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(seed);
        let m = arb_client_msg(&mut rng);
        let bytes = encode_client(&m);
        let back = decode_client(&bytes).expect("decode");
        assert!(msgs_bit_equal_c(&m, &back), "seed {seed}: {m:?} vs {back:?}");
        // re-encoding is stable
        assert_eq!(encode_client(&back), bytes, "seed {seed}");
    }
}

/// Every manager message round-trips through the codec.
#[test]
fn codec_manager_roundtrip() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(seed);
        let m = arb_manager_msg(&mut rng);
        let bytes = encode_manager(&m);
        let back = decode_manager(&bytes).expect("decode");
        assert_eq!(encode_manager(&back), bytes, "seed {seed}: re-encode mismatch for {m:?}");
    }
}

/// Arbitrary byte soup never panics the decoders — they return errors.
#[test]
fn codec_decoders_are_total() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(seed);
        let len = rng.below(200) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = decode_client(&bytes);
        let _ = decode_manager(&bytes);
    }
}

/// Truncating a valid frame anywhere is always detected.
#[test]
fn codec_detects_truncation() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(seed);
        let m = arb_manager_msg(&mut rng);
        let bytes = encode_manager(&m);
        let cut = ((bytes.len() as f64) * rng.next_f64()) as usize;
        if cut < bytes.len() {
            assert!(decode_manager(&bytes[..cut]).is_err(), "seed {seed} cut {cut}");
        }
    }
}
