//! Seeded corrupt-frame fuzzing: the decode and message paths of
//! dust-proto must be total. Arbitrary byte mutations of valid frames may
//! fail to decode — but they must never panic, and whatever *does* decode
//! must pass through a Manager and a Client without panicking or
//! corrupting their ledgers.

use dust_core::{DustConfig, SolverBackend};
use dust_proto::{
    decode_client, decode_manager, encode_client, encode_manager, Client, ClientMsg, Manager,
    ManagerMsg, RequestId,
};
use dust_topology::{topologies, EdgeId, Link, NodeId, Path, SplitMix64};

fn sample_route() -> Path {
    Path { nodes: vec![NodeId(0), NodeId(7), NodeId(300)], edges: vec![EdgeId(2), EdgeId(9000)] }
}

/// One valid frame of every client message kind.
fn client_corpus() -> Vec<Vec<u8>> {
    [
        ClientMsg::OffloadCapable { node: NodeId(0), capable: true },
        ClientMsg::OffloadCapable { node: NodeId(4_000_000), capable: false },
        ClientMsg::Stat { node: NodeId(3), utilization: 82.25, data_mb: 120.0 },
        ClientMsg::OffloadAck { node: NodeId(9), request: RequestId(u64::MAX), accept: true },
        ClientMsg::Keepalive { node: NodeId(77) },
    ]
    .iter()
    .map(encode_client)
    .collect()
}

/// One valid frame of every manager message kind.
fn manager_corpus() -> Vec<Vec<u8>> {
    [
        ManagerMsg::Ack { update_interval_ms: 60_000 },
        ManagerMsg::OffloadRequest {
            request: RequestId(5),
            from: NodeId(1),
            amount: 12.5,
            data_mb: 150.0,
            route: Some(sample_route()),
        },
        ManagerMsg::Rep {
            request: RequestId(7),
            failed: NodeId(4),
            from: NodeId(1),
            amount: 3.0,
            data_mb: 42.5,
            route: None,
        },
        ManagerMsg::Release { request: RequestId(8) },
    ]
    .iter()
    .map(encode_manager)
    .collect()
}

/// Mutate a valid frame: flip bits, truncate, extend, or splice, all
/// driven by the seeded generator so every failure is reproducible.
fn mutate(frame: &[u8], rng: &mut SplitMix64) -> Vec<u8> {
    let mut bytes = frame.to_vec();
    match rng.below(4) {
        0 => {
            // flip 1–4 random bits
            for _ in 0..rng.range_u64(1, 5) {
                if bytes.is_empty() {
                    break;
                }
                let i = rng.below(bytes.len() as u64) as usize;
                bytes[i] ^= 1 << rng.below(8);
            }
        }
        1 => {
            // truncate to a random prefix
            let keep = rng.below(bytes.len() as u64 + 1) as usize;
            bytes.truncate(keep);
        }
        2 => {
            // append random garbage
            for _ in 0..rng.range_u64(1, 9) {
                bytes.push(rng.below(256) as u8);
            }
        }
        _ => {
            // overwrite a random span with random bytes
            if !bytes.is_empty() {
                let start = rng.below(bytes.len() as u64) as usize;
                let end = (start + rng.range_u64(1, 9) as usize).min(bytes.len());
                for b in &mut bytes[start..end] {
                    *b = rng.below(256) as u8;
                }
            }
        }
    }
    bytes
}

/// Decoding any mutation of any valid frame returns `Ok` or `Err` — it
/// never panics — and re-encoding whatever decoded round-trips.
#[test]
fn decoding_corrupt_frames_never_panics() {
    let clients = client_corpus();
    let managers = manager_corpus();
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..200 {
            let frame = &clients[rng.below(clients.len() as u64) as usize];
            let corrupt = mutate(frame, &mut rng);
            if let Ok(msg) = decode_client(&corrupt) {
                assert_eq!(decode_client(&encode_client(&msg)), Ok(msg), "seed {seed}");
            }
            let frame = &managers[rng.below(managers.len() as u64) as usize];
            let corrupt = mutate(frame, &mut rng);
            if let Ok(msg) = decode_manager(&corrupt) {
                assert_eq!(decode_manager(&encode_manager(&msg)), Ok(msg.clone()), "seed {seed}");
            }
        }
    }
}

/// Messages that survive decoding — including ones carrying hostile
/// payloads like NaN utilizations or absurd node ids — must pass through
/// the Manager's message path without panicking, and every snapshot it
/// takes must still be a valid NMDB.
#[test]
fn manager_survives_decoded_garbage() {
    let corpus = client_corpus();
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(seed);
        let g = topologies::star(4, Link::default());
        let mut m =
            Manager::new(g, DustConfig::paper_defaults(), SolverBackend::Transportation, 100, 400)
                .unwrap();
        let mut now = 0u64;
        for _ in 0..300 {
            let frame = &corpus[rng.below(corpus.len() as u64) as usize];
            let corrupt = mutate(frame, &mut rng);
            if let Ok(msg) = decode_client(&corrupt) {
                let _ = m.handle(now, &msg);
            }
            now += rng.range_u64(1, 50);
            let _ = m.tick(now);
            if rng.gen_bool(0.1) {
                let _ = m.run_placement(now);
            }
            let db = m.snapshot();
            for s in &db.states {
                assert!(
                    (0.0..=100.0).contains(&s.utilization),
                    "seed {seed}: utilization {} escaped the clamp",
                    s.utilization
                );
                assert!(s.data_mb >= 0.0, "seed {seed}: negative data volume");
            }
        }
    }
}

/// The NaN regression pinned down: a STAT whose float bits decode to NaN
/// must leave the node idle and non-offloading instead of panicking the
/// Manager's snapshot.
#[test]
fn nan_stat_never_panics_the_manager() {
    let g = topologies::line(2, Link::default());
    let mut m =
        Manager::new(g, DustConfig::paper_defaults(), SolverBackend::Transportation, 100, 400)
            .unwrap();
    m.handle(0, &ClientMsg::OffloadCapable { node: NodeId(0), capable: true });
    for (u, d) in
        [(f64::NAN, 10.0), (10.0, f64::NAN), (f64::INFINITY, 10.0), (10.0, f64::NEG_INFINITY)]
    {
        let frame = encode_client(&ClientMsg::Stat { node: NodeId(0), utilization: u, data_mb: d });
        let msg = decode_client(&frame).expect("the codec preserves float bits");
        m.handle(1, &msg);
        let db = m.snapshot();
        let s = db.state(NodeId(0));
        assert!((0.0..=100.0).contains(&s.utilization), "u={u} d={d}");
        assert!(s.data_mb >= 0.0, "u={u} d={d}");
        assert!(!s.offload_capable, "a node with unreadable stats must not host");
    }
}

/// Clients survive decoded garbage from a hostile or corrupted Manager
/// stream the same way.
#[test]
fn client_survives_decoded_garbage() {
    let corpus = manager_corpus();
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(seed);
        let mut c = Client::new(NodeId(1), true, 80.0);
        let _ = c.register(0);
        let mut now = 0u64;
        for _ in 0..300 {
            let frame = &corpus[rng.below(corpus.len() as u64) as usize];
            let corrupt = mutate(frame, &mut rng);
            if let Ok(msg) = decode_manager(&corrupt) {
                let _ = c.handle(now, &msg);
            }
            now += rng.range_u64(1, 50);
            let _ = c.tick(now);
            assert!(c.hosted_amount() >= 0.0, "seed {seed}");
        }
    }
}
