//! Trace-based protocol tests under loss.
//!
//! The same deterministic loss shuttle as `lossy_ledger.rs`, but with a
//! shared trace recorder attached to the Manager and every Client. The
//! assertions run against the *event log* rather than the final ledgers,
//! so they catch transient misbehaviour that quiesces away before the end
//! of a run:
//!
//! * a request released at a client (tombstoned) is never re-accepted —
//!   late duplicate offers cannot double-book capacity;
//! * the Manager only abandons an offer after burning its entire retry
//!   budget — every `Abandon` is preceded by exactly
//!   `MAX_OFFER_ATTEMPTS - 1` retransmissions of that request;
//! * a request is confirmed at most once, no matter how many duplicate
//!   ACKs the gate injects.

use dust_core::{DustConfig, SolverBackend};
use dust_obs::{ObsHandle, Trace, TraceAssert, TraceEvent};
use dust_proto::{Client, ClientMsg, Envelope, Manager, ManagerMsg};
use dust_topology::{topologies, Link, NodeId, SplitMix64};
use std::collections::BTreeMap;

const STEP_MS: u64 = 100;
const UPDATE_INTERVAL_MS: u64 = 1_000;
const KEEPALIVE_TIMEOUT_MS: u64 = 4_000;

/// Offer transmissions before the Manager gives up (mirrors
/// `manager::MAX_OFFER_ATTEMPTS`); an `Abandon` therefore implies exactly
/// `MAX_OFFER_ATTEMPTS - 1` retransmits of that request beforehand.
const MAX_OFFER_ATTEMPTS: usize = 5;

struct Gate {
    rng: SplitMix64,
    drop: f64,
    dup: f64,
}

impl Gate {
    fn copies(&mut self) -> usize {
        if self.rng.gen_bool(self.drop) {
            0
        } else if self.rng.gen_bool(self.dup) {
            2
        } else {
            1
        }
    }
}

struct Harness {
    manager: Manager,
    clients: BTreeMap<NodeId, Client>,
    load: BTreeMap<NodeId, (f64, f64)>,
    gate: Gate,
    obs: ObsHandle,
}

impl Harness {
    fn new(seed: u64, drop: f64, dup: f64) -> Self {
        let n = 4usize;
        let g = topologies::star(n, Link::default());
        let obs = ObsHandle::recording(seed);
        // A short offer timeout squeezes the full exponential-backoff
        // ladder (base·{1,2,4,8,8} ≈ 11.5 s) inside the lossy phase so
        // heavy-loss runs actually reach Abandon.
        let mut manager = Manager::new(
            g,
            DustConfig::paper_defaults(),
            SolverBackend::Transportation,
            UPDATE_INTERVAL_MS,
            KEEPALIVE_TIMEOUT_MS,
        )
        .unwrap()
        .with_offer_timeout(500)
        .unwrap();
        manager.set_obs(obs.clone());
        let mut clients = BTreeMap::new();
        let mut load = BTreeMap::new();
        for i in 0..n as u32 {
            let mut c = Client::new(NodeId(i), true, 90.0);
            c.set_obs(obs.clone());
            clients.insert(NodeId(i), c);
        }
        load.insert(NodeId(0), (92.0, 120.0));
        load.insert(NodeId(1), (25.0, 10.0));
        load.insert(NodeId(2), (30.0, 10.0));
        load.insert(NodeId(3), (35.0, 10.0));
        Harness {
            manager,
            clients,
            load,
            gate: Gate { rng: SplitMix64::new(seed), drop, dup },
            obs,
        }
    }

    fn send_to_manager(&mut self, now: u64, msg: &ClientMsg) {
        for _ in 0..self.gate.copies() {
            let replies = self.manager.handle(now, msg);
            self.deliver_all(now, replies);
        }
    }

    fn deliver_all(&mut self, now: u64, envs: Vec<Envelope<ManagerMsg>>) {
        for env in envs {
            for _ in 0..self.gate.copies() {
                let reply =
                    self.clients.get_mut(&env.to).expect("known client").handle(now, &env.msg);
                if let Some(reply) = reply {
                    self.send_to_manager(now, &reply);
                }
            }
        }
    }

    fn step(&mut self, now: u64, faults_on: bool) {
        if !faults_on {
            self.gate.drop = 0.0;
            self.gate.dup = 0.0;
        }
        self.obs.set_now(now);
        let nodes: Vec<NodeId> = self.clients.keys().copied().collect();
        for id in nodes {
            let (u, d) = self.load[&id];
            let c = self.clients.get_mut(&id).unwrap();
            c.observe(u, d);
            for msg in c.tick(now) {
                self.send_to_manager(now, &msg);
            }
        }
        let maintenance = self.manager.tick(now);
        self.deliver_all(now, maintenance);
        if now.is_multiple_of(UPDATE_INTERVAL_MS) && self.manager.busy_detected() {
            let (_, offers) = self.manager.run_placement(now);
            self.deliver_all(now, offers);
        }
    }

    /// Register everyone at t=0, then run `[STEP_MS, to_ms]` with faults
    /// on, then a calm settling phase of equal length. Returns the trace.
    fn run_to(&mut self, to_ms: u64) -> Trace {
        let regs: Vec<ClientMsg> = self.clients.values_mut().map(|c| c.register(0)).collect();
        for reg in regs {
            self.send_to_manager(0, &reg);
        }
        let mut now = STEP_MS;
        while now <= to_ms {
            self.step(now, true);
            now += STEP_MS;
        }
        while now <= 2 * to_ms {
            self.step(now, false);
            now += STEP_MS;
        }
        self.obs.trace_snapshot().expect("recording handle")
    }
}

/// Tombstone safety at 20 % loss: once a client has released a request
/// (`ClientReleased`), no later `ClientAccept` may carry the same id —
/// a late duplicate of the original offer must hit the tombstone and be
/// refused, never re-book capacity.
#[test]
fn no_double_booking_after_release_tombstone() {
    for seed in 0..12u64 {
        let mut h = Harness::new(seed * 13 + 5, 0.2, 0.1);
        let trace = h.run_to(30_000);
        let t = TraceAssert::new(&trace);
        t.expect("ClientAccept").forbid_after(
            "re-accept of a released request",
            |a| matches!(a.event, TraceEvent::ClientReleased { .. }),
            |a, b| {
                matches!(b.event, TraceEvent::ClientAccept { .. })
                    && a.event.request() == b.event.request()
            },
        );
    }
}

/// A request is confirmed at most once, however many duplicate ACKs the
/// gate injects: duplicate confirmations land on the idempotent path and
/// must not re-emit `OfferAccepted` (or `ClientAccept`).
#[test]
fn duplicate_acks_confirm_at_most_once() {
    for seed in 0..12u64 {
        let mut h = Harness::new(seed * 3 + 2, 0.2, 0.3);
        let trace = h.run_to(30_000);
        let t = TraceAssert::new(&trace);
        let requests: std::collections::BTreeSet<u64> =
            t.entries().iter().filter_map(|e| e.event.request()).collect();
        for req in requests {
            for kind in ["OfferAccepted", "ClientAccept"] {
                let n = t.count_where(|e| e.event.kind() == kind && e.event.request() == Some(req));
                assert!(n <= 1, "seed {seed}: request {req} saw {n} {kind} events");
            }
        }
    }
}

/// The Manager never gives up early: every `Abandon` must be preceded by
/// exactly `MAX_OFFER_ATTEMPTS - 1` retransmissions of that request, with
/// attempt numbers `2..=MAX_OFFER_ATTEMPTS`. Heavy loss (60 %) makes
/// abandonment likely; the assertion must hold for every occurrence.
#[test]
fn abandon_only_after_full_retry_budget() {
    let mut abandons_seen = 0usize;
    for seed in 0..12u64 {
        let mut h = Harness::new(seed * 11 + 3, 0.6, 0.1);
        let trace = h.run_to(30_000);
        let t = TraceAssert::new(&trace);
        for e in t.entries() {
            let TraceEvent::Abandon { request } = e.event else { continue };
            abandons_seen += 1;
            let retransmits = t.preceding(
                e.seq,
                |p| matches!(p.event, TraceEvent::Retransmit { request: r, .. } if r == request),
            );
            assert_eq!(
                retransmits,
                MAX_OFFER_ATTEMPTS - 1,
                "seed {seed}: request {request} abandoned after {retransmits} retransmits"
            );
            let attempts: Vec<u32> = t
                .entries()
                .iter()
                .take(e.seq as usize)
                .filter_map(|p| match p.event {
                    TraceEvent::Retransmit { request: r, attempt } if r == request => Some(attempt),
                    _ => None,
                })
                .collect();
            let expected: Vec<u32> = (2..=MAX_OFFER_ATTEMPTS as u32).collect();
            assert_eq!(
                attempts, expected,
                "seed {seed}: request {request} retransmit ladder out of order"
            );
        }
    }
    assert!(abandons_seen > 0, "60% loss over 12 seeds must abandon at least one offer");
}
