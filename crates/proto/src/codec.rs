//! Compact binary wire codec for the DUST protocol.
//!
//! The paper transports Manager↔Client messages over REST/gRPC (§III);
//! this repo keeps transport pluggable, and since no serialization-format
//! crate is available in the offline dependency set, the wire encoding is
//! hand-rolled: one tag byte per message kind, LEB128 varints for
//! integers, IEEE-754 little-endian bits for floats, and length-prefixed
//! sequences for routes. Decoding is total — corrupt or truncated frames
//! return errors, never panic.

use crate::messages::{ClientMsg, ManagerMsg, RequestId};
use dust_topology::{EdgeId, NodeId, Path};

/// Decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended mid-field.
    Truncated,
    /// Unknown message tag.
    BadTag(u8),
    /// A varint ran past its maximum width.
    Overlong,
    /// Structural inconsistency (e.g. route with 0 nodes).
    Malformed(&'static str),
    /// Bytes left over after a complete message.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            CodecError::Overlong => write!(f, "overlong varint"),
            CodecError::Malformed(m) => write!(f, "malformed frame: {m}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---- primitives ------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(CodecError::Overlong)
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        if self.pos + 8 > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Malformed("bool out of range")),
        }
    }

    fn finish(&self) -> Result<(), CodecError> {
        let left = self.buf.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(left))
        }
    }
}

fn put_route(out: &mut Vec<u8>, route: &Option<Path>) {
    match route {
        None => put_varint(out, 0),
        Some(p) => {
            put_varint(out, p.nodes.len() as u64);
            for n in &p.nodes {
                put_varint(out, u64::from(n.0));
            }
            for e in &p.edges {
                put_varint(out, u64::from(e.0));
            }
        }
    }
}

fn read_route(r: &mut Reader<'_>) -> Result<Option<Path>, CodecError> {
    let n = r.varint()? as usize;
    if n == 0 {
        return Ok(None);
    }
    if n > 1_000_000 {
        return Err(CodecError::Malformed("absurd route length"));
    }
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        nodes.push(NodeId(
            u32::try_from(r.varint()?).map_err(|_| CodecError::Malformed("node id > u32"))?,
        ));
    }
    let mut edges = Vec::with_capacity(n - 1);
    for _ in 0..n - 1 {
        edges.push(EdgeId(
            u32::try_from(r.varint()?).map_err(|_| CodecError::Malformed("edge id > u32"))?,
        ));
    }
    Ok(Some(Path { nodes, edges }))
}

fn read_node(r: &mut Reader<'_>) -> Result<NodeId, CodecError> {
    Ok(NodeId(u32::try_from(r.varint()?).map_err(|_| CodecError::Malformed("node id > u32"))?))
}

// ---- client messages ---------------------------------------------------------

const TAG_OFFLOAD_CAPABLE: u8 = 0x01;
const TAG_STAT: u8 = 0x02;
const TAG_OFFLOAD_ACK: u8 = 0x03;
const TAG_KEEPALIVE: u8 = 0x04;
const TAG_ACK: u8 = 0x11;
const TAG_OFFLOAD_REQUEST: u8 = 0x12;
const TAG_REP: u8 = 0x13;
const TAG_RELEASE: u8 = 0x14;

/// Encode a client → manager message.
pub fn encode_client(msg: &ClientMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(24);
    match msg {
        ClientMsg::OffloadCapable { node, capable } => {
            out.push(TAG_OFFLOAD_CAPABLE);
            put_varint(&mut out, u64::from(node.0));
            put_bool(&mut out, *capable);
        }
        ClientMsg::Stat { node, utilization, data_mb } => {
            out.push(TAG_STAT);
            put_varint(&mut out, u64::from(node.0));
            put_f64(&mut out, *utilization);
            put_f64(&mut out, *data_mb);
        }
        ClientMsg::OffloadAck { node, request, accept } => {
            out.push(TAG_OFFLOAD_ACK);
            put_varint(&mut out, u64::from(node.0));
            put_varint(&mut out, request.0);
            put_bool(&mut out, *accept);
        }
        ClientMsg::Keepalive { node } => {
            out.push(TAG_KEEPALIVE);
            put_varint(&mut out, u64::from(node.0));
        }
    }
    out
}

/// Decode a client → manager message.
pub fn decode_client(buf: &[u8]) -> Result<ClientMsg, CodecError> {
    let mut r = Reader::new(buf);
    let msg = match r.u8()? {
        TAG_OFFLOAD_CAPABLE => {
            ClientMsg::OffloadCapable { node: read_node(&mut r)?, capable: r.bool()? }
        }
        TAG_STAT => {
            ClientMsg::Stat { node: read_node(&mut r)?, utilization: r.f64()?, data_mb: r.f64()? }
        }
        TAG_OFFLOAD_ACK => ClientMsg::OffloadAck {
            node: read_node(&mut r)?,
            request: RequestId(r.varint()?),
            accept: r.bool()?,
        },
        TAG_KEEPALIVE => ClientMsg::Keepalive { node: read_node(&mut r)? },
        t => return Err(CodecError::BadTag(t)),
    };
    r.finish()?;
    Ok(msg)
}

/// Encode a manager → client message.
pub fn encode_manager(msg: &ManagerMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match msg {
        ManagerMsg::Ack { update_interval_ms } => {
            out.push(TAG_ACK);
            put_varint(&mut out, *update_interval_ms);
        }
        ManagerMsg::OffloadRequest { request, from, amount, data_mb, route } => {
            out.push(TAG_OFFLOAD_REQUEST);
            put_varint(&mut out, request.0);
            put_varint(&mut out, u64::from(from.0));
            put_f64(&mut out, *amount);
            put_f64(&mut out, *data_mb);
            put_route(&mut out, route);
        }
        ManagerMsg::Rep { request, failed, from, amount, data_mb, route } => {
            out.push(TAG_REP);
            put_varint(&mut out, request.0);
            put_varint(&mut out, u64::from(failed.0));
            put_varint(&mut out, u64::from(from.0));
            put_f64(&mut out, *amount);
            put_f64(&mut out, *data_mb);
            put_route(&mut out, route);
        }
        ManagerMsg::Release { request } => {
            out.push(TAG_RELEASE);
            put_varint(&mut out, request.0);
        }
    }
    out
}

/// Decode a manager → client message.
pub fn decode_manager(buf: &[u8]) -> Result<ManagerMsg, CodecError> {
    let mut r = Reader::new(buf);
    let msg = match r.u8()? {
        TAG_ACK => ManagerMsg::Ack { update_interval_ms: r.varint()? },
        TAG_OFFLOAD_REQUEST => ManagerMsg::OffloadRequest {
            request: RequestId(r.varint()?),
            from: read_node(&mut r)?,
            amount: r.f64()?,
            data_mb: r.f64()?,
            route: read_route(&mut r)?,
        },
        TAG_REP => ManagerMsg::Rep {
            request: RequestId(r.varint()?),
            failed: read_node(&mut r)?,
            from: read_node(&mut r)?,
            amount: r.f64()?,
            data_mb: r.f64()?,
            route: read_route(&mut r)?,
        },
        TAG_RELEASE => ManagerMsg::Release { request: RequestId(r.varint()?) },
        t => return Err(CodecError::BadTag(t)),
    };
    r.finish()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_route() -> Path {
        Path {
            nodes: vec![NodeId(0), NodeId(7), NodeId(300)],
            edges: vec![EdgeId(2), EdgeId(9000)],
        }
    }

    #[test]
    fn client_messages_roundtrip() {
        let msgs = [
            ClientMsg::OffloadCapable { node: NodeId(0), capable: true },
            ClientMsg::OffloadCapable { node: NodeId(4_000_000), capable: false },
            ClientMsg::Stat { node: NodeId(3), utilization: 82.25, data_mb: 0.0 },
            ClientMsg::Stat { node: NodeId(3), utilization: f64::MAX, data_mb: 1e-300 },
            ClientMsg::OffloadAck { node: NodeId(9), request: RequestId(u64::MAX), accept: true },
            ClientMsg::Keepalive { node: NodeId(77) },
        ];
        for m in msgs {
            let bytes = encode_client(&m);
            assert_eq!(decode_client(&bytes).unwrap(), m, "roundtrip {m:?}");
        }
    }

    #[test]
    fn manager_messages_roundtrip() {
        let msgs = [
            ManagerMsg::Ack { update_interval_ms: 60_000 },
            ManagerMsg::OffloadRequest {
                request: RequestId(5),
                from: NodeId(1),
                amount: 12.5,
                data_mb: 150.0,
                route: Some(sample_route()),
            },
            ManagerMsg::OffloadRequest {
                request: RequestId(6),
                from: NodeId(2),
                amount: 0.25,
                data_mb: 1.0,
                route: None,
            },
            ManagerMsg::Rep {
                request: RequestId(7),
                failed: NodeId(4),
                from: NodeId(1),
                amount: 3.0,
                data_mb: 42.5,
                route: Some(sample_route()),
            },
            ManagerMsg::Rep {
                request: RequestId(9),
                failed: NodeId(4),
                from: NodeId(1),
                amount: 3.0,
                data_mb: 0.0,
                route: None,
            },
            ManagerMsg::Release { request: RequestId(8) },
        ];
        for m in msgs {
            let bytes = encode_manager(&m);
            assert_eq!(decode_manager(&bytes).unwrap(), m, "roundtrip {m:?}");
        }
    }

    #[test]
    fn stat_frame_is_compact() {
        // tag + small varint + 2 × f64 = 18 bytes
        let m = ClientMsg::Stat { node: NodeId(3), utilization: 80.0, data_mb: 100.0 };
        assert_eq!(encode_client(&m).len(), 18);
        let ka = ClientMsg::Keepalive { node: NodeId(3) };
        assert_eq!(encode_client(&ka).len(), 2);
    }

    #[test]
    fn truncation_detected() {
        let m = ManagerMsg::OffloadRequest {
            request: RequestId(5),
            from: NodeId(1),
            amount: 12.5,
            data_mb: 150.0,
            route: Some(sample_route()),
        };
        let bytes = encode_manager(&m);
        for cut in 0..bytes.len() {
            let r = decode_manager(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = encode_client(&ClientMsg::Keepalive { node: NodeId(1) });
        bytes.push(0xAA);
        assert_eq!(decode_client(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(decode_client(&[0xFF]), Err(CodecError::BadTag(0xFF)));
        assert_eq!(decode_manager(&[0x00]), Err(CodecError::BadTag(0x00)));
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(decode_client(&[]), Err(CodecError::Truncated));
    }

    #[test]
    fn overlong_varint_rejected() {
        // 10 continuation bytes exceed a u64's 64 bits
        let mut bytes = vec![TAG_KEEPALIVE];
        bytes.extend_from_slice(&[0x80; 10]);
        bytes.push(0x01);
        assert!(matches!(
            decode_client(&bytes),
            Err(CodecError::Overlong)
                | Err(CodecError::Malformed(_))
                | Err(CodecError::TrailingBytes(_))
        ));
    }

    #[test]
    fn special_floats_survive() {
        for v in [f64::INFINITY, f64::NEG_INFINITY, -0.0, f64::MIN_POSITIVE] {
            let m = ClientMsg::Stat { node: NodeId(0), utilization: v, data_mb: v };
            let back = decode_client(&encode_client(&m)).unwrap();
            match back {
                ClientMsg::Stat { utilization, .. } => {
                    assert_eq!(utilization.to_bits(), v.to_bits());
                }
                other => panic!("{other:?}"),
            }
        }
    }
}
