//! DUST-Client state machine.
//!
//! A client is a pure, clock-driven state machine: the caller feeds it the
//! current time, its local resource readings, and any Manager messages; it
//! emits the `ClientMsg`s the protocol requires. No real clocks or sockets
//! — the discrete-event simulator and unit tests drive it deterministically.
//!
//! The machine is hardened for lossy transports: the registration
//! announcement retransmits until the Manager's `ACK` arrives, duplicated
//! `Offload-Request`/`REP` deliveries re-confirm instead of double-booking,
//! and released request ids are remembered so a late duplicate of an old
//! offer can never resurrect a hosting the Manager already ended.

use crate::messages::{ClientMsg, ManagerMsg, RequestId};
use dust_obs::{ObsHandle, TraceEvent};
use dust_topology::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// Registration lifecycle of a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientPhase {
    /// Nothing sent yet.
    Idle,
    /// `Offload-capable` sent, waiting for the Manager's `ACK`.
    Registering,
    /// Registered; STAT cadence known.
    Active,
}

/// One workload this client hosts on behalf of a Busy node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostedWorkload {
    /// Originating Busy node.
    pub from: NodeId,
    /// Capacity-percent being hosted.
    pub amount: f64,
    /// Monitoring data volume flowing in, Mb.
    pub data_mb: f64,
}

/// The DUST-Client state machine.
#[derive(Debug, Clone)]
pub struct Client {
    /// This node's identity.
    pub node: NodeId,
    /// Whether the node volunteers for offloading.
    pub capable: bool,
    phase: ClientPhase,
    /// STAT period from the Manager's ACK, ms.
    update_interval_ms: Option<u64>,
    last_stat_ms: Option<u64>,
    last_keepalive_ms: Option<u64>,
    /// When the last `Offload-capable` announcement went out, ms.
    last_register_ms: Option<u64>,
    /// Workloads hosted for Busy nodes, by request id.
    hosted: BTreeMap<RequestId, HostedWorkload>,
    /// Request ids this client already released: a late duplicate of an
    /// old offer must not resurrect a hosting the Manager ended.
    released: BTreeSet<RequestId>,
    /// Maximum utilization this client will accept before refusing an
    /// `Offload-Request` (its own protection threshold).
    accept_ceiling: f64,
    /// Latest locally measured utilization, percent.
    utilization: f64,
    /// Latest locally measured monitoring data volume, Mb.
    data_mb: f64,
    /// Observability sink for hosting transitions (no-op by default).
    obs: ObsHandle,
}

/// Keepalive cadence relative to the STAT interval: destinations heartbeat
/// 4× as often as they report STATs so failures are caught quickly.
const KEEPALIVE_DIVISOR: u64 = 4;

/// Retransmit cadence for the registration announcement while no ACK has
/// arrived (the transport may have dropped either direction).
const REGISTER_RETRY_MS: u64 = 1_000;

/// A hosting order's payload is only bookable if both quantities are
/// finite and the capacity share is positive — anything else is a
/// corrupted or hostile frame, not a workload.
fn sane_payload(amount: f64, data_mb: f64) -> bool {
    amount.is_finite() && amount > 0.0 && data_mb.is_finite() && data_mb >= 0.0
}

impl Client {
    /// A new, unregistered client. The ceiling is a percentage; values
    /// outside `[0, 100]` (including NaN) are clamped rather than trusted,
    /// so a bad config can never panic a node.
    pub fn new(node: NodeId, capable: bool, accept_ceiling: f64) -> Self {
        let accept_ceiling =
            if accept_ceiling.is_finite() { accept_ceiling.clamp(0.0, 100.0) } else { 0.0 };
        Client {
            node,
            capable,
            phase: ClientPhase::Idle,
            update_interval_ms: None,
            last_stat_ms: None,
            last_keepalive_ms: None,
            last_register_ms: None,
            hosted: BTreeMap::new(),
            released: BTreeSet::new(),
            accept_ceiling,
            utilization: 0.0,
            data_mb: 0.0,
            obs: ObsHandle::disabled(),
        }
    }

    /// Attach an observability handle: hosting transitions (accept,
    /// refuse, release) record through it.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// Registration lifecycle phase.
    pub fn phase(&self) -> ClientPhase {
        self.phase
    }

    /// Workloads currently hosted (the node is an Offload-destination iff
    /// this is non-empty).
    pub fn hosted(&self) -> impl Iterator<Item = (&RequestId, &HostedWorkload)> {
        self.hosted.iter()
    }

    /// Total capacity-percent hosted for others.
    pub fn hosted_amount(&self) -> f64 {
        self.hosted.values().map(|w| w.amount).sum()
    }

    /// Update local readings (from the node's own monitor agents). Readings
    /// come from outside the protocol — a wedged agent reporting NaN or a
    /// utilization above 100 % is clamped, never a panic.
    pub fn observe(&mut self, utilization: f64, data_mb: f64) {
        self.utilization =
            if utilization.is_finite() { utilization.clamp(0.0, 100.0) } else { 0.0 };
        self.data_mb = if data_mb.is_finite() { data_mb.max(0.0) } else { 0.0 };
    }

    /// Begin registration: emits the `Offload-capable` message (§III-B).
    /// While the ACK is outstanding, [`Client::tick`] keeps retransmitting
    /// the announcement every [`REGISTER_RETRY_MS`].
    pub fn register(&mut self, now_ms: u64) -> ClientMsg {
        self.phase = ClientPhase::Registering;
        self.last_register_ms = Some(now_ms);
        self.obs.counter_inc("proto.client.registers");
        self.obs.trace_at(now_ms, TraceEvent::ClientRegister { node: self.node.0 });
        ClientMsg::OffloadCapable { node: self.node, capable: self.capable }
    }

    /// Process one Manager message, possibly emitting a reply. Every arm is
    /// idempotent: redelivering any message leaves the ledger unchanged.
    pub fn handle(&mut self, now_ms: u64, msg: &ManagerMsg) -> Option<ClientMsg> {
        match msg {
            ManagerMsg::Ack { update_interval_ms } => {
                // Only the first ACK matters; a duplicated ACK must not
                // reset the STAT clock of an already-active client.
                if self.phase != ClientPhase::Active {
                    self.phase = ClientPhase::Active;
                    self.update_interval_ms = Some(*update_interval_ms);
                    // first STAT goes out on the next tick
                    self.last_stat_ms = Some(now_ms);
                    self.obs.counter_inc("proto.client.registered");
                    self.obs.trace_at(now_ms, TraceEvent::ClientRegistered { node: self.node.0 });
                }
                None
            }
            ManagerMsg::OffloadRequest { request, from, amount, data_mb, route: _ } => {
                if self.released.contains(request) {
                    // late duplicate of an offer the Manager already ended
                    self.obs.counter_inc("proto.client.tombstone_refusals");
                    return Some(ClientMsg::OffloadAck {
                        node: self.node,
                        request: *request,
                        accept: false,
                    });
                }
                if self.hosted.contains_key(request) {
                    // duplicated delivery (or a Manager retry after a lost
                    // ACK): re-confirm without double-booking
                    self.obs.counter_inc("proto.client.reconfirms");
                    return Some(ClientMsg::OffloadAck {
                        node: self.node,
                        request: *request,
                        accept: true,
                    });
                }
                // Accept only while the added load keeps us under our own
                // ceiling (the QoS guarantee of §III-C: remote nodes must
                // not be degraded). A corrupted frame can smuggle NaN or
                // negative payloads past the codec — those are refused, so
                // the hosting ledger can never go negative.
                let accept = self.capable
                    && sane_payload(*amount, *data_mb)
                    && self.utilization + self.hosted_amount() + amount <= self.accept_ceiling;
                if accept {
                    self.hosted.insert(
                        *request,
                        HostedWorkload { from: *from, amount: *amount, data_mb: *data_mb },
                    );
                    self.obs.counter_inc("proto.client.accepts");
                    self.obs.trace_at(
                        now_ms,
                        TraceEvent::ClientAccept { request: request.0, node: self.node.0 },
                    );
                } else {
                    self.obs.counter_inc("proto.client.refusals");
                    self.obs.trace_at(
                        now_ms,
                        TraceEvent::ClientRefuse { request: request.0, node: self.node.0 },
                    );
                }
                Some(ClientMsg::OffloadAck { node: self.node, request: *request, accept })
            }
            ManagerMsg::Rep { request, failed: _, from, amount, data_mb, route: _ } => {
                if self.released.contains(request) {
                    self.obs.counter_inc("proto.client.tombstone_refusals");
                    return Some(ClientMsg::OffloadAck {
                        node: self.node,
                        request: *request,
                        accept: false,
                    });
                }
                // A REP is an unconditional hosting order, but a corrupted
                // frame is not an order: refuse garbage payloads instead of
                // booking them.
                if !sane_payload(*amount, *data_mb) {
                    self.obs.counter_inc("proto.client.refusals");
                    return Some(ClientMsg::OffloadAck {
                        node: self.node,
                        request: *request,
                        accept: false,
                    });
                }
                // Replica substitution: unconditional hosting order from the
                // Manager, which already verified capacity from STATs. A
                // duplicated REP re-confirms without re-inserting.
                if self.hosted.contains_key(request) {
                    self.obs.counter_inc("proto.client.reconfirms");
                } else {
                    self.hosted.insert(
                        *request,
                        HostedWorkload { from: *from, amount: *amount, data_mb: *data_mb },
                    );
                    self.obs.counter_inc("proto.client.accepts");
                    self.obs.trace_at(
                        now_ms,
                        TraceEvent::ClientAccept { request: request.0, node: self.node.0 },
                    );
                }
                Some(ClientMsg::OffloadAck { node: self.node, request: *request, accept: true })
            }
            ManagerMsg::Release { request } => {
                if self.hosted.remove(request).is_some() {
                    self.obs.counter_inc("proto.client.releases");
                    self.obs.trace_at(
                        now_ms,
                        TraceEvent::ClientReleased { request: request.0, node: self.node.0 },
                    );
                }
                self.released.insert(*request);
                None
            }
        }
    }

    /// Advance the clock; emits due periodic messages: the registration
    /// retransmit while unacknowledged, then `STAT` (and `Keepalive` while
    /// hosting) once active.
    pub fn tick(&mut self, now_ms: u64) -> Vec<ClientMsg> {
        let mut out = Vec::new();
        self.tick_into(now_ms, &mut out);
        out
    }

    /// [`Client::tick`] into a caller-owned buffer — the allocation-free
    /// form the event-driven simulator core uses on its per-fleet hot
    /// path. Due messages are *appended*; the buffer is not cleared.
    pub fn tick_into(&mut self, now_ms: u64, out: &mut Vec<ClientMsg>) {
        let due = |last: Option<u64>, period: u64| match last {
            None => true,
            Some(t) => now_ms.saturating_sub(t) >= period,
        };
        match self.phase {
            ClientPhase::Idle => return,
            ClientPhase::Registering => {
                if due(self.last_register_ms, REGISTER_RETRY_MS) {
                    out.push(self.register(now_ms));
                }
                return;
            }
            ClientPhase::Active => {}
        }
        // An Active client always has an interval (set by the ACK), but a
        // missing one must degrade to silence, not a panic.
        let Some(interval) = self.update_interval_ms else { return };
        if interval == 0 {
            return;
        }
        if due(self.last_stat_ms, interval) {
            self.last_stat_ms = Some(now_ms);
            out.push(ClientMsg::Stat {
                node: self.node,
                utilization: self.utilization + self.hosted_amount(),
                data_mb: self.data_mb,
            });
        }
        if !self.hosted.is_empty() {
            let ka = (interval / KEEPALIVE_DIVISOR).max(1);
            if due(self.last_keepalive_ms, ka) {
                self.last_keepalive_ms = Some(now_ms);
                out.push(ClientMsg::Keepalive { node: self.node });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active_client() -> Client {
        let mut c = Client::new(NodeId(1), true, 80.0);
        let _ = c.register(0);
        c.handle(0, &ManagerMsg::Ack { update_interval_ms: 1000 });
        c
    }

    fn request(id: u64, amount: f64) -> ManagerMsg {
        ManagerMsg::OffloadRequest {
            request: RequestId(id),
            from: NodeId(0),
            amount,
            data_mb: 50.0,
            route: None,
        }
    }

    fn rep(id: u64, amount: f64) -> ManagerMsg {
        ManagerMsg::Rep {
            request: RequestId(id),
            failed: NodeId(9),
            from: NodeId(0),
            amount,
            data_mb: 35.0,
            route: None,
        }
    }

    #[test]
    fn registration_flow() {
        let mut c = Client::new(NodeId(2), true, 80.0);
        assert_eq!(c.phase(), ClientPhase::Idle);
        let m = c.register(0);
        assert_eq!(m, ClientMsg::OffloadCapable { node: NodeId(2), capable: true });
        assert_eq!(c.phase(), ClientPhase::Registering);
        c.handle(0, &ManagerMsg::Ack { update_interval_ms: 500 });
        assert_eq!(c.phase(), ClientPhase::Active);
    }

    #[test]
    fn registration_retransmits_until_ack() {
        let mut c = Client::new(NodeId(2), true, 80.0);
        let _ = c.register(0); // lost on the wire
        assert!(c.tick(500).is_empty(), "not due yet");
        let again = c.tick(1_000);
        assert_eq!(again, vec![ClientMsg::OffloadCapable { node: NodeId(2), capable: true }]);
        // still unacknowledged: keeps going
        assert_eq!(c.tick(2_000).len(), 1);
        c.handle(2_100, &ManagerMsg::Ack { update_interval_ms: 1000 });
        assert_eq!(c.phase(), ClientPhase::Active);
        // once active, ticks emit STATs, not registrations
        let msgs = c.tick(4_000);
        assert!(msgs.iter().all(|m| matches!(m, ClientMsg::Stat { .. })));
    }

    #[test]
    fn duplicate_ack_does_not_reset_stat_clock() {
        let mut c = active_client();
        c.observe(42.0, 10.0);
        // STAT due at 1000; a duplicated ACK at 900 must not postpone it
        c.handle(900, &ManagerMsg::Ack { update_interval_ms: 1000 });
        assert_eq!(c.tick(1_000).len(), 1);
    }

    #[test]
    fn stat_cadence_follows_interval() {
        let mut c = active_client();
        c.observe(42.0, 10.0);
        // ACK at t=0 set last_stat; next STAT due at t=1000
        assert!(c.tick(500).is_empty());
        let msgs = c.tick(1000);
        assert_eq!(msgs.len(), 1);
        match &msgs[0] {
            ClientMsg::Stat { utilization, .. } => assert_eq!(*utilization, 42.0),
            other => panic!("expected STAT, got {other:?}"),
        }
        // not due again immediately
        assert!(c.tick(1100).is_empty());
        assert_eq!(c.tick(2000).len(), 1);
    }

    #[test]
    fn accepts_request_within_ceiling() {
        let mut c = active_client();
        c.observe(40.0, 10.0);
        let reply = c.handle(0, &request(1, 20.0)).unwrap();
        assert_eq!(
            reply,
            ClientMsg::OffloadAck { node: NodeId(1), request: RequestId(1), accept: true }
        );
        assert_eq!(c.hosted_amount(), 20.0);
    }

    #[test]
    fn refuses_request_beyond_ceiling() {
        let mut c = active_client();
        c.observe(70.0, 10.0);
        let reply = c.handle(0, &request(2, 20.0)).unwrap();
        match reply {
            ClientMsg::OffloadAck { accept, .. } => assert!(!accept),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.hosted_amount(), 0.0);
    }

    #[test]
    fn duplicated_request_reconfirms_without_double_booking() {
        let mut c = active_client();
        c.observe(60.0, 10.0);
        let first = c.handle(0, &request(3, 15.0)).unwrap();
        assert!(matches!(first, ClientMsg::OffloadAck { accept: true, .. }));
        assert_eq!(c.hosted_amount(), 15.0);
        // the duplicate would fail the ceiling check (60 + 15 + 15 > 80) if
        // it were treated as a fresh offer — it must re-confirm instead
        let dup = c.handle(5, &request(3, 15.0)).unwrap();
        assert_eq!(
            dup,
            ClientMsg::OffloadAck { node: NodeId(1), request: RequestId(3), accept: true }
        );
        assert_eq!(c.hosted_amount(), 15.0, "no double-booking");
    }

    #[test]
    fn late_duplicate_after_release_is_refused() {
        let mut c = active_client();
        c.observe(10.0, 5.0);
        c.handle(0, &request(4, 10.0));
        c.handle(10, &ManagerMsg::Release { request: RequestId(4) });
        assert_eq!(c.hosted_amount(), 0.0);
        // a delayed duplicate of the original offer arrives after the end
        // of the arrangement: it must not resurrect the hosting
        let reply = c.handle(20, &request(4, 10.0)).unwrap();
        assert_eq!(
            reply,
            ClientMsg::OffloadAck { node: NodeId(1), request: RequestId(4), accept: false }
        );
        assert_eq!(c.hosted_amount(), 0.0);
        // same for a late REP duplicate
        c.handle(30, &rep(5, 10.0));
        c.handle(40, &ManagerMsg::Release { request: RequestId(5) });
        let reply = c.handle(50, &rep(5, 10.0)).unwrap();
        assert!(matches!(reply, ClientMsg::OffloadAck { accept: false, .. }));
        assert_eq!(c.hosted_amount(), 0.0);
    }

    #[test]
    fn hosting_raises_reported_utilization() {
        let mut c = active_client();
        c.observe(30.0, 5.0);
        c.handle(0, &request(3, 15.0));
        let msgs = c.tick(1000);
        match &msgs[0] {
            ClientMsg::Stat { utilization, .. } => assert_eq!(*utilization, 45.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn keepalives_only_while_hosting() {
        let mut c = active_client();
        c.observe(30.0, 5.0);
        assert!(!c.tick(1000).iter().any(|m| matches!(m, ClientMsg::Keepalive { .. })));
        c.handle(1000, &request(4, 10.0));
        let msgs = c.tick(2000);
        assert!(msgs.iter().any(|m| matches!(m, ClientMsg::Keepalive { .. })));
        // keepalive cadence is interval/4 = 250ms
        assert!(c.tick(2100).is_empty());
        assert!(c.tick(2250).iter().any(|m| matches!(m, ClientMsg::Keepalive { .. })));
    }

    #[test]
    fn keepalive_period_clamps_to_one_ms_for_tiny_stat_intervals() {
        // STAT intervals of 1–3 ms divide to 0 under KEEPALIVE_DIVISOR;
        // the clamp must hold the heartbeat at 1 ms, never 0 (which would
        // read as "always due" semantics degenerating per-call).
        for interval in 1..=3u64 {
            let mut c = Client::new(NodeId(1), true, 80.0);
            let _ = c.register(0);
            c.handle(0, &ManagerMsg::Ack { update_interval_ms: interval });
            c.observe(30.0, 5.0);
            c.handle(0, &request(1, 10.0));
            let first = c.tick(interval);
            assert!(
                first.iter().any(|m| matches!(m, ClientMsg::Keepalive { .. })),
                "interval {interval}: hosting client must heartbeat"
            );
            // the next keepalive is due exactly 1 ms later — not sooner
            // (same-instant re-tick) and not stalled
            let t = interval;
            assert!(
                !c.tick(t).iter().any(|m| matches!(m, ClientMsg::Keepalive { .. })),
                "interval {interval}: re-tick at the same ms must not re-heartbeat"
            );
            assert!(
                c.tick(t + 1).iter().any(|m| matches!(m, ClientMsg::Keepalive { .. })),
                "interval {interval}: keepalive must be due 1 ms later"
            );
        }
    }

    #[test]
    fn release_stops_hosting() {
        let mut c = active_client();
        c.observe(30.0, 5.0);
        c.handle(0, &request(5, 10.0));
        assert_eq!(c.hosted_amount(), 10.0);
        c.handle(10, &ManagerMsg::Release { request: RequestId(5) });
        assert_eq!(c.hosted_amount(), 0.0);
        // duplicated Release is a no-op
        c.handle(20, &ManagerMsg::Release { request: RequestId(5) });
        assert_eq!(c.hosted_amount(), 0.0);
    }

    #[test]
    fn rep_order_is_unconditional_and_carries_volume() {
        let mut c = active_client();
        c.observe(79.0, 5.0); // near ceiling — a REQUEST would be refused
        let reply = c.handle(0, &rep(6, 10.0)).unwrap();
        match reply {
            ClientMsg::OffloadAck { accept, .. } => assert!(accept),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.hosted_amount(), 10.0);
        // the telemetry volume survives the re-homing
        let (_, w) = c.hosted().next().unwrap();
        assert_eq!(w.data_mb, 35.0);
        // duplicated REP re-confirms without double-booking
        let dup = c.handle(5, &rep(6, 10.0)).unwrap();
        assert!(matches!(dup, ClientMsg::OffloadAck { accept: true, .. }));
        assert_eq!(c.hosted_amount(), 10.0);
    }

    #[test]
    fn inactive_client_stays_silent() {
        let mut c = Client::new(NodeId(7), true, 80.0);
        assert!(c.tick(10_000).is_empty());
        let _ = c.register(10_000);
        assert!(
            c.tick(20_000).iter().all(|m| matches!(m, ClientMsg::OffloadCapable { .. })),
            "no STATs before the ACK — only registration retries"
        );
    }

    #[test]
    fn incapable_node_refuses_requests() {
        let mut c = Client::new(NodeId(8), false, 80.0);
        let _ = c.register(0);
        c.handle(0, &ManagerMsg::Ack { update_interval_ms: 1000 });
        c.observe(10.0, 1.0);
        let reply = c.handle(0, &request(7, 5.0)).unwrap();
        match reply {
            ClientMsg::OffloadAck { accept, .. } => assert!(!accept),
            other => panic!("{other:?}"),
        }
    }
}
