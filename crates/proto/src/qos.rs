//! QoS guarantees for offloaded telemetry traffic (§III-C).
//!
//! "Monitoring data offloaded to a remote node is assigned the lowest
//! priority value … This prioritization allows for the monitoring data to
//! be safely discarded in the event of network congestion or overload."
//! This module provides the priority lattice and a drop policy a queueing
//! layer (the simulator's links) consults under congestion.

/// Traffic priority classes, highest first.
///
/// Ordering: `NetworkControl > DataPlane > LocalTelemetry >
/// OffloadedTelemetry`. Offloaded telemetry is always the first casualty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Offloaded monitoring data — lowest priority, discard first.
    OffloadedTelemetry,
    /// Telemetry the node produces and consumes locally.
    LocalTelemetry,
    /// User data-plane traffic (the switch's reason for existing).
    DataPlane,
    /// Routing protocol and control traffic.
    NetworkControl,
}

impl Priority {
    /// All classes, lowest priority first (the discard order).
    pub const DISCARD_ORDER: [Priority; 4] = [
        Priority::OffloadedTelemetry,
        Priority::LocalTelemetry,
        Priority::DataPlane,
        Priority::NetworkControl,
    ];
}

/// A classified unit of traffic contending for link capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifiedLoad {
    /// Traffic class.
    pub priority: Priority,
    /// Offered load in Mbps.
    pub mbps: f64,
}

/// Resolve congestion on a link of `capacity_mbps`: admit classes from the
/// highest priority down, dropping (possibly partially) from the lowest.
///
/// Returns the admitted Mbps per input entry, preserving order. The DUST
/// guarantee falls out: offloaded telemetry never displaces anything above
/// it, so "remote nodes participating in the offloading process are not
/// expected to experience any traffic loss" on their own classes.
pub fn admit(loads: &[ClassifiedLoad], capacity_mbps: f64) -> Vec<f64> {
    let mut admitted = vec![0.0; loads.len()];
    // a negative or NaN capacity admits nothing rather than panicking
    let mut remaining = if capacity_mbps.is_finite() { capacity_mbps.max(0.0) } else { 0.0 };
    // highest priority first
    for class in Priority::DISCARD_ORDER.iter().rev() {
        let offered: f64 = loads.iter().filter(|l| l.priority == *class).map(|l| l.mbps).sum();
        if offered <= 0.0 {
            continue;
        }
        let granted = offered.min(remaining);
        let share = granted / offered; // proportional within a class
        for (i, l) in loads.iter().enumerate() {
            if l.priority == *class {
                admitted[i] = l.mbps * share;
            }
        }
        remaining -= granted;
    }
    admitted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering() {
        assert!(Priority::OffloadedTelemetry < Priority::LocalTelemetry);
        assert!(Priority::LocalTelemetry < Priority::DataPlane);
        assert!(Priority::DataPlane < Priority::NetworkControl);
    }

    #[test]
    fn no_congestion_admits_everything() {
        let loads = [
            ClassifiedLoad { priority: Priority::DataPlane, mbps: 400.0 },
            ClassifiedLoad { priority: Priority::OffloadedTelemetry, mbps: 100.0 },
        ];
        assert_eq!(admit(&loads, 1000.0), vec![400.0, 100.0]);
    }

    #[test]
    fn offloaded_telemetry_dropped_first() {
        let loads = [
            ClassifiedLoad { priority: Priority::DataPlane, mbps: 900.0 },
            ClassifiedLoad { priority: Priority::OffloadedTelemetry, mbps: 300.0 },
        ];
        let a = admit(&loads, 1000.0);
        assert_eq!(a[0], 900.0, "data plane untouched");
        assert!((a[1] - 100.0).abs() < 1e-12, "telemetry squeezed to the leftovers");
    }

    #[test]
    fn telemetry_fully_discarded_under_overload() {
        let loads = [
            ClassifiedLoad { priority: Priority::NetworkControl, mbps: 50.0 },
            ClassifiedLoad { priority: Priority::DataPlane, mbps: 1000.0 },
            ClassifiedLoad { priority: Priority::OffloadedTelemetry, mbps: 200.0 },
        ];
        let a = admit(&loads, 1000.0);
        assert_eq!(a[0], 50.0);
        assert_eq!(a[1], 950.0);
        assert_eq!(a[2], 0.0);
    }

    #[test]
    fn proportional_within_class() {
        let loads = [
            ClassifiedLoad { priority: Priority::OffloadedTelemetry, mbps: 60.0 },
            ClassifiedLoad { priority: Priority::OffloadedTelemetry, mbps: 40.0 },
        ];
        let a = admit(&loads, 50.0);
        assert!((a[0] - 30.0).abs() < 1e-12);
        assert!((a[1] - 20.0).abs() < 1e-12);
    }

    #[test]
    fn local_telemetry_outranks_offloaded() {
        let loads = [
            ClassifiedLoad { priority: Priority::LocalTelemetry, mbps: 80.0 },
            ClassifiedLoad { priority: Priority::OffloadedTelemetry, mbps: 80.0 },
        ];
        let a = admit(&loads, 100.0);
        assert_eq!(a[0], 80.0);
        assert!((a[1] - 20.0).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_admits_nothing() {
        let loads = [ClassifiedLoad { priority: Priority::NetworkControl, mbps: 10.0 }];
        assert_eq!(admit(&loads, 0.0), vec![0.0]);
    }
}
