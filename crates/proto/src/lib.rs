//! DUST protocol layer: typed messages and the Manager/Client state
//! machines of §III-B and §III-C.
//!
//! Both state machines are pure and clock-driven — the caller supplies
//! time and messages, the machines return messages to send — so the same
//! code runs deterministically under the discrete-event simulator, in unit
//! tests, and (with a transport bolted on) in a real deployment.
//!
//! # Example: full registration → offload → ACK handshake
//!
//! ```
//! use dust_proto::{Client, Manager, ClientMsg, ManagerMsg};
//! use dust_core::{DustConfig, SolverBackend};
//! use dust_topology::{topologies, Link, NodeId};
//!
//! let g = topologies::line(2, Link::default());
//! let mut manager = Manager::new(g, DustConfig::paper_defaults(),
//!     SolverBackend::Transportation, 1000, 4000).unwrap();
//! let mut busy = Client::new(NodeId(0), true, 80.0);
//! let mut helper = Client::new(NodeId(1), true, 80.0);
//!
//! // register both clients
//! for c in [&mut busy, &mut helper] {
//!     let reg = c.register(0);
//!     for env in manager.handle(0, &reg) {
//!         c.handle(0, &env.msg);
//!     }
//! }
//! // report load: node 0 is Busy (90 %), node 1 has room (20 %)
//! busy.observe(90.0, 100.0);
//! helper.observe(20.0, 10.0);
//! for msg in busy.tick(1000).into_iter().chain(helper.tick(1000)) {
//!     manager.handle(1000, &msg);
//! }
//! // placement round emits an Offload-Request to node 1
//! let (placement, requests) = manager.run_placement(1001);
//! assert_eq!(requests.len(), 1);
//! let reply = helper.handle(1002, &requests[0].msg).unwrap();
//! manager.handle(1003, &reply);
//! assert!(manager.hostings().values().all(|h| h.confirmed));
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod manager;
pub mod messages;
pub mod qos;

pub use client::{Client, ClientPhase, HostedWorkload};
pub use codec::{decode_client, decode_manager, encode_client, encode_manager, CodecError};
pub use manager::{ClientRecord, Hosting, Manager};
pub use messages::{ClientMsg, Envelope, ManagerMsg, RequestId};
pub use qos::{admit, ClassifiedLoad, Priority};
