//! DUST-Manager state machine.
//!
//! The Manager is "a decision node \[that\] defines the most optimized
//! destination monitoring node by evaluating network resource utilization,
//! monitoring capabilities, and the number of monitoring agents" (§III-B).
//! Like the client it is a pure, clock-driven state machine: it ingests
//! `ClientMsg`s, assembles the NMDB from the latest `STAT`s, invokes the
//! optimization engine, and emits addressed `ManagerMsg`s — registration
//! ACKs, `Offload-Request`s, `Release`s when Busy nodes can reclaim local
//! resources, and `REP` replica substitutions when a destination stops
//! sending keepalives (§III-C).

use crate::messages::{ClientMsg, Envelope, ManagerMsg, RequestId};
use dust_core::{optimize, DustConfig, Nmdb, NodeState, Placement, PlacementStatus, SolverBackend};
use dust_topology::{Graph, NodeId};
use std::collections::BTreeMap;

/// What the Manager knows about one registered client.
#[derive(Debug, Clone, Copy)]
pub struct ClientRecord {
    /// `Offload-capable` flag from registration.
    pub capable: bool,
    /// Latest STAT: `(time_ms, utilization, data_mb)`.
    pub last_stat: Option<(u64, f64, f64)>,
    /// Latest keepalive time (destinations only).
    pub last_keepalive: Option<u64>,
}

/// One hosting arrangement brokered by the Manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hosting {
    /// Busy node that shed the load.
    pub from: NodeId,
    /// Destination currently hosting it.
    pub to: NodeId,
    /// Capacity-percent hosted.
    pub amount: f64,
    /// Whether the destination's `Offload-ACK` arrived.
    pub confirmed: bool,
}

/// The DUST-Manager.
#[derive(Debug, Clone)]
pub struct Manager {
    cfg: DustConfig,
    backend: SolverBackend,
    graph: Graph,
    update_interval_ms: u64,
    /// A destination is declared failed after this long without keepalive.
    keepalive_timeout_ms: u64,
    registry: BTreeMap<NodeId, ClientRecord>,
    hostings: BTreeMap<RequestId, Hosting>,
    /// Hostings whose destination failed with no replacement available.
    orphaned: Vec<Hosting>,
    next_request: u64,
}

impl Manager {
    /// A Manager over `graph` with protocol timing.
    ///
    /// `update_interval_ms` is the Update-Interval Time sent in every ACK
    /// ("typically in minutes", §III-B — the simulator compresses time);
    /// `keepalive_timeout_ms` is how long a hosting destination may stay
    /// silent before replica substitution kicks in.
    pub fn new(
        graph: Graph,
        cfg: DustConfig,
        backend: SolverBackend,
        update_interval_ms: u64,
        keepalive_timeout_ms: u64,
    ) -> Self {
        cfg.validate().expect("invalid DustConfig");
        assert!(update_interval_ms > 0, "update interval must be positive");
        Manager {
            cfg,
            backend,
            graph,
            update_interval_ms,
            keepalive_timeout_ms,
            registry: BTreeMap::new(),
            hostings: BTreeMap::new(),
            orphaned: Vec::new(),
            next_request: 0,
        }
    }

    /// Registered clients and their records.
    pub fn registry(&self) -> &BTreeMap<NodeId, ClientRecord> {
        &self.registry
    }

    /// Active hosting arrangements.
    pub fn hostings(&self) -> &BTreeMap<RequestId, Hosting> {
        &self.hostings
    }

    /// Hostings that lost their destination and found no replacement.
    pub fn orphaned(&self) -> &[Hosting] {
        &self.orphaned
    }

    fn fresh_request(&mut self) -> RequestId {
        self.next_request += 1;
        RequestId(self.next_request)
    }

    /// Process one client message.
    pub fn handle(&mut self, now_ms: u64, msg: &ClientMsg) -> Vec<Envelope<ManagerMsg>> {
        match msg {
            ClientMsg::OffloadCapable { node, capable } => {
                self.registry.insert(
                    *node,
                    ClientRecord { capable: *capable, last_stat: None, last_keepalive: None },
                );
                // "DUST-Manager responds with an ACK message to each client
                // engaged in the offloading process" (§III-B).
                vec![Envelope {
                    to: *node,
                    msg: ManagerMsg::Ack { update_interval_ms: self.update_interval_ms },
                }]
            }
            ClientMsg::Stat { node, utilization, data_mb } => {
                if let Some(rec) = self.registry.get_mut(node) {
                    rec.last_stat = Some((now_ms, *utilization, *data_mb));
                }
                Vec::new()
            }
            ClientMsg::Keepalive { node } => {
                if let Some(rec) = self.registry.get_mut(node) {
                    rec.last_keepalive = Some(now_ms);
                }
                Vec::new()
            }
            ClientMsg::OffloadAck { node, request, accept } => {
                if *accept {
                    if let Some(h) = self.hostings.get_mut(request) {
                        debug_assert_eq!(h.to, *node, "ACK from unexpected destination");
                        h.confirmed = true;
                        // hosting starts: destination owes keepalives from now
                        if let Some(rec) = self.registry.get_mut(node) {
                            rec.last_keepalive.get_or_insert(now_ms);
                        }
                    }
                } else {
                    // refusal: drop the arrangement; the next placement
                    // round will retry with fresher state
                    self.hostings.remove(request);
                }
                Vec::new()
            }
        }
    }

    /// Assemble the NMDB from the latest STATs. Nodes that never reported
    /// are treated as fully idle non-participants (capable = false) so they
    /// never become placement targets on stale ignorance.
    pub fn snapshot(&self) -> Nmdb {
        let states = self
            .graph
            .nodes()
            .map(|n| match self.registry.get(&n) {
                Some(rec) if rec.capable => match rec.last_stat {
                    Some((_, u, d)) => NodeState::new(u.clamp(0.0, 100.0), d.max(0.0)),
                    None => NodeState::new(0.0, 0.0).non_offloading(),
                },
                _ => NodeState::new(0.0, 0.0).non_offloading(),
            })
            .collect();
        Nmdb::new(self.graph.clone(), states)
    }

    /// True when the latest STATs show at least one Busy node.
    pub fn busy_detected(&self) -> bool {
        !self.snapshot().busy_nodes(&self.cfg).is_empty()
    }

    /// Run one optimization round ("DUST Monitoring Placement Workflow",
    /// §III-B): deploy the optimization engine and notify the chosen
    /// Offload-destination nodes with `Offload-Request`s.
    ///
    /// Returns the placement (for inspection) and the outgoing messages.
    pub fn run_placement(&mut self, _now_ms: u64) -> (Placement, Vec<Envelope<ManagerMsg>>) {
        let nmdb = self.snapshot();
        let placement = optimize(&nmdb, &self.cfg, self.backend);
        let mut out = Vec::new();
        if placement.status == PlacementStatus::Optimal {
            for a in &placement.assignments {
                let request = self.fresh_request();
                self.hostings.insert(
                    request,
                    Hosting { from: a.from, to: a.to, amount: a.amount, confirmed: false },
                );
                let data_mb = nmdb.state(a.from).data_mb;
                out.push(Envelope {
                    to: a.to,
                    msg: ManagerMsg::OffloadRequest {
                        request,
                        from: a.from,
                        amount: a.amount,
                        data_mb,
                        route: a.route.clone(),
                    },
                });
            }
        }
        (placement, out)
    }

    /// Periodic maintenance: replica substitution for silent destinations
    /// (§III-C) and `Release` for Busy nodes whose demand dropped enough to
    /// reclaim local resources (§III-B).
    pub fn tick(&mut self, now_ms: u64) -> Vec<Envelope<ManagerMsg>> {
        let mut out = Vec::new();

        // --- keepalive timeouts → REP -------------------------------------
        let failed_dests: Vec<NodeId> = self
            .hostings
            .values()
            .filter(|h| h.confirmed)
            .map(|h| h.to)
            .filter(|to| {
                let rec = self.registry.get(to);
                match rec.and_then(|r| r.last_keepalive) {
                    Some(t) => now_ms.saturating_sub(t) > self.keepalive_timeout_ms,
                    None => true,
                }
            })
            .collect();
        for failed in failed_dests {
            // re-home every hosting on the failed destination
            let affected: Vec<RequestId> = self
                .hostings
                .iter()
                .filter(|(_, h)| h.to == failed && h.confirmed)
                .map(|(r, _)| *r)
                .collect();
            for req in affected {
                let hosting = self.hostings.remove(&req).expect("listed above");
                match self.pick_replacement(now_ms, failed, hosting.amount) {
                    Some(replacement) => {
                        let new_req = self.fresh_request();
                        self.hostings.insert(
                            new_req,
                            Hosting {
                                from: hosting.from,
                                to: replacement,
                                amount: hosting.amount,
                                confirmed: false,
                            },
                        );
                        // "the malfunctioning destination-node is diagnosed
                        // and substituted with a replica node. Manager
                        // notifies this node by sending it a REP message."
                        out.push(Envelope {
                            to: replacement,
                            msg: ManagerMsg::Rep {
                                request: new_req,
                                failed,
                                from: hosting.from,
                                amount: hosting.amount,
                            },
                        });
                    }
                    None => {
                        // No replica fits: hand the workload back to its
                        // owner so monitoring resumes locally rather than
                        // silently stalling on a dead destination.
                        out.push(Envelope {
                            to: hosting.from,
                            msg: ManagerMsg::Release { request: req },
                        });
                        self.orphaned.push(hosting);
                    }
                }
            }
            // forget the stale keepalive so we don't re-trigger forever
            if let Some(rec) = self.registry.get_mut(&failed) {
                rec.last_keepalive = None;
            }
        }

        // --- reclaim: Busy node could run everything locally again --------
        let reclaimable: Vec<RequestId> = self
            .hostings
            .iter()
            .filter(|(_, h)| h.confirmed)
            .filter(|(_, h)| {
                let total_hosted_for: f64 = self
                    .hostings
                    .values()
                    .filter(|x| x.from == h.from && x.confirmed)
                    .map(|x| x.amount)
                    .sum();
                match self.registry.get(&h.from).and_then(|r| r.last_stat) {
                    Some((_, util, _)) => util + total_hosted_for <= self.cfg.c_max,
                    None => false,
                }
            })
            .map(|(r, _)| *r)
            .collect();
        for req in reclaimable {
            let h = self.hostings.remove(&req).expect("listed above");
            out.push(Envelope { to: h.to, msg: ManagerMsg::Release { request: req } });
        }

        out
    }

    /// Choose a replica destination: the capable node with the most recent
    /// STAT headroom below `CO_max`, excluding the failed node. Nodes whose
    /// last STAT is older than the keepalive timeout are presumed dead and
    /// skipped — a stale record must not become the replica.
    fn pick_replacement(&self, now_ms: u64, failed: NodeId, amount: f64) -> Option<NodeId> {
        let committed = |n: NodeId| -> f64 {
            self.hostings.values().filter(|h| h.to == n).map(|h| h.amount).sum()
        };
        self.registry
            .iter()
            .filter(|(n, rec)| **n != failed && rec.capable)
            .filter_map(|(n, rec)| rec.last_stat.map(|(t, u, _)| (*n, t, u)))
            .filter(|(_, t, _)| now_ms.saturating_sub(*t) <= self.keepalive_timeout_ms)
            .map(|(n, _, u)| (n, u))
            .map(|(n, u)| (n, u + committed(n)))
            .filter(|(_, load)| load + amount <= self.cfg.co_max)
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(n, _)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dust_topology::{topologies, Link};

    fn manager_on_line(n: usize) -> Manager {
        Manager::new(
            topologies::line(n, Link::default()),
            DustConfig::paper_defaults(),
            SolverBackend::Transportation,
            1000,
            3000,
        )
    }

    fn register_and_stat(m: &mut Manager, node: NodeId, util: f64) {
        let acks = m.handle(0, &ClientMsg::OffloadCapable { node, capable: true });
        assert_eq!(acks.len(), 1);
        m.handle(0, &ClientMsg::Stat { node, utilization: util, data_mb: 50.0 });
    }

    #[test]
    fn registration_gets_ack_with_interval() {
        let mut m = manager_on_line(2);
        let out = m.handle(0, &ClientMsg::OffloadCapable { node: NodeId(0), capable: true });
        assert_eq!(out[0].to, NodeId(0));
        assert_eq!(out[0].msg, ManagerMsg::Ack { update_interval_ms: 1000 });
    }

    #[test]
    fn snapshot_reflects_stats_and_ignorance() {
        let mut m = manager_on_line(3);
        register_and_stat(&mut m, NodeId(0), 90.0);
        // node 1 registered but silent; node 2 never registered
        m.handle(0, &ClientMsg::OffloadCapable { node: NodeId(1), capable: true });
        let db = m.snapshot();
        assert_eq!(db.state(NodeId(0)).utilization, 90.0);
        assert!(!db.state(NodeId(1)).offload_capable, "silent node must not be placed on");
        assert!(!db.state(NodeId(2)).offload_capable);
    }

    #[test]
    fn placement_emits_offload_requests() {
        let mut m = manager_on_line(2);
        register_and_stat(&mut m, NodeId(0), 90.0);
        register_and_stat(&mut m, NodeId(1), 20.0);
        assert!(m.busy_detected());
        let (placement, msgs) = m.run_placement(100);
        assert_eq!(placement.status, PlacementStatus::Optimal);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].to, NodeId(1));
        match &msgs[0].msg {
            ManagerMsg::OffloadRequest { from, amount, .. } => {
                assert_eq!(*from, NodeId(0));
                assert!((amount - 10.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(m.hostings().len(), 1);
        assert!(!m.hostings().values().next().unwrap().confirmed);
    }

    #[test]
    fn ack_confirms_hosting_and_refusal_drops_it() {
        let mut m = manager_on_line(2);
        register_and_stat(&mut m, NodeId(0), 90.0);
        register_and_stat(&mut m, NodeId(1), 20.0);
        let (_, msgs) = m.run_placement(100);
        let req = match &msgs[0].msg {
            ManagerMsg::OffloadRequest { request, .. } => *request,
            other => panic!("{other:?}"),
        };
        m.handle(150, &ClientMsg::OffloadAck { node: NodeId(1), request: req, accept: true });
        assert!(m.hostings()[&req].confirmed);

        // a refusal on a fresh round drops the arrangement
        register_and_stat(&mut m, NodeId(0), 95.0);
        let (_, msgs2) = m.run_placement(200);
        let req2 = match &msgs2[0].msg {
            ManagerMsg::OffloadRequest { request, .. } => *request,
            other => panic!("{other:?}"),
        };
        m.handle(250, &ClientMsg::OffloadAck { node: NodeId(1), request: req2, accept: false });
        assert!(!m.hostings().contains_key(&req2));
    }

    #[test]
    fn keepalive_timeout_triggers_rep() {
        let mut m = manager_on_line(3);
        register_and_stat(&mut m, NodeId(0), 90.0); // busy
        register_and_stat(&mut m, NodeId(1), 20.0); // destination
        register_and_stat(&mut m, NodeId(2), 10.0); // future replica
        let (_, msgs) = m.run_placement(0);
        let req = match &msgs[0].msg {
            ManagerMsg::OffloadRequest { request, .. } => *request,
            other => panic!("{other:?}"),
        };
        m.handle(10, &ClientMsg::OffloadAck { node: NodeId(1), request: req, accept: true });
        m.handle(500, &ClientMsg::Keepalive { node: NodeId(1) });
        // within timeout: nothing
        assert!(m.tick(2000).is_empty());
        // keep node 2's STAT fresh so it qualifies as the replica
        m.handle(3500, &ClientMsg::Stat { node: NodeId(2), utilization: 10.0, data_mb: 50.0 });
        // silent past the 3000ms timeout → REP to node 2
        let out = m.tick(4000);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, NodeId(2));
        match &out[0].msg {
            ManagerMsg::Rep { failed, from, amount, .. } => {
                assert_eq!(*failed, NodeId(1));
                assert_eq!(*from, NodeId(0));
                assert!((amount - 10.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
        // hosting re-homed to node 2
        assert!(m.hostings().values().any(|h| h.to == NodeId(2)));
        assert!(!m.hostings().values().any(|h| h.to == NodeId(1)));
    }

    #[test]
    fn orphaned_when_no_replacement_fits() {
        let mut m = manager_on_line(2);
        register_and_stat(&mut m, NodeId(0), 90.0);
        register_and_stat(&mut m, NodeId(1), 20.0);
        let (_, msgs) = m.run_placement(0);
        let req = match &msgs[0].msg {
            ManagerMsg::OffloadRequest { request, .. } => *request,
            other => panic!("{other:?}"),
        };
        m.handle(10, &ClientMsg::OffloadAck { node: NodeId(1), request: req, accept: true });
        // only possible replacement is the busy node itself at 90% — no fit:
        // the hosting is orphaned and the owner is told to reclaim locally
        let out = m.tick(10_000);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, NodeId(0));
        assert_eq!(out[0].msg, ManagerMsg::Release { request: req });
        assert_eq!(m.orphaned().len(), 1);
        assert!(m.hostings().is_empty());
    }

    #[test]
    fn release_when_busy_node_recovers() {
        let mut m = manager_on_line(2);
        register_and_stat(&mut m, NodeId(0), 90.0);
        register_and_stat(&mut m, NodeId(1), 20.0);
        let (_, msgs) = m.run_placement(0);
        let req = match &msgs[0].msg {
            ManagerMsg::OffloadRequest { request, .. } => *request,
            other => panic!("{other:?}"),
        };
        m.handle(10, &ClientMsg::OffloadAck { node: NodeId(1), request: req, accept: true });
        m.handle(20, &ClientMsg::Keepalive { node: NodeId(1) });
        // busy node now reports 60%: 60 + 10 hosted = 70 <= c_max (80) → release
        m.handle(1000, &ClientMsg::Stat { node: NodeId(0), utilization: 60.0, data_mb: 50.0 });
        let out = m.tick(1100);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, NodeId(1));
        assert_eq!(out[0].msg, ManagerMsg::Release { request: req });
        assert!(m.hostings().is_empty());
    }

    #[test]
    fn no_release_while_demand_still_high() {
        let mut m = manager_on_line(2);
        register_and_stat(&mut m, NodeId(0), 90.0);
        register_and_stat(&mut m, NodeId(1), 20.0);
        let (_, msgs) = m.run_placement(0);
        let req = match &msgs[0].msg {
            ManagerMsg::OffloadRequest { request, .. } => *request,
            other => panic!("{other:?}"),
        };
        m.handle(10, &ClientMsg::OffloadAck { node: NodeId(1), request: req, accept: true });
        m.handle(20, &ClientMsg::Keepalive { node: NodeId(1) });
        // post-offload STAT shows 80 (= c_max): 80 + 10 > 80 → keep hosting
        m.handle(1000, &ClientMsg::Stat { node: NodeId(0), utilization: 80.0, data_mb: 50.0 });
        assert!(m.tick(1100).is_empty());
        assert_eq!(m.hostings().len(), 1);
    }

    #[test]
    fn non_capable_registration_excluded_from_placement() {
        let mut m = manager_on_line(2);
        m.handle(0, &ClientMsg::OffloadCapable { node: NodeId(0), capable: true });
        m.handle(0, &ClientMsg::Stat { node: NodeId(0), utilization: 90.0, data_mb: 10.0 });
        m.handle(0, &ClientMsg::OffloadCapable { node: NodeId(1), capable: false });
        m.handle(0, &ClientMsg::Stat { node: NodeId(1), utilization: 10.0, data_mb: 10.0 });
        let (placement, msgs) = m.run_placement(10);
        assert_eq!(placement.status, PlacementStatus::Infeasible, "no willing destination");
        assert!(msgs.is_empty());
    }
}
