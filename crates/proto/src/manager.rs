//! DUST-Manager state machine.
//!
//! The Manager is "a decision node \[that\] defines the most optimized
//! destination monitoring node by evaluating network resource utilization,
//! monitoring capabilities, and the number of monitoring agents" (§III-B).
//! Like the client it is a pure, clock-driven state machine: it ingests
//! `ClientMsg`s, assembles the NMDB from the latest `STAT`s, invokes the
//! optimization engine, and emits addressed `ManagerMsg`s — registration
//! ACKs, `Offload-Request`s, `Release`s when Busy nodes can reclaim local
//! resources, and `REP` replica substitutions when a destination stops
//! sending keepalives (§III-C).
//!
//! The ledger is hardened for lossy transports: unconfirmed offers expire
//! and retransmit with exponential backoff (then are abandoned with a
//! clean-up `Release`, so a destination whose `Offload-ACK` was lost never
//! hosts a zombie), `Release`s retransmit a bounded number of times, ACKs
//! from the wrong sender are ignored in all builds, and the reclaim path
//! refuses to act on stale `STAT`s from a possibly-dead Busy node.

use crate::messages::{ClientMsg, Envelope, ManagerMsg, RequestId};
use dust_core::{
    optimize_with_path_warm, Assignment, DustConfig, DustError, Nmdb, NodeState, Placement,
    PlacementStatus, SolvePath, SolverBackend, WarmState,
};
use dust_lp::{SolveOptions, TransportProblem, TransportStatus};
use dust_obs::{ObsHandle, TraceEvent};
use dust_topology::{
    min_inv_lu_dp_path, min_inv_lu_enumerated, CostEngine, Graph, NodeId, Path, PathEngine,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the Manager knows about one registered client.
#[derive(Debug, Clone, Copy)]
pub struct ClientRecord {
    /// `Offload-capable` flag from registration.
    pub capable: bool,
    /// Latest STAT: `(time_ms, utilization, data_mb)`.
    pub last_stat: Option<(u64, f64, f64)>,
    /// Latest keepalive time (destinations only).
    pub last_keepalive: Option<u64>,
}

/// One hosting arrangement brokered by the Manager.
#[derive(Debug, Clone, PartialEq)]
pub struct Hosting {
    /// Busy node that shed the load.
    pub from: NodeId,
    /// Destination currently hosting it.
    pub to: NodeId,
    /// Capacity-percent hosted.
    pub amount: f64,
    /// Whether the destination's `Offload-ACK` arrived.
    pub confirmed: bool,
    /// Monitoring data volume shipped per interval, Mb.
    pub data_mb: f64,
    /// Controllable route the offer carried.
    pub route: Option<Path>,
    /// When the current offer transmission went out, ms.
    pub offered_ms: u64,
    /// Offer transmissions so far (1 = the original).
    pub attempts: u32,
    /// `T_rmin` of the (from, to) pair when this hosting was offered —
    /// the baseline a delta round's degradation check compares against.
    /// `INFINITY` when the route was unpriceable at offer time.
    pub t_rmin: f64,
    /// `Some(failed)` when this hosting was created by a `REP` replica
    /// substitution away from `failed` — retries must resend a `REP`.
    pub rep_failed: Option<NodeId>,
    /// For REP hostings: the request id the transfer was previously
    /// running under (the owner reclaims under this id if the REP never
    /// lands and the offer is abandoned).
    pub orig_request: Option<RequestId>,
}

/// Retransmit bookkeeping for one outstanding `Release`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ReleaseRetry {
    to: NodeId,
    sent_ms: u64,
    attempts: u32,
}

/// Offer transmissions before an unconfirmed hosting is abandoned.
const MAX_OFFER_ATTEMPTS: u32 = 5;

/// `Release` transmissions before the Manager stops retrying (the message
/// has no acknowledgment, so delivery is at-least-attempted, not exact).
const MAX_RELEASE_ATTEMPTS: u32 = 5;

/// Default full-solve cadence when delta placement is on: one full
/// (warm-started) round in every this-many keeps the delta path honest
/// against slow aggregate drift no single flow's threshold catches.
const DEFAULT_DELTA_FULL_EVERY: u64 = 8;

/// Dirty-link fraction above which the cost engine gives up on
/// incremental row migration and re-prices everything (matches the
/// break-even observed on fat-trees: past roughly a quarter of links
/// dirty, the BFS reachability pass saves fewer rows than it costs).
const MAX_DIRTY_FRACTION: f64 = 0.25;

/// Exponential backoff: `base`, `2·base`, `4·base`, then `8·base` capped.
fn backoff(base_ms: u64, attempts: u32) -> u64 {
    base_ms.saturating_mul(1 << attempts.saturating_sub(1).min(3))
}

/// The DUST-Manager.
#[derive(Debug, Clone)]
pub struct Manager {
    cfg: DustConfig,
    backend: SolverBackend,
    graph: Graph,
    update_interval_ms: u64,
    /// A destination is declared failed after this long without keepalive.
    keepalive_timeout_ms: u64,
    /// Base timeout before an unconfirmed offer retransmits.
    offer_timeout_ms: u64,
    registry: BTreeMap<NodeId, ClientRecord>,
    hostings: BTreeMap<RequestId, Hosting>,
    /// Outstanding `Release`s being retransmitted.
    releases: BTreeMap<RequestId, ReleaseRetry>,
    /// Hostings whose destination failed with no replacement available.
    orphaned: Vec<Hosting>,
    /// Offer retransmissions performed (for reports and tests).
    offer_retries: u64,
    /// Offers abandoned after [`MAX_OFFER_ATTEMPTS`].
    offers_abandoned: u64,
    /// Placement rounds run so far (each traced as a `PlacementRound`).
    placement_rounds: u64,
    /// Delta rounds run (placement rounds that skipped the full solve).
    delta_rounds: u64,
    /// Hosted flows re-homed by delta rounds.
    flows_rehomed: u64,
    /// Reuse the previous optimal round's spanning-tree bases to
    /// warm-start the next full solve.
    warm_enabled: bool,
    /// Bases exported by the last optimal full round (empty when cold).
    warm: WarmState,
    /// `Some(r)`: delta placement is on — a round where every confirmed
    /// hosting's fresh `T_rmin` stayed within `(1 + r)×` its offer-time
    /// baseline re-homes only the degraded flows instead of re-solving
    /// the whole fleet.
    delta_threshold: Option<f64>,
    /// Full-solve cadence under delta placement: every `n`-th round runs
    /// the full (warm-started) engine even when nothing degraded.
    delta_full_every: u64,
    next_request: u64,
    /// Observability sink for protocol transitions (no-op by default).
    obs: ObsHandle,
    /// Persistent cost engine: the graph never changes after
    /// construction, so `T_rmin` rows stay cached across placement
    /// rounds. Solver metrics flow through its attached [`ObsHandle`].
    engine: Arc<CostEngine>,
}

impl Manager {
    /// A Manager over `graph` with protocol timing.
    ///
    /// `update_interval_ms` is the Update-Interval Time sent in every ACK
    /// ("typically in minutes", §III-B — the simulator compresses time);
    /// `keepalive_timeout_ms` is how long a hosting destination may stay
    /// silent before replica substitution kicks in. The offer-expiry
    /// timeout defaults to `2 × update_interval_ms`; tune it with
    /// [`Manager::with_offer_timeout`].
    ///
    /// An invalid `cfg` or a zero update interval is a typed
    /// [`DustError::BadConfig`] — a daemon bootstrapping from an untrusted
    /// config file must never panic.
    pub fn new(
        graph: Graph,
        cfg: DustConfig,
        backend: SolverBackend,
        update_interval_ms: u64,
        keepalive_timeout_ms: u64,
    ) -> Result<Self, DustError> {
        cfg.validate().map_err(DustError::BadConfig)?;
        if update_interval_ms == 0 {
            return Err(DustError::BadConfig("update interval must be positive".to_string()));
        }
        Ok(Manager {
            cfg,
            backend,
            graph,
            update_interval_ms,
            keepalive_timeout_ms,
            offer_timeout_ms: 2 * update_interval_ms,
            registry: BTreeMap::new(),
            hostings: BTreeMap::new(),
            releases: BTreeMap::new(),
            orphaned: Vec::new(),
            offer_retries: 0,
            offers_abandoned: 0,
            placement_rounds: 0,
            delta_rounds: 0,
            flows_rehomed: 0,
            warm_enabled: false,
            warm: WarmState::default(),
            delta_threshold: None,
            delta_full_every: DEFAULT_DELTA_FULL_EVERY,
            next_request: 0,
            obs: ObsHandle::disabled(),
            engine: Arc::new(CostEngine::new()),
        })
    }

    /// Attach an observability handle: every protocol transition and
    /// the optimizer's solver/cache metrics record through it. The
    /// shared cost engine is rebuilt so its accounting lands on the
    /// same handle; its memoized rows restart cold.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.engine = Arc::new(CostEngine::new().with_obs(obs.clone()));
        self.obs = obs;
    }

    /// The attached observability handle (disabled by default).
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// Override the base offer-expiry timeout; zero is a typed
    /// [`DustError::BadConfig`].
    pub fn with_offer_timeout(mut self, offer_timeout_ms: u64) -> Result<Self, DustError> {
        if offer_timeout_ms == 0 {
            return Err(DustError::BadConfig("offer timeout must be positive".to_string()));
        }
        self.offer_timeout_ms = offer_timeout_ms;
        Ok(self)
    }

    /// Base timeout before an unconfirmed offer retransmits, ms.
    pub fn offer_timeout_ms(&self) -> u64 {
        self.offer_timeout_ms
    }

    /// Reuse the previous optimal round's spanning-tree bases to
    /// warm-start subsequent full solves. Warm and cold rounds reach the
    /// same objective — the bases only skip the initial-assignment phase
    /// and most MODI pivots when the instance drifted little.
    pub fn with_warm_start(mut self, on: bool) -> Self {
        self.warm_enabled = on;
        if !on {
            self.warm = WarmState::default();
        }
        self
    }

    /// Turn on the delta-placement path: a round where every confirmed
    /// hosting's fresh `T_rmin` stayed within `(1 + threshold)×` its
    /// offer-time baseline re-homes only the degraded flows via a
    /// residual subproblem; every `full_every`-th round still runs the
    /// full engine. `threshold` must be finite and non-negative,
    /// `full_every` positive.
    pub fn with_delta_placement(
        mut self,
        threshold: f64,
        full_every: u64,
    ) -> Result<Self, DustError> {
        if !threshold.is_finite() || threshold < 0.0 {
            return Err(DustError::BadConfig(
                "delta threshold must be finite and non-negative".to_string(),
            ));
        }
        if full_every == 0 {
            return Err(DustError::BadConfig(
                "delta full-solve cadence must be positive".to_string(),
            ));
        }
        self.delta_threshold = Some(threshold);
        self.delta_full_every = full_every;
        Ok(self)
    }

    /// Whether full solves warm-start from the previous round's bases.
    pub fn warm_enabled(&self) -> bool {
        self.warm_enabled
    }

    /// Delta rounds run so far (rounds that skipped the full solve).
    pub fn delta_rounds(&self) -> u64 {
        self.delta_rounds
    }

    /// Hosted flows re-homed by delta rounds so far.
    pub fn flows_rehomed(&self) -> u64 {
        self.flows_rehomed
    }

    /// Mutable access to the Manager's view of the fabric, for applying
    /// link drift. Mutations made through [`Graph::link_mut`] are
    /// journaled, so the next placement round re-prices only the cost
    /// rows whose paths can cross a retuned link.
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// Registered clients and their records.
    pub fn registry(&self) -> &BTreeMap<NodeId, ClientRecord> {
        &self.registry
    }

    /// Active hosting arrangements.
    pub fn hostings(&self) -> &BTreeMap<RequestId, Hosting> {
        &self.hostings
    }

    /// Hostings that lost their destination and found no replacement.
    pub fn orphaned(&self) -> &[Hosting] {
        &self.orphaned
    }

    /// Offer retransmissions performed so far.
    pub fn offer_retries(&self) -> u64 {
        self.offer_retries
    }

    /// Offers abandoned after exhausting their retries.
    pub fn offers_abandoned(&self) -> u64 {
        self.offers_abandoned
    }

    /// Total offers ever sent (original transmissions, including REPs).
    /// Request ids are allocated one per offer, so this is exact.
    pub fn offers_sent(&self) -> u64 {
        self.next_request
    }

    /// Placement rounds run so far.
    pub fn placement_rounds(&self) -> u64 {
        self.placement_rounds
    }

    /// Request ids with an outstanding (still retransmitting) `Release`.
    pub fn pending_releases(&self) -> Vec<RequestId> {
        self.releases.keys().copied().collect()
    }

    fn fresh_request(&mut self) -> RequestId {
        self.next_request += 1;
        RequestId(self.next_request)
    }

    /// Queue a `Release` for retransmission and return the first copy.
    fn send_release(
        &mut self,
        now_ms: u64,
        to: NodeId,
        request: RequestId,
    ) -> Envelope<ManagerMsg> {
        self.releases.insert(request, ReleaseRetry { to, sent_ms: now_ms, attempts: 1 });
        self.obs.counter_inc("proto.releases_sent");
        self.obs.trace_at(now_ms, TraceEvent::ReleaseSent { request: request.0, to: to.0 });
        Envelope { to, msg: ManagerMsg::Release { request } }
    }

    /// Process one client message.
    pub fn handle(&mut self, now_ms: u64, msg: &ClientMsg) -> Vec<Envelope<ManagerMsg>> {
        match msg {
            ClientMsg::OffloadCapable { node, capable } => {
                // Idempotent: a registration retransmit (lost ACK) must not
                // wipe the STAT/keepalive history of a known client.
                let rec = self.registry.entry(*node).or_insert(ClientRecord {
                    capable: *capable,
                    last_stat: None,
                    last_keepalive: None,
                });
                rec.capable = *capable;
                self.obs.counter_inc("proto.registrations");
                self.obs.trace_at(now_ms, TraceEvent::Register { node: node.0 });
                self.obs.trace_at(now_ms, TraceEvent::RegisterAck { node: node.0 });
                // "DUST-Manager responds with an ACK message to each client
                // engaged in the offloading process" (§III-B).
                vec![Envelope {
                    to: *node,
                    msg: ManagerMsg::Ack { update_interval_ms: self.update_interval_ms },
                }]
            }
            ClientMsg::Stat { node, utilization, data_mb } => {
                let _prof = self.obs.prof_scope("proto.stat_ingest");
                if let Some(rec) = self.registry.get_mut(node) {
                    rec.last_stat = Some((now_ms, *utilization, *data_mb));
                    self.obs.counter_inc("proto.stats");
                    self.obs.trace_at(now_ms, TraceEvent::Stat { node: node.0 });
                }
                Vec::new()
            }
            ClientMsg::Keepalive { node } => {
                if let Some(rec) = self.registry.get_mut(node) {
                    rec.last_keepalive = Some(now_ms);
                    self.obs.counter_inc("proto.keepalives");
                    self.obs.trace_at(now_ms, TraceEvent::Keepalive { node: node.0 });
                }
                Vec::new()
            }
            ClientMsg::OffloadAck { node, request, accept } => {
                let Some(h) = self.hostings.get_mut(request) else {
                    // Unknown request. If the destination claims to host it
                    // (accept after the offer was abandoned or released),
                    // self-heal with a Release so no zombie hosting leaks.
                    if *accept && !self.releases.contains_key(request) {
                        self.obs.counter_inc("proto.releases_sent");
                        self.obs.trace_at(
                            now_ms,
                            TraceEvent::ReleaseSent { request: request.0, to: node.0 },
                        );
                        return vec![Envelope {
                            to: *node,
                            msg: ManagerMsg::Release { request: *request },
                        }];
                    }
                    return Vec::new();
                };
                if h.to != *node {
                    // An ACK from anyone but the offered destination must
                    // not confirm (or drop) someone else's hosting — in
                    // every build, not just with debug assertions on.
                    return Vec::new();
                }
                if *accept {
                    if h.confirmed {
                        self.obs.counter_inc("proto.acks_duplicate");
                    } else {
                        h.confirmed = true;
                        self.obs.counter_inc("proto.offers_confirmed");
                        self.obs.trace_at(
                            now_ms,
                            TraceEvent::OfferAccepted { request: request.0, node: node.0 },
                        );
                    }
                    // hosting starts: destination owes keepalives from now
                    if let Some(rec) = self.registry.get_mut(node) {
                        rec.last_keepalive.get_or_insert(now_ms);
                    }
                } else {
                    // refusal: drop the arrangement; the next placement
                    // round will retry with fresher state
                    let was_confirmed = h.confirmed;
                    self.hostings.remove(request);
                    if was_confirmed {
                        // a confirmed hosting refused late — cannot happen
                        // with the shipped client, but keep the ledger math
                        // honest if a foreign client ever does it
                        self.obs.counter_inc("proto.confirmed_refused");
                    } else {
                        self.obs.counter_inc("proto.offers_refused");
                        self.obs.trace_at(
                            now_ms,
                            TraceEvent::OfferRefused { request: request.0, node: node.0 },
                        );
                    }
                }
                Vec::new()
            }
        }
    }

    /// Assemble the NMDB from the latest STATs. Nodes that never reported
    /// are treated as fully idle non-participants (capable = false) so they
    /// never become placement targets on stale ignorance.
    pub fn snapshot(&self) -> Nmdb {
        let states = self
            .graph
            .nodes()
            .map(|n| match self.registry.get(&n) {
                Some(rec) if rec.capable => match rec.last_stat {
                    // A STAT travels as raw f64 bits, so a corrupt or
                    // hostile frame can smuggle NaN/∞ here; sanitize to
                    // idle rather than let NodeState's invariants panic.
                    Some((_, u, d)) if u.is_finite() && d.is_finite() => {
                        NodeState::new(u.clamp(0.0, 100.0), d.max(0.0))
                    }
                    Some(_) => NodeState::new(0.0, 0.0).non_offloading(),
                    None => NodeState::new(0.0, 0.0).non_offloading(),
                },
                _ => NodeState::new(0.0, 0.0).non_offloading(),
            })
            .collect();
        Nmdb::new(self.graph.clone(), states)
    }

    /// True when the latest STATs show at least one Busy node.
    pub fn busy_detected(&self) -> bool {
        !self.snapshot().busy_nodes(&self.cfg).is_empty()
    }

    /// Run one optimization round ("DUST Monitoring Placement Workflow",
    /// §III-B): deploy the optimization engine and notify the chosen
    /// Offload-destination nodes with `Offload-Request`s. Assignments that
    /// duplicate a still-unconfirmed offer (same busy node and destination)
    /// are skipped — the expiry/retry machinery owns those.
    ///
    /// Before anything solves, the shared cost engine migrates its cached
    /// `T_rmin` rows across whatever link drift accumulated since the last
    /// round (incremental when few links moved, a full re-price past
    /// [`MAX_DIRTY_FRACTION`]). With [`Manager::with_delta_placement`] on,
    /// a round where the hosted flows all priced within their degradation
    /// threshold re-homes only the offenders; otherwise — and on every
    /// periodic cadence round — the full engine runs, warm-started from
    /// the previous round's bases when [`Manager::with_warm_start`] is on.
    ///
    /// Returns the placement (for inspection) and the outgoing messages.
    pub fn run_placement(&mut self, now_ms: u64) -> (Placement, Vec<Envelope<ManagerMsg>>) {
        let _prof = self.obs.prof_scope("proto.placement_round");
        self.engine.refresh(&mut self.graph, MAX_DIRTY_FRACTION);
        let nmdb = self.snapshot();
        let (placement, out) = match self.try_delta_round(now_ms, &nmdb) {
            Some(delta) => delta,
            None => self.full_round(now_ms, &nmdb),
        };
        let round = self.placement_rounds;
        self.placement_rounds += 1;
        self.obs.counter_inc("proto.placement_rounds");
        let offers = out
            .iter()
            .filter(|e| matches!(e.msg, ManagerMsg::OffloadRequest { .. } | ManagerMsg::Rep { .. }))
            .count() as u32;
        self.obs.trace_at(now_ms, TraceEvent::PlacementRound { round, offers });
        (placement, out)
    }

    /// The whole-fleet solve (warm-started when enabled) plus offer
    /// fan-out — the classic placement round.
    fn full_round(&mut self, now_ms: u64, nmdb: &Nmdb) -> (Placement, Vec<Envelope<ManagerMsg>>) {
        let warm = if self.warm_enabled && !self.warm.is_empty() { Some(&self.warm) } else { None };
        // Unbounded cannot occur for well-formed placement instances;
        // fold it into the infeasible outcome like `dust_core::optimize`.
        let placement = optimize_with_path_warm(
            nmdb,
            &self.cfg,
            self.backend,
            &self.engine,
            SolvePath::Exact,
            warm,
        )
        .unwrap_or_else(|_| Placement {
            status: PlacementStatus::Infeasible,
            assignments: Vec::new(),
            beta: f64::NAN,
            busy: nmdb.busy_nodes(&self.cfg),
            candidates: nmdb.candidate_nodes(&self.cfg),
            cost_time: Duration::ZERO,
            solve_time: Duration::ZERO,
            shadow_prices: Vec::new(),
            partitions: 1,
            partition_fallback: false,
            warm: WarmState::default(),
            warm_used: false,
        });
        if self.warm_enabled && placement.status == PlacementStatus::Optimal {
            self.warm = placement.warm.clone();
        }
        let mut out = Vec::new();
        if placement.status == PlacementStatus::Optimal {
            let in_flight: BTreeSet<(NodeId, NodeId)> =
                self.hostings.values().filter(|h| !h.confirmed).map(|h| (h.from, h.to)).collect();
            for a in &placement.assignments {
                if in_flight.contains(&(a.from, a.to)) {
                    continue;
                }
                let request = self.fresh_request();
                let data_mb = nmdb.state(a.from).data_mb;
                self.hostings.insert(
                    request,
                    Hosting {
                        from: a.from,
                        to: a.to,
                        amount: a.amount,
                        confirmed: false,
                        data_mb,
                        route: a.route.clone(),
                        offered_ms: now_ms,
                        attempts: 1,
                        t_rmin: a.t_rmin,
                        rep_failed: None,
                        orig_request: None,
                    },
                );
                self.obs.counter_inc("proto.offers_sent");
                self.obs.trace_at(
                    now_ms,
                    TraceEvent::Offer { request: request.0, from: a.from.0, to: a.to.0 },
                );
                out.push(Envelope {
                    to: a.to,
                    msg: ManagerMsg::OffloadRequest {
                        request,
                        from: a.from,
                        amount: a.amount,
                        data_mb,
                        route: a.route.clone(),
                    },
                });
            }
        }
        (placement, out)
    }

    /// The delta path: when every current Busy node already appears in
    /// the hosting ledger — as a flow's source, or as a destination whose
    /// flows the delta round can carry away — price just the hosted
    /// (from → candidate) rows, find the hostings whose fresh `T_rmin`
    /// degraded past the threshold, and re-home only those through a
    /// residual transportation subproblem. A busy *destination* needs no
    /// special case: it has left the candidate set, so every flow hosted
    /// on it prices to `INFINITY` and is re-homed. Returns `None` when
    /// the full engine must run instead: delta placement off, a periodic
    /// cadence round, no confirmed hostings, a Busy node the ledger has
    /// never seen (new excess), no candidates, or a residual solve that
    /// did not reach optimality.
    fn try_delta_round(
        &mut self,
        now_ms: u64,
        nmdb: &Nmdb,
    ) -> Option<(Placement, Vec<Envelope<ManagerMsg>>)> {
        let threshold = self.delta_threshold?;
        if self.placement_rounds.is_multiple_of(self.delta_full_every) {
            return None;
        }
        let confirmed: Vec<RequestId> =
            self.hostings.iter().filter(|(_, h)| h.confirmed).map(|(r, _)| *r).collect();
        if confirmed.is_empty() {
            return None;
        }
        let busy = nmdb.busy_nodes(&self.cfg);
        let candidates = nmdb.candidate_nodes(&self.cfg);
        if candidates.is_empty() {
            return None;
        }
        let hosted_from: BTreeSet<NodeId> =
            confirmed.iter().map(|r| self.hostings[r].from).collect();
        let hosted_to: BTreeSet<NodeId> = confirmed.iter().map(|r| self.hostings[r].to).collect();
        // a Busy node absent from the ledger has excess only the full
        // engine can place; a busy source or host is delta material
        if busy.iter().any(|b| !hosted_from.contains(b) && !hosted_to.contains(b)) {
            return None;
        }

        // ---- fresh T_rmin over the hosted rows only -----------------------
        let t0 = Instant::now();
        let froms: Vec<NodeId> = hosted_from.into_iter().collect();
        let data: Vec<f64> = froms.iter().map(|&f| nmdb.state(f).data_mb).collect();
        let costs = self.engine.build_matrix(
            &nmdb.graph,
            &froms,
            &candidates,
            &data,
            self.cfg.max_hop,
            self.cfg.path_engine,
        );
        let cost_time = t0.elapsed();
        let row_of: BTreeMap<NodeId, usize> =
            froms.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let col_of: BTreeMap<NodeId, usize> =
            candidates.iter().enumerate().map(|(j, &n)| (n, j)).collect();

        let mut degraded: Vec<RequestId> = Vec::new();
        for &req in &confirmed {
            let h = &self.hostings[&req];
            let fresh = match col_of.get(&h.to) {
                // destination left the candidate set (overloaded or
                // reclassified): always worth re-homing
                None => f64::INFINITY,
                Some(&c) => costs.at(row_of[&h.from], c),
            };
            // NaN-aware: anything not provably within the tolerance
            // (including an incomparable NaN price) counts as degraded
            let within = matches!(
                fresh.partial_cmp(&(h.t_rmin * (1.0 + threshold))),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            );
            if !within {
                degraded.push(req);
            }
        }

        let t1 = Instant::now();
        let mut assignments: Vec<Assignment> = Vec::new();
        let mut beta = 0.0;
        let mut rehomes: Vec<(RequestId, Assignment)> = Vec::new();
        let mut keep_fresh: Vec<(RequestId, f64)> = Vec::new();
        if !degraded.is_empty() {
            // ---- residual subproblem over the degraded flows only ---------
            let supply: Vec<f64> = degraded.iter().map(|r| self.hostings[r].amount).collect();
            let capacity: Vec<f64> = candidates.iter().map(|&c| nmdb.cd(c, &self.cfg)).collect();
            let cost_rows: Vec<f64> = degraded
                .iter()
                .flat_map(|r| {
                    let row = row_of[&self.hostings[r].from];
                    (0..candidates.len()).map(move |c| (row, c))
                })
                .map(|(row, c)| costs.at(row, c))
                .collect();
            let tp = TransportProblem::new(supply, capacity, cost_rows);
            let sol = tp.solve_with_options(self.engine.obs(), &SolveOptions::default());
            if sol.status != TransportStatus::Optimal {
                // residual infeasible (e.g. candidates too full): let the
                // full engine reconcile the whole fleet this round
                return None;
            }
            const FLOW_TOL: f64 = 1e-7;
            for (i, &req) in degraded.iter().enumerate() {
                let h = &self.hostings[&req];
                let pieces: Vec<(usize, f64)> = (0..candidates.len())
                    .filter_map(|c| {
                        let x = sol.flow[i * candidates.len() + c];
                        (x > FLOW_TOL).then_some((c, x))
                    })
                    .collect();
                // the residual may re-pick the current destination — keep
                // the hosting and just rebaseline so the same drift does
                // not re-trigger every round
                if let [(c, x)] = pieces[..] {
                    if candidates[c] == h.to && (x - h.amount).abs() <= FLOW_TOL {
                        keep_fresh.push((req, costs.at(row_of[&h.from], c)));
                        continue;
                    }
                }
                for (c, x) in pieces {
                    let to = candidates[c];
                    let t_rmin = costs.at(row_of[&h.from], c);
                    let route = match self.cfg.path_engine {
                        PathEngine::Enumerate => {
                            min_inv_lu_enumerated(&nmdb.graph, h.from, to, self.cfg.max_hop)
                                .map(|(_, p)| p)
                        }
                        PathEngine::HopBoundedDp => {
                            min_inv_lu_dp_path(&nmdb.graph, h.from, to, self.cfg.max_hop)
                                .map(|(_, p)| p)
                        }
                    };
                    beta += x * t_rmin;
                    rehomes.push((req, Assignment { from: h.from, to, amount: x, t_rmin, route }));
                }
            }
        }
        let solve_time = t1.elapsed();

        // ---- commit: this round is a delta round --------------------------
        self.delta_rounds += 1;
        self.obs.counter_inc("proto.delta_rounds");
        self.obs.trace_at(
            now_ms,
            TraceEvent::DeltaRound {
                round: self.placement_rounds,
                checked: confirmed.len() as u32,
                degraded: degraded.len() as u32,
            },
        );
        for (req, fresh) in keep_fresh {
            if let Some(h) = self.hostings.get_mut(&req) {
                h.t_rmin = fresh;
            }
        }
        let mut out = Vec::new();
        let mut released: BTreeMap<RequestId, NodeId> = BTreeMap::new();
        let in_flight: BTreeSet<(NodeId, NodeId)> =
            self.hostings.values().filter(|h| !h.confirmed).map(|h| (h.from, h.to)).collect();
        for (old_req, a) in rehomes {
            if let std::collections::btree_map::Entry::Vacant(slot) = released.entry(old_req) {
                if let Some(old) = self.hostings.remove(&old_req) {
                    slot.insert(old.to);
                    out.push(self.send_release(now_ms, old.to, old_req));
                }
            }
            let old_to = released.get(&old_req).copied().unwrap_or(NodeId(u32::MAX));
            if in_flight.contains(&(a.from, a.to)) {
                continue;
            }
            let request = self.fresh_request();
            let data_mb = nmdb.state(a.from).data_mb;
            self.hostings.insert(
                request,
                Hosting {
                    from: a.from,
                    to: a.to,
                    amount: a.amount,
                    confirmed: false,
                    data_mb,
                    route: a.route.clone(),
                    offered_ms: now_ms,
                    attempts: 1,
                    t_rmin: a.t_rmin,
                    rep_failed: None,
                    orig_request: None,
                },
            );
            self.flows_rehomed += 1;
            self.obs.counter_inc("proto.flows_rehomed");
            self.obs.counter_inc("proto.offers_sent");
            self.obs.trace_at(
                now_ms,
                TraceEvent::Rehome {
                    request: request.0,
                    old: old_req.0,
                    from: a.from.0,
                    old_to: old_to.0,
                    new_to: a.to.0,
                },
            );
            self.obs.trace_at(
                now_ms,
                TraceEvent::Offer { request: request.0, from: a.from.0, to: a.to.0 },
            );
            out.push(Envelope {
                to: a.to,
                msg: ManagerMsg::OffloadRequest {
                    request,
                    from: a.from,
                    amount: a.amount,
                    data_mb,
                    route: a.route.clone(),
                },
            });
            assignments.push(a);
        }

        let placement = Placement {
            status: PlacementStatus::Optimal,
            assignments,
            beta,
            busy,
            candidates,
            cost_time,
            solve_time,
            shadow_prices: Vec::new(),
            partitions: 1,
            partition_fallback: false,
            warm: WarmState::default(),
            warm_used: false,
        };
        Some((placement, out))
    }

    /// Periodic maintenance: offer expiry/retransmit for unconfirmed
    /// hostings, replica substitution for silent destinations (§III-C),
    /// `Release` for Busy nodes whose demand dropped enough to reclaim
    /// local resources (§III-B), and `Release` retransmits.
    pub fn tick(&mut self, now_ms: u64) -> Vec<Envelope<ManagerMsg>> {
        let _prof = self.obs.prof_scope("proto.manager_tick");
        let mut out = Vec::new();

        // --- offer expiry: retransmit or abandon unconfirmed offers -------
        let expired: Vec<RequestId> = self
            .hostings
            .iter()
            .filter(|(_, h)| !h.confirmed)
            .filter(|(_, h)| {
                now_ms.saturating_sub(h.offered_ms) >= backoff(self.offer_timeout_ms, h.attempts)
            })
            .map(|(r, _)| *r)
            .collect();
        for req in expired {
            let Some(attempts) = self.hostings.get(&req).map(|h| h.attempts) else { continue };
            if attempts >= MAX_OFFER_ATTEMPTS {
                // Abandon: the destination never confirmed. Its ACK may
                // have been lost after it accepted, so send a clean-up
                // Release; a REP that never landed additionally hands the
                // workload back to its owner under the old request id.
                let Some(h) = self.hostings.remove(&req) else { continue };
                self.offers_abandoned += 1;
                self.obs.counter_inc("proto.offers_abandoned");
                self.obs.trace_at(now_ms, TraceEvent::Abandon { request: req.0 });
                out.push(self.send_release(now_ms, h.to, req));
                if h.rep_failed.is_some() {
                    if let Some(orig) = h.orig_request {
                        out.push(self.send_release(now_ms, h.from, orig));
                    }
                    self.orphaned.push(h);
                }
            } else {
                let Some(h) = self.hostings.get_mut(&req) else { continue };
                self.offer_retries += 1;
                h.attempts += 1;
                h.offered_ms = now_ms;
                self.obs.counter_inc("proto.offer_retransmits");
                self.obs.trace_at(
                    now_ms,
                    TraceEvent::Retransmit { request: req.0, attempt: h.attempts },
                );
                let msg = match h.rep_failed {
                    Some(failed) => ManagerMsg::Rep {
                        request: req,
                        failed,
                        from: h.from,
                        amount: h.amount,
                        data_mb: h.data_mb,
                        route: h.route.clone(),
                    },
                    None => ManagerMsg::OffloadRequest {
                        request: req,
                        from: h.from,
                        amount: h.amount,
                        data_mb: h.data_mb,
                        route: h.route.clone(),
                    },
                };
                out.push(Envelope { to: h.to, msg });
            }
        }

        // --- keepalive timeouts → REP -------------------------------------
        let failed_dests: Vec<NodeId> = self
            .hostings
            .values()
            .filter(|h| h.confirmed)
            .map(|h| h.to)
            .filter(|to| {
                let rec = self.registry.get(to);
                match rec.and_then(|r| r.last_keepalive) {
                    Some(t) => now_ms.saturating_sub(t) > self.keepalive_timeout_ms,
                    None => true,
                }
            })
            .collect();
        for failed in failed_dests {
            // re-home every hosting on the failed destination
            let affected: Vec<RequestId> = self
                .hostings
                .iter()
                .filter(|(_, h)| h.to == failed && h.confirmed)
                .map(|(r, _)| *r)
                .collect();
            for req in affected {
                let Some(hosting) = self.hostings.remove(&req) else { continue };
                match self.pick_replacement(now_ms, failed, hosting.amount) {
                    Some(replacement) => {
                        let new_req = self.fresh_request();
                        // a fresh controllable route — the old one ran to
                        // the failed destination and is useless now
                        let priced = min_inv_lu_dp_path(
                            &self.graph,
                            hosting.from,
                            replacement,
                            self.cfg.max_hop,
                        );
                        let t_rmin = priced
                            .as_ref()
                            .map_or(f64::INFINITY, |(inv_lu, _)| hosting.data_mb * inv_lu);
                        let route = priced.map(|(_, p)| p);
                        self.hostings.insert(
                            new_req,
                            Hosting {
                                from: hosting.from,
                                to: replacement,
                                amount: hosting.amount,
                                confirmed: false,
                                data_mb: hosting.data_mb,
                                route: route.clone(),
                                offered_ms: now_ms,
                                attempts: 1,
                                t_rmin,
                                rep_failed: Some(failed),
                                orig_request: Some(req),
                            },
                        );
                        // "the malfunctioning destination-node is diagnosed
                        // and substituted with a replica node. Manager
                        // notifies this node by sending it a REP message."
                        // A REP opens a fresh offer: it counts toward
                        // `proto.offers_sent` so the offer ledger balances.
                        self.obs.counter_inc("proto.offers_sent");
                        self.obs.counter_inc("proto.reps_sent");
                        self.obs.trace_at(
                            now_ms,
                            TraceEvent::Rep {
                                request: new_req.0,
                                orig: req.0,
                                failed: failed.0,
                                to: replacement.0,
                            },
                        );
                        out.push(Envelope {
                            to: replacement,
                            msg: ManagerMsg::Rep {
                                request: new_req,
                                failed,
                                from: hosting.from,
                                amount: hosting.amount,
                                data_mb: hosting.data_mb,
                                route,
                            },
                        });
                    }
                    None => {
                        // No replica fits: hand the workload back to its
                        // owner so monitoring resumes locally rather than
                        // silently stalling on a dead destination.
                        self.obs.counter_inc("proto.hostings_orphaned");
                        out.push(self.send_release(now_ms, hosting.from, req));
                        self.orphaned.push(hosting);
                    }
                }
            }
            // forget the stale keepalive so we don't re-trigger forever
            if let Some(rec) = self.registry.get_mut(&failed) {
                rec.last_keepalive = None;
            }
        }

        // --- reclaim: Busy node could run everything locally again --------
        // Only a *fresh* STAT may trigger a reclaim: firing a Release off a
        // stale report from a dead Busy node would end a hosting that is
        // still carrying real load.
        let reclaimable: Vec<RequestId> = self
            .hostings
            .iter()
            .filter(|(_, h)| h.confirmed)
            .filter(|(_, h)| {
                let total_hosted_for: f64 = self
                    .hostings
                    .values()
                    .filter(|x| x.from == h.from && x.confirmed)
                    .map(|x| x.amount)
                    .sum();
                match self.registry.get(&h.from).and_then(|r| r.last_stat) {
                    Some((t, util, _)) => {
                        now_ms.saturating_sub(t) <= self.keepalive_timeout_ms
                            && util + total_hosted_for <= self.cfg.c_max
                    }
                    None => false,
                }
            })
            .map(|(r, _)| *r)
            .collect();
        for req in reclaimable {
            let Some(h) = self.hostings.remove(&req) else { continue };
            self.obs.counter_inc("proto.reclaims");
            self.obs.trace_at(now_ms, TraceEvent::Reclaim { request: req.0, node: h.from.0 });
            out.push(self.send_release(now_ms, h.to, req));
        }

        // --- Release retransmits ------------------------------------------
        let due: Vec<RequestId> = self
            .releases
            .iter()
            .filter(|(_, r)| {
                now_ms.saturating_sub(r.sent_ms) >= backoff(self.offer_timeout_ms, r.attempts)
            })
            .map(|(r, _)| *r)
            .collect();
        for req in due {
            let Some(r) = self.releases.get_mut(&req) else { continue };
            if r.attempts >= MAX_RELEASE_ATTEMPTS {
                self.releases.remove(&req);
            } else {
                r.attempts += 1;
                r.sent_ms = now_ms;
                let to = r.to;
                self.obs.counter_inc("proto.release_retransmits");
                self.obs.trace_at(now_ms, TraceEvent::ReleaseSent { request: req.0, to: to.0 });
                out.push(Envelope { to, msg: ManagerMsg::Release { request: req } });
            }
        }

        out
    }

    /// Choose a replica destination: the capable node with the most recent
    /// STAT headroom below `CO_max`, excluding the failed node. Nodes whose
    /// last STAT is older than the keepalive timeout are presumed dead and
    /// skipped — a stale record must not become the replica.
    fn pick_replacement(&self, now_ms: u64, failed: NodeId, amount: f64) -> Option<NodeId> {
        let committed = |n: NodeId| -> f64 {
            self.hostings.values().filter(|h| h.to == n).map(|h| h.amount).sum()
        };
        self.registry
            .iter()
            .filter(|(n, rec)| **n != failed && rec.capable)
            .filter_map(|(n, rec)| rec.last_stat.map(|(t, u, _)| (*n, t, u)))
            .filter(|(_, t, _)| now_ms.saturating_sub(*t) <= self.keepalive_timeout_ms)
            .map(|(n, _, u)| (n, u))
            .map(|(n, u)| (n, u + committed(n)))
            .filter(|(_, load)| load + amount <= self.cfg.co_max)
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(n, _)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dust_topology::{topologies, Link};

    fn manager_on_line(n: usize) -> Manager {
        Manager::new(
            topologies::line(n, Link::default()),
            DustConfig::paper_defaults(),
            SolverBackend::Transportation,
            1000,
            3000,
        )
        .unwrap()
    }

    fn register_and_stat(m: &mut Manager, node: NodeId, util: f64) {
        let acks = m.handle(0, &ClientMsg::OffloadCapable { node, capable: true });
        assert_eq!(acks.len(), 1);
        m.handle(0, &ClientMsg::Stat { node, utilization: util, data_mb: 50.0 });
    }

    fn first_request(msgs: &[Envelope<ManagerMsg>]) -> RequestId {
        match &msgs[0].msg {
            ManagerMsg::OffloadRequest { request, .. } => *request,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn registration_gets_ack_with_interval() {
        let mut m = manager_on_line(2);
        let out = m.handle(0, &ClientMsg::OffloadCapable { node: NodeId(0), capable: true });
        assert_eq!(out[0].to, NodeId(0));
        assert_eq!(out[0].msg, ManagerMsg::Ack { update_interval_ms: 1000 });
    }

    #[test]
    fn duplicate_registration_keeps_stat_history() {
        let mut m = manager_on_line(2);
        register_and_stat(&mut m, NodeId(0), 42.0);
        // retransmitted registration (the client never saw the ACK)
        let out = m.handle(500, &ClientMsg::OffloadCapable { node: NodeId(0), capable: true });
        assert_eq!(out.len(), 1, "must re-ACK");
        let rec = m.registry()[&NodeId(0)];
        assert!(rec.last_stat.is_some(), "STAT history must survive re-registration");
    }

    #[test]
    fn snapshot_reflects_stats_and_ignorance() {
        let mut m = manager_on_line(3);
        register_and_stat(&mut m, NodeId(0), 90.0);
        // node 1 registered but silent; node 2 never registered
        m.handle(0, &ClientMsg::OffloadCapable { node: NodeId(1), capable: true });
        let db = m.snapshot();
        assert_eq!(db.state(NodeId(0)).utilization, 90.0);
        assert!(!db.state(NodeId(1)).offload_capable, "silent node must not be placed on");
        assert!(!db.state(NodeId(2)).offload_capable);
    }

    #[test]
    fn placement_emits_offload_requests() {
        let mut m = manager_on_line(2);
        register_and_stat(&mut m, NodeId(0), 90.0);
        register_and_stat(&mut m, NodeId(1), 20.0);
        assert!(m.busy_detected());
        let (placement, msgs) = m.run_placement(100);
        assert_eq!(placement.status, PlacementStatus::Optimal);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].to, NodeId(1));
        match &msgs[0].msg {
            ManagerMsg::OffloadRequest { from, amount, .. } => {
                assert_eq!(*from, NodeId(0));
                assert!((amount - 10.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(m.hostings().len(), 1);
        assert!(!m.hostings().values().next().unwrap().confirmed);
    }

    #[test]
    fn placement_skips_in_flight_offers() {
        let mut m = manager_on_line(2);
        register_and_stat(&mut m, NodeId(0), 90.0);
        register_and_stat(&mut m, NodeId(1), 20.0);
        let (_, msgs) = m.run_placement(100);
        assert_eq!(msgs.len(), 1);
        // same round again while the first offer is still unconfirmed:
        // no duplicate offer for the same (from, to) pair
        let (_, msgs2) = m.run_placement(200);
        assert!(msgs2.is_empty(), "{msgs2:?}");
        assert_eq!(m.hostings().len(), 1);
    }

    #[test]
    fn unconfirmed_offer_retransmits_then_abandons() {
        let mut m = manager_on_line(2);
        register_and_stat(&mut m, NodeId(0), 90.0);
        register_and_stat(&mut m, NodeId(1), 20.0);
        let (_, msgs) = m.run_placement(0);
        let req = first_request(&msgs);
        // before the offer timeout (2 × update interval): silence
        assert!(m.tick(1_000).is_empty());
        // past it: the same request id is retransmitted
        let mut now = 2_000u64;
        let out = m.tick(now);
        assert_eq!(out.len(), 1);
        assert_eq!(first_request(&out), req, "retry reuses the request id");
        assert_eq!(m.offer_retries(), 1);
        // keep the destination silent through every backoff stage
        let mut retries = 1;
        while m.hostings().contains_key(&req) {
            now += 40_000; // beyond any backoff stage
            let out = m.tick(now);
            if m.hostings().contains_key(&req) {
                assert_eq!(first_request(&out), req);
                retries += 1;
            } else {
                // abandoned: a clean-up Release goes to the destination
                assert!(matches!(out[0].msg, ManagerMsg::Release { request } if request == req));
            }
        }
        assert_eq!(retries, MAX_OFFER_ATTEMPTS - 1, "retries beyond the original send");
        assert_eq!(m.offers_abandoned(), 1);
        assert!(m.hostings().is_empty(), "no zombie unconfirmed hosting may leak");
    }

    #[test]
    fn ack_confirms_hosting_and_refusal_drops_it() {
        let mut m = manager_on_line(2);
        register_and_stat(&mut m, NodeId(0), 90.0);
        register_and_stat(&mut m, NodeId(1), 20.0);
        let (_, msgs) = m.run_placement(100);
        let req = first_request(&msgs);
        m.handle(150, &ClientMsg::OffloadAck { node: NodeId(1), request: req, accept: true });
        assert!(m.hostings()[&req].confirmed);

        // a refusal on a fresh round drops the arrangement
        register_and_stat(&mut m, NodeId(0), 95.0);
        let (_, msgs2) = m.run_placement(200);
        let req2 = first_request(&msgs2);
        m.handle(250, &ClientMsg::OffloadAck { node: NodeId(1), request: req2, accept: false });
        assert!(!m.hostings().contains_key(&req2));
    }

    #[test]
    fn ack_from_wrong_sender_is_ignored() {
        let mut m = manager_on_line(3);
        register_and_stat(&mut m, NodeId(0), 90.0);
        register_and_stat(&mut m, NodeId(1), 20.0);
        register_and_stat(&mut m, NodeId(2), 30.0);
        let (_, msgs) = m.run_placement(0);
        let req = first_request(&msgs);
        let dest = msgs[0].to;
        let impostor = if dest == NodeId(2) { NodeId(1) } else { NodeId(2) };
        // an accept from the wrong node must not confirm the hosting …
        m.handle(10, &ClientMsg::OffloadAck { node: impostor, request: req, accept: true });
        assert!(!m.hostings()[&req].confirmed);
        // … and a refusal from the wrong node must not drop it
        m.handle(20, &ClientMsg::OffloadAck { node: impostor, request: req, accept: false });
        assert!(m.hostings().contains_key(&req));
        // the real destination still closes the handshake
        m.handle(30, &ClientMsg::OffloadAck { node: dest, request: req, accept: true });
        assert!(m.hostings()[&req].confirmed);
    }

    #[test]
    fn stray_accept_for_unknown_request_draws_release() {
        let mut m = manager_on_line(2);
        register_and_stat(&mut m, NodeId(0), 90.0);
        let out = m.handle(
            10,
            &ClientMsg::OffloadAck { node: NodeId(1), request: RequestId(999), accept: true },
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, NodeId(1));
        assert_eq!(out[0].msg, ManagerMsg::Release { request: RequestId(999) });
        // a stray refusal draws nothing
        let out = m.handle(
            20,
            &ClientMsg::OffloadAck { node: NodeId(1), request: RequestId(998), accept: false },
        );
        assert!(out.is_empty());
    }

    #[test]
    fn keepalive_timeout_triggers_rep_with_volume_and_route() {
        let mut m = manager_on_line(3);
        register_and_stat(&mut m, NodeId(0), 90.0); // busy
        register_and_stat(&mut m, NodeId(1), 20.0); // destination
        register_and_stat(&mut m, NodeId(2), 10.0); // future replica
        let (_, msgs) = m.run_placement(0);
        let req = first_request(&msgs);
        m.handle(10, &ClientMsg::OffloadAck { node: NodeId(1), request: req, accept: true });
        m.handle(500, &ClientMsg::Keepalive { node: NodeId(1) });
        // within timeout: nothing
        assert!(m.tick(2000).is_empty());
        // keep node 2's STAT fresh so it qualifies as the replica
        m.handle(3500, &ClientMsg::Stat { node: NodeId(2), utilization: 10.0, data_mb: 50.0 });
        // silent past the 3000ms timeout → REP to node 2
        let out = m.tick(4000);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, NodeId(2));
        match &out[0].msg {
            ManagerMsg::Rep { failed, from, amount, data_mb, route, .. } => {
                assert_eq!(*failed, NodeId(1));
                assert_eq!(*from, NodeId(0));
                assert!((amount - 10.0).abs() < 1e-6);
                assert_eq!(*data_mb, 50.0, "REP must carry the telemetry volume");
                let route = route.as_ref().expect("REP must carry a fresh route");
                assert_eq!(route.nodes.first(), Some(&NodeId(0)));
                assert_eq!(route.nodes.last(), Some(&NodeId(2)));
            }
            other => panic!("{other:?}"),
        }
        // hosting re-homed to node 2
        assert!(m.hostings().values().any(|h| h.to == NodeId(2)));
        assert!(!m.hostings().values().any(|h| h.to == NodeId(1)));
    }

    #[test]
    fn orphaned_when_no_replacement_fits() {
        let mut m = manager_on_line(2);
        register_and_stat(&mut m, NodeId(0), 90.0);
        register_and_stat(&mut m, NodeId(1), 20.0);
        let (_, msgs) = m.run_placement(0);
        let req = first_request(&msgs);
        m.handle(10, &ClientMsg::OffloadAck { node: NodeId(1), request: req, accept: true });
        // only possible replacement is the busy node itself at 90% — no fit:
        // the hosting is orphaned and the owner is told to reclaim locally
        let out = m.tick(10_000);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, NodeId(0));
        assert_eq!(out[0].msg, ManagerMsg::Release { request: req });
        assert_eq!(m.orphaned().len(), 1);
        assert!(m.hostings().is_empty());
    }

    #[test]
    fn release_when_busy_node_recovers() {
        let mut m = manager_on_line(2);
        register_and_stat(&mut m, NodeId(0), 90.0);
        register_and_stat(&mut m, NodeId(1), 20.0);
        let (_, msgs) = m.run_placement(0);
        let req = first_request(&msgs);
        m.handle(10, &ClientMsg::OffloadAck { node: NodeId(1), request: req, accept: true });
        m.handle(20, &ClientMsg::Keepalive { node: NodeId(1) });
        // busy node now reports 60%: 60 + 10 hosted = 70 <= c_max (80) → release
        m.handle(1000, &ClientMsg::Stat { node: NodeId(0), utilization: 60.0, data_mb: 50.0 });
        let out = m.tick(1100);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, NodeId(1));
        assert_eq!(out[0].msg, ManagerMsg::Release { request: req });
        assert!(m.hostings().is_empty());
    }

    #[test]
    fn releases_retransmit_with_backoff_then_stop() {
        let mut m = manager_on_line(2);
        register_and_stat(&mut m, NodeId(0), 90.0);
        register_and_stat(&mut m, NodeId(1), 20.0);
        let (_, msgs) = m.run_placement(0);
        let req = first_request(&msgs);
        m.handle(10, &ClientMsg::OffloadAck { node: NodeId(1), request: req, accept: true });
        m.handle(20, &ClientMsg::Keepalive { node: NodeId(1) });
        m.handle(1000, &ClientMsg::Stat { node: NodeId(0), utilization: 60.0, data_mb: 50.0 });
        assert_eq!(m.tick(1100).len(), 1); // the Release itself
        assert_eq!(m.pending_releases(), vec![req]);
        // the Release keeps retransmitting with backoff until the cap
        let mut copies = 0;
        let mut now = 1100u64;
        while !m.pending_releases().is_empty() {
            now += 40_000;
            // refresh node 0's STAT so the loop only exercises retransmits
            m.handle(now, &ClientMsg::Stat { node: NodeId(0), utilization: 60.0, data_mb: 50.0 });
            copies += m
                .tick(now)
                .iter()
                .filter(|e| matches!(e.msg, ManagerMsg::Release { request } if request == req))
                .count();
        }
        assert_eq!(copies, (MAX_RELEASE_ATTEMPTS - 1) as usize);
    }

    #[test]
    fn no_release_while_demand_still_high() {
        let mut m = manager_on_line(2);
        register_and_stat(&mut m, NodeId(0), 90.0);
        register_and_stat(&mut m, NodeId(1), 20.0);
        let (_, msgs) = m.run_placement(0);
        let req = first_request(&msgs);
        m.handle(10, &ClientMsg::OffloadAck { node: NodeId(1), request: req, accept: true });
        m.handle(20, &ClientMsg::Keepalive { node: NodeId(1) });
        // post-offload STAT shows 80 (= c_max): 80 + 10 > 80 → keep hosting
        m.handle(1000, &ClientMsg::Stat { node: NodeId(0), utilization: 80.0, data_mb: 50.0 });
        assert!(m.tick(1100).is_empty());
        assert_eq!(m.hostings().len(), 1);
    }

    #[test]
    fn no_reclaim_off_stale_stat() {
        let mut m = manager_on_line(2);
        register_and_stat(&mut m, NodeId(0), 90.0);
        register_and_stat(&mut m, NodeId(1), 20.0);
        let (_, msgs) = m.run_placement(0);
        let req = first_request(&msgs);
        m.handle(10, &ClientMsg::OffloadAck { node: NodeId(1), request: req, accept: true });
        // node 0 recovers… then dies. Its last STAT (60%) goes stale.
        m.handle(1000, &ClientMsg::Stat { node: NodeId(0), utilization: 60.0, data_mb: 50.0 });
        // keep the destination's keepalives flowing so only staleness matters
        m.handle(8000, &ClientMsg::Keepalive { node: NodeId(1) });
        // 8s later the 60% reading is far older than the keepalive timeout:
        // the reclaim path must NOT fire a Release off it
        let out = m.tick(9000);
        assert!(
            !out.iter().any(|e| matches!(e.msg, ManagerMsg::Release { .. })),
            "stale STAT fired a Release: {out:?}"
        );
        assert_eq!(m.hostings().len(), 1);
    }

    #[test]
    fn non_capable_registration_excluded_from_placement() {
        let mut m = manager_on_line(2);
        m.handle(0, &ClientMsg::OffloadCapable { node: NodeId(0), capable: true });
        m.handle(0, &ClientMsg::Stat { node: NodeId(0), utilization: 90.0, data_mb: 10.0 });
        m.handle(0, &ClientMsg::OffloadCapable { node: NodeId(1), capable: false });
        m.handle(0, &ClientMsg::Stat { node: NodeId(1), utilization: 10.0, data_mb: 10.0 });
        let (placement, msgs) = m.run_placement(10);
        assert_eq!(placement.status, PlacementStatus::Infeasible, "no willing destination");
        assert!(msgs.is_empty());
    }

    // ---- warm-started and delta rounds -----------------------------------

    /// Busy hub 0 with two leaf candidates: 0—1 over a hot (cheap) link,
    /// 0—2 over a cold (expensive) one. Returns the manager plus both
    /// edge ids so tests can drift the links.
    fn churn_manager() -> (Manager, dust_topology::EdgeId, dust_topology::EdgeId) {
        let mut g = Graph::with_nodes(3);
        let e1 = g.add_edge(NodeId(0), NodeId(1), Link::new(10_000.0, 0.9));
        let e2 = g.add_edge(NodeId(0), NodeId(2), Link::new(10_000.0, 0.05));
        let m = Manager::new(
            g,
            DustConfig::paper_defaults(),
            SolverBackend::Transportation,
            1000,
            3000,
        )
        .unwrap();
        (m, e1, e2)
    }

    #[test]
    fn warm_start_reuses_bases_across_rounds() {
        let (m, _, _) = churn_manager();
        let mut m = m.with_warm_start(true);
        let obs = ObsHandle::recording(0);
        m.set_obs(obs.clone());
        register_and_stat(&mut m, NodeId(0), 92.0);
        register_and_stat(&mut m, NodeId(1), 20.0);
        register_and_stat(&mut m, NodeId(2), 20.0);
        let (p1, _) = m.run_placement(0);
        assert_eq!(p1.status, PlacementStatus::Optimal);
        assert!(!p1.warm_used, "nothing to reuse on the first round");
        let (p2, _) = m.run_placement(1000);
        assert!(p2.warm_used, "second round over an unchanged fleet must go warm");
        assert!((p2.beta - p1.beta).abs() <= 1e-9 * (1.0 + p1.beta.abs()));
        assert_eq!(obs.counter("lp.warm_solves"), 1);
        assert!(obs.counter("lp.pivots_saved") > 0);
    }

    #[test]
    fn delta_round_skips_the_full_solve_when_nothing_degraded() {
        let (m, _, _) = churn_manager();
        let mut m = m.with_delta_placement(0.25, 100).unwrap();
        let obs = ObsHandle::recording(0);
        m.set_obs(obs.clone());
        register_and_stat(&mut m, NodeId(0), 92.0);
        register_and_stat(&mut m, NodeId(1), 20.0);
        register_and_stat(&mut m, NodeId(2), 20.0);
        let (_, msgs) = m.run_placement(0); // round 0: full by cadence
        let req = first_request(&msgs);
        m.handle(10, &ClientMsg::OffloadAck { node: NodeId(1), request: req, accept: true });
        let placements_before = obs.counter("core.placements");
        let (p, out) = m.run_placement(1000);
        assert_eq!(m.delta_rounds(), 1);
        assert_eq!(obs.counter("proto.delta_rounds"), 1);
        assert_eq!(p.status, PlacementStatus::Optimal);
        assert!(p.assignments.is_empty(), "healthy flows must not be re-homed");
        assert!(out.is_empty());
        assert_eq!(
            obs.counter("core.placements"),
            placements_before,
            "the full placement engine must stay cold on a healthy delta round"
        );
    }

    #[test]
    fn delta_round_rehomes_a_degraded_flow() {
        let (m, e1, e2) = churn_manager();
        let mut m = m.with_delta_placement(0.25, 100).unwrap();
        let obs = ObsHandle::recording(0);
        m.set_obs(obs.clone());
        register_and_stat(&mut m, NodeId(0), 92.0);
        register_and_stat(&mut m, NodeId(1), 20.0);
        register_and_stat(&mut m, NodeId(2), 20.0);
        let (p0, msgs) = m.run_placement(0);
        assert_eq!(p0.status, PlacementStatus::Optimal);
        assert_eq!(p0.assignments[0].to, NodeId(1), "hot link must win the full round");
        let req = first_request(&msgs);
        m.handle(10, &ClientMsg::OffloadAck { node: NodeId(1), request: req, accept: true });
        // drift: the 0—1 link empties out (Lu collapses → cost explodes)
        // while 0—2 heats up and becomes the cheap route
        m.graph_mut().link_mut(e1).utilization = 0.001;
        m.graph_mut().link_mut(e2).utilization = 0.9;
        let (p, out) = m.run_placement(1000);
        assert_eq!(m.delta_rounds(), 1);
        assert_eq!(m.flows_rehomed(), 1);
        assert_eq!(obs.counter("proto.flows_rehomed"), 1);
        assert_eq!(p.assignments.len(), 1);
        assert_eq!(p.assignments[0].to, NodeId(2), "the flow must re-home to the hot link");
        assert!(
            out.iter().any(|e| matches!(e.msg, ManagerMsg::Release { request } if request == req)),
            "the degraded hosting must be released: {out:?}"
        );
        assert!(out
            .iter()
            .any(|e| e.to == NodeId(2) && matches!(e.msg, ManagerMsg::OffloadRequest { .. })));
        let trace = obs.trace_snapshot().unwrap();
        assert!(trace
            .entries()
            .iter()
            .any(|t| matches!(t.event, TraceEvent::Rehome { old_to: 1, new_to: 2, .. })));
        assert!(trace
            .entries()
            .iter()
            .any(|t| matches!(t.event, TraceEvent::DeltaRound { checked: 1, degraded: 1, .. })));
    }

    #[test]
    fn delta_cadence_forces_periodic_full_rounds() {
        let (m, _, _) = churn_manager();
        let mut m = m.with_delta_placement(0.25, 2).unwrap().with_warm_start(true);
        let obs = ObsHandle::recording(0);
        m.set_obs(obs.clone());
        register_and_stat(&mut m, NodeId(0), 92.0);
        register_and_stat(&mut m, NodeId(1), 20.0);
        register_and_stat(&mut m, NodeId(2), 20.0);
        let (_, msgs) = m.run_placement(0); // round 0: full
        let req = first_request(&msgs);
        m.handle(10, &ClientMsg::OffloadAck { node: NodeId(1), request: req, accept: true });
        m.run_placement(1000); // round 1: delta (1 % 2 != 0)
        m.run_placement(2000); // round 2: full by cadence, warm-started
        assert_eq!(m.placement_rounds(), 3);
        assert_eq!(m.delta_rounds(), 1);
        assert!(obs.counter("core.placements") >= 2, "cadence round must run the engine");
        assert_eq!(obs.counter("lp.warm_solves"), 1, "cadence full round reuses round 0's basis");
    }

    #[test]
    fn delta_knobs_reject_bad_configs() {
        let (m, _, _) = churn_manager();
        assert!(m.clone().with_delta_placement(-0.1, 4).is_err());
        assert!(m.clone().with_delta_placement(f64::NAN, 4).is_err());
        assert!(m.with_delta_placement(0.2, 0).is_err());
    }
}
