//! The DUST wire protocol: every message named in §III-B/§III-C.
//!
//! Client → Manager: `Offload-capable`, periodic `STAT`, `Offload-ACK`,
//! destination `Keepalive`. Manager → Client: `ACK` (carrying the
//! Update-Interval Time), `Offload-Request`, and `REP` (replica
//! substitution after a destination failure).
//!
//! All messages are plain serde-serializable data so any transport (gRPC,
//! REST, in-process channels in the simulator) can carry them.

use dust_topology::{NodeId, Path};

/// Identifier correlating an `Offload-Request` with its `Offload-ACK`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// Messages a DUST-Client sends to the Manager.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Initial registration: `1` (true) volunteers the node for the
    /// offloading process, `0` marks it None-offloading (§III-B).
    OffloadCapable {
        /// Sender.
        node: NodeId,
        /// Willingness to participate.
        capable: bool,
    },
    /// Periodic resource report. "Client nodes send periodic STAT messages
    /// … regardless of their current status" (§III-B).
    Stat {
        /// Sender.
        node: NodeId,
        /// Utilized capacity `C_i`, percent.
        utilization: f64,
        /// Monitoring data volume `D_i`, Mb.
        data_mb: f64,
    },
    /// Acceptance (or refusal) of an `Offload-Request`.
    OffloadAck {
        /// Sender (the prospective destination).
        node: NodeId,
        /// Correlates with [`ManagerMsg::OffloadRequest`].
        request: RequestId,
        /// Whether the destination accepts the workload.
        accept: bool,
    },
    /// Destination-health heartbeat: an Offload-destination "needs to send
    /// Keepalive … and verify its offloading operational state" (§III-C).
    Keepalive {
        /// Sender.
        node: NodeId,
    },
}

/// Messages the DUST-Manager sends to a client.
#[derive(Debug, Clone, PartialEq)]
pub enum ManagerMsg {
    /// Registration acknowledgment carrying the Update-Interval Time that
    /// paces subsequent `STAT` messages (§III-B).
    Ack {
        /// STAT period in milliseconds.
        update_interval_ms: u64,
    },
    /// Instruction to host `amount` capacity-percent of monitoring workload
    /// from a Busy node, over the controllable route the optimizer chose.
    OffloadRequest {
        /// Correlation id.
        request: RequestId,
        /// The Busy node shedding load.
        from: NodeId,
        /// Capacity-percent to host.
        amount: f64,
        /// Monitoring data volume that will flow, Mb.
        data_mb: f64,
        /// Controllable route from the Busy node to this destination.
        route: Option<Path>,
    },
    /// Replica substitution after a destination failure: the recipient
    /// takes over hosting `from`'s workload from the failed node (§III-C).
    Rep {
        /// Correlation id of the replacement hosting arrangement.
        request: RequestId,
        /// The destination that stopped sending keepalives.
        failed: NodeId,
        /// The Busy node whose workload must be re-homed.
        from: NodeId,
        /// Capacity-percent to host.
        amount: f64,
        /// Monitoring data volume that will flow, Mb — without it the
        /// re-homed transfer would vanish from the flow model.
        data_mb: f64,
        /// Fresh controllable route from the Busy node to the replica.
        route: Option<Path>,
    },
    /// Release: the Busy node reclaimed local resources, hosting ends
    /// ("a Busy node \[can\] reclaim its local resources when they become
    /// available", §III-B).
    Release {
        /// Correlation id of the hosting arrangement being ended.
        request: RequestId,
    },
}

/// An addressed message in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// Destination node.
    pub to: NodeId,
    /// Payload.
    pub msg: M,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_order() {
        assert!(RequestId(1) < RequestId(2));
    }

    #[test]
    fn envelopes_carry_payloads() {
        let e = Envelope {
            to: NodeId(4),
            msg: ClientMsg::Stat { node: NodeId(1), utilization: 82.5, data_mb: 120.0 },
        };
        assert_eq!(e.to, NodeId(4));
        match &e.msg {
            ClientMsg::Stat { utilization, .. } => assert_eq!(*utilization, 82.5),
            other => panic!("wrong payload {other:?}"),
        }
        // Clone + PartialEq hold for all message kinds.
        let m = ManagerMsg::Rep {
            request: RequestId(7),
            failed: NodeId(2),
            from: NodeId(0),
            amount: 5.0,
            data_mb: 80.0,
            route: None,
        };
        assert_eq!(m.clone(), m);
    }
}
