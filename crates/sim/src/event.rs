//! The event-driven simulation core.
//!
//! Processes exactly the same typed [`SimEvent`] sequence as the tick
//! core in [`crate::runner`] — same `(time, seq)` order, same protocol
//! calls, same observability emissions — so golden-trace digests,
//! `--metrics-json` output, and every recorded metric series are
//! bit-identical between the two. The speed comes from *how* each
//! handler computes, never from reordering *what* happens:
//!
//! * **Lazy link application.** The tick core re-rolls a per-edge RNG
//!   over the whole graph at every STAT emission
//!   ([`TrafficModel::apply_to_links`] is a pure function of
//!   `(seed, time)`). The simulation's own graph copy is only ever read
//!   by flow evaluation at sample points, so the event core just records
//!   the last emission time and applies it on demand — an O(E) pass per
//!   *flow-bearing sample* instead of per emission, and never when no
//!   telemetry flow is routed.
//! * **Epoch-keyed node caches.** Per-agent CPU/memory walks are cached
//!   per node, keyed on [`SimNode::agents_epoch`] and the traffic
//!   fraction's bit pattern; only the burst-window arithmetic (a pure
//!   function of the cached sum and `now`) runs per event. The shared
//!   `*_from_raw` helpers on [`SimNode`] keep the arithmetic
//!   bit-identical with the uncached path.
//! * **Arena-style buffers.** STAT emission reuses one message buffer
//!   ([`dust_proto::Client::tick_into`]); the telemetry flow set is
//!   rebuilt only when the transfer ledger's version moves; liveness is
//!   a flat bitmap instead of a hash probe per node.

use crate::engine::EventQueue;
use crate::flows::{evaluate_flows, TelemetryFlow};
use crate::node::SimNode;
use crate::runner::{SimEvent, SimReport, Simulation};
use dust_proto::ClientMsg;

/// Per-node cached aggregates, invalidated by agent-ledger epoch (and
/// traffic fraction for the CPU/data sums, which depend on it).
#[derive(Debug, Clone, Default)]
struct NodeCache {
    /// Key of `raw_cpu`/`data_mb`: `(agents_epoch, traffic.to_bits())`.
    raw_key: Option<(u64, u64)>,
    raw_cpu: f64,
    data_mb: f64,
    /// Key of `mem_percent`: `agents_epoch` (memory is traffic-blind).
    mem_key: Option<u64>,
    mem_percent: f64,
}

/// Hot state owned by the event loop, outside the `Simulation` so the
/// borrow checker lets handlers mutate both independently.
struct HotState {
    cache: Vec<NodeCache>,
    /// `alive[i]` mirrors `!sim.dead.contains(node i)`.
    alive: Vec<bool>,
    /// Reused STAT/keepalive buffer.
    stat_buf: Vec<ClientMsg>,
    /// Flow arena: rebuilt only when `sim.active_version` moves.
    flows: Vec<TelemetryFlow>,
    flows_version: Option<u64>,
    /// Time of the latest STAT emission — the link state the graph
    /// *should* carry, applied lazily before flow evaluation.
    links_pending: Option<u64>,
    /// Time whose link state is actually applied to the graph.
    links_applied: Option<u64>,
}

impl HotState {
    fn new(n: usize) -> Self {
        HotState {
            cache: vec![NodeCache::default(); n],
            alive: vec![true; n],
            stat_buf: Vec::new(),
            flows: Vec::new(),
            flows_version: None,
            links_pending: None,
            links_applied: None,
        }
    }

    /// Refresh node `i`'s cached aggregates for `traffic` and return
    /// `(raw_cpu, data_mb)`.
    fn raw(&mut self, node: &SimNode, i: usize, traffic: f64) -> (f64, f64) {
        let key = (node.agents_epoch(), traffic.to_bits());
        let c = &mut self.cache[i];
        if c.raw_key != Some(key) {
            c.raw_cpu = node.raw_agent_cpu(traffic);
            c.data_mb = node.data_mb(traffic);
            c.raw_key = Some(key);
        }
        (c.raw_cpu, c.data_mb)
    }

    /// Cached [`SimNode::device_mem_percent`].
    fn mem(&mut self, node: &SimNode, i: usize) -> f64 {
        let key = node.agents_epoch();
        let c = &mut self.cache[i];
        if c.mem_key != Some(key) {
            c.mem_percent = node.device_mem_percent();
            c.mem_key = Some(key);
        }
        c.mem_percent
    }
}

/// Run `sim` to completion on the event core. Called from
/// [`Simulation::run`] when the configured engine is
/// [`crate::engine::EngineKind::Event`].
pub(crate) fn run_event(sim: &mut Simulation) -> SimReport {
    let mut report = Simulation::empty_report();
    let mut q: EventQueue<SimEvent> = EventQueue::new();
    let mut hot = HotState::new(sim.nodes.len());
    for d in &sim.dead {
        hot.alive[d.index()] = false;
    }
    sim.seed_queue(&mut q, &mut report);

    while let Some(ev) = q.pop() {
        let now = ev.at_ms;
        if now > sim.cfg.duration_ms {
            break;
        }
        report.events_processed += 1;
        report.peak_queue_len = report.peak_queue_len.max(q.len());
        sim.obs.set_now(now);
        let _prof = sim.obs.prof_scope(ev.event.scope_name());
        match ev.event {
            SimEvent::StatEmission => {
                let traffic = sim.traffic.fraction(now);
                // The tick core applies link jitter here; nothing below
                // reads the graph, so note the time and move on.
                hot.links_pending = Some(now);
                let walk = sim.obs.prof_scope("sim.resource_walk");
                for i in 0..sim.nodes.len() {
                    if !hot.alive[i] {
                        continue;
                    }
                    let (raw, data) = hot.raw(&sim.nodes[i], i, traffic);
                    let cpu = sim.nodes[i].device_cpu_from_raw(raw, now);
                    sim.clients[i].observe(cpu, data);
                    sim.clients[i].tick_into(now, &mut hot.stat_buf);
                    for msg in hot.stat_buf.drain(..) {
                        sim.send_to_manager(now, msg, &mut q, &mut report);
                    }
                }
                drop(walk);
                q.schedule_in(sim.cfg.update_interval_ms, SimEvent::StatEmission);
            }
            SimEvent::OfferMaintenance => {
                sim.handle_offer_maintenance(now, &mut q, &mut report);
            }
            SimEvent::PlacementRound => {
                sim.handle_placement_round(now, &mut q, &mut report);
            }
            SimEvent::TelemetrySample => {
                let traffic = sim.traffic.fraction(now);
                let batch = sim.obs.prof_scope("sim.telemetry_batch");
                for i in 0..sim.nodes.len() {
                    let (raw, _) = hot.raw(&sim.nodes[i], i, traffic);
                    let mem = hot.mem(&sim.nodes[i], i);
                    let n = &sim.nodes[i];
                    let cpu = n.device_cpu_from_raw(raw, now);
                    let db = report.federation.store_mut(n.id);
                    db.append("device-cpu", now, cpu);
                    db.append("device-mem", now, mem);
                    db.append("monitor-cpu", now, SimNode::monitoring_cpu_from_raw(raw, now));
                    if sim.obs.is_enabled() {
                        sim.obs.observe("sim.node.cpu_percent", cpu);
                        sim.obs.observe("sim.node.mem_percent", mem);
                    }
                }
                drop(batch);
                if sim.obs.is_enabled() {
                    sim.obs.gauge_set("sim.active_transfers", sim.active.len() as f64);
                }
                if sim.slo.is_some() {
                    q.schedule(now, SimEvent::SloEvaluation);
                }
                if hot.flows_version != Some(sim.active_version) {
                    hot.flows.clear();
                    hot.flows.extend(sim.active.values().filter(|t| t.data_mb > 0.0).filter_map(
                        |t| {
                            t.route.as_ref().map(|r| TelemetryFlow {
                                owner: t.owner,
                                host: t.host,
                                route: r.clone(),
                                data_mb: t.data_mb,
                            })
                        },
                    ));
                    hot.flows_version = Some(sim.active_version);
                }
                if !hot.flows.is_empty() {
                    // flows read link utilizations: reconcile the graph
                    // with the latest STAT emission's link state first
                    if hot.links_applied != hot.links_pending {
                        if let Some(t) = hot.links_pending {
                            sim.traffic.apply_to_links(
                                &mut sim.graph,
                                t,
                                sim.cfg.link_jitter,
                                sim.cfg.seed,
                            );
                        }
                        hot.links_applied = hot.links_pending;
                    }
                    let outs = evaluate_flows(&sim.graph, &hot.flows, sim.cfg.update_interval_ms);
                    for (f, o) in hot.flows.iter().zip(&outs) {
                        let db = report.federation.store_mut(f.owner);
                        db.append("telemetry-admitted-mbps", now, o.admitted_mbps);
                        db.append("telemetry-dropped", now, o.dropped_fraction);
                    }
                }
                sim.handle_storm_check(now, &mut q);
                q.schedule_in(sim.cfg.sample_period_ms, SimEvent::TelemetrySample);
            }
            SimEvent::SloEvaluation => {
                sim.handle_slo_evaluation(now);
            }
            SimEvent::DriftTick => {
                sim.handle_drift(now, &mut q);
            }
            SimEvent::NodeKill(n) => {
                sim.handle_kill(now, n);
                hot.alive[n.index()] = false;
            }
            SimEvent::NodeRevive(n) => {
                sim.handle_revive(now, n, &mut q, &mut report);
                hot.alive[n.index()] = true;
            }
            SimEvent::DeliverClient(env) => {
                sim.deliver_manager_msg(now, env, &mut q, &mut report);
            }
            SimEvent::DeliverManager(msg) => {
                sim.deliver_client_msg(now, &msg, &mut q, &mut report);
            }
        }
        report.end_ms = now;
    }
    sim.finish_report(&mut report);
    report
}
