//! VxLAN overlay traffic generation.
//!
//! The testbed subjected the DUT to "20 % line-rate VxLAN overlay traffic
//! in a data-center topology" (§I, Fig. 1). The traffic model produces a
//! deterministic line-rate fraction over time — constant, ramp, or a noisy
//! diurnal wave — and projects it onto per-link utilizations.

use dust_topology::{Graph, SplitMix64};

/// A deterministic traffic intensity profile over time.
#[derive(Debug, Clone)]
pub enum TrafficModel {
    /// Fixed fraction of line rate.
    Constant(f64),
    /// Linear ramp from `from` to `to` over `duration_ms`, then held.
    Ramp {
        /// Starting fraction.
        from: f64,
        /// Final fraction.
        to: f64,
        /// Ramp duration, ms.
        duration_ms: u64,
    },
    /// Sinusoidal wave plus seeded noise, clamped to `[0, 1]`:
    /// `mean + amplitude·sin(2πt/period) + noise`.
    Diurnal {
        /// Mean fraction.
        mean: f64,
        /// Wave amplitude.
        amplitude: f64,
        /// Wave period, ms.
        period_ms: u64,
        /// Uniform noise half-width.
        noise: f64,
        /// Noise seed.
        seed: u64,
    },
    /// A flash crowd: steady `base` until `start_ms`, a linear ramp to
    /// `peak` over `ramp_ms`, a hold at `peak` for `hold_ms`, then a
    /// symmetric ramp back down to `base`.
    FlashCrowd {
        /// Quiet-period fraction before and after the crowd.
        base: f64,
        /// Fraction at the top of the crowd.
        peak: f64,
        /// When the crowd starts arriving, ms.
        start_ms: u64,
        /// Ramp-up (and ramp-down) duration, ms; `0` makes it a step.
        ramp_ms: u64,
        /// How long the crowd holds at `peak`, ms.
        hold_ms: u64,
    },
}

impl TrafficModel {
    /// The testbed profile: constant 20 % line rate.
    pub fn testbed() -> Self {
        TrafficModel::Constant(0.2)
    }

    /// Line-rate fraction at `now_ms`, guaranteed in `[0, 1]`.
    pub fn fraction(&self, now_ms: u64) -> f64 {
        match self {
            TrafficModel::Constant(f) => f.clamp(0.0, 1.0),
            TrafficModel::Ramp { from, to, duration_ms } => {
                if *duration_ms == 0 || now_ms >= *duration_ms {
                    to.clamp(0.0, 1.0)
                } else {
                    let a = now_ms as f64 / *duration_ms as f64;
                    (from + (to - from) * a).clamp(0.0, 1.0)
                }
            }
            TrafficModel::Diurnal { mean, amplitude, period_ms, noise, seed } => {
                let phase = if *period_ms == 0 {
                    0.0
                } else {
                    2.0 * std::f64::consts::PI * (now_ms % period_ms) as f64 / *period_ms as f64
                };
                // noise keyed by (seed, time bucket) so it is reproducible
                // without carrying mutable state
                let mut rng = SplitMix64::new(seed.wrapping_add(now_ms / 1000));
                let n = if *noise > 0.0 { rng.range_f64(-noise, *noise) } else { 0.0 };
                (mean + amplitude * phase.sin() + n).clamp(0.0, 1.0)
            }
            TrafficModel::FlashCrowd { base, peak, start_ms, ramp_ms, hold_ms } => {
                let up_end = start_ms.saturating_add(*ramp_ms);
                let hold_end = up_end.saturating_add(*hold_ms);
                let down_end = hold_end.saturating_add(*ramp_ms);
                let f = if now_ms < *start_ms || now_ms >= down_end {
                    *base
                } else if now_ms < up_end {
                    let a = (now_ms - start_ms) as f64 / *ramp_ms as f64;
                    base + (peak - base) * a
                } else if now_ms < hold_end {
                    *peak
                } else {
                    let a = (now_ms - hold_end) as f64 / *ramp_ms as f64;
                    peak + (base - peak) * a
                };
                f.clamp(0.0, 1.0)
            }
        }
    }

    /// Project the current intensity onto every link of `g`, with a seeded
    /// per-link jitter so links are not uniformly loaded.
    pub fn apply_to_links(&self, g: &mut Graph, now_ms: u64, jitter: f64, seed: u64) {
        let base = self.fraction(now_ms);
        let mut rng = SplitMix64::new(seed.wrapping_add(now_ms / 1000));
        g.retarget_utilization(|_, _| {
            let j = if jitter > 0.0 { rng.range_f64(-jitter, jitter) } else { 0.0 };
            (base + j).clamp(0.0, 1.0)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dust_topology::{topologies, Link};

    #[test]
    fn constant_holds() {
        let m = TrafficModel::testbed();
        assert_eq!(m.fraction(0), 0.2);
        assert_eq!(m.fraction(1_000_000), 0.2);
    }

    #[test]
    fn ramp_interpolates_then_holds() {
        let m = TrafficModel::Ramp { from: 0.0, to: 0.2, duration_ms: 1000 };
        assert_eq!(m.fraction(0), 0.0);
        assert!((m.fraction(500) - 0.1).abs() < 1e-12);
        assert_eq!(m.fraction(1000), 0.2);
        assert_eq!(m.fraction(5000), 0.2);
    }

    #[test]
    fn diurnal_is_bounded_and_deterministic() {
        let m = TrafficModel::Diurnal {
            mean: 0.5,
            amplitude: 0.4,
            period_ms: 10_000,
            noise: 0.2,
            seed: 7,
        };
        for t in (0..50_000).step_by(777) {
            let f = m.fraction(t);
            assert!((0.0..=1.0).contains(&f));
            assert_eq!(f, m.fraction(t), "same time, same value");
        }
    }

    #[test]
    fn diurnal_wave_moves() {
        let m = TrafficModel::Diurnal {
            mean: 0.5,
            amplitude: 0.4,
            period_ms: 40_000,
            noise: 0.0,
            seed: 0,
        };
        // quarter period = peak, three quarters = trough
        assert!(m.fraction(10_000) > 0.85);
        assert!(m.fraction(30_000) < 0.15);
    }

    #[test]
    fn apply_to_links_sets_utilization_near_base() {
        let mut g = topologies::ring(6, Link::default());
        TrafficModel::testbed().apply_to_links(&mut g, 0, 0.05, 3);
        for e in g.edges() {
            assert!((e.link.utilization - 0.2).abs() <= 0.05 + 1e-12);
        }
    }

    #[test]
    fn flash_crowd_ramps_holds_and_recedes() {
        let m = TrafficModel::FlashCrowd {
            base: 0.1,
            peak: 0.9,
            start_ms: 10_000,
            ramp_ms: 4_000,
            hold_ms: 20_000,
        };
        assert_eq!(m.fraction(0), 0.1);
        assert_eq!(m.fraction(9_999), 0.1);
        assert!((m.fraction(12_000) - 0.5).abs() < 1e-12, "mid-ramp");
        assert_eq!(m.fraction(14_000), 0.9);
        assert_eq!(m.fraction(30_000), 0.9);
        assert!((m.fraction(36_000) - 0.5).abs() < 1e-12, "mid-decay");
        assert_eq!(m.fraction(38_000), 0.1);
        assert_eq!(m.fraction(1_000_000), 0.1);
    }

    #[test]
    fn flash_crowd_zero_ramp_is_a_step() {
        let m = TrafficModel::FlashCrowd {
            base: 0.2,
            peak: 0.8,
            start_ms: 5_000,
            ramp_ms: 0,
            hold_ms: 1_000,
        };
        assert_eq!(m.fraction(4_999), 0.2);
        assert_eq!(m.fraction(5_000), 0.8);
        assert_eq!(m.fraction(5_999), 0.8);
        assert_eq!(m.fraction(6_000), 0.2);
    }

    #[test]
    fn zero_jitter_is_uniform() {
        let mut g = topologies::ring(6, Link::default());
        TrafficModel::Constant(0.4).apply_to_links(&mut g, 0, 0.0, 3);
        for e in g.edges() {
            assert_eq!(e.link.utilization, 0.4);
        }
    }
}
