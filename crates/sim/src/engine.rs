//! Deterministic discrete-event scheduling core.
//!
//! A minimal event queue with total ordering: events fire in `(time, seq)`
//! order, where `seq` is the insertion sequence number — two events at the
//! same timestamp fire in the order they were scheduled, so simulation
//! runs are bit-for-bit reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pending event of type `E` at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Fire time, ms since simulation epoch.
    pub at_ms: u64,
    /// Insertion order tiebreaker.
    pub seq: u64,
    /// Payload.
    pub event: E,
}

/// Deterministic priority queue of events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    // payloads stored separately so E needs no Ord
    payloads: std::collections::HashMap<(u64, u64), E>,
    next_seq: u64,
    now_ms: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: std::collections::HashMap::new(),
            next_seq: 0,
            now_ms: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time: the fire time of the last popped event.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at_ms`.
    ///
    /// # Panics
    /// Panics when scheduling into the past.
    pub fn schedule(&mut self, at_ms: u64, event: E) {
        assert!(
            at_ms >= self.now_ms,
            "cannot schedule into the past: {at_ms} < now {}",
            self.now_ms
        );
        let key = (at_ms, self.next_seq);
        self.next_seq += 1;
        self.heap.push(Reverse(key));
        self.payloads.insert(key, event);
    }

    /// Schedule `event` `delay_ms` after now.
    pub fn schedule_in(&mut self, delay_ms: u64, event: E) {
        self.schedule(self.now_ms + delay_ms, event);
    }

    /// Pop the next event, advancing simulated time to its fire time.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let Reverse(key) = self.heap.pop()?;
        let event = self.payloads.remove(&key).expect("payload tracked with key");
        self.now_ms = key.0;
        Some(Scheduled { at_ms: key.0, seq: key.1, event })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_fifo() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        assert_eq!(q.now_ms(), 0);
        q.pop();
        assert_eq!(q.now_ms(), 100);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(50, "first");
        q.pop();
        q.schedule_in(25, "second");
        let s = q.pop().unwrap();
        assert_eq!(s.at_ms, 75);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn past_scheduling_rejected() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        q.pop();
        q.schedule(50, ());
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
