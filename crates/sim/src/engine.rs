//! Deterministic discrete-event scheduling core.
//!
//! A calendar queue with total ordering: events fire in `(time, seq)`
//! order, where `seq` is the insertion sequence number — two events at the
//! same timestamp fire in the order they were scheduled, so simulation
//! runs are bit-for-bit reproducible.
//!
//! Payloads live *inline* in the heap entries (no side table), so a pop is
//! one heap operation with no hashing. Timer events that may need to be
//! withdrawn — offer expiry, backoff deadlines — are scheduled through
//! [`EventQueue::schedule_cancelable`], which returns an [`EventToken`];
//! cancellation is lazy (a tombstone set), so the hot non-cancelable path
//! pays nothing for the feature.

use std::collections::{BinaryHeap, HashSet};

/// Which simulation core drives a [`crate::Simulation`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The event-driven core: identical observable behaviour to the tick
    /// core, with per-event-time batching and arena-backed hot state.
    #[default]
    Event,
    /// The legacy fixed-cadence core, kept as the compatibility reference
    /// that pins the event core's golden digests.
    Tick,
}

impl EngineKind {
    /// Parse a CLI-style engine name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "event" => Ok(EngineKind::Event),
            "tick" => Ok(EngineKind::Tick),
            other => Err(format!("unknown engine '{other}' (expected 'event' or 'tick')")),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineKind::Event => "event",
            EngineKind::Tick => "tick",
        })
    }
}

/// A pending event of type `E` at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Fire time, ms since simulation epoch.
    pub at_ms: u64,
    /// Insertion order tiebreaker.
    pub seq: u64,
    /// Payload.
    pub event: E,
}

/// Handle to a cancelable event, returned by
/// [`EventQueue::schedule_cancelable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken {
    seq: u64,
}

/// One heap entry: payload inline, ordered by `(at_ms, seq)` ascending.
#[derive(Debug)]
struct Entry<E> {
    at_ms: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at_ms == other.at_ms && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    // reversed so the max-heap pops the earliest (time, seq) first
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at_ms.cmp(&self.at_ms).then(other.seq.cmp(&self.seq))
    }
}

/// Deterministic priority queue of events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now_ms: u64,
    /// Tombstones for canceled-but-not-yet-popped entries.
    canceled: HashSet<u64>,
    /// Seqs of live cancelable entries (so a double-cancel reports false).
    cancelable: HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now_ms: 0,
            canceled: HashSet::new(),
            cancelable: HashSet::new(),
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time: the fire time of the last popped event.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Number of pending (non-canceled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.canceled.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `event` at absolute time `at_ms`.
    ///
    /// # Panics
    /// Panics when scheduling into the past.
    pub fn schedule(&mut self, at_ms: u64, event: E) {
        assert!(
            at_ms >= self.now_ms,
            "cannot schedule into the past: {at_ms} < now {}",
            self.now_ms
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at_ms, seq, event });
    }

    /// Schedule `event` `delay_ms` after now.
    pub fn schedule_in(&mut self, delay_ms: u64, event: E) {
        self.schedule(self.now_ms + delay_ms, event);
    }

    /// Schedule a *cancelable* event (an expiry or backoff timer) at
    /// absolute time `at_ms`. The returned token withdraws or moves it via
    /// [`EventQueue::cancel`] / [`EventQueue::reschedule`].
    ///
    /// # Panics
    /// Panics when scheduling into the past.
    pub fn schedule_cancelable(&mut self, at_ms: u64, event: E) -> EventToken {
        let seq = self.next_seq;
        self.schedule(at_ms, event);
        self.cancelable.insert(seq);
        EventToken { seq }
    }

    /// Withdraw a pending cancelable event. Returns `true` if the event
    /// was still pending (it will now never fire), `false` if it already
    /// fired or was already canceled. Cancellation is lazy: the entry is
    /// tombstoned and skipped at pop time.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if self.cancelable.remove(&token.seq) {
            self.canceled.insert(token.seq);
            true
        } else {
            false
        }
    }

    /// Move a pending cancelable event to a new fire time (cancel + fresh
    /// schedule of `event`). Returns the new token, or `None` if the old
    /// event had already fired or been canceled — the caller's `event` is
    /// then dropped and nothing is scheduled.
    pub fn reschedule(&mut self, token: EventToken, at_ms: u64, event: E) -> Option<EventToken> {
        if !self.cancel(token) {
            return None;
        }
        Some(self.schedule_cancelable(at_ms, event))
    }

    /// Pop the next event, advancing simulated time to its fire time.
    /// Canceled entries are discarded silently.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        loop {
            let entry = self.heap.pop()?;
            if !self.canceled.is_empty() && self.canceled.remove(&entry.seq) {
                continue;
            }
            if !self.cancelable.is_empty() {
                self.cancelable.remove(&entry.seq);
            }
            self.now_ms = entry.at_ms;
            return Some(Scheduled { at_ms: entry.at_ms, seq: entry.seq, event: entry.event });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_fifo() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        assert_eq!(q.now_ms(), 0);
        q.pop();
        assert_eq!(q.now_ms(), 100);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(50, "first");
        q.pop();
        q.schedule_in(25, "second");
        let s = q.pop().unwrap();
        assert_eq!(s.at_ms, 75);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn past_scheduling_rejected() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        q.pop();
        q.schedule(50, ());
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn cancel_withdraws_a_pending_timer() {
        let mut q = EventQueue::new();
        let t = q.schedule_cancelable(10, "expiry");
        q.schedule(20, "keep");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(t), "first cancel wins");
        assert!(!q.cancel(t), "second cancel is a no-op");
        assert_eq!(q.len(), 1);
        let s = q.pop().unwrap();
        assert_eq!((s.at_ms, s.event), (20, "keep"));
        assert!(q.pop().is_none(), "canceled event must never fire");
    }

    #[test]
    fn cancel_after_fire_reports_false() {
        let mut q = EventQueue::new();
        let t = q.schedule_cancelable(5, "timer");
        assert_eq!(q.pop().unwrap().event, "timer");
        assert!(!q.cancel(t), "already fired");
    }

    #[test]
    fn reschedule_moves_the_fire_time() {
        let mut q = EventQueue::new();
        let t = q.schedule_cancelable(10, "expiry");
        q.schedule(15, "middle");
        let t2 = q.reschedule(t, 30, "expiry").expect("still pending");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|s| (s.at_ms, s.event)).collect();
        assert_eq!(order, vec![(15, "middle"), (30, "expiry")]);
        let mut q2: EventQueue<&str> = EventQueue::new();
        assert!(q2.reschedule(t2, 40, "gone").is_none(), "fired token cannot move");
    }

    #[test]
    fn engine_kind_parses_and_displays() {
        assert_eq!(EngineKind::parse("tick").unwrap(), EngineKind::Tick);
        assert_eq!(EngineKind::parse("event").unwrap(), EngineKind::Event);
        assert!(EngineKind::parse("warp").is_err());
        assert_eq!(EngineKind::default().to_string(), "event");
        assert_eq!(EngineKind::Tick.to_string(), "tick");
    }
}
