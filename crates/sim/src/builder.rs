//! Validating construction for [`Simulation`]: the replacement for the
//! old "fill a `SimConfig` struct and hope" surface.
//!
//! Every knob that used to be a bare public field is a builder method,
//! and [`SimBuilder::build`] cross-checks the combination before any
//! state is wired up: inconsistent settings come back as a loud
//! [`DustError::BadConfig`] naming the offending knob instead of a panic
//! deep inside the run loop (or, worse, a silently meaningless result —
//! the classic one being a lossy fault profile without an explicit seed,
//! which "works" but makes the run irreproducible).
//!
//! ```
//! use dust_sim::{Simulation, SimNode, NodeSpec, TrafficModel};
//! use dust_topology::{topologies, Link, NodeId};
//!
//! let g = topologies::line(2, Link::default());
//! let nodes = vec![
//!     SimNode::with_standard_agents(NodeId(0), NodeSpec::aruba_8325()),
//!     SimNode::bare(NodeId(1), NodeSpec::server()),
//! ];
//! let mut sim = Simulation::builder()
//!     .graph(g)
//!     .nodes(nodes)
//!     .traffic(TrafficModel::testbed())
//!     .duration_ms(10_000)
//!     .build()
//!     .expect("consistent knobs");
//! let report = sim.run();
//! assert!(report.end_ms > 0);
//! ```

use crate::engine::EngineKind;
use crate::node::SimNode;
use crate::runner::{DriftConfig, SimConfig, Simulation, StormConfig};
use crate::traffic::TrafficModel;
use crate::transport::FaultConfig;
use dust_core::{DustConfig, DustError, SolverBackend};
use dust_obs::{ObsHandle, SloEngine};
use dust_topology::{Graph, NodeId, PathEngine};

/// Builder for [`Simulation`]; obtain one via [`Simulation::builder`].
///
/// Required: [`graph`](SimBuilder::graph) and [`nodes`](SimBuilder::nodes)
/// (one [`SimNode`] per vertex). Everything else defaults to the paper's
/// testbed parameters (see [`SimConfig::default`]); traffic defaults to
/// [`TrafficModel::testbed`].
#[derive(Debug, Default)]
pub struct SimBuilder {
    graph: Option<Graph>,
    nodes: Vec<SimNode>,
    traffic: Option<TrafficModel>,
    cfg: SimConfig,
    /// Set when the caller picked a seed explicitly — a lossy fault
    /// profile without one is rejected as irreproducible.
    seed_set: bool,
    obs: Option<ObsHandle>,
    slo: Option<SloEngine>,
    kills: Vec<(u64, NodeId)>,
    revives: Vec<(u64, NodeId)>,
}

impl SimBuilder {
    pub(crate) fn new() -> Self {
        SimBuilder::default()
    }

    /// The network topology (required).
    pub fn graph(mut self, graph: Graph) -> Self {
        self.graph = Some(graph);
        self
    }

    /// The per-vertex resource models (required; one per graph node, in
    /// node-id order).
    pub fn nodes(mut self, nodes: Vec<SimNode>) -> Self {
        self.nodes = nodes;
        self
    }

    /// Traffic evolution model (default: [`TrafficModel::testbed`]).
    pub fn traffic(mut self, traffic: TrafficModel) -> Self {
        self.traffic = Some(traffic);
        self
    }

    /// Placement thresholds and routing options.
    pub fn dust(mut self, dust: DustConfig) -> Self {
        self.cfg.dust = dust;
        self
    }

    /// LP backend for the Manager's optimization engine.
    pub fn backend(mut self, backend: SolverBackend) -> Self {
        self.cfg.backend = backend;
        self
    }

    /// STAT cadence handed out in ACKs, ms.
    pub fn update_interval_ms(mut self, ms: u64) -> Self {
        self.cfg.update_interval_ms = ms;
        self
    }

    /// Keepalive silence tolerated before replica substitution, ms.
    pub fn keepalive_timeout_ms(mut self, ms: u64) -> Self {
        self.cfg.keepalive_timeout_ms = ms;
        self
    }

    /// Placement round period, ms.
    pub fn placement_period_ms(mut self, ms: u64) -> Self {
        self.cfg.placement_period_ms = ms;
        self
    }

    /// Metric sampling cadence, ms.
    pub fn sample_period_ms(mut self, ms: u64) -> Self {
        self.cfg.sample_period_ms = ms;
        self
    }

    /// Total simulated time, ms.
    pub fn duration_ms(mut self, ms: u64) -> Self {
        self.cfg.duration_ms = ms;
        self
    }

    /// `false` runs the no-offload baseline (control plane gossips, no
    /// placement rounds).
    pub fn dust_enabled(mut self, enabled: bool) -> Self {
        self.cfg.dust_enabled = enabled;
        self
    }

    /// Per-link utilization jitter around the traffic model's base.
    pub fn link_jitter(mut self, jitter: f64) -> Self {
        self.cfg.link_jitter = jitter;
        self
    }

    /// Move the Busy node's entire deployment on accept (§V-A testbed
    /// semantics) instead of the granted capacity budget.
    pub fn full_monitoring_offload(mut self, full: bool) -> Self {
        self.cfg.full_monitoring_offload = full;
        self
    }

    /// Control-plane fault model. Non-ideal profiles require an explicit
    /// [`seed`](SimBuilder::seed) or `build` fails.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Master seed (drives link jitter and the fault gate).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self.seed_set = true;
        self
    }

    /// Which simulation core runs this configuration (default:
    /// [`EngineKind::Event`]; `tick` is the legacy reference core).
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.cfg.engine = engine;
        self
    }

    /// Attach an observability handle at construction time.
    pub fn obs(mut self, obs: ObsHandle) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Attach an online SLO engine at construction time.
    pub fn slo(mut self, slo: SloEngine) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Attach a correlated failure storm: cascading overload kills on
    /// top of any scheduled [`kill_at`](SimBuilder::kill_at) injections.
    pub fn storm(mut self, storm: StormConfig) -> Self {
        self.cfg.storm = Some(storm);
        self
    }

    /// Attach continuous link/agent churn: seeded capacity and
    /// sampling-rate drift at a fixed cadence.
    pub fn drift(mut self, drift: DriftConfig) -> Self {
        self.cfg.drift = Some(drift);
        self
    }

    /// Warm-start the Manager's solver from the previous round's basis
    /// (identical objectives, fewer pivots).
    pub fn warm_start(mut self, on: bool) -> Self {
        self.cfg.warm_start = on;
        self
    }

    /// Enable the Manager's delta-placement path: between full solves
    /// every `full_every` rounds, only flows whose `T_rmin` degraded
    /// past `threshold` (relative) are re-homed.
    pub fn delta_placement(mut self, threshold: f64, full_every: u64) -> Self {
        self.cfg.delta_threshold = Some(threshold);
        self.cfg.delta_full_every = full_every;
        self
    }

    /// Crash `node` at `at_ms`.
    pub fn kill_at(mut self, at_ms: u64, node: NodeId) -> Self {
        self.kills.push((at_ms, node));
        self
    }

    /// Revive `node` at `at_ms`.
    pub fn revive_at(mut self, at_ms: u64, node: NodeId) -> Self {
        self.revives.push((at_ms, node));
        self
    }

    /// Validate the knob combination and wire up the simulation.
    pub fn build(self) -> Result<Simulation, DustError> {
        let bad = |msg: String| Err(DustError::BadConfig(msg));
        let Some(graph) = self.graph else {
            return bad("a simulation needs a graph (SimBuilder::graph)".into());
        };
        if self.nodes.is_empty() {
            return bad("a simulation needs nodes (SimBuilder::nodes)".into());
        }
        if self.nodes.len() != graph.node_count() {
            return bad(format!(
                "node count mismatch: {} SimNodes for a {}-vertex graph",
                self.nodes.len(),
                graph.node_count()
            ));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.id.index() != i {
                return bad(format!("nodes must be in id order: position {i} holds {:?}", n.id));
            }
        }
        let cfg = &self.cfg;
        if cfg.update_interval_ms == 0 {
            return bad("update_interval_ms must be positive".into());
        }
        if cfg.placement_period_ms == 0 {
            return bad("placement_period_ms must be positive".into());
        }
        if cfg.sample_period_ms == 0 {
            return bad("sample_period_ms must be positive".into());
        }
        if cfg.duration_ms == 0 {
            return bad("duration_ms must be positive".into());
        }
        if cfg.keepalive_timeout_ms < cfg.update_interval_ms {
            return bad(format!(
                "keepalive_timeout_ms ({}) below update_interval_ms ({}): every node \
                 would be declared dead between its own STATs",
                cfg.keepalive_timeout_ms, cfg.update_interval_ms
            ));
        }
        if !cfg.link_jitter.is_finite() || !(0.0..=1.0).contains(&cfg.link_jitter) {
            return bad(format!("link_jitter must lie in [0, 1], got {}", cfg.link_jitter));
        }
        for (dir, p) in
            [("to_manager", &cfg.faults.to_manager), ("to_client", &cfg.faults.to_client)]
        {
            if !p.drop.is_finite()
                || !p.duplicate.is_finite()
                || !(0.0..=1.0).contains(&p.drop)
                || !(0.0..=1.0).contains(&p.duplicate)
            {
                return bad(format!(
                    "fault probabilities for {dir} must lie in [0, 1]: \
                     drop {} duplicate {}",
                    p.drop, p.duplicate
                ));
            }
        }
        if !cfg.faults.is_ideal() && !self.seed_set {
            return bad("a fault profile without an explicit seed is irreproducible: \
                 call SimBuilder::seed(...) alongside SimBuilder::faults(...)"
                .into());
        }
        cfg.dust.validate().map_err(DustError::BadConfig)?;
        // The PR 6 footgun: exhaustive path enumeration with no hop bound
        // is exponential in path count on dense fabrics — on a fat-tree
        // this size the first placement round effectively hangs. Callers
        // must either bound hops or pin the hop-bounded DP engine (which
        // returns the same optimum, property-tested).
        if cfg.dust.path_engine == PathEngine::Enumerate
            && cfg.dust.max_hop.is_none()
            && graph.node_count() >= 80
        {
            return bad(format!(
                "PathEngine::Enumerate without max_hop on a {}-node graph would \
                 enumerate an exponential path set: pin PathEngine::HopBoundedDp \
                 (DustConfig::with_engine) or set max_hop",
                graph.node_count()
            ));
        }
        if let Some(storm) = &cfg.storm {
            if !storm.cpu_threshold.is_finite() || storm.cpu_threshold <= 0.0 {
                return bad(format!(
                    "storm cpu_threshold must be a positive CPU percentage, got {}",
                    storm.cpu_threshold
                ));
            }
            if storm.max_cascades == 0 {
                return bad("a storm with max_cascades = 0 can never fire: drop the \
                     storm or give it a kill budget"
                    .into());
            }
        }
        if let Some(d) = &cfg.drift {
            if d.period_ms == 0 {
                return bad("drift period_ms must be positive".into());
            }
            if !d.capacity_swing.is_finite() || !(0.0..1.0).contains(&d.capacity_swing) {
                return bad(format!(
                    "drift capacity_swing must lie in [0, 1), got {}",
                    d.capacity_swing
                ));
            }
            if !(d.rate_floor.is_finite() && 0.0 < d.rate_floor && d.rate_floor <= 1.0) {
                return bad(format!("drift rate_floor must lie in (0, 1], got {}", d.rate_floor));
            }
            if d.links_per_tick == 0 && d.nodes_per_tick == 0 {
                return bad("drift with links_per_tick = 0 and nodes_per_tick = 0 never \
                     changes anything: drop the drift or give it work"
                    .into());
            }
        }
        if let Some(t) = cfg.delta_threshold {
            if !t.is_finite() || t < 0.0 {
                return bad(format!(
                    "delta_placement threshold must be finite and non-negative, got {t}"
                ));
            }
            if cfg.delta_full_every == 0 {
                return bad("delta_placement full_every must be at least 1: a cadence of 0 \
                     would never run a full solve"
                    .into());
            }
        }
        let n = graph.node_count();
        for &(_, node) in self.kills.iter().chain(self.revives.iter()) {
            if node.index() >= n {
                return bad(format!(
                    "kill/revive targets {node:?}, but the graph has only {n} nodes"
                ));
            }
        }
        for &(at, node) in &self.kills {
            if at > cfg.duration_ms {
                return bad(format!(
                    "kill of {node:?} at {at} ms lands after duration_ms ({} ms)",
                    cfg.duration_ms
                ));
            }
        }

        let traffic = self.traffic.unwrap_or_else(TrafficModel::testbed);
        let mut sim = Simulation::assemble(graph, self.nodes, traffic, self.cfg);
        if let Some(obs) = self.obs {
            sim.set_obs(obs);
        }
        if let Some(slo) = self.slo {
            sim.set_slo(slo);
        }
        for (at, node) in self.kills {
            sim.inject_failure(at, node);
        }
        for (at, node) in self.revives {
            sim.inject_revival(at, node);
        }
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSpec;
    use crate::transport::FaultProfile;
    use dust_topology::{topologies, Link};

    fn two_nodes() -> (Graph, Vec<SimNode>) {
        let g = topologies::line(2, Link::default());
        let nodes = vec![
            SimNode::with_standard_agents(NodeId(0), NodeSpec::aruba_8325()),
            SimNode::bare(NodeId(1), NodeSpec::server()),
        ];
        (g, nodes)
    }

    fn msg(err: DustError) -> String {
        match err {
            DustError::BadConfig(m) => m,
            other => panic!("expected BadConfig, got {other:?}"),
        }
    }

    #[test]
    fn minimal_valid_build_succeeds() {
        let (g, nodes) = two_nodes();
        let sim = Simulation::builder().graph(g).nodes(nodes).build();
        assert!(sim.is_ok());
    }

    #[test]
    fn missing_graph_is_loud() {
        let (_, nodes) = two_nodes();
        let err = msg(Simulation::builder().nodes(nodes).build().unwrap_err());
        assert!(err.contains("graph"), "{err}");
    }

    #[test]
    fn node_count_mismatch_is_loud() {
        let (g, mut nodes) = two_nodes();
        nodes.pop();
        let err = msg(Simulation::builder().graph(g).nodes(nodes).build().unwrap_err());
        assert!(err.contains("node count mismatch"), "{err}");
    }

    #[test]
    fn out_of_order_nodes_are_loud() {
        let (g, mut nodes) = two_nodes();
        nodes.swap(0, 1);
        let err = msg(Simulation::builder().graph(g).nodes(nodes).build().unwrap_err());
        assert!(err.contains("id order"), "{err}");
    }

    #[test]
    fn faults_without_seed_are_rejected() {
        let (g, nodes) = two_nodes();
        let faults = FaultConfig::symmetric(FaultProfile {
            drop: 0.1,
            duplicate: 0.0,
            delay_ms: 10,
            jitter_ms: 50,
        });
        let err = msg(Simulation::builder()
            .graph(g.clone())
            .nodes(nodes.clone())
            .faults(faults)
            .build()
            .unwrap_err());
        assert!(err.contains("seed"), "{err}");
        // the same profile with a seed is fine
        let ok = Simulation::builder().graph(g).nodes(nodes).faults(faults).seed(9).build();
        assert!(ok.is_ok());
    }

    #[test]
    fn out_of_range_fault_probability_is_loud() {
        let (g, nodes) = two_nodes();
        let faults = FaultConfig::symmetric(FaultProfile {
            drop: 1.5,
            duplicate: 0.0,
            delay_ms: 0,
            jitter_ms: 0,
        });
        let err = msg(Simulation::builder()
            .graph(g)
            .nodes(nodes)
            .faults(faults)
            .seed(1)
            .build()
            .unwrap_err());
        assert!(err.contains("fault probabilities"), "{err}");
    }

    #[test]
    fn degenerate_periods_are_loud() {
        let (g, nodes) = two_nodes();
        let err = msg(Simulation::builder()
            .graph(g)
            .nodes(nodes)
            .update_interval_ms(0)
            .build()
            .unwrap_err());
        assert!(err.contains("update_interval_ms"), "{err}");
    }

    #[test]
    fn keepalive_below_update_interval_is_loud() {
        let (g, nodes) = two_nodes();
        let err = msg(Simulation::builder()
            .graph(g)
            .nodes(nodes)
            .update_interval_ms(2_000)
            .keepalive_timeout_ms(1_000)
            .build()
            .unwrap_err());
        assert!(err.contains("keepalive_timeout_ms"), "{err}");
    }

    #[test]
    fn link_jitter_outside_unit_interval_is_loud() {
        let (g, nodes) = two_nodes();
        let err =
            msg(Simulation::builder().graph(g).nodes(nodes).link_jitter(1.5).build().unwrap_err());
        assert!(err.contains("link_jitter"), "{err}");
    }

    #[test]
    fn kill_of_unknown_node_is_loud() {
        let (g, nodes) = two_nodes();
        let err = msg(Simulation::builder()
            .graph(g)
            .nodes(nodes)
            .kill_at(1_000, NodeId(7))
            .build()
            .unwrap_err());
        assert!(err.contains("kill/revive"), "{err}");
    }

    #[test]
    fn kill_after_duration_is_loud() {
        let (g, nodes) = two_nodes();
        let err = msg(Simulation::builder()
            .graph(g)
            .nodes(nodes)
            .duration_ms(10_000)
            .kill_at(20_000, NodeId(1))
            .build()
            .unwrap_err());
        assert!(err.contains("after duration_ms"), "{err}");
    }

    #[test]
    fn paper_defaults_on_a_big_fabric_are_rejected_loudly() {
        // the PR-6 footgun: DustConfig::paper_defaults() keeps the
        // paper-faithful exhaustive path enumeration with no hop bound,
        // which is exponential on a real fabric. The builder must refuse
        // before the first placement round ever runs.
        use dust_core::DustConfig;
        use dust_topology::{FatTree, PathEngine};
        let ft = FatTree::new(8, Link::default()); // 80 nodes
        let nodes: Vec<SimNode> =
            ft.graph.nodes().map(|n| SimNode::bare(n, NodeSpec::server())).collect();
        let err = msg(Simulation::builder()
            .graph(ft.graph.clone())
            .nodes(nodes.clone())
            .dust(DustConfig::paper_defaults())
            .build()
            .unwrap_err());
        assert!(err.contains("HopBoundedDp"), "{err}");
        assert!(err.contains("80-node"), "{err}");
        // pinning the DP engine (or a hop bound) makes the same fabric fine
        let dp = DustConfig::paper_defaults().with_engine(PathEngine::HopBoundedDp);
        assert!(Simulation::builder()
            .graph(ft.graph.clone())
            .nodes(nodes.clone())
            .dust(dp)
            .build()
            .is_ok());
        let bounded = DustConfig::paper_defaults().with_max_hop(Some(4));
        assert!(Simulation::builder()
            .graph(ft.graph.clone())
            .nodes(nodes)
            .dust(bounded)
            .build()
            .is_ok());
        // small topologies keep accepting the paper defaults unchanged
        let (g, small) = two_nodes();
        assert!(Simulation::builder()
            .graph(g)
            .nodes(small)
            .dust(DustConfig::paper_defaults())
            .build()
            .is_ok());
    }

    #[test]
    fn storm_knobs_are_validated() {
        use crate::runner::StormConfig;
        let storm = |cpu_threshold: f64, max_cascades: usize| StormConfig {
            cpu_threshold,
            start_ms: 0,
            cascade_delay_ms: 1_000,
            max_cascades,
        };
        let (g, nodes) = two_nodes();
        let err = msg(Simulation::builder()
            .graph(g.clone())
            .nodes(nodes.clone())
            .storm(storm(f64::NAN, 2))
            .build()
            .unwrap_err());
        assert!(err.contains("cpu_threshold"), "{err}");
        let err = msg(Simulation::builder()
            .graph(g.clone())
            .nodes(nodes.clone())
            .storm(storm(30.0, 0))
            .build()
            .unwrap_err());
        assert!(err.contains("max_cascades"), "{err}");
        assert!(Simulation::builder().graph(g).nodes(nodes).storm(storm(30.0, 2)).build().is_ok());
    }

    #[test]
    fn obs_and_slo_attach_through_the_builder() {
        use dust_obs::{ObsHandle, SloEngine, SloSpec};
        let (g, nodes) = two_nodes();
        let obs = ObsHandle::recording(1);
        let sim = Simulation::builder()
            .graph(g)
            .nodes(nodes)
            .obs(obs.clone())
            .slo(SloEngine::new(SloSpec::parse("convergence<=10000").unwrap(), 25.0))
            .build()
            .unwrap();
        assert!(sim.obs().is_enabled());
        assert!(sim.slo().is_some());
    }
}
