//! Simulated network device resource model.
//!
//! Models the testbed DUT — an HPE Aruba 8325-class switch with 8 CPU
//! cores, 16 GB RAM (§V-A) — as a node whose CPU and memory are the sum of
//! a switching/NOS baseline plus the analytic-engine cost of every monitor
//! agent it runs, local or hosted. Offloading physically moves agents
//! between [`SimNode`]s, so the Fig. 6 deltas fall out of the model rather
//! than being scripted.

use std::sync::Arc;

use dust_telemetry::MonitorAgent;
use dust_topology::NodeId;

/// Hardware and baseline-software profile of a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// CPU cores (the DUT has 8).
    pub cpu_cores: f64,
    /// Total memory, GiB (the DUT has 16).
    pub mem_gib: f64,
    /// Device-level CPU consumed by switching/bridging and the NOS,
    /// percent of the whole device.
    pub base_cpu_percent: f64,
    /// Memory consumed by the NOS, databases, and forwarding state, GiB.
    pub base_mem_gib: f64,
}

impl NodeSpec {
    /// The testbed DUT profile (§V-A): 8 cores, 16 GB. The baseline is
    /// calibrated so the Fig. 6 'local monitoring' readings come out at
    /// ≈ 31 % CPU and ≈ 70 % memory with the standard ten agents at 20 %
    /// line rate, and the post-offload readings at ≈ 15 % / ≈ 62 %.
    pub fn aruba_8325() -> Self {
        NodeSpec {
            cpu_cores: 8.0,
            mem_gib: 16.0,
            base_cpu_percent: 14.0,
            base_mem_gib: 9.6, // 60 % of 16 GB
        }
    }

    /// A generic server with spare capacity (offload destination).
    pub fn server() -> Self {
        NodeSpec { cpu_cores: 32.0, mem_gib: 64.0, base_cpu_percent: 5.0, base_mem_gib: 8.0 }
    }

    /// A DPU/SmartNIC profile.
    pub fn dpu() -> Self {
        NodeSpec { cpu_cores: 8.0, mem_gib: 16.0, base_cpu_percent: 3.0, base_mem_gib: 2.0 }
    }
}

/// Multiplier applied to raw agent CPU for the analytic engine's own
/// aggregation/scheduling overhead (Python engine on the NOS, §V-A).
const ENGINE_OVERHEAD: f64 = 1.0;

/// Residual device CPU% for forwarding telemetry to a remote monitor after
/// local agents are offloaded (compression + transmit stub).
const OFFLOAD_STUB_CPU_PERCENT: f64 = 1.5;

/// Residual memory (GiB) for the transmit buffers after offload.
const OFFLOAD_STUB_MEM_GIB: f64 = 0.32;

/// Periodic aggregation burst: every `BURST_PERIOD_MS` the engine runs a
/// heavy collection cycle for `BURST_LEN_MS`, multiplying monitoring CPU —
/// the "spiking to as high as 600 %" of Fig. 1.
const BURST_PERIOD_MS: u64 = 30_000;
const BURST_LEN_MS: u64 = 2_000;
const BURST_FACTOR: f64 = 6.0;

/// Storage for a node's local agent deployment. Large fleets of
/// identical nodes share one immutable deployment record
/// (`Shared`) instead of carrying hundreds of owned copies of the same
/// agent structs per node; the first mutation detaches the node onto its
/// own copy (copy-on-write), so per-node divergence — drift retuning,
/// budgeted offload, reclaim — still works exactly as before.
#[derive(Debug, Clone)]
enum AgentStore {
    /// One deployment record interned across every node of a class.
    Shared(Arc<Vec<MonitorAgent>>),
    /// This node's private, divergent agent list.
    Owned(Vec<MonitorAgent>),
}

impl AgentStore {
    fn as_slice(&self) -> &[MonitorAgent] {
        match self {
            AgentStore::Shared(a) => a,
            AgentStore::Owned(v) => v,
        }
    }

    /// Copy-on-write access: a shared record is first detached into an
    /// owned copy so the mutation never bleeds into sibling nodes.
    fn to_mut(&mut self) -> &mut Vec<MonitorAgent> {
        if let AgentStore::Shared(a) = self {
            *self = AgentStore::Owned(a.as_ref().clone());
        }
        match self {
            AgentStore::Owned(v) => v,
            AgentStore::Shared(_) => unreachable!("detached above"),
        }
    }
}

/// A simulated device.
#[derive(Debug, Clone)]
pub struct SimNode {
    /// Topology identity.
    pub id: NodeId,
    /// Hardware profile.
    pub spec: NodeSpec,
    /// Agents monitoring *this* node, running locally (not yet offloaded).
    /// Read via [`SimNode::local_agents`]; mutate via
    /// [`SimNode::local_agents_mut`] (copy-on-write when interned).
    local_agents: AgentStore,
    /// Agents monitoring this node but running remotely: `(host, agent)`.
    pub offloaded_agents: Vec<(NodeId, MonitorAgent)>,
    /// Agents this node hosts on behalf of others: `(owner, agent)`.
    pub hosted_agents: Vec<(NodeId, MonitorAgent)>,
    /// Bumped on every agent-list mutation; lets callers cache derived
    /// sums (CPU/memory/data) and invalidate them precisely. Code that
    /// mutates the public agent vectors directly must call
    /// [`SimNode::note_agents_changed`].
    epoch: u64,
}

impl SimNode {
    /// A node with the standard ten-agent deployment.
    pub fn with_standard_agents(id: NodeId, spec: NodeSpec) -> Self {
        SimNode {
            id,
            spec,
            local_agents: AgentStore::Owned(MonitorAgent::standard_deployment()),
            offloaded_agents: Vec::new(),
            hosted_agents: Vec::new(),
            epoch: 0,
        }
    }

    /// A node sharing an interned deployment record with its siblings —
    /// fleet construction hands every node of a class the *same*
    /// `Arc<Vec<MonitorAgent>>` instead of materialising hundreds of
    /// identical agent structs per node. The node detaches onto its own
    /// copy the moment anything mutates its local agent list.
    pub fn with_shared_agents(id: NodeId, spec: NodeSpec, agents: Arc<Vec<MonitorAgent>>) -> Self {
        SimNode {
            id,
            spec,
            local_agents: AgentStore::Shared(agents),
            offloaded_agents: Vec::new(),
            hosted_agents: Vec::new(),
            epoch: 0,
        }
    }

    /// A node with no monitoring deployed.
    pub fn bare(id: NodeId, spec: NodeSpec) -> Self {
        SimNode {
            id,
            spec,
            local_agents: AgentStore::Owned(Vec::new()),
            offloaded_agents: Vec::new(),
            hosted_agents: Vec::new(),
            epoch: 0,
        }
    }

    /// The agents monitoring this node that run locally.
    pub fn local_agents(&self) -> &[MonitorAgent] {
        self.local_agents.as_slice()
    }

    /// Mutable access to the local agent list. If the deployment record
    /// is interned ([`SimNode::with_shared_agents`]) this detaches the
    /// node onto a private copy first. Callers that mutate through this
    /// must still call [`SimNode::note_agents_changed`].
    pub fn local_agents_mut(&mut self) -> &mut Vec<MonitorAgent> {
        self.local_agents.to_mut()
    }

    /// Whether this node still shares an interned deployment record
    /// (i.e. nothing has mutated its local agent list yet).
    pub fn agents_interned(&self) -> bool {
        matches!(self.local_agents, AgentStore::Shared(_))
    }

    /// Current agent-list epoch: changes whenever a cached derivation of
    /// the agent lists (CPU sum, memory, data volume) could be stale.
    pub fn agents_epoch(&self) -> u64 {
        self.epoch
    }

    /// Declare that the agent vectors were mutated directly (outside the
    /// methods below), invalidating any epoch-keyed cache.
    pub fn note_agents_changed(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// Raw agent CPU sum in percent of one core at `traffic_fraction` —
    /// local agents then hosted agents, before engine overhead and bursts.
    /// This is the expensive per-agent walk the event core caches per
    /// [`SimNode::agents_epoch`].
    pub fn raw_agent_cpu(&self, traffic_fraction: f64) -> f64 {
        self.local_agents
            .as_slice()
            .iter()
            .chain(self.hosted_agents.iter().map(|(_, a)| a))
            .map(|a| a.cpu_percent(traffic_fraction))
            .sum()
    }

    /// Monitoring CPU (percent of one core) from a precomputed
    /// [`SimNode::raw_agent_cpu`] sum: engine overhead plus the periodic
    /// aggregation burst. Shared by the cached and uncached paths so the
    /// arithmetic is bit-identical.
    pub fn monitoring_cpu_from_raw(raw_cpu: f64, now_ms: u64) -> f64 {
        let mut cpu = raw_cpu * ENGINE_OVERHEAD;
        if now_ms % BURST_PERIOD_MS < BURST_LEN_MS {
            cpu *= BURST_FACTOR;
        }
        cpu
    }

    /// Monitoring-module CPU in percent **of one core** at `now_ms`, the
    /// Fig. 1 metric: agent cost × engine overhead, with periodic
    /// aggregation bursts. Includes hosted agents (they run in the same
    /// engine).
    pub fn monitoring_cpu_core_percent(&self, now_ms: u64, traffic_fraction: f64) -> f64 {
        Self::monitoring_cpu_from_raw(self.raw_agent_cpu(traffic_fraction), now_ms)
    }

    /// Steady-state (burst-free) monitoring CPU of one core.
    pub fn monitoring_cpu_steady(&self, traffic_fraction: f64) -> f64 {
        self.raw_agent_cpu(traffic_fraction) * ENGINE_OVERHEAD
    }

    /// Device CPU from a precomputed raw agent sum (cached-path variant of
    /// [`SimNode::device_cpu_percent`]; identical arithmetic).
    pub fn device_cpu_from_raw(&self, raw_cpu: f64, now_ms: u64) -> f64 {
        let monitoring = Self::monitoring_cpu_from_raw(raw_cpu, now_ms) / self.spec.cpu_cores;
        let stub = if self.offloaded_agents.is_empty() { 0.0 } else { OFFLOAD_STUB_CPU_PERCENT };
        (self.spec.base_cpu_percent + monitoring + stub).min(100.0)
    }

    /// Device-level CPU utilization percent (all cores) — what a `STAT`
    /// message reports as `C_i`.
    pub fn device_cpu_percent(&self, now_ms: u64, traffic_fraction: f64) -> f64 {
        self.device_cpu_from_raw(self.raw_agent_cpu(traffic_fraction), now_ms)
    }

    /// Device memory utilization percent.
    pub fn device_mem_percent(&self) -> f64 {
        let agents_gib: f64 = self
            .local_agents
            .as_slice()
            .iter()
            .chain(self.hosted_agents.iter().map(|(_, a)| a))
            .map(|a| a.kind.mem_mib() / 1024.0)
            .sum::<f64>()
            * 1.3; // engine + TSDB overhead
        let stub = if self.offloaded_agents.is_empty() { 0.0 } else { OFFLOAD_STUB_MEM_GIB };
        ((self.spec.base_mem_gib + agents_gib + stub) / self.spec.mem_gib * 100.0).min(100.0)
    }

    /// Telemetry data volume this node must ship per interval if its local
    /// agents were monitored remotely (`D_i`, Mb).
    pub fn data_mb(&self, traffic_fraction: f64) -> f64 {
        self.local_agents.as_slice().iter().map(|a| a.data_mb_per_interval(traffic_fraction)).sum()
    }

    /// Move up to `cpu_budget_percent` (device-level percent) of local
    /// agent load to `host`, largest agents first. Returns the agents
    /// moved. Used when the Manager's placement grants this node an
    /// offload of `amount` capacity-percent.
    pub fn offload_agents_to(
        &mut self,
        host: NodeId,
        cpu_budget_percent: f64,
        traffic_fraction: f64,
    ) -> Vec<MonitorAgent> {
        self.note_agents_changed();
        // device-level contribution of one agent (sampling-aware)
        let cores = self.spec.cpu_cores;
        let device_cost =
            |a: &MonitorAgent| a.cpu_percent(traffic_fraction) * ENGINE_OVERHEAD / cores;
        // largest first so few agents cover the budget
        let locals = self.local_agents.to_mut();
        locals.sort_by(|a, b| {
            device_cost(b).partial_cmp(&device_cost(a)).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut moved = Vec::new();
        let mut budget = cpu_budget_percent;
        let mut i = 0;
        while i < locals.len() {
            let c = device_cost(&locals[i]);
            if c <= budget + 1e-9 {
                let agent = locals.remove(i);
                budget -= c;
                self.offloaded_agents.push((host, agent));
                moved.push(agent);
            } else {
                i += 1;
            }
        }
        moved
    }

    /// Offload *every* local agent to `host` — the testbed's Fig. 6
    /// experiment, where the whole monitoring deployment moves.
    pub fn offload_all_to(&mut self, host: NodeId) -> Vec<MonitorAgent> {
        self.note_agents_changed();
        let moved: Vec<MonitorAgent> =
            match std::mem::replace(&mut self.local_agents, AgentStore::Owned(Vec::new())) {
                AgentStore::Shared(a) => a.as_ref().clone(),
                AgentStore::Owned(v) => v,
            };
        for a in &moved {
            self.offloaded_agents.push((host, *a));
        }
        moved
    }

    /// Accept agents to host for `owner`.
    pub fn host_agents(&mut self, owner: NodeId, agents: &[MonitorAgent]) {
        self.note_agents_changed();
        for a in agents {
            self.hosted_agents.push((owner, *a));
        }
    }

    /// Reclaim: bring home every agent offloaded to `host` (the host must
    /// symmetrically drop them via [`SimNode::drop_hosted_for`]).
    pub fn reclaim_from(&mut self, host: NodeId) -> usize {
        self.note_agents_changed();
        let before = self.offloaded_agents.len();
        let mut kept = Vec::with_capacity(before);
        for (h, a) in self.offloaded_agents.drain(..) {
            if h == host {
                self.local_agents.to_mut().push(a);
            } else {
                kept.push((h, a));
            }
        }
        self.offloaded_agents = kept;
        before - self.offloaded_agents.len()
    }

    /// Drop hosted agents belonging to `owner`; returns how many.
    pub fn drop_hosted_for(&mut self, owner: NodeId) -> usize {
        self.note_agents_changed();
        let before = self.hosted_agents.len();
        self.hosted_agents.retain(|(o, _)| *o != owner);
        before - self.hosted_agents.len()
    }

    /// Take every hosted agent (the node is shedding its hosting duties,
    /// e.g. because it just became Busy itself and redirects the workload,
    /// §III-B). Returns `(owner, agent)` pairs in hosting order.
    pub fn take_hosted(&mut self) -> Vec<(NodeId, MonitorAgent)> {
        self.note_agents_changed();
        self.hosted_agents.drain(..).collect()
    }

    /// Re-point every agent offloaded to `from` at `to` (the hosting moved
    /// wholesale; membership is unchanged).
    pub fn redirect_offloaded(&mut self, from: NodeId, to: NodeId) {
        self.note_agents_changed();
        for (h, _) in self.offloaded_agents.iter_mut() {
            if *h == from {
                *h = to;
            }
        }
    }

    /// Re-home agents offloaded to a `failed` host onto `to`, returning
    /// the moved agents in ledger order (for the new host's
    /// [`SimNode::host_agents`] call) — the REP replica-substitution path.
    pub fn rehome_offloaded(&mut self, failed: NodeId, to: NodeId) -> Vec<MonitorAgent> {
        self.note_agents_changed();
        let mut rehomed = Vec::new();
        for (h, a) in self.offloaded_agents.iter_mut() {
            if *h == failed {
                *h = to;
                rehomed.push(*a);
            }
        }
        rehomed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dut() -> SimNode {
        SimNode::with_standard_agents(NodeId(0), NodeSpec::aruba_8325())
    }

    #[test]
    fn fig1_average_and_spike_calibration() {
        let n = dut();
        // steady monitoring CPU ≈ 150 % of one core... calibration target is
        // the *average* including bursts ≈ raw * (1 + burst share)
        let steady = n.monitoring_cpu_steady(0.2);
        assert!((steady - 100.0).abs() < 5.0, "steady {steady}");
        // during a burst the module spikes toward 600+ %
        let burst = n.monitoring_cpu_core_percent(1_000, 0.2); // inside burst window
        assert!(burst > 500.0, "burst {burst}");
        let calm = n.monitoring_cpu_core_percent(10_000, 0.2); // outside window
        assert!((calm - steady).abs() < 1e-9);
    }

    #[test]
    fn fig6_local_readings() {
        let n = dut();
        // time-averaged device CPU over a full burst period ≈ 31 %
        let samples: Vec<f64> = (0..60u64).map(|s| n.device_cpu_percent(s * 1000, 0.2)).collect();
        let cpu = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((cpu - 31.0).abs() < 2.0, "local CPU {cpu}");
        // steady (burst-free) instantaneous reading sits lower
        let calm = n.device_cpu_percent(10_000, 0.2);
        assert!((calm - 26.5).abs() < 1.0, "calm CPU {calm}");
        // memory ≈ (9.6 + 1.17*1.3) / 16 ≈ 69–70 %
        let mem = n.device_mem_percent();
        assert!((mem - 70.0).abs() < 2.0, "local mem {mem}");
    }

    #[test]
    fn fig6_offloaded_readings() {
        let mut n = dut();
        let moved = n.offload_all_to(NodeId(5));
        assert_eq!(moved.len(), 10);
        let cpu = n.device_cpu_percent(10_000, 0.2);
        assert!((cpu - 15.5).abs() < 1.0, "offloaded CPU {cpu}");
        let mem = n.device_mem_percent();
        assert!((mem - 62.0).abs() < 1.0, "offloaded mem {mem}");
    }

    #[test]
    fn hosting_raises_host_cost() {
        let mut host = SimNode::bare(NodeId(1), NodeSpec::server());
        let before = host.device_cpu_percent(10_000, 0.2);
        host.host_agents(NodeId(0), &MonitorAgent::standard_deployment());
        let after = host.device_cpu_percent(10_000, 0.2);
        assert!(after > before);
        // a 32-core server absorbs the same engine load with ~4x less
        // device-level impact than the 8-core DUT
        assert!((after - before - 100.0 / 32.0).abs() < 0.5);
    }

    #[test]
    fn budgeted_offload_moves_largest_first() {
        let mut n = dut();
        let traffic = 0.2;
        let moved = n.offload_agents_to(NodeId(3), 10.0, traffic);
        assert!(!moved.is_empty());
        assert!(moved.len() < 10, "10 % budget must not take everything");
        // the first moved agent is the most expensive one
        let costs: Vec<f64> = moved.iter().map(|a| a.kind.cpu_percent(traffic)).collect();
        assert!(costs.windows(2).all(|w| w[0] >= w[1]));
        // remaining + moved = 10
        assert_eq!(n.local_agents().len() + moved.len(), 10);
        assert_eq!(n.offloaded_agents.len(), moved.len());
    }

    #[test]
    fn reclaim_round_trip() {
        let mut dut = dut();
        let mut host = SimNode::bare(NodeId(2), NodeSpec::server());
        let moved = dut.offload_all_to(NodeId(2));
        host.host_agents(NodeId(0), &moved);
        assert_eq!(dut.local_agents().len(), 0);
        assert_eq!(host.hosted_agents.len(), 10);

        assert_eq!(dut.reclaim_from(NodeId(2)), 10);
        assert_eq!(host.drop_hosted_for(NodeId(0)), 10);
        assert_eq!(dut.local_agents().len(), 10);
        assert!(host.hosted_agents.is_empty());
        // back to the calm (burst-free) local reading: 14 + 100/8 = 26.5
        let cpu = dut.device_cpu_percent(10_000, 0.2);
        assert!((cpu - 26.5).abs() < 1.0);
    }

    #[test]
    fn data_volume_positive() {
        let n = dut();
        assert!(n.data_mb(0.2) > 0.0);
        assert!(n.data_mb(0.8) > n.data_mb(0.0));
    }

    #[test]
    fn epoch_tracks_every_mutation() {
        let mut n = dut();
        let e0 = n.agents_epoch();
        n.offload_all_to(NodeId(1));
        assert_ne!(n.agents_epoch(), e0, "offload must bump the epoch");
        let e1 = n.agents_epoch();
        n.reclaim_from(NodeId(1));
        assert_ne!(n.agents_epoch(), e1);
        let mut host = SimNode::bare(NodeId(2), NodeSpec::server());
        let eh = host.agents_epoch();
        host.host_agents(NodeId(0), &MonitorAgent::standard_deployment());
        assert_ne!(host.agents_epoch(), eh);
        let eh = host.agents_epoch();
        assert_eq!(host.take_hosted().len(), 10);
        assert_ne!(host.agents_epoch(), eh);
    }

    #[test]
    fn rehome_and_redirect_preserve_membership() {
        let mut n = dut();
        n.offload_all_to(NodeId(1));
        let rehomed = n.rehome_offloaded(NodeId(1), NodeId(2));
        assert_eq!(rehomed.len(), 10);
        assert!(n.offloaded_agents.iter().all(|(h, _)| *h == NodeId(2)));
        n.redirect_offloaded(NodeId(2), NodeId(3));
        assert!(n.offloaded_agents.iter().all(|(h, _)| *h == NodeId(3)));
        assert_eq!(n.offloaded_agents.len(), 10, "membership unchanged");
    }

    #[test]
    fn cached_raw_cpu_matches_fresh_compute() {
        let n = dut();
        let raw = n.raw_agent_cpu(0.2);
        for t in [0u64, 1_000, 10_000, 31_000] {
            assert_eq!(
                SimNode::device_cpu_from_raw(&n, raw, t),
                n.device_cpu_percent(t, 0.2),
                "cached path must be bit-identical at t={t}"
            );
            assert_eq!(
                SimNode::monitoring_cpu_from_raw(raw, t),
                n.monitoring_cpu_core_percent(t, 0.2)
            );
        }
    }

    #[test]
    fn shared_deployment_detaches_on_first_mutation() {
        let record = Arc::new(MonitorAgent::standard_deployment());
        let mut a =
            SimNode::with_shared_agents(NodeId(0), NodeSpec::aruba_8325(), Arc::clone(&record));
        let b = SimNode::with_shared_agents(NodeId(1), NodeSpec::aruba_8325(), Arc::clone(&record));
        // reads never detach, and shared nodes price identically to owned
        let owned = SimNode::with_standard_agents(NodeId(2), NodeSpec::aruba_8325());
        assert_eq!(a.raw_agent_cpu(0.2), owned.raw_agent_cpu(0.2));
        assert_eq!(a.device_mem_percent(), owned.device_mem_percent());
        assert_eq!(a.data_mb(0.2), owned.data_mb(0.2));
        assert!(a.agents_interned() && b.agents_interned());
        // the first mutation peels `a` off onto its own copy; `b` and the
        // interned record itself are untouched
        let moved = a.offload_agents_to(NodeId(3), 10.0, 0.2);
        assert!(!moved.is_empty());
        assert!(!a.agents_interned());
        assert!(b.agents_interned());
        assert_eq!(record.len(), 10);
        assert_eq!(b.local_agents().len(), 10);
        assert_eq!(a.local_agents().len() + moved.len(), 10);
    }

    #[test]
    fn cpu_clamped_at_100() {
        let mut n = dut();
        // host five more full deployments to overload
        for i in 0..5 {
            n.host_agents(NodeId(10 + i), &MonitorAgent::standard_deployment());
        }
        assert!(n.device_cpu_percent(0, 1.0) <= 100.0);
    }
}
