//! Deterministic fault-injecting message transport.
//!
//! The DUST control plane is designed to survive a lossy management
//! network (§III-C's keepalives and replica substitution exist precisely
//! because messages and nodes fail). This module decides the *fate* of
//! every envelope crossing the wire: dropped, delivered once, or
//! delivered twice, each copy after a configurable delay plus jitter —
//! jitter makes copies overtake each other, so reordering falls out for
//! free from the event queue's timestamp ordering.
//!
//! All randomness comes from one [`SplitMix64`] stream seeded from the
//! simulation seed, so a run's entire fault pattern is a pure function of
//! `(seed, config)`: two same-seed runs produce bit-identical message
//! fates, which is what makes chaos scenarios debuggable and the sweep
//! results in `EXPERIMENTS.md` reproducible.

use dust_topology::SplitMix64;

/// Fault model for one direction of the control plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability an envelope is dropped outright, `0.0..=1.0`.
    pub drop: f64,
    /// Probability a delivered envelope is delivered *twice*, `0.0..=1.0`.
    pub duplicate: f64,
    /// Base propagation delay applied to every delivered copy, ms.
    pub delay_ms: u64,
    /// Extra uniform delay in `0..=jitter_ms` drawn per copy, ms. Jitter
    /// larger than the send spacing reorders messages.
    pub jitter_ms: u64,
}

impl FaultProfile {
    /// A perfect wire: instant, loss-free, exactly-once.
    pub const fn ideal() -> Self {
        FaultProfile { drop: 0.0, duplicate: 0.0, delay_ms: 0, jitter_ms: 0 }
    }

    /// Uniform loss at probability `p`, otherwise instant exactly-once.
    pub fn lossy(p: f64) -> Self {
        FaultProfile { drop: p, ..FaultProfile::ideal() }
    }

    /// True when this profile never touches a message: the transport may
    /// skip the queue and deliver inline.
    pub fn is_ideal(&self) -> bool {
        self.drop <= 0.0 && self.duplicate <= 0.0 && self.delay_ms == 0 && self.jitter_ms == 0
    }

    /// Panics on probabilities outside `[0, 1]` or non-finite values.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.drop) && (0.0..=1.0).contains(&self.duplicate),
            "fault probabilities must lie in [0, 1]: {self:?}"
        );
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::ideal()
    }
}

/// Fault model for both directions of the Manager ↔ Client plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultConfig {
    /// Client → Manager (registrations, STATs, ACKs, keepalives).
    pub to_manager: FaultProfile,
    /// Manager → Client (ACKs, offers, REPs, releases).
    pub to_client: FaultProfile,
}

impl FaultConfig {
    /// Perfect wire in both directions.
    pub const fn ideal() -> Self {
        FaultConfig { to_manager: FaultProfile::ideal(), to_client: FaultProfile::ideal() }
    }

    /// The same profile in both directions.
    pub fn symmetric(p: FaultProfile) -> Self {
        FaultConfig { to_manager: p, to_client: p }
    }

    /// True when neither direction ever touches a message.
    pub fn is_ideal(&self) -> bool {
        self.to_manager.is_ideal() && self.to_client.is_ideal()
    }

    /// Panics on invalid probabilities in either direction.
    pub fn validate(&self) {
        self.to_manager.validate();
        self.to_client.validate();
    }
}

/// Which way an envelope is travelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → Manager.
    ToManager,
    /// Manager → Client.
    ToClient,
}

/// Counters the transport keeps while deciding fates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Envelopes handed to the transport.
    pub sent: u64,
    /// Envelopes dropped outright (no copy delivered).
    pub dropped: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
}

/// The fault gate: every envelope's fate is decided here.
#[derive(Debug, Clone)]
pub struct Transport {
    rng: SplitMix64,
    cfg: FaultConfig,
    stats: TransportStats,
}

impl Transport {
    /// A transport with its own deterministic RNG stream.
    pub fn new(seed: u64, cfg: FaultConfig) -> Self {
        cfg.validate();
        // decorrelate from other consumers of the master seed
        Transport {
            rng: SplitMix64::new(seed ^ 0x7261_6e73_706f_7274),
            cfg,
            stats: TransportStats::default(),
        }
    }

    /// The active fault configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Decide one envelope's fate: the returned vector holds one delivery
    /// delay (ms) per copy to deliver — empty means the envelope was lost.
    pub fn plan(&mut self, dir: Direction) -> Vec<u64> {
        let p = match dir {
            Direction::ToManager => self.cfg.to_manager,
            Direction::ToClient => self.cfg.to_client,
        };
        self.stats.sent += 1;
        if p.drop > 0.0 && self.rng.gen_bool(p.drop) {
            self.stats.dropped += 1;
            return Vec::new();
        }
        let copies = if p.duplicate > 0.0 && self.rng.gen_bool(p.duplicate) {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        (0..copies)
            .map(|_| {
                let jitter = if p.jitter_ms > 0 { self.rng.below(p.jitter_ms + 1) } else { 0 };
                p.delay_ms + jitter
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_transport_delivers_exactly_once_instantly() {
        let mut t = Transport::new(1, FaultConfig::ideal());
        for _ in 0..100 {
            assert_eq!(t.plan(Direction::ToManager), vec![0]);
            assert_eq!(t.plan(Direction::ToClient), vec![0]);
        }
        let s = t.stats();
        assert_eq!((s.sent, s.dropped, s.duplicated), (200, 0, 0));
    }

    #[test]
    fn loss_rate_converges_to_configured_probability() {
        let mut t = Transport::new(7, FaultConfig::symmetric(FaultProfile::lossy(0.3)));
        let n = 20_000;
        let lost = (0..n).filter(|_| t.plan(Direction::ToManager).is_empty()).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed loss {rate}");
    }

    #[test]
    fn duplication_yields_two_copies() {
        let profile = FaultProfile { duplicate: 1.0, ..FaultProfile::ideal() };
        let mut t = Transport::new(3, FaultConfig::symmetric(profile));
        assert_eq!(t.plan(Direction::ToClient).len(), 2);
        assert_eq!(t.stats().duplicated, 1);
    }

    #[test]
    fn delay_and_jitter_bound_delivery_times() {
        let profile = FaultProfile { delay_ms: 50, jitter_ms: 20, ..FaultProfile::ideal() };
        let mut t = Transport::new(9, FaultConfig::symmetric(profile));
        for _ in 0..500 {
            for d in t.plan(Direction::ToManager) {
                assert!((50..=70).contains(&d), "delay {d} outside [50, 70]");
            }
        }
    }

    #[test]
    fn same_seed_same_fates() {
        let cfg = FaultConfig::symmetric(FaultProfile {
            drop: 0.2,
            duplicate: 0.1,
            delay_ms: 10,
            jitter_ms: 30,
        });
        let run = |seed: u64| {
            let mut t = Transport::new(seed, cfg);
            (0..1000)
                .map(|i| {
                    let dir = if i % 2 == 0 { Direction::ToManager } else { Direction::ToClient };
                    t.plan(dir)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds must diverge");
    }

    #[test]
    #[should_panic(expected = "fault probabilities")]
    fn invalid_probability_rejected() {
        Transport::new(0, FaultConfig::symmetric(FaultProfile::lossy(1.5)));
    }
}
