//! End-to-end DUST simulation: protocol, placement, and resource model
//! wired onto the discrete-event engine.
//!
//! One [`Simulation`] owns the topology, a [`SimNode`] resource model and a
//! [`dust_proto::Client`] state machine per device, and a
//! [`dust_proto::Manager`]. Traffic evolves per the [`TrafficModel`],
//! clients report STATs, the Manager runs placement rounds, and accepted
//! offloads *physically move monitor agents* between nodes — so measured
//! CPU/memory series (recorded into a [`Federation`]) reproduce the Fig. 6
//! deltas mechanistically. Node failures can be injected to exercise the
//! keepalive → REP replica-substitution path (§III-C).
//!
//! Every control-plane envelope crosses the [`Transport`] fault gate
//! ([`SimConfig::faults`]): it may be dropped, duplicated, or delayed with
//! jitter, per direction, deterministically per seed. An ideal direction
//! delivers inline (identical to a direct call); any fault profile routes
//! the copies through the event queue as [`SimEvent::DeliverClient`] /
//! [`SimEvent::DeliverManager`] events, so delayed copies interleave with
//! the periodic events exactly as wall-clock delivery would.
//!
//! Two interchangeable cores drive the run ([`SimConfig::engine`]):
//! the legacy fixed-cadence **tick** core in this module, and the
//! **event** core in [`crate::event`], which processes the *same* typed
//! event sequence — [`SimEvent::StatEmission`], offer expiry/backoff
//! maintenance, fault-injected delivery, transfer completion, node
//! kill/revive, and SLO evaluation — but batches telemetry cost updates
//! per event-time and keeps hot per-node/per-flow state in arenas. The
//! two cores are pinned bit-for-bit against each other by the golden
//! trace digests and the `engine_parity` test suite.

use crate::engine::{EngineKind, EventQueue};
use crate::flows::{evaluate_flows, TelemetryFlow};
use crate::node::SimNode;
use crate::traffic::TrafficModel;
use crate::transport::{Direction, FaultConfig, Transport};
use dust_core::{DustConfig, SolverBackend};
use dust_obs::{ObsHandle, SloBreach, SloEngine, TraceEvent};
use dust_proto::{Client, ClientMsg, Envelope, Manager, ManagerMsg, RequestId};
use dust_telemetry::{Federation, IntSampling};
use dust_topology::{EdgeId, Graph, NodeId, Path, SplitMix64};
use std::collections::{BTreeMap, HashSet};

/// Correlated failure-storm parameters: overload-induced cascades on top
/// of the scheduled `kill_at`/`revive_at` injections.
///
/// At every telemetry sample point at or after `start_ms`, any live node
/// whose device CPU is at or above `cpu_threshold` is scheduled to crash
/// `cascade_delay_ms` later — modeling a zone outage where the surviving
/// members buckle under the load shed onto them. Each node cascades at
/// most once, and the storm stops after `max_cascades` kills so a run
/// cannot annihilate its own fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormConfig {
    /// Device CPU (percent) at which a node joins the cascade.
    pub cpu_threshold: f64,
    /// Storm checks only fire at/after this time, ms.
    pub start_ms: u64,
    /// Delay between threshold crossing and the node's crash, ms.
    pub cascade_delay_ms: u64,
    /// Total cascade-kill budget for the run.
    pub max_cascades: usize,
}

/// Continuous-churn parameters: seeded link-capacity and agent-rate
/// drift applied at a fixed cadence, so placement never reaches a
/// steady state and the Manager's incremental re-optimization path
/// (warm-started bases, dirty-row re-pricing, delta rounds) has real
/// work every round.
///
/// Link drift retunes `capacity_mbps` — not utilization, which the
/// traffic model owns and overwrites every STAT interval — on *both*
/// the physical graph and the Manager's pricing view, so telemetry
/// flows and `T_rmin` costs move together. Agent drift retunes the
/// per-packet sampling fraction of one seeded node's local agents,
/// shifting the data volume (`D_i`) its STATs report. Every draw comes
/// from a SplitMix64 keyed on `(seed, now)`, so a run is bit-identical
/// across cores and across repeats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Drift cadence, ms.
    pub period_ms: u64,
    /// Links whose capacity is retuned per tick.
    pub links_per_tick: usize,
    /// Maximum relative capacity change per retuned link (`0.3` means a
    /// multiplicative factor drawn from `[0.7, 1.3]`). Must lie in
    /// `[0, 1)` so capacity can never hit zero in one step.
    pub capacity_swing: f64,
    /// Nodes whose local agents' sampling fraction is retuned per tick.
    pub nodes_per_tick: usize,
    /// Retuned sampling fractions are drawn from `[rate_floor, 1.0]`.
    pub rate_floor: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            period_ms: 4_000,
            links_per_tick: 2,
            capacity_swing: 0.3,
            nodes_per_tick: 1,
            rate_floor: 0.4,
        }
    }
}

/// Simulation parameters.
///
/// Prefer [`Simulation::builder`], which validates knob combinations and
/// returns a loud [`dust_core::DustError::BadConfig`] instead of silently
/// accepting inconsistent settings.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Placement thresholds and routing options.
    pub dust: DustConfig,
    /// LP backend for the Manager's optimization engine.
    pub backend: SolverBackend,
    /// STAT cadence handed out in ACKs, ms.
    pub update_interval_ms: u64,
    /// Keepalive silence tolerated before replica substitution, ms.
    pub keepalive_timeout_ms: u64,
    /// How often the Manager runs a placement round, ms.
    pub placement_period_ms: u64,
    /// Metric sampling cadence, ms.
    pub sample_period_ms: u64,
    /// Total simulated time, ms.
    pub duration_ms: u64,
    /// `false` runs the "local monitoring" baseline: the DUST control plane
    /// still gossips, but no placement rounds fire (Fig. 6's comparison).
    pub dust_enabled: bool,
    /// Per-link utilization jitter around the traffic model's base.
    pub link_jitter: f64,
    /// When `true`, an accepted Offload-Request moves the Busy node's
    /// *entire* local monitoring deployment instead of just the granted
    /// capacity budget — the semantics of the paper's testbed experiment
    /// (§V-A offloaded all ten agents; Fig. 6).
    pub full_monitoring_offload: bool,
    /// Fault model for the control plane (drop/duplicate/delay per
    /// direction). [`FaultConfig::ideal`] reproduces the perfect wire.
    pub faults: FaultConfig,
    /// Correlated failure storm (cascading overload kills), if any.
    pub storm: Option<StormConfig>,
    /// Continuous link/agent churn, if any.
    pub drift: Option<DriftConfig>,
    /// Hand the Manager's solver the previous round's optimal basis as a
    /// starting point (identical objectives, fewer pivots).
    pub warm_start: bool,
    /// When set, the Manager runs the delta-placement path: between
    /// periodic full solves, only flows whose `T_rmin` degraded past
    /// this relative threshold are re-homed.
    pub delta_threshold: Option<f64>,
    /// Full-solve cadence for the delta path (every Nth round).
    pub delta_full_every: u64,
    /// Master seed.
    pub seed: u64,
    /// Which simulation core runs this configuration.
    pub engine: EngineKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            dust: DustConfig::paper_defaults(),
            backend: SolverBackend::Transportation,
            update_interval_ms: 1_000,
            keepalive_timeout_ms: 4_000,
            placement_period_ms: 5_000,
            sample_period_ms: 1_000,
            duration_ms: 120_000,
            dust_enabled: true,
            link_jitter: 0.05,
            full_monitoring_offload: false,
            faults: FaultConfig::ideal(),
            storm: None,
            drift: None,
            warm_start: false,
            delta_threshold: None,
            delta_full_every: 8,
            seed: 0,
            engine: EngineKind::default(),
        }
    }
}

/// The typed events driving a simulation run. Both cores process the same
/// sequence in the same `(time, seq)` order.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SimEvent {
    /// The fleet's STAT emission point: every live client observes its
    /// node's resources and ticks its protocol machine (registration
    /// retransmits, STATs, keepalives).
    StatEmission,
    /// Manager timer maintenance: offer expiry/backoff retransmits,
    /// keepalive timeouts, replica substitution.
    OfferMaintenance,
    /// Manager placement round (solve + Offload-Requests).
    PlacementRound,
    /// Record metric samples and evaluate telemetry flow transport.
    TelemetrySample,
    /// Online SLO evaluation over the sample just recorded (scheduled
    /// only when an engine is attached).
    SloEvaluation,
    /// Apply one seeded churn step ([`SimConfig::drift`]): retune link
    /// capacities and agent sampling rates.
    DriftTick,
    /// Stop a node (crash): it stops sending anything.
    NodeKill(NodeId),
    /// Restart a dead node.
    NodeRevive(NodeId),
    /// A delayed Manager → client envelope reaches its destination
    /// (transfer completions ride this event: an accepted Offload-Request
    /// lands here and moves agents).
    DeliverClient(Envelope<ManagerMsg>),
    /// A delayed client → Manager message reaches the Manager.
    DeliverManager(ClientMsg),
}

impl SimEvent {
    /// Profiling scope name for this event kind, shared by both cores so
    /// the per-kind self-time contrast in a profile compares like with
    /// like (`dustctl profile`, EXPERIMENTS engine-core table).
    pub(crate) fn scope_name(&self) -> &'static str {
        match self {
            SimEvent::StatEmission => "sim.event.stat_emission",
            SimEvent::OfferMaintenance => "sim.event.offer_maintenance",
            SimEvent::PlacementRound => "sim.event.placement_round",
            SimEvent::TelemetrySample => "sim.event.telemetry_sample",
            SimEvent::SloEvaluation => "sim.event.slo_evaluation",
            SimEvent::DriftTick => "sim.event.drift_tick",
            SimEvent::NodeKill(_) => "sim.event.node_kill",
            SimEvent::NodeRevive(_) => "sim.event.node_revive",
            SimEvent::DeliverClient(_) => "sim.event.deliver_client",
            SimEvent::DeliverManager(_) => "sim.event.deliver_manager",
        }
    }
}

/// Summary of a finished run.
#[derive(Debug)]
pub struct SimReport {
    /// Per-node metric series: `device-cpu`, `device-mem`, `monitor-cpu`
    /// (percent of one core), recorded per [`SimConfig::sample_period_ms`].
    pub federation: Federation,
    /// Placement rounds that produced at least one Offload-Request.
    pub placements_with_assignments: usize,
    /// Offload transfers physically applied (accepted requests).
    pub transfers_applied: usize,
    /// REP replica substitutions applied.
    pub replicas_applied: usize,
    /// Hostings orphaned (destination died, no replacement fit).
    pub orphaned: usize,
    /// When the first transfer was physically applied, ms (None = never):
    /// under loss this measures convergence latency of the handshake.
    pub first_transfer_ms: Option<u64>,
    /// Envelopes that crossed the fault gate (ideal directions bypass it).
    pub msgs_sent: u64,
    /// Envelopes the fault gate dropped.
    pub msgs_dropped: u64,
    /// Extra copies the fault gate injected.
    pub msgs_duplicated: u64,
    /// Offer retransmissions the Manager performed.
    pub offer_retries: u64,
    /// Offers the Manager abandoned after exhausting retries.
    pub offers_abandoned: u64,
    /// Final simulated time, ms.
    pub end_ms: u64,
    /// Units of simulation work processed: queue events popped plus
    /// messages delivered inline on an ideal wire. Identical for both
    /// cores at the same configuration — a determinism cross-check and
    /// the denominator of `dust-bench`'s events/sec.
    pub events_processed: u64,
    /// Peak number of pending events observed in the queue.
    pub peak_queue_len: usize,
    /// Placement rounds the Manager executed.
    pub placement_rounds: u64,
}

impl SimReport {
    /// Mean of a node's recorded series over `[start, end)`.
    pub fn mean(&self, node: NodeId, series: &str, start_ms: u64, end_ms: u64) -> Option<f64> {
        self.federation.store(node)?.series(series)?.mean(start_ms, end_ms)
    }

    /// Maximum of a node's recorded series over `[start, end)`.
    pub fn max(&self, node: NodeId, series: &str, start_ms: u64, end_ms: u64) -> Option<f64> {
        self.federation.store(node)?.series(series)?.max(start_ms, end_ms)
    }
}

/// One accepted transfer tracked by the simulation.
#[derive(Debug, Clone)]
pub(crate) struct Transfer {
    pub(crate) owner: NodeId,
    pub(crate) host: NodeId,
    /// Route from the Offload-Request or REP.
    pub(crate) route: Option<Path>,
    /// Telemetry volume shipped per update interval, Mb.
    pub(crate) data_mb: f64,
}

/// The wired-up simulation.
#[derive(Debug)]
pub struct Simulation {
    pub(crate) graph: Graph,
    pub(crate) nodes: Vec<SimNode>,
    pub(crate) clients: Vec<Client>,
    pub(crate) manager: Manager,
    pub(crate) traffic: TrafficModel,
    pub(crate) transport: Transport,
    pub(crate) cfg: SimConfig,
    pub(crate) dead: HashSet<NodeId>,
    /// Accepted transfers by request id. A `BTreeMap` so iteration order
    /// (flow evaluation, stale-transfer supersede traces) is a pure
    /// function of contents — identical across cores and across runs.
    pub(crate) active: BTreeMap<RequestId, Transfer>,
    /// Bumped whenever `active` changes; the event core's flow arena
    /// rebuilds only when this moves.
    pub(crate) active_version: u64,
    /// Failure injections: `(when_ms, node)`.
    pub(crate) kills: Vec<(u64, NodeId)>,
    /// Revival injections.
    pub(crate) revives: Vec<(u64, NodeId)>,
    /// Nodes the failure storm has already cascaded (each at most once).
    pub(crate) storm_triggered: HashSet<NodeId>,
    /// Observability sink shared with the Manager and every client
    /// (no-op by default).
    pub(crate) obs: ObsHandle,
    /// Online SLO engine, fed from the event loop (none by default).
    /// A pure observer: it reads Manager counters and node samples but
    /// never feeds back, so a run is bit-identical with or without it.
    pub(crate) slo: Option<SloEngine>,
}

impl Simulation {
    /// Start building a simulation: the validating entry point. See
    /// [`crate::builder::SimBuilder`].
    pub fn builder() -> crate::builder::SimBuilder {
        crate::builder::SimBuilder::new()
    }

    /// Internal constructor behind the builder. Panics on node-count
    /// mismatch; the builder pre-validates and never trips these.
    pub(crate) fn assemble(
        graph: Graph,
        nodes: Vec<SimNode>,
        traffic: TrafficModel,
        cfg: SimConfig,
    ) -> Self {
        assert_eq!(nodes.len(), graph.node_count(), "one SimNode per vertex");
        let mut manager = Manager::new(
            graph.clone(),
            cfg.dust,
            cfg.backend,
            cfg.update_interval_ms,
            cfg.keepalive_timeout_ms,
        )
        .expect("builder pre-validated the SimConfig")
        .with_warm_start(cfg.warm_start);
        if let Some(threshold) = cfg.delta_threshold {
            manager = manager
                .with_delta_placement(threshold, cfg.delta_full_every)
                .expect("builder pre-validated the delta knobs");
        }
        let clients =
            nodes.iter().map(|n| Client::new(n.id, true, cfg.dust.co_max + 10.0)).collect();
        let transport = Transport::new(cfg.seed, cfg.faults);
        Simulation {
            graph,
            nodes,
            clients,
            manager,
            traffic,
            transport,
            cfg,
            dead: HashSet::new(),
            active: BTreeMap::new(),
            active_version: 0,
            kills: Vec::new(),
            revives: Vec::new(),
            storm_triggered: HashSet::new(),
            obs: ObsHandle::disabled(),
            slo: None,
        }
    }

    /// Attach an observability handle: the Manager, every client, and
    /// the runner itself record metrics and trace events through it.
    /// Instrumentation never feeds back into simulation decisions, so a
    /// run at a given seed is bit-identical with tracing on or off.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.manager.set_obs(obs.clone());
        for c in &mut self.clients {
            c.set_obs(obs.clone());
        }
        self.obs = obs;
    }

    /// Builder form of [`Simulation::set_obs`].
    pub fn with_obs(mut self, obs: ObsHandle) -> Self {
        self.set_obs(obs);
        self
    }

    /// The attached observability handle (disabled by default).
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// Attach an online SLO engine. The runner feeds it from the event
    /// loop — protocol counters after Manager activity, CPU samples and
    /// a tick at each [`SimEvent::SloEvaluation`] point, and the
    /// convergence clock when the first transfer lands — and traces every
    /// breach it fires as a [`TraceEvent::SloBreach`] (plus `slo.breaches`
    /// counters), so alerts are part of the digested event stream.
    pub fn set_slo(&mut self, engine: SloEngine) {
        self.slo = Some(engine);
    }

    /// The attached SLO engine, if any (for breach inspection).
    pub fn slo(&self) -> Option<&SloEngine> {
        self.slo.as_ref()
    }

    /// Detach and return the SLO engine (e.g. to render its report).
    pub fn take_slo(&mut self) -> Option<SloEngine> {
        self.slo.take()
    }

    /// Trace and count newly fired SLO breaches (no-op on an empty set).
    fn record_breaches(&self, now: u64, fired: &[SloBreach]) {
        for b in fired {
            self.obs.counter_inc("slo.breaches");
            self.obs.counter_inc(&format!("slo.breach.{}", b.kind));
            self.obs.trace_at(
                now,
                TraceEvent::SloBreach { rule: b.rule, node: b.node_code(), value_m: b.value_m() },
            );
        }
    }

    /// Feed the Manager's cumulative offer counters to the SLO engine
    /// (after Manager ticks and placement rounds, where they can move).
    fn poll_slo_protocol(&mut self, now: u64) {
        if self.slo.is_none() {
            return;
        }
        let sent = self.manager.offers_sent();
        let retries = self.manager.offer_retries();
        let abandons = self.manager.offers_abandoned();
        let fired = self
            .slo
            .as_mut()
            .map(|e| e.on_protocol(now, sent, retries, abandons))
            .unwrap_or_default();
        self.record_breaches(now, &fired);
    }

    /// Schedule a crash of `node` at `at_ms` (builder-internal; callers
    /// use [`crate::builder::SimBuilder::kill_at`]).
    pub(crate) fn inject_failure(&mut self, at_ms: u64, node: NodeId) {
        self.kills.push((at_ms, node));
    }

    /// Schedule a revival of `node` at `at_ms` (builder-internal; callers
    /// use [`crate::builder::SimBuilder::revive_at`]).
    pub(crate) fn inject_revival(&mut self, at_ms: u64, node: NodeId) {
        self.revives.push((at_ms, node));
    }

    pub(crate) fn alive(&self, n: NodeId) -> bool {
        !self.dead.contains(&n)
    }

    /// Pass a Manager → client envelope through the fault gate. An ideal
    /// direction delivers inline; otherwise each surviving copy is queued
    /// at `now + delay`.
    pub(crate) fn send_to_client(
        &mut self,
        now: u64,
        env: Envelope<ManagerMsg>,
        q: &mut EventQueue<SimEvent>,
        report: &mut SimReport,
    ) {
        if self.cfg.faults.to_client.is_ideal() {
            if self.obs.is_enabled() {
                self.obs.counter_inc("sim.transport.to_client.sent");
                self.obs.counter_inc("sim.transport.to_client.delivered");
            }
            report.events_processed += 1;
            self.deliver_manager_msg(now, env, q, report);
            return;
        }
        let copies = self.transport.plan(Direction::ToClient);
        self.record_gate(now, Direction::ToClient, &copies);
        for delay in copies {
            q.schedule(now + delay, SimEvent::DeliverClient(env.clone()));
        }
    }

    /// Record one envelope's fate at the fault gate: per-direction
    /// sent/delivered/dropped/duplicated counters (the conservation
    /// identity `delivered + dropped == sent + duplicated` holds per
    /// direction), a delay histogram, and drop/duplicate trace events.
    fn record_gate(&self, now: u64, dir: Direction, copies: &[u64]) {
        if !self.obs.is_enabled() {
            return;
        }
        let to_manager = dir == Direction::ToManager;
        let prefix =
            if to_manager { "sim.transport.to_manager" } else { "sim.transport.to_client" };
        self.obs.counter_add(&format!("{prefix}.sent"), 1);
        self.obs.counter_add(&format!("{prefix}.delivered"), copies.len() as u64);
        if copies.is_empty() {
            self.obs.counter_add(&format!("{prefix}.dropped"), 1);
            self.obs.trace_at(now, TraceEvent::FaultDrop { to_manager });
        } else if copies.len() > 1 {
            self.obs.counter_add(&format!("{prefix}.duplicated"), copies.len() as u64 - 1);
            self.obs.trace_at(now, TraceEvent::FaultDuplicate { to_manager });
        }
        for &d in copies {
            self.obs.observe("sim.transport.delay_ms", d as f64);
        }
    }

    /// Pass a client → Manager message through the fault gate.
    pub(crate) fn send_to_manager(
        &mut self,
        now: u64,
        msg: ClientMsg,
        q: &mut EventQueue<SimEvent>,
        report: &mut SimReport,
    ) {
        if self.cfg.faults.to_manager.is_ideal() {
            if self.obs.is_enabled() {
                self.obs.counter_inc("sim.transport.to_manager.sent");
                self.obs.counter_inc("sim.transport.to_manager.delivered");
            }
            report.events_processed += 1;
            self.deliver_client_msg(now, &msg, q, report);
            return;
        }
        let copies = self.transport.plan(Direction::ToManager);
        self.record_gate(now, Direction::ToManager, &copies);
        for delay in copies {
            q.schedule(now + delay, SimEvent::DeliverManager(msg.clone()));
        }
    }

    /// A client message reaches the Manager; replies head back through the
    /// fault gate.
    pub(crate) fn deliver_client_msg(
        &mut self,
        now: u64,
        msg: &ClientMsg,
        q: &mut EventQueue<SimEvent>,
        report: &mut SimReport,
    ) {
        for env in self.manager.handle(now, msg) {
            self.send_to_client(now, env, q, report);
        }
    }

    /// Apply a Manager → client envelope: route to the client state machine
    /// and mirror accepted decisions onto the resource model. Duplicate
    /// deliveries re-ACK at the protocol layer but must not move agents
    /// twice — mirroring is guarded by the `active` transfer ledger.
    pub(crate) fn deliver_manager_msg(
        &mut self,
        now: u64,
        env: Envelope<ManagerMsg>,
        q: &mut EventQueue<SimEvent>,
        report: &mut SimReport,
    ) {
        let to = env.to;
        if !self.alive(to) {
            return; // lost on the wire; keepalive timeout will catch it
        }
        let traffic = self.traffic.fraction(now);
        let reply = self.clients[to.index()].handle(now, &env.msg);
        // Mirror protocol decisions onto the physical model.
        match (&env.msg, &reply) {
            (
                ManagerMsg::OffloadRequest { request, from, amount, data_mb, route },
                Some(ClientMsg::OffloadAck { accept: true, .. }),
            ) if !self.active.contains_key(request) => {
                if self.cfg.full_monitoring_offload {
                    // The Busy node sheds its own agents…
                    let moved = self.nodes[from.index()].offload_all_to(to);
                    self.nodes[to.index()].host_agents(*from, &moved);
                    // …and redirects any workload it was hosting for others
                    // ("an Offload-destination node can redirect the
                    // workload to another node if it becomes busy", §III-B).
                    let redirected = self.nodes[from.index()].take_hosted();
                    for (owner, agent) in redirected {
                        self.nodes[owner.index()].redirect_offloaded(*from, to);
                        self.nodes[to.index()].host_agents(owner, &[agent]);
                    }
                    // keep the transfer ledger pointing at the new host
                    // (redirected flows lose their planned route)
                    for t in self.active.values_mut() {
                        if t.host == *from {
                            t.host = to;
                            t.route = None;
                        }
                    }
                } else {
                    let moved = self.nodes[from.index()].offload_agents_to(to, *amount, traffic);
                    self.nodes[to.index()].host_agents(*from, &moved);
                }
                self.active.insert(
                    *request,
                    Transfer { owner: *from, host: to, route: route.clone(), data_mb: *data_mb },
                );
                self.active_version += 1;
                report.transfers_applied += 1;
                report.first_transfer_ms.get_or_insert(now);
                self.obs.counter_inc("sim.transfers_applied");
                self.obs.trace_at(
                    now,
                    TraceEvent::TransferApplied { request: request.0, from: from.0, to: to.0 },
                );
                let fired =
                    self.slo.as_mut().map(|e| e.on_transfer_applied(now)).unwrap_or_default();
                self.record_breaches(now, &fired);
            }
            (
                ManagerMsg::Rep { request, failed, from, data_mb, route, .. },
                Some(ClientMsg::OffloadAck { accept: true, .. }),
            ) if !self.active.contains_key(request) => {
                // re-home: retarget the owner's offloaded agents and move
                // the hosted copies from the failed node to the new host
                let rehomed = self.nodes[from.index()].rehome_offloaded(*failed, to);
                self.nodes[failed.index()].drop_hosted_for(*from);
                self.nodes[to.index()].host_agents(*from, &rehomed);
                // the transfer that ran owner → failed is gone; its
                // replacement lives under the new request id — dropping
                // the stale entry keeps the flow model truthful
                let stale: Vec<RequestId> = self
                    .active
                    .iter()
                    .filter(|(_, t)| t.owner == *from && t.host == *failed)
                    .map(|(r, _)| *r)
                    .collect();
                for r in stale {
                    self.active.remove(&r);
                    self.obs.counter_inc("sim.transfers_superseded");
                    self.obs.trace_at(now, TraceEvent::TransferSuperseded { request: r.0 });
                }
                self.active.insert(
                    *request,
                    Transfer { owner: *from, host: to, route: route.clone(), data_mb: *data_mb },
                );
                self.active_version += 1;
                report.replicas_applied += 1;
                self.obs.counter_inc("sim.replicas_applied");
                self.obs.trace_at(now, TraceEvent::ReplicaApplied { request: request.0, to: to.0 });
            }
            (ManagerMsg::Release { request }, _) => {
                if let Some(t) = self.active.remove(request) {
                    self.active_version += 1;
                    self.nodes[t.owner.index()].reclaim_from(t.host);
                    self.nodes[t.host.index()].drop_hosted_for(t.owner);
                    self.obs.counter_inc("sim.releases_applied");
                    self.obs.trace_at(
                        now,
                        TraceEvent::ReleaseApplied { request: request.0, node: t.host.0 },
                    );
                }
            }
            _ => {}
        }
        if let Some(r) = reply {
            self.send_to_manager(now, r, q, report);
        }
    }

    /// A fresh, empty report.
    pub(crate) fn empty_report() -> SimReport {
        SimReport {
            federation: Federation::new(),
            placements_with_assignments: 0,
            transfers_applied: 0,
            replicas_applied: 0,
            orphaned: 0,
            first_transfer_ms: None,
            msgs_sent: 0,
            msgs_dropped: 0,
            msgs_duplicated: 0,
            offer_retries: 0,
            offers_abandoned: 0,
            end_ms: 0,
            events_processed: 0,
            peak_queue_len: 0,
            placement_rounds: 0,
        }
    }

    /// Seed the queue exactly as both cores must see it: registrations
    /// delivered at t = 0, then the periodic events, then injected kills
    /// and revivals — the relative `seq` order at equal timestamps is part
    /// of the determinism contract.
    pub(crate) fn seed_queue(&mut self, q: &mut EventQueue<SimEvent>, report: &mut SimReport) {
        // Registration at t = 0: every client announces itself. Lost
        // registrations are retransmitted by the client on its next ticks.
        for i in 0..self.clients.len() {
            let reg = self.clients[i].register(0);
            self.send_to_manager(0, reg, q, report);
        }
        q.schedule(self.cfg.update_interval_ms, SimEvent::StatEmission);
        q.schedule(self.cfg.update_interval_ms, SimEvent::OfferMaintenance);
        if self.cfg.dust_enabled {
            q.schedule(self.cfg.placement_period_ms, SimEvent::PlacementRound);
        }
        q.schedule(0, SimEvent::TelemetrySample);
        if let Some(d) = &self.cfg.drift {
            q.schedule(d.period_ms, SimEvent::DriftTick);
        }
        for &(t, n) in &self.kills {
            q.schedule(t, SimEvent::NodeKill(n));
        }
        for &(t, n) in &self.revives {
            q.schedule(t, SimEvent::NodeRevive(n));
        }
    }

    /// Manager timer maintenance (offer expiry/backoff, keepalive
    /// timeouts → REP). Shared by both cores.
    pub(crate) fn handle_offer_maintenance(
        &mut self,
        now: u64,
        q: &mut EventQueue<SimEvent>,
        report: &mut SimReport,
    ) {
        let outs = self.manager.tick(now);
        for env in outs {
            self.send_to_client(now, env, q, report);
        }
        self.poll_slo_protocol(now);
        q.schedule_in(self.cfg.update_interval_ms, SimEvent::OfferMaintenance);
    }

    /// One Manager placement round. Shared by both cores.
    pub(crate) fn handle_placement_round(
        &mut self,
        now: u64,
        q: &mut EventQueue<SimEvent>,
        report: &mut SimReport,
    ) {
        let (placement, outs) = self.manager.run_placement(now);
        if !outs.is_empty() {
            report.placements_with_assignments += 1;
        }
        let _ = placement;
        for env in outs {
            self.send_to_client(now, env, q, report);
        }
        self.poll_slo_protocol(now);
        q.schedule_in(self.cfg.placement_period_ms, SimEvent::PlacementRound);
    }

    /// Online SLO evaluation over the sample recorded at `now`. Shared by
    /// both cores (the cost is proportional to fleet size only when an
    /// engine is attached, so the hot path never pays it).
    pub(crate) fn handle_slo_evaluation(&mut self, now: u64) {
        let traffic = self.traffic.fraction(now);
        let samples: Vec<(u32, f64)> = self
            .nodes
            .iter()
            .filter(|n| self.alive(n.id))
            .map(|n| (n.id.0, n.device_cpu_percent(now, traffic)))
            .collect();
        let mut fired = Vec::new();
        if let Some(engine) = self.slo.as_mut() {
            for (node, cpu) in samples {
                fired.extend(engine.on_cpu(now, node, cpu));
            }
            fired.extend(engine.on_tick(now));
        }
        self.record_breaches(now, &fired);
    }

    /// Failure-storm check at a telemetry sample point. Shared by both
    /// cores: nodes are visited in id order and CPU is computed through
    /// the same pure function the sample loop uses, so the cascade
    /// decision sequence is bit-identical across cores. A triggered node
    /// is killed through the normal [`SimEvent::NodeKill`] path
    /// `cascade_delay_ms` later, so each core's liveness bookkeeping
    /// stays in sync.
    pub(crate) fn handle_storm_check(&mut self, now: u64, q: &mut EventQueue<SimEvent>) {
        let Some(storm) = self.cfg.storm else { return };
        if now < storm.start_ms {
            return;
        }
        let traffic = self.traffic.fraction(now);
        for i in 0..self.nodes.len() {
            if self.storm_triggered.len() >= storm.max_cascades {
                break;
            }
            let id = self.nodes[i].id;
            if !self.alive(id) || self.storm_triggered.contains(&id) {
                continue;
            }
            let cpu = self.nodes[i].device_cpu_percent(now, traffic);
            if cpu >= storm.cpu_threshold {
                self.storm_triggered.insert(id);
                self.obs.counter_inc("sim.storm_cascades");
                self.obs.trace_at(
                    now,
                    TraceEvent::StormCascade { node: id.0, cpu_m: (cpu * 1000.0).round() as u64 },
                );
                q.schedule(now + storm.cascade_delay_ms, SimEvent::NodeKill(id));
            }
        }
    }

    /// One churn step ([`SimConfig::drift`]). Shared by both cores: the
    /// RNG is keyed on `(seed, now)` alone, so the draw sequence is a
    /// pure function of the event time, never of core-local state.
    ///
    /// Link-capacity drift is written to *both* graph copies. The
    /// simulation's copy feeds telemetry-flow evaluation (utilization is
    /// untouched — the traffic model owns it, and re-applies it lazily in
    /// the event core). The Manager's copy feeds `T_rmin` pricing through
    /// [`dust_topology::Graph::link_mut`], whose dirty journal lets
    /// [`dust_topology::CostEngine::refresh`] re-price only the crossing
    /// rows at the next placement round.
    pub(crate) fn handle_drift(&mut self, now: u64, q: &mut EventQueue<SimEvent>) {
        let Some(drift) = self.cfg.drift else { return };
        let mut rng = SplitMix64::new(self.cfg.seed ^ now.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut links = 0u32;
        let edge_count = self.graph.edge_count();
        for _ in 0..drift.links_per_tick.min(edge_count) {
            let e = EdgeId(rng.below(edge_count as u64) as u32);
            let factor = rng.range_f64(1.0 - drift.capacity_swing, 1.0 + drift.capacity_swing);
            // random walk with absolute guard rails so a long run can
            // neither collapse a link to zero nor grow it without bound
            let cap = (self.graph.edge(e).link.capacity_mbps * factor).clamp(100.0, 1.0e6);
            self.graph.link_mut(e).capacity_mbps = cap;
            self.manager.graph_mut().link_mut(e).capacity_mbps = cap;
            links += 1;
        }
        let mut agents = 0u32;
        for _ in 0..drift.nodes_per_tick.min(self.nodes.len()) {
            let i = rng.below(self.nodes.len() as u64) as usize;
            let p = rng.range_f64(drift.rate_floor, 1.0);
            let node = &mut self.nodes[i];
            if node.local_agents().is_empty() {
                continue;
            }
            for a in node.local_agents_mut() {
                a.sampling = Some(IntSampling::Probabilistic { p });
            }
            node.note_agents_changed();
            agents += node.local_agents().len() as u32;
        }
        self.obs.counter_inc("sim.drift_ticks");
        self.obs.trace_at(now, TraceEvent::DriftApplied { links, agents });
        q.schedule_in(drift.period_ms, SimEvent::DriftTick);
    }

    /// Crash `node`. Shared by both cores.
    pub(crate) fn handle_kill(&mut self, now: u64, n: NodeId) {
        self.dead.insert(n);
        self.obs.counter_inc("sim.nodes_killed");
        self.obs.trace_at(now, TraceEvent::NodeKilled { node: n.0 });
    }

    /// Revive `node` with a fresh client. Shared by both cores.
    pub(crate) fn handle_revive(
        &mut self,
        now: u64,
        n: NodeId,
        q: &mut EventQueue<SimEvent>,
        report: &mut SimReport,
    ) {
        self.dead.remove(&n);
        self.obs.counter_inc("sim.nodes_revived");
        self.obs.trace_at(now, TraceEvent::NodeRevived { node: n.0 });
        // The process restarted: the reborn client has no memory of
        // workloads it hosted before the crash — keeping the old ledger
        // would inflate every STAT it sends from now on with phantom
        // hosted load.
        let ceiling = self.cfg.dust.co_max + 10.0;
        let mut fresh = Client::new(n, true, ceiling);
        fresh.set_obs(self.obs.clone());
        self.clients[n.index()] = fresh;
        let reg = self.clients[n.index()].register(now);
        self.send_to_manager(now, reg, q, report);
    }

    /// Fill the end-of-run fields from Manager and transport state.
    pub(crate) fn finish_report(&self, report: &mut SimReport) {
        report.orphaned = self.manager.orphaned().len();
        report.offer_retries = self.manager.offer_retries();
        report.offers_abandoned = self.manager.offers_abandoned();
        report.placement_rounds = self.manager.placement_rounds();
        let stats = self.transport.stats();
        report.msgs_sent = stats.sent;
        report.msgs_dropped = stats.dropped;
        report.msgs_duplicated = stats.duplicated;
    }

    /// Run to completion on the configured engine.
    pub fn run(&mut self) -> SimReport {
        match self.cfg.engine {
            EngineKind::Tick => self.run_tick(),
            EngineKind::Event => crate::event::run_event(self),
        }
    }

    /// The legacy fixed-cadence core: every handler recomputes its state
    /// from scratch each firing. Kept as the reference implementation the
    /// event core is pinned against.
    fn run_tick(&mut self) -> SimReport {
        let mut report = Self::empty_report();
        let mut q: EventQueue<SimEvent> = EventQueue::new();
        self.seed_queue(&mut q, &mut report);

        while let Some(ev) = q.pop() {
            let now = ev.at_ms;
            if now > self.cfg.duration_ms {
                break;
            }
            report.events_processed += 1;
            report.peak_queue_len = report.peak_queue_len.max(q.len());
            // Mirror the sim clock so layers without one (cost engine,
            // solvers) stamp their trace events with this time.
            self.obs.set_now(now);
            let _prof = self.obs.prof_scope(ev.event.scope_name());
            match ev.event {
                SimEvent::StatEmission => {
                    let traffic = self.traffic.fraction(now);
                    self.traffic.apply_to_links(
                        &mut self.graph,
                        now,
                        self.cfg.link_jitter,
                        self.cfg.seed,
                    );
                    let walk = self.obs.prof_scope("sim.resource_walk");
                    for i in 0..self.nodes.len() {
                        let id = self.nodes[i].id;
                        if !self.alive(id) {
                            continue;
                        }
                        let cpu = self.nodes[i].device_cpu_percent(now, traffic);
                        let data = self.nodes[i].data_mb(traffic);
                        self.clients[i].observe(cpu, data);
                        for msg in self.clients[i].tick(now) {
                            self.send_to_manager(now, msg, &mut q, &mut report);
                        }
                    }
                    drop(walk);
                    q.schedule_in(self.cfg.update_interval_ms, SimEvent::StatEmission);
                }
                SimEvent::OfferMaintenance => {
                    self.handle_offer_maintenance(now, &mut q, &mut report);
                }
                SimEvent::PlacementRound => {
                    self.handle_placement_round(now, &mut q, &mut report);
                }
                SimEvent::TelemetrySample => {
                    let traffic = self.traffic.fraction(now);
                    let batch = self.obs.prof_scope("sim.telemetry_batch");
                    for n in &self.nodes {
                        let cpu = n.device_cpu_percent(now, traffic);
                        let mem = n.device_mem_percent();
                        let db = report.federation.store_mut(n.id);
                        db.append("device-cpu", now, cpu);
                        db.append("device-mem", now, mem);
                        db.append("monitor-cpu", now, n.monitoring_cpu_core_percent(now, traffic));
                        if self.obs.is_enabled() {
                            self.obs.observe("sim.node.cpu_percent", cpu);
                            self.obs.observe("sim.node.mem_percent", mem);
                        }
                    }
                    drop(batch);
                    if self.obs.is_enabled() {
                        self.obs.gauge_set("sim.active_transfers", self.active.len() as f64);
                    }
                    if self.slo.is_some() {
                        q.schedule(now, SimEvent::SloEvaluation);
                    }
                    // Telemetry transport: every routed transfer streams its
                    // owner's data over the chosen path at the lowest QoS
                    // class (§III-C); record delivered rate and loss.
                    let flows: Vec<TelemetryFlow> = self
                        .active
                        .values()
                        .filter(|t| t.data_mb > 0.0)
                        .filter_map(|t| {
                            t.route.as_ref().map(|r| TelemetryFlow {
                                owner: t.owner,
                                host: t.host,
                                route: r.clone(),
                                data_mb: t.data_mb,
                            })
                        })
                        .collect();
                    if !flows.is_empty() {
                        let outs = evaluate_flows(&self.graph, &flows, self.cfg.update_interval_ms);
                        for (f, o) in flows.iter().zip(&outs) {
                            let db = report.federation.store_mut(f.owner);
                            db.append("telemetry-admitted-mbps", now, o.admitted_mbps);
                            db.append("telemetry-dropped", now, o.dropped_fraction);
                        }
                    }
                    self.handle_storm_check(now, &mut q);
                    q.schedule_in(self.cfg.sample_period_ms, SimEvent::TelemetrySample);
                }
                SimEvent::SloEvaluation => {
                    self.handle_slo_evaluation(now);
                }
                SimEvent::DriftTick => {
                    self.handle_drift(now, &mut q);
                }
                SimEvent::NodeKill(n) => {
                    self.handle_kill(now, n);
                }
                SimEvent::NodeRevive(n) => {
                    self.handle_revive(now, n, &mut q, &mut report);
                }
                SimEvent::DeliverClient(env) => {
                    self.deliver_manager_msg(now, env, &mut q, &mut report);
                }
                SimEvent::DeliverManager(msg) => {
                    self.deliver_client_msg(now, &msg, &mut q, &mut report);
                }
            }
            report.end_ms = now;
        }
        self.finish_report(&mut report);
        report
    }

    /// Immutable view of the resource model (for assertions).
    pub fn nodes(&self) -> &[SimNode] {
        &self.nodes
    }

    /// The per-node client state machines (for assertions).
    pub fn clients(&self) -> &[Client] {
        &self.clients
    }

    /// The Manager (for assertions on protocol state).
    pub fn manager(&self) -> &Manager {
        &self.manager
    }

    /// Number of transfers currently applied on the resource model (the
    /// `active` ledger). Satisfies the conservation identity
    /// `active == transfers_applied + replicas_applied
    ///            - releases_applied - transfers_superseded`.
    pub fn active_transfers(&self) -> usize {
        self.active.len()
    }

    /// Where `owner`'s monitor agents physically are right now: local
    /// count plus copies hosted for it anywhere in the fleet. Conservation
    /// means this never changes, whatever the control plane loses.
    pub fn agent_census(&self, owner: NodeId) -> usize {
        self.nodes[owner.index()].local_agents().len()
            + self
                .nodes
                .iter()
                .map(|n| n.hosted_agents.iter().filter(|(o, _)| *o == owner).count())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSpec;
    use crate::transport::FaultProfile;
    use dust_topology::{topologies, Link};

    /// DUT (node 0) + idle server (node 1) on one link.
    fn two_node_sim(dust_enabled: bool) -> Simulation {
        two_node_sim_on(dust_enabled, EngineKind::default())
    }

    fn two_node_sim_on(dust_enabled: bool, engine: EngineKind) -> Simulation {
        let g = topologies::line(2, Link::default());
        let nodes = vec![
            SimNode::with_standard_agents(NodeId(0), NodeSpec::aruba_8325()),
            SimNode::bare(NodeId(1), NodeSpec::server()),
        ];
        // make the DUT Busy under paper thresholds: lower c_max so ~31 %
        // qualifies (thresholds are per-deployment, §IV-A)
        let dust = DustConfig::paper_defaults().with_thresholds(25.0, 20.0, 1.0);
        Simulation::builder()
            .graph(g)
            .nodes(nodes)
            .traffic(TrafficModel::testbed())
            .dust(dust)
            .dust_enabled(dust_enabled)
            .duration_ms(60_000)
            .engine(engine)
            .build()
            .expect("valid config")
    }

    #[test]
    fn baseline_never_offloads() {
        let mut sim = two_node_sim(false);
        let report = sim.run();
        assert_eq!(report.transfers_applied, 0);
        assert_eq!(sim.nodes()[0].local_agents().len(), 10);
    }

    #[test]
    fn dust_offloads_and_cpu_drops() {
        let mut sim = two_node_sim(true);
        let report = sim.run();
        assert!(report.transfers_applied > 0, "placement must fire");
        assert!(!sim.nodes()[0].offloaded_agents.is_empty(), "agents must physically move");
        // CPU in the steady tail must sit below the pre-offload window
        let before = report.mean(NodeId(0), "device-cpu", 0, 5_000).unwrap();
        let after = report.mean(NodeId(0), "device-cpu", 40_000, 60_000).unwrap();
        assert!(
            after < before - 5.0,
            "offload must reduce DUT CPU: before {before:.1} after {after:.1}"
        );
    }

    #[test]
    fn both_engines_report_identical_outcomes() {
        let mut tick = two_node_sim_on(true, EngineKind::Tick);
        let mut event = two_node_sim_on(true, EngineKind::Event);
        let rt = tick.run();
        let re = event.run();
        assert_eq!(rt.transfers_applied, re.transfers_applied);
        assert_eq!(rt.first_transfer_ms, re.first_transfer_ms);
        assert_eq!(rt.events_processed, re.events_processed, "event accounting must agree");
        assert_eq!(rt.peak_queue_len, re.peak_queue_len);
        assert_eq!(rt.placement_rounds, re.placement_rounds);
        assert_eq!(
            rt.mean(NodeId(0), "device-cpu", 0, 60_000),
            re.mean(NodeId(0), "device-cpu", 0, 60_000),
            "recorded series must be bit-identical"
        );
        assert_eq!(
            rt.mean(NodeId(0), "telemetry-admitted-mbps", 0, 60_000),
            re.mean(NodeId(0), "telemetry-admitted-mbps", 0, 60_000),
        );
    }

    #[test]
    fn failure_triggers_replica_substitution() {
        // three nodes: DUT busy, two possible hosts
        let g = topologies::line(3, Link::default());
        let nodes = vec![
            SimNode::with_standard_agents(NodeId(0), NodeSpec::aruba_8325()),
            SimNode::bare(NodeId(1), NodeSpec::server()),
            SimNode::bare(NodeId(2), NodeSpec::server()),
        ];
        let dust = DustConfig::paper_defaults().with_thresholds(25.0, 20.0, 1.0);
        let mut sim = Simulation::builder()
            .graph(g)
            .nodes(nodes)
            .traffic(TrafficModel::testbed())
            .dust(dust)
            .duration_ms(60_000)
            // kill whichever host got the agents once hosting is underway
            .kill_at(20_000, NodeId(1))
            .build()
            .expect("valid config");
        let report = sim.run();
        if sim.nodes()[1].hosted_agents.is_empty() && report.replicas_applied > 0 {
            // re-homed to node 2
            assert!(!sim.nodes()[2].hosted_agents.is_empty());
        }
        // invariant: the DUT's agents are somewhere — local, on 1, or on 2
        assert_eq!(sim.agent_census(NodeId(0)), 10, "no agents may be lost");
    }

    #[test]
    fn revival_resets_phantom_hosted_state() {
        let g = topologies::line(3, Link::default());
        let nodes = vec![
            SimNode::with_standard_agents(NodeId(0), NodeSpec::aruba_8325()),
            SimNode::bare(NodeId(1), NodeSpec::server()),
            SimNode::bare(NodeId(2), NodeSpec::server()),
        ];
        let dust = DustConfig::paper_defaults().with_thresholds(25.0, 20.0, 1.0);
        // the destination dies mid-hosting and comes back much later,
        // after the REP already re-homed its workload
        let mut sim = Simulation::builder()
            .graph(g)
            .nodes(nodes)
            .traffic(TrafficModel::testbed())
            .dust(dust)
            .duration_ms(60_000)
            .kill_at(20_000, NodeId(1))
            .revive_at(40_000, NodeId(2))
            .revive_at(40_000, NodeId(1))
            .build()
            .expect("valid config");
        sim.run();
        // the reborn client's ledger must agree with the Manager: every
        // hosted entry corresponds to a live confirmed hosting — the
        // pre-crash entry must NOT survive the reboot and inflate STATs
        for c in sim.clients() {
            for (req, _) in c.hosted() {
                let h = sim.manager().hostings().get(req);
                assert!(
                    h.is_some_and(|h| h.to == c.node && h.confirmed),
                    "client {:?} still carries phantom hosting {req:?}",
                    c.node
                );
            }
        }
        assert_eq!(sim.agent_census(NodeId(0)), 10, "no agents may be lost");
    }

    #[test]
    fn sampling_produces_all_series() {
        let mut sim = two_node_sim(false);
        let report = sim.run();
        for n in [NodeId(0), NodeId(1)] {
            let db = report.federation.store(n).unwrap();
            for s in ["device-cpu", "device-mem", "monitor-cpu"] {
                assert!(db.series(s).is_some(), "{n:?} missing {s}");
                assert!(db.series(s).unwrap().len() >= 50);
            }
        }
    }

    #[test]
    fn deterministic_runs() {
        let r1 = two_node_sim(true).run();
        let r2 = two_node_sim(true).run();
        assert_eq!(r1.transfers_applied, r2.transfers_applied);
        assert_eq!(
            r1.mean(NodeId(0), "device-cpu", 0, 60_000),
            r2.mean(NodeId(0), "device-cpu", 0, 60_000)
        );
    }

    /// Lossy control plane: offloading still converges, nothing is lost,
    /// and the fault gate's counters land in the report.
    fn lossy_sim(loss: f64, seed: u64) -> Simulation {
        let g = topologies::line(3, Link::default());
        let nodes = vec![
            SimNode::with_standard_agents(NodeId(0), NodeSpec::aruba_8325()),
            SimNode::bare(NodeId(1), NodeSpec::server()),
            SimNode::bare(NodeId(2), NodeSpec::server()),
        ];
        let dust = DustConfig::paper_defaults().with_thresholds(25.0, 20.0, 1.0);
        let faults = FaultConfig::symmetric(FaultProfile {
            drop: loss,
            duplicate: loss / 2.0,
            delay_ms: 20,
            jitter_ms: 100,
        });
        Simulation::builder()
            .graph(g)
            .nodes(nodes)
            .traffic(TrafficModel::testbed())
            .dust(dust)
            .duration_ms(60_000)
            .faults(faults)
            .seed(seed)
            .build()
            .expect("valid config")
    }

    #[test]
    fn lossy_control_plane_still_offloads() {
        let mut sim = lossy_sim(0.2, 11);
        let report = sim.run();
        assert!(report.transfers_applied > 0, "handshake must converge despite 20 % loss");
        assert!(report.msgs_sent > 0 && report.msgs_dropped > 0, "faults must actually fire");
        assert_eq!(sim.agent_census(NodeId(0)), 10, "no agents may be lost");
    }

    #[test]
    fn slo_convergence_breach_fires_on_the_no_offload_baseline() {
        use dust_obs::{ObsHandle, SloEngine, SloKind, SloSpec};
        // dust disabled → no transfer ever applies → convergence breaches
        let mut sim = two_node_sim(false);
        sim.set_obs(ObsHandle::recording(3));
        let spec = SloSpec::parse("convergence<=10000").unwrap();
        sim.set_slo(SloEngine::new(spec, 25.0));
        sim.run();
        let engine = sim.take_slo().unwrap();
        assert!(engine.breached(), "baseline never offloads, deadline must fire");
        assert_eq!(engine.breaches().len(), 1, "convergence fires exactly once");
        assert_eq!(engine.breaches()[0].kind, SloKind::Convergence);
        // the breach is traced and counted — part of the digested stream
        assert_eq!(sim.obs().counter("slo.breaches"), 1);
        assert_eq!(sim.obs().counter("slo.breach.convergence"), 1);
        let trace = sim.obs().trace_snapshot().unwrap();
        let traced = trace
            .entries()
            .iter()
            .filter(|e| matches!(e.event, TraceEvent::SloBreach { .. }))
            .count();
        assert_eq!(traced, 1);
    }

    #[test]
    fn slo_engine_is_a_pure_observer() {
        // identical runs with and without an engine watching
        let plain = two_node_sim(true).run();
        let mut watched = two_node_sim(true);
        let spec = dust_obs::SloSpec::parse(
            "convergence<=1,retransmit_rate<=0.0,abandons<=0,overload_dwell<=1",
        )
        .unwrap();
        watched.set_slo(dust_obs::SloEngine::new(spec, 25.0));
        let report = watched.run();
        assert!(watched.slo().unwrap().breached(), "tight thresholds must fire");
        assert_eq!(plain.transfers_applied, report.transfers_applied);
        assert_eq!(plain.first_transfer_ms, report.first_transfer_ms);
        assert_eq!(
            plain.mean(NodeId(0), "device-cpu", 0, 60_000),
            report.mean(NodeId(0), "device-cpu", 0, 60_000)
        );
    }

    #[test]
    fn lossy_runs_are_bit_identical_per_seed() {
        let a = lossy_sim(0.3, 5).run();
        let b = lossy_sim(0.3, 5).run();
        assert_eq!(
            (a.transfers_applied, a.replicas_applied, a.msgs_sent, a.msgs_dropped),
            (b.transfers_applied, b.replicas_applied, b.msgs_sent, b.msgs_dropped)
        );
        assert_eq!(a.first_transfer_ms, b.first_transfer_ms);
        assert_eq!(
            a.mean(NodeId(0), "device-cpu", 0, 60_000),
            b.mean(NodeId(0), "device-cpu", 0, 60_000)
        );
    }
}
