//! Shared testbed fixtures and the parameterized chaos harness.
//!
//! [`testbed_topology`] mirrors Fig. 5's small VxLAN data-center prototype:
//! a spine/leaf fabric where the DUT (an Aruba 8325-class leaf) runs the
//! ten-agent monitoring deployment and neighboring servers offer spare
//! compute. The named canned workloads and the Fig. 1 / Fig. 6 experiment
//! helpers live in [`crate::registry`]; this module keeps the fixtures
//! they are assembled from and the [`chaos_with_faults`] /
//! [`chaos_with_slo`] harness the CLI drives with arbitrary fault knobs.

use crate::engine::EngineKind;
use crate::node::{NodeSpec, SimNode};
use crate::runner::{SimReport, Simulation};
use crate::traffic::TrafficModel;
use crate::transport::FaultConfig;
use dust_core::DustConfig;
use dust_obs::{ObsHandle, SloEngine, SloSpec};
use dust_topology::{Graph, Link, NodeId};

/// The Fig. 5 testbed: 2 spines, 2 leaves, 2 servers. Returns the graph
/// and the DUT's node id (leaf 0).
///
/// ```text
///   spine0 ─┬─ leaf0 (DUT) ─ server0
///           │      ╳
///   spine1 ─┴─ leaf1        ─ server1
/// ```
pub fn testbed_topology() -> (Graph, NodeId) {
    let mut g = Graph::with_nodes(6);
    let link = Link::new(25_000.0, 0.2); // 25G fabric at testbed load
    let (s0, s1, l0, l1, srv0, srv1) =
        (NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4), NodeId(5));
    for spine in [s0, s1] {
        for leaf in [l0, l1] {
            g.add_edge(spine, leaf, link);
        }
    }
    g.add_edge(l0, srv0, Link::new(10_000.0, 0.2));
    g.add_edge(l1, srv1, Link::new(10_000.0, 0.2));
    (g, l0)
}

/// SimNodes matching [`testbed_topology`]: switches run monitoring (the
/// DUT with the full ten agents), servers are bare offload targets.
pub fn testbed_nodes(dut: NodeId) -> Vec<SimNode> {
    (0..6u32)
        .map(|i| {
            let id = NodeId(i);
            if id == dut {
                SimNode::with_standard_agents(id, NodeSpec::aruba_8325())
            } else if i >= 4 {
                SimNode::bare(id, NodeSpec::server())
            } else {
                SimNode::bare(id, NodeSpec::aruba_8325())
            }
        })
        .collect()
}

/// Thresholds used for the testbed runs: the DUT's ≈ 31 % local reading
/// must classify as Busy while the idle servers qualify as candidates.
pub fn testbed_dust_config() -> DustConfig {
    // The hop-bounded DP engine returns the same optimum as the paper's
    // exhaustive enumeration (property-tested) at a fraction of the cost;
    // a deployed Manager would run this engine, so the simulator does too.
    DustConfig::paper_defaults()
        .with_thresholds(20.0, 15.0, 1.0)
        .with_engine(dust_topology::PathEngine::HopBoundedDp)
}

/// One Fig. 1 measurement row.
#[derive(Debug, Clone, Copy)]
pub struct Fig1Row {
    /// Offered VxLAN traffic, fraction of line rate.
    pub traffic_fraction: f64,
    /// Mean monitoring-module CPU, percent of one core.
    pub mean_cpu_percent: f64,
    /// Peak (burst) monitoring CPU observed.
    pub peak_cpu_percent: f64,
}

/// Fig. 6 result: device-level CPU/memory with local monitoring vs DUST.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Result {
    /// Mean DUT CPU %, monitoring local.
    pub local_cpu: f64,
    /// Mean DUT CPU %, monitoring offloaded by DUST.
    pub dust_cpu: f64,
    /// Mean DUT memory %, monitoring local.
    pub local_mem: f64,
    /// Mean DUT memory %, monitoring offloaded.
    pub dust_mem: f64,
    /// Offload transfers the DUST run applied.
    pub transfers: usize,
}

impl Fig6Result {
    /// Relative CPU reduction, percent (paper: ≈ 52 %).
    pub fn cpu_reduction_percent(&self) -> f64 {
        100.0 * (self.local_cpu - self.dust_cpu) / self.local_cpu
    }

    /// Relative memory reduction, percent (paper: ≈ 12 %).
    pub fn mem_reduction_percent(&self) -> f64 {
        100.0 * (self.local_mem - self.dust_mem) / self.local_mem
    }
}

/// Outcome of the fleet scenario.
#[derive(Debug, Clone, Copy)]
pub struct FleetResult {
    /// Switches that ran monitoring at the start.
    pub monitored: usize,
    /// Offload transfers applied across the run.
    pub transfers: usize,
    /// Mean device CPU over monitored switches, first 10 % of the run.
    pub early_mean_cpu: f64,
    /// Mean device CPU over monitored switches, settled tail (last half).
    pub late_mean_cpu: f64,
    /// Monitored switches still above the Busy threshold at the end.
    pub still_busy: usize,
}

/// Fleet scenario: DUST on a `k`-port fat-tree where every *edge* switch
/// runs the full ten-agent deployment (DUT-class hardware) while
/// aggregation/core switches are lightly loaded candidates. Exercises
/// many simultaneous Busy nodes, shared destinations, and repeated
/// placement rounds — the "at scale" claim of the abstract.
pub fn fleet(k: usize, duration_ms: u64, seed: u64) -> FleetResult {
    use dust_topology::{FatTree, Tier};
    let ft = FatTree::new(k, Link::new(25_000.0, 0.2));
    let edges = ft.tier_nodes(Tier::Edge);
    let nodes: Vec<SimNode> = ft
        .graph
        .nodes()
        .map(|n| {
            if edges.contains(&n) {
                SimNode::with_standard_agents(n, NodeSpec::aruba_8325())
            } else {
                SimNode::bare(n, NodeSpec::dpu())
            }
        })
        .collect();
    let mut sim = Simulation::builder()
        .graph(ft.graph.clone())
        .nodes(nodes)
        .traffic(TrafficModel::testbed())
        .dust(testbed_dust_config())
        .duration_ms(duration_ms)
        .seed(seed)
        .full_monitoring_offload(true)
        .build()
        .expect("fleet knobs are consistent");
    let report = sim.run();

    let window = |start: u64, end: u64| -> f64 {
        let vals: Vec<f64> =
            edges.iter().filter_map(|&e| report.mean(e, "device-cpu", start, end)).collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let dust_cfg = testbed_dust_config();
    let still_busy = edges
        .iter()
        .filter(|&&e| {
            let n = &sim.nodes()[e.index()];
            n.device_cpu_percent(duration_ms, 0.2) >= dust_cfg.c_max
        })
        .count();
    FleetResult {
        monitored: edges.len(),
        transfers: report.transfers_applied,
        early_mean_cpu: window(0, duration_ms / 10),
        late_mean_cpu: window(duration_ms / 2, duration_ms),
        still_busy,
    }
}

/// Outcome of the congestion scenario.
#[derive(Debug, Clone, Copy)]
pub struct CongestionResult {
    /// Mean fraction of offloaded telemetry discarded during the squeeze.
    pub dropped_during_congestion: f64,
    /// Mean fraction discarded before the squeeze.
    pub dropped_before: f64,
    /// Mean admitted telemetry rate during the squeeze, Mbps.
    pub admitted_during: f64,
}

/// Congestion scenario: offload normally, then drive the fabric to
/// near-saturation mid-run. The §III-C QoS guarantee requires offloaded
/// telemetry to be "safely discarded in the event of network congestion"
/// while the data plane is untouched — measured via the flow-transport
/// series the runner records.
pub fn congestion(duration_ms: u64, seed: u64) -> CongestionResult {
    let (graph, dut) = testbed_topology();
    let squeeze_from = duration_ms / 2;
    // traffic ramps from the normal 20 % to a 99.9 % squeeze by mid-run,
    // then holds saturated for the whole second half
    let traffic = TrafficModel::Ramp { from: 0.2, to: 0.999, duration_ms: squeeze_from.max(1) };
    let mut sim = Simulation::builder()
        .graph(graph)
        .nodes(testbed_nodes(dut))
        .traffic(traffic)
        .dust(testbed_dust_config())
        .duration_ms(duration_ms)
        .seed(seed)
        .full_monitoring_offload(true)
        .link_jitter(0.0)
        .build()
        .expect("congestion knobs are consistent");
    let report = sim.run();
    let dropped = |a: u64, b: u64| {
        report
            .federation
            .store(dut)
            .and_then(|db| db.series("telemetry-dropped"))
            .and_then(|s| s.mean(a, b))
            .unwrap_or(0.0)
    };
    let admitted = report
        .federation
        .store(dut)
        .and_then(|db| db.series("telemetry-admitted-mbps"))
        .and_then(|s| s.mean(squeeze_from + duration_ms / 4, duration_ms))
        .unwrap_or(0.0);
    CongestionResult {
        dropped_during_congestion: dropped(squeeze_from + duration_ms / 4, duration_ms),
        dropped_before: dropped(0, squeeze_from / 2),
        admitted_during: admitted,
    }
}

/// Outcome of one chaos run: the testbed under a lossy control plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosResult {
    /// Uniform drop probability applied in both directions.
    pub loss: f64,
    /// Offload transfers physically applied.
    pub transfers: usize,
    /// REP replica substitutions applied.
    pub replicas: usize,
    /// Envelopes through the fault gate.
    pub msgs_sent: u64,
    /// Envelopes the gate dropped.
    pub msgs_dropped: u64,
    /// Extra copies the gate injected.
    pub msgs_duplicated: u64,
    /// Offer retransmissions the Manager performed.
    pub offer_retries: u64,
    /// Offers abandoned after exhausting their retries.
    pub offers_abandoned: u64,
    /// When the first transfer landed, ms (None = handshake never closed).
    pub first_transfer_ms: Option<u64>,
    /// Monitor agents the DUT deployment started with.
    pub agents_expected: usize,
    /// Monitor agents accounted for at the end (local + hosted anywhere).
    pub agents_present: usize,
    /// Unconfirmed hostings older than the full retry budget at the end —
    /// must be zero or offers are leaking.
    pub unconfirmed_stale: usize,
    /// Manager and client ledgers mutually consistent at the end.
    pub ledgers_consistent: bool,
}

/// [`crate::registry::chaos_run`] with a caller-supplied fault model
/// (e.g. from `dustctl sim` flags): same testbed, same invariants,
/// arbitrary knobs. The reported `loss` is the Manager → Client drop
/// probability.
pub fn chaos_with_faults(faults: FaultConfig, duration_ms: u64, seed: u64) -> ChaosResult {
    chaos_with_faults_observed(faults, duration_ms, seed, ObsHandle::disabled())
}

/// [`chaos_with_faults`] recording into `obs`: every protocol transition,
/// fault-gate decision, solver solve, and resource sample lands in the
/// handle's metrics and trace. Pass [`ObsHandle::disabled`] for the plain
/// run — the scenario is bit-identical either way.
pub fn chaos_with_faults_observed(
    faults: FaultConfig,
    duration_ms: u64,
    seed: u64,
    obs: ObsHandle,
) -> ChaosResult {
    chaos_with_faults_observed_on(faults, duration_ms, seed, obs, EngineKind::default())
}

/// [`chaos_with_faults_observed`] on an explicit simulation core — the
/// `dustctl … --engine tick` compatibility path that pins the event core
/// against the legacy tick core byte-for-byte.
pub fn chaos_with_faults_observed_on(
    faults: FaultConfig,
    duration_ms: u64,
    seed: u64,
    obs: ObsHandle,
    engine: EngineKind,
) -> ChaosResult {
    chaos_inner(faults, duration_ms, seed, obs, None, engine).0
}

/// [`chaos_with_faults_observed`] with an online SLO engine for `spec`
/// riding along (overload threshold = the testbed's `c_max`). Returns
/// the scenario result and the engine, whose [`SloEngine::breaches`]
/// and [`SloEngine::report`] describe every rule that fired. The engine
/// is a pure observer: the `ChaosResult` is bit-identical to
/// [`chaos_with_faults`] at the same knobs and seed.
pub fn chaos_with_slo(
    faults: FaultConfig,
    duration_ms: u64,
    seed: u64,
    obs: ObsHandle,
    spec: &SloSpec,
) -> (ChaosResult, SloEngine) {
    chaos_with_slo_on(faults, duration_ms, seed, obs, spec, EngineKind::default())
}

/// [`chaos_with_slo`] on an explicit simulation core.
pub fn chaos_with_slo_on(
    faults: FaultConfig,
    duration_ms: u64,
    seed: u64,
    obs: ObsHandle,
    spec: &SloSpec,
    engine: EngineKind,
) -> (ChaosResult, SloEngine) {
    let slo = SloEngine::new(spec.clone(), testbed_dust_config().c_max);
    let (result, slo) = chaos_inner(faults, duration_ms, seed, obs, Some(slo), engine);
    (result, slo.expect("engine attached above"))
}

fn chaos_inner(
    faults: FaultConfig,
    duration_ms: u64,
    seed: u64,
    obs: ObsHandle,
    slo: Option<SloEngine>,
    engine: EngineKind,
) -> (ChaosResult, Option<SloEngine>) {
    let (graph, dut) = testbed_topology();
    let loss = faults.to_client.drop;
    let agents_expected = 10;
    let mut builder = Simulation::builder()
        .graph(graph)
        .nodes(testbed_nodes(dut))
        .traffic(TrafficModel::testbed())
        .dust(testbed_dust_config())
        .duration_ms(duration_ms)
        .seed(seed)
        .full_monitoring_offload(true)
        .faults(faults)
        .engine(engine)
        .obs(obs);
    if let Some(slo) = slo {
        builder = builder.slo(slo);
    }
    let mut sim = builder.build().expect("chaos knobs are consistent");
    let report = sim.run();

    // offers still unconfirmed at the end are fine while young (an offer
    // may be mid-retry when time runs out); one older than the entire
    // backoff ladder has leaked past the expiry machinery
    let budget = 8 * sim.manager().offer_timeout_ms();
    let unconfirmed_stale = sim
        .manager()
        .hostings()
        .values()
        .filter(|h| !h.confirmed && report.end_ms.saturating_sub(h.offered_ms) > budget)
        .count();

    // mutual ledger consistency: every confirmed hosting is mirrored on
    // its client with the same owner and amount, and no client entry that
    // the Manager still tracks diverges from the Manager's record
    let mut consistent = true;
    for (req, h) in sim.manager().hostings() {
        if !h.confirmed {
            continue;
        }
        let mirrored = sim.clients()[h.to.index()]
            .hosted()
            .any(|(r, w)| r == req && w.from == h.from && (w.amount - h.amount).abs() < 1e-9);
        consistent &= mirrored;
    }
    for c in sim.clients() {
        for (req, w) in c.hosted() {
            if let Some(h) = sim.manager().hostings().get(req) {
                consistent &=
                    h.to == c.node && h.from == w.from && (h.amount - w.amount).abs() < 1e-9;
            }
        }
    }

    let result = ChaosResult {
        loss,
        transfers: report.transfers_applied,
        replicas: report.replicas_applied,
        msgs_sent: report.msgs_sent,
        msgs_dropped: report.msgs_dropped,
        msgs_duplicated: report.msgs_duplicated,
        offer_retries: report.offer_retries,
        offers_abandoned: report.offers_abandoned,
        first_transfer_ms: report.first_transfer_ms,
        agents_expected,
        agents_present: sim.agent_census(dut),
        unconfirmed_stale,
        ledgers_consistent: consistent,
    };
    (result, sim.take_slo())
}

/// The Fig. 5 testbed DUST run (full monitoring offload, perfect wire)
/// recording into `obs` — the golden-trace regression scenario.
pub fn testbed_observed(duration_ms: u64, seed: u64, obs: ObsHandle) -> SimReport {
    testbed_observed_on(duration_ms, seed, obs, EngineKind::default())
}

/// [`testbed_observed`] on an explicit simulation core.
pub fn testbed_observed_on(
    duration_ms: u64,
    seed: u64,
    obs: ObsHandle,
    engine: EngineKind,
) -> SimReport {
    let (graph, dut) = testbed_topology();
    let mut sim = Simulation::builder()
        .graph(graph)
        .nodes(testbed_nodes(dut))
        .traffic(TrafficModel::testbed())
        .dust(testbed_dust_config())
        .duration_ms(duration_ms)
        .seed(seed)
        .full_monitoring_offload(true)
        .engine(engine)
        .obs(obs)
        .build()
        .expect("testbed knobs are consistent");
    sim.run()
}

/// How many copies of the standard ten-agent deployment every switch in
/// [`scale_fleet`] carries: a deep per-node monitoring stack whose
/// resource model the tick core re-walks on every emission and sample,
/// and the event core computes once per epoch.
pub const SCALE_FLEET_AGENT_COPIES: usize = 40;

/// The core-overhead bench scenario: a `k`-port fat-tree where *every*
/// switch is a many-core telemetry appliance carrying
/// [`SCALE_FLEET_AGENT_COPIES`] copies of the standard monitoring
/// deployment. The core count keeps device-level CPU far below the Busy
/// threshold, so the placement control plane stays quiet and the run is
/// dominated by exactly the per-event machinery the event core optimizes
/// — resource-model walks over the deep agent stacks, link-state
/// application, sampling — not by protocol traffic, which both cores
/// share. At `k = 90` this is a 10 125-node fleet processing > 100 000
/// events over a 10-second run — the `BENCH_seed.json` workload.
pub fn scale_fleet(k: usize, duration_ms: u64, seed: u64, engine: EngineKind) -> SimReport {
    scale_fleet_sim(k, duration_ms, seed, engine).run()
}

/// The assembled-but-not-run [`scale_fleet`] simulation, so benchmarks
/// can time [`Simulation::run`] in isolation — fleet construction is
/// identical for both cores and would only dilute the measured core
/// speedup.
pub fn scale_fleet_sim(k: usize, duration_ms: u64, seed: u64, engine: EngineKind) -> Simulation {
    scale_fleet_sim_on(k, duration_ms, seed, ObsHandle::disabled(), engine)
}

/// The interned deployment record every [`scale_fleet`] switch shares:
/// [`SCALE_FLEET_AGENT_COPIES`] copies of the standard ten-agent
/// deployment, built **once** per fleet. Before interning, construction
/// materialised this 400-struct vector separately for each of the
/// 10 125 nodes at `k = 90` (4 M owned agent structs); now every node
/// holds an `Arc` to this one record and only detaches onto a private
/// copy if something actually mutates its agent list (which the quiet
/// scale_fleet control plane never does).
pub fn scale_fleet_deployment() -> std::sync::Arc<Vec<dust_telemetry::MonitorAgent>> {
    use dust_telemetry::MonitorAgent;
    std::sync::Arc::new(
        (0..SCALE_FLEET_AGENT_COPIES).flat_map(|_| MonitorAgent::standard_deployment()).collect(),
    )
}

/// [`scale_fleet_sim`] recording into `obs` — `dustctl profile
/// scale_fleet` and the per-phase BENCH breakdown attach a profiling
/// handle here. Pass [`ObsHandle::disabled`] for the plain benchmark
/// run; the assembled fleet is bit-identical either way.
pub fn scale_fleet_sim_on(
    k: usize,
    duration_ms: u64,
    seed: u64,
    obs: ObsHandle,
    engine: EngineKind,
) -> Simulation {
    use dust_topology::FatTree;
    let ft = FatTree::new(k, Link::new(25_000.0, 0.2));
    let appliance =
        NodeSpec { cpu_cores: 4096.0, mem_gib: 4096.0, base_cpu_percent: 14.0, base_mem_gib: 9.6 };
    let deployment = scale_fleet_deployment();
    let nodes: Vec<SimNode> = ft
        .graph
        .nodes()
        .map(|n| SimNode::with_shared_agents(n, appliance, std::sync::Arc::clone(&deployment)))
        .collect();
    // paper-default thresholds (so nobody classifies Busy), but the path
    // engine must be pinned: the builder rejects unbounded enumeration on
    // a fleet this size (it never actually runs here — placement stays
    // quiet — but the config would be a time bomb).
    let dust = DustConfig::paper_defaults().with_engine(dust_topology::PathEngine::HopBoundedDp);
    Simulation::builder()
        .graph(ft.graph.clone())
        .nodes(nodes)
        .traffic(TrafficModel::testbed())
        .dust(dust)
        .duration_ms(duration_ms)
        .sample_period_ms(150)
        .seed(seed)
        .engine(engine)
        .obs(obs)
        .build()
        .expect("scale knobs are consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::FaultProfile;

    #[test]
    fn testbed_shape() {
        let (g, dut) = testbed_topology();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 6);
        assert!(g.is_connected());
        assert_eq!(dut, NodeId(2));
        // DUT touches both spines and its server
        assert_eq!(g.degree(dut), 3);
    }

    #[test]
    fn congestion_discards_offloaded_telemetry_first() {
        let r = congestion(120_000, 3);
        assert!(
            r.dropped_before < 0.05,
            "telemetry must flow freely at 20 % load, dropped {}",
            r.dropped_before
        );
        assert!(
            r.dropped_during_congestion > 0.5,
            "near-saturation must squeeze telemetry hard, dropped {}",
            r.dropped_during_congestion
        );
        assert!(
            r.admitted_during < 50.0,
            "admitted telemetry must collapse under the squeeze: {} Mbps",
            r.admitted_during
        );
    }

    #[test]
    fn fleet_offloads_many_switches() {
        let r = fleet(4, 90_000, 13);
        assert_eq!(r.monitored, 8, "4-k fat-tree has 8 edge switches");
        assert!(r.transfers >= 4, "most edge switches must offload, got {}", r.transfers);
        assert!(
            r.late_mean_cpu < r.early_mean_cpu - 5.0,
            "fleet CPU must settle lower: early {:.1} late {:.1}",
            r.early_mean_cpu,
            r.late_mean_cpu
        );
        assert!(r.still_busy <= 2, "{} switches never de-busied", r.still_busy);
    }

    #[test]
    fn chaos_with_slo_is_a_pure_observer_and_catches_loss() {
        let faults = FaultConfig::symmetric(FaultProfile {
            drop: 0.25,
            duplicate: 0.125,
            delay_ms: 20,
            jitter_ms: 100,
        });
        let plain = chaos_with_faults(faults, 60_000, 9);
        // thresholds tight enough that a 25 % lossy wire must trip them
        let spec = SloSpec::parse("retransmit_rate<=0.0,convergence<=1").unwrap();
        let (watched, engine) = chaos_with_slo(faults, 60_000, 9, ObsHandle::recording(9), &spec);
        assert_eq!(plain, watched, "SLO engine must not perturb the run");
        assert!(engine.breached(), "a lossy wire must breach a zero-retransmit budget");
        assert!(engine.report().contains("breach rule="), "{}", engine.report());
    }

    #[test]
    fn chaos_counters_bit_identical_per_seed() {
        let a = crate::registry::chaos_run(0.25, 60_000, 9);
        let b = crate::registry::chaos_run(0.25, 60_000, 9);
        assert_eq!(a, b, "same seed must reproduce every counter bit-for-bit");
    }

    #[test]
    fn scale_fleet_cores_agree_and_stay_idle() {
        // small k keeps the test fast; the bench binary runs the real k=90
        let ev = scale_fleet(4, 3_000, 9, EngineKind::Event);
        let tk = scale_fleet(4, 3_000, 9, EngineKind::Tick);
        // under paper-default thresholds nobody classifies Busy…
        assert_eq!(ev.transfers_applied, 0, "paper defaults must not trigger offload");
        // …but the STAT pipeline runs fleet-wide on both cores identically
        assert!(ev.events_processed > 100);
        assert_eq!(ev.events_processed, tk.events_processed);
        assert_eq!(ev.peak_queue_len, tk.peak_queue_len);
        assert_eq!(ev.end_ms, tk.end_ms);
    }

    #[test]
    fn scale_fleet_shares_one_deployment_record() {
        let sim = scale_fleet_sim(8, 1_000, 1, EngineKind::Event);
        // the quiet control plane never mutates an agent list, so every
        // node must still point at the single interned record
        assert!(sim.nodes().iter().all(|n| n.agents_interned()));
        assert!(sim
            .nodes()
            .iter()
            .all(|n| n.local_agents().len() == 10 * SCALE_FLEET_AGENT_COPIES));
    }

    #[test]
    fn interned_fleet_construction_beats_owned_copies() {
        use dust_telemetry::MonitorAgent;
        use std::time::{Duration, Instant};
        // the pre-interning construction path: 400 owned agent structs
        // materialised per node, exactly what scale_fleet_sim_on used to do
        let appliance = NodeSpec {
            cpu_cores: 4096.0,
            mem_gib: 4096.0,
            base_cpu_percent: 14.0,
            base_mem_gib: 9.6,
        };
        let n_nodes = 2_000usize;
        let owned_build = || -> Vec<SimNode> {
            (0..n_nodes)
                .map(|i| {
                    let mut node = SimNode::with_standard_agents(NodeId(i as u32), appliance);
                    for _ in 1..SCALE_FLEET_AGENT_COPIES {
                        node.local_agents_mut().extend(MonitorAgent::standard_deployment());
                    }
                    node.note_agents_changed();
                    node
                })
                .collect()
        };
        let interned_build = || -> Vec<SimNode> {
            let record = scale_fleet_deployment();
            (0..n_nodes)
                .map(|i| {
                    SimNode::with_shared_agents(
                        NodeId(i as u32),
                        appliance,
                        std::sync::Arc::clone(&record),
                    )
                })
                .collect()
        };
        let best_of = |build: &dyn Fn() -> Vec<SimNode>| -> Duration {
            (0..3)
                .map(|_| {
                    let t0 = Instant::now();
                    let nodes = build();
                    let dt = t0.elapsed();
                    assert_eq!(nodes.len(), n_nodes);
                    dt
                })
                .min()
                .unwrap()
        };
        let owned = best_of(&owned_build);
        let interned = best_of(&interned_build);
        eprintln!(
            "fleet build, {n_nodes} nodes x {} agents: owned {owned:?}, interned {interned:?}",
            10 * SCALE_FLEET_AGENT_COPIES
        );
        // one Arc bump per node vs 400 struct copies per node: the interned
        // path wins by orders of magnitude, so a plain < is noise-proof
        assert!(
            interned < owned,
            "interned construction ({interned:?}) must beat per-node copies ({owned:?})"
        );
        // and the two fleets price identically
        let a = owned_build();
        let b = interned_build();
        assert_eq!(a[0].raw_agent_cpu(0.2), b[0].raw_agent_cpu(0.2));
        assert_eq!(a[0].device_mem_percent(), b[0].device_mem_percent());
        assert_eq!(a[0].data_mb(0.2), b[0].data_mb(0.2));
    }
}
