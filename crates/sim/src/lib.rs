//! Discrete-event testbed simulator for DUST (§V-A).
//!
//! Substitutes the paper's physical prototype — a VxLAN data-center
//! topology of commercial switches — with a deterministic simulation:
//!
//! * [`engine`] — a deterministic event queue with cancelable timers and
//!   the [`engine::EngineKind`] core selector;
//! * [`builder`] — validating construction ([`Simulation::builder`]);
//! * [`event`] — the event-driven core: identical observable behaviour
//!   to the tick core, with per-event-time batching and arena-backed
//!   hot state;
//! * [`node`] — the device resource model (Aruba-8325-class DUT, servers,
//!   DPUs) where CPU/memory derive from which monitor agents run where;
//! * [`traffic`] — VxLAN overlay traffic profiles projected onto links;
//! * [`transport`] — a deterministic fault gate dropping, duplicating,
//!   delaying, and reordering control-plane messages per direction;
//! * [`runner`] — the full wiring: protocol state machines, placement
//!   rounds, physical agent movement, metric recording, failure injection;
//! * [`scenarios`] — the shared Fig. 5 testbed fixtures (topology, agent
//!   mixes, DUST config) and the parameterized chaos harness;
//! * [`registry`] — the named scenario registry: every canned workload
//!   (`testbed`, `chaos`, `int_burst`, `diurnal`, `flash_crowd`,
//!   `zone_storm`) as a [`registry::Scenario`] descriptor carrying its
//!   own SLO spec, plus the Fig. 1 / Fig. 6 experiment helpers.
//!
//! # Example
//!
//! ```
//! use dust_sim::registry;
//!
//! // the Fig. 6 experiment, 60 simulated seconds
//! let r = registry::fig6_contrast(60_000, 42);
//! assert!(r.transfers > 0);
//! assert!(r.dust_cpu < r.local_cpu);
//!
//! // a registry scenario, SLO-gated by construction
//! let sc = registry::find("testbed").unwrap();
//! let run = sc.run(&registry::ScenarioKnobs::seeded(42)).unwrap();
//! assert!(!run.breached());
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod engine;
pub mod event;
pub mod flows;
pub mod node;
pub mod registry;
pub mod runner;
pub mod scenarios;
pub mod traffic;
pub mod transport;

pub use builder::SimBuilder;
pub use engine::{EngineKind, EventQueue, EventToken, Scheduled};
pub use flows::{evaluate_flows, FlowOutcome, TelemetryFlow};
pub use node::{NodeSpec, SimNode};
pub use registry::{
    chaos_ladder, chaos_run, fig1_curve, fig6_contrast, Scenario, ScenarioKnobs, ScenarioRun,
};
pub use runner::{DriftConfig, SimConfig, SimReport, Simulation, StormConfig};
pub use scenarios::{
    chaos_with_faults, chaos_with_faults_observed, chaos_with_faults_observed_on, chaos_with_slo,
    chaos_with_slo_on, congestion, fleet, scale_fleet, scale_fleet_sim, scale_fleet_sim_on,
    testbed_dust_config, testbed_nodes, testbed_observed, testbed_observed_on, testbed_topology,
    ChaosResult, CongestionResult, Fig1Row, Fig6Result, FleetResult,
};
pub use traffic::TrafficModel;
pub use transport::{Direction, FaultConfig, FaultProfile, Transport, TransportStats};
