//! The named scenario registry: every canned workload the simulator can
//! run, as data instead of ad-hoc free functions.
//!
//! A [`Scenario`] bundles a name, a constructor for the topology, agent
//! mix, traffic model and fault model, and an attached SLO spec, so every
//! entry is simultaneously a reproducible experiment and a pass/fail
//! gate: [`Scenario::run`] always attaches an online [`SloEngine`] for
//! the entry's spec (override it via [`ScenarioKnobs::slo_override`]),
//! and a run is bit-identical per `(seed, duration, engine)` — the CI
//! chaos gate diffs two `dustctl sim --scenario <name> --metrics-json`
//! invocations byte-for-byte.
//!
//! The registry entries:
//!
//! | name          | workload shape                                        |
//! |---------------|-------------------------------------------------------|
//! | `testbed`     | Fig. 5 testbed, full DUST offload, perfect wire       |
//! | `chaos`       | the testbed under a 20 % lossy, duplicating wire      |
//! | `int_burst`   | testbed + INT per-packet agents (`1/N` and `p` knobs) |
//! | `diurnal`     | testbed under a sinusoidal day curve plus noise       |
//! | `flash_crowd` | testbed under a ramp/hold/decay crowd spike           |
//! | `zone_storm`  | 4-k fat-tree: CPU-cascade storm + a pod-wide outage   |
//! | `churn`       | testbed under seeded link/agent drift, warm + delta   |
//!
//! The experiment helpers that used to live in [`crate::scenarios`]
//! ([`fig1_curve`], [`fig6_contrast`], [`chaos_run`], [`chaos_ladder`])
//! live here; the old `fig1`/`fig6`/`chaos`/`chaos_sweep` aliases have
//! been removed.

use crate::engine::EngineKind;
use crate::node::{NodeSpec, SimNode};
use crate::runner::{DriftConfig, SimReport, Simulation, StormConfig};
use crate::scenarios::{
    chaos_with_faults, testbed_dust_config, testbed_nodes, testbed_topology, ChaosResult, Fig1Row,
    Fig6Result,
};
use crate::traffic::TrafficModel;
use crate::transport::{FaultConfig, FaultProfile};
use dust_core::DustError;
use dust_obs::{ObsHandle, SloEngine, SloSpec};
use dust_telemetry::{IntSampling, MonitorAgent};
use dust_topology::{FatTree, Link, Tier};

/// Per-invocation knobs for a registry scenario: everything the caller
/// may vary without changing what the scenario *is*.
#[derive(Debug, Clone)]
pub struct ScenarioKnobs {
    /// Simulated duration override; `None` runs the scenario's
    /// [`Scenario::default_duration_ms`].
    pub duration_ms: Option<u64>,
    /// Master seed.
    pub seed: u64,
    /// Which simulation core runs it (both produce identical output).
    pub engine: EngineKind,
    /// Observability sink ([`ObsHandle::disabled`] for a plain run).
    pub obs: ObsHandle,
    /// Evaluate this spec instead of the scenario's attached one.
    pub slo_override: Option<SloSpec>,
}

impl Default for ScenarioKnobs {
    fn default() -> Self {
        ScenarioKnobs {
            duration_ms: None,
            seed: 0,
            engine: EngineKind::default(),
            obs: ObsHandle::disabled(),
            slo_override: None,
        }
    }
}

impl ScenarioKnobs {
    /// Default knobs at `seed`.
    pub fn seeded(seed: u64) -> Self {
        ScenarioKnobs { seed, ..Default::default() }
    }
}

/// One named registry entry: a complete workload description plus the
/// SLO spec that judges it.
#[derive(Clone, Copy)]
pub struct Scenario {
    /// Registry key (`dustctl sim --scenario <name>`).
    pub name: &'static str,
    /// One-line description for `--scenario help` and the README table.
    pub summary: &'static str,
    /// The attached SLO spec, evaluated by default on every run.
    pub slo_spec: &'static str,
    /// Duration when the caller does not override it, ms.
    pub default_duration_ms: u64,
    /// CPU % treated as overloaded by `overload_dwell` rules.
    pub overload_cpu: f64,
    /// Assembles the simulation (everything but the SLO engine).
    make: fn(&ScenarioKnobs, u64) -> Result<Simulation, DustError>,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("slo_spec", &self.slo_spec)
            .field("default_duration_ms", &self.default_duration_ms)
            .finish()
    }
}

/// What one [`Scenario::run`] produced.
#[derive(Debug)]
pub struct ScenarioRun {
    /// The scenario that ran.
    pub name: &'static str,
    /// The simulation report (metric series, transfer counters, …).
    pub report: SimReport,
    /// The SLO engine that watched the run, holding any breaches.
    pub slo: SloEngine,
}

impl ScenarioRun {
    /// True when any SLO rule fired.
    pub fn breached(&self) -> bool {
        self.slo.breached()
    }
}

impl Scenario {
    /// The attached SLO spec, parsed. Registry specs are tested to
    /// parse, so this never fails for a registry entry.
    pub fn slo(&self) -> SloSpec {
        SloSpec::parse(self.slo_spec).expect("registry SLO specs parse")
    }

    /// The duration this invocation will simulate.
    pub fn duration(&self, knobs: &ScenarioKnobs) -> u64 {
        knobs.duration_ms.unwrap_or(self.default_duration_ms)
    }

    /// Assemble the simulation with the SLO engine already attached
    /// (the scenario's own spec, or the override).
    pub fn build(&self, knobs: &ScenarioKnobs) -> Result<Simulation, DustError> {
        let mut sim = (self.make)(knobs, self.duration(knobs))?;
        let spec = match &knobs.slo_override {
            Some(s) => s.clone(),
            None => self.slo(),
        };
        sim.set_slo(SloEngine::new(spec, self.overload_cpu));
        Ok(sim)
    }

    /// Build and run to completion.
    pub fn run(&self, knobs: &ScenarioKnobs) -> Result<ScenarioRun, DustError> {
        let mut sim = self.build(knobs)?;
        let report = sim.run();
        let slo = sim.take_slo().expect("build attached an engine");
        Ok(ScenarioRun { name: self.name, report, slo })
    }
}

/// Every registered scenario, in stable listing order.
pub fn all() -> &'static [Scenario] {
    &REGISTRY
}

/// Look a scenario up by name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    REGISTRY.iter().find(|s| s.name == name)
}

static REGISTRY: [Scenario; 7] = [
    Scenario {
        name: "testbed",
        summary: "Fig. 5 testbed, full DUST offload, perfect wire",
        slo_spec: "convergence<=20000,abandons<=0",
        default_duration_ms: 120_000,
        overload_cpu: 20.0,
        make: make_testbed,
    },
    Scenario {
        name: "chaos",
        summary: "the testbed under a 20% lossy, duplicating, jittery wire",
        slo_spec: "convergence<=60000,abandons<=10",
        default_duration_ms: 120_000,
        overload_cpu: 20.0,
        make: make_chaos,
    },
    Scenario {
        name: "int_burst",
        summary: "testbed + INT per-packet agents (deterministic 1/4 and p=0.25)",
        slo_spec: "convergence<=20000,abandons<=0",
        default_duration_ms: 90_000,
        overload_cpu: 20.0,
        make: make_int_burst,
    },
    Scenario {
        name: "diurnal",
        summary: "testbed under a sinusoidal day curve with seeded noise",
        slo_spec: "convergence<=30000,abandons<=0",
        default_duration_ms: 120_000,
        overload_cpu: 20.0,
        make: make_diurnal,
    },
    Scenario {
        name: "flash_crowd",
        summary: "testbed under a ramp/hold/decay crowd spike",
        slo_spec: "convergence<=30000,abandons<=0",
        default_duration_ms: 90_000,
        overload_cpu: 20.0,
        make: make_flash_crowd,
    },
    Scenario {
        name: "zone_storm",
        summary: "4-k fat-tree: CPU-cascade storm, then a pod-wide outage",
        slo_spec: "convergence<=20000,abandons<=40",
        default_duration_ms: 90_000,
        overload_cpu: 20.0,
        make: make_zone_storm,
    },
    Scenario {
        name: "churn",
        summary: "testbed under seeded link/agent drift, warm-started delta re-placement",
        slo_spec: "convergence<=20000,abandons<=5",
        default_duration_ms: 120_000,
        overload_cpu: 20.0,
        make: make_churn,
    },
];

fn testbed_builder(knobs: &ScenarioKnobs, duration: u64) -> crate::builder::SimBuilder {
    let (graph, dut) = testbed_topology();
    Simulation::builder()
        .graph(graph)
        .nodes(testbed_nodes(dut))
        .dust(testbed_dust_config())
        .duration_ms(duration)
        .seed(knobs.seed)
        .full_monitoring_offload(true)
        .engine(knobs.engine)
        .obs(knobs.obs.clone())
}

fn make_testbed(knobs: &ScenarioKnobs, duration: u64) -> Result<Simulation, DustError> {
    testbed_builder(knobs, duration).traffic(TrafficModel::testbed()).build()
}

fn make_chaos(knobs: &ScenarioKnobs, duration: u64) -> Result<Simulation, DustError> {
    let faults = FaultConfig::symmetric(FaultProfile {
        drop: 0.2,
        duplicate: 0.1,
        delay_ms: 20,
        jitter_ms: 100,
    });
    testbed_builder(knobs, duration).traffic(TrafficModel::testbed()).faults(faults).build()
}

fn make_int_burst(knobs: &ScenarioKnobs, duration: u64) -> Result<Simulation, DustError> {
    let (graph, dut) = testbed_topology();
    let mut nodes = testbed_nodes(dut);
    // The INT class rides along with the periodic STAT deployment: one
    // deterministic 1/N sampler and one seeded probabilistic sampler at
    // the same expected fraction, so their *costs* are identical while
    // their per-packet decision sequences differ (see
    // `crates/sim/tests/int_sampling.rs`).
    let d = &mut nodes[dut.index()];
    d.local_agents_mut().push(MonitorAgent::int(IntSampling::Deterministic { n: 4 }));
    d.local_agents_mut().push(MonitorAgent::int(IntSampling::Probabilistic { p: 0.25 }));
    d.note_agents_changed();
    Simulation::builder()
        .graph(graph)
        .nodes(nodes)
        .traffic(TrafficModel::testbed())
        .dust(testbed_dust_config())
        .duration_ms(duration)
        .seed(knobs.seed)
        .full_monitoring_offload(true)
        .engine(knobs.engine)
        .obs(knobs.obs.clone())
        .build()
}

fn make_diurnal(knobs: &ScenarioKnobs, duration: u64) -> Result<Simulation, DustError> {
    let traffic = TrafficModel::Diurnal {
        mean: 0.45,
        amplitude: 0.35,
        period_ms: 30_000,
        noise: 0.05,
        seed: knobs.seed ^ 0xD1A7,
    };
    testbed_builder(knobs, duration).traffic(traffic).build()
}

fn make_flash_crowd(knobs: &ScenarioKnobs, duration: u64) -> Result<Simulation, DustError> {
    let traffic = TrafficModel::FlashCrowd {
        base: 0.15,
        peak: 0.85,
        start_ms: duration / 3,
        ramp_ms: 5_000.min(duration / 8).max(1),
        hold_ms: duration / 4,
    };
    testbed_builder(knobs, duration).traffic(traffic).build()
}

fn make_zone_storm(knobs: &ScenarioKnobs, duration: u64) -> Result<Simulation, DustError> {
    let ft = FatTree::new(4, Link::new(25_000.0, 0.2));
    let edges = ft.tier_nodes(Tier::Edge);
    let nodes: Vec<SimNode> = ft
        .graph
        .nodes()
        .map(|n| {
            if edges.contains(&n) {
                SimNode::with_standard_agents(n, NodeSpec::aruba_8325())
            } else {
                SimNode::bare(n, NodeSpec::dpu())
            }
        })
        .collect();
    // Two correlated failure modes layered on the kill/revive path:
    // a CPU-cascade storm that takes out edge switches still Busy before
    // placement relieves them, and a zone outage killing all of pod 0
    // mid-run (revived at two-thirds), exercising REP re-homing at scale.
    let storm = StormConfig {
        cpu_threshold: 30.5,
        start_ms: 2_000.min(duration / 4),
        cascade_delay_ms: 2_000,
        max_cascades: 2,
    };
    let pod: Vec<_> = ft.pod_nodes(0);
    let mut b = Simulation::builder()
        .graph(ft.graph.clone())
        .nodes(nodes)
        .traffic(TrafficModel::testbed())
        .dust(testbed_dust_config())
        .duration_ms(duration)
        .seed(knobs.seed)
        .full_monitoring_offload(true)
        .storm(storm)
        .engine(knobs.engine)
        .obs(knobs.obs.clone());
    for &n in &pod {
        b = b.kill_at(duration / 2, n);
    }
    for &n in &pod {
        b = b.revive_at(duration * 2 / 3, n);
    }
    b.build()
}

fn make_churn(knobs: &ScenarioKnobs, duration: u64) -> Result<Simulation, DustError> {
    // High-churn continuous operation: every 4 s a seeded drift step
    // retunes one link capacity (±30 %) and one node's agent sampling
    // rate, so the optimum keeps moving. The Manager re-optimizes
    // incrementally — warm-started bases, dirty-row re-pricing (one
    // drifted link per round keeps the dirty fraction under the
    // full-invalidation threshold on the small testbed fabric), and the
    // delta path re-homing only flows whose T_rmin degraded > 10 %
    // between full solves every 8th round.
    testbed_builder(knobs, duration)
        .traffic(TrafficModel::testbed())
        .drift(DriftConfig { links_per_tick: 1, ..DriftConfig::default() })
        .warm_start(true)
        .delta_placement(0.10, 8)
        .build()
}

// ---------------------------------------------------------------------
// Experiment helpers (the former scenarios.rs free functions).
// ---------------------------------------------------------------------

/// Reproduce Fig. 1: monitoring-module CPU versus VxLAN traffic level on
/// the DUT with all ten agents local. Each level runs `per_level_ms` of
/// simulated time.
pub fn fig1_curve(levels: &[f64], per_level_ms: u64, seed: u64) -> Vec<Fig1Row> {
    let (graph, dut) = testbed_topology();
    levels
        .iter()
        .map(|&traffic| {
            let mut sim = Simulation::builder()
                .graph(graph.clone())
                .nodes(testbed_nodes(dut))
                .traffic(TrafficModel::Constant(traffic))
                .dust(testbed_dust_config())
                .dust_enabled(false) // Fig. 1 measures the unoffloaded module
                .duration_ms(per_level_ms)
                .seed(seed)
                .build()
                .expect("fig1 knobs are consistent");
            let report = sim.run();
            let mean = report.mean(dut, "monitor-cpu", 0, per_level_ms).unwrap_or(0.0);
            let peak = report.max(dut, "monitor-cpu", 0, per_level_ms).unwrap_or(0.0);
            Fig1Row { traffic_fraction: traffic, mean_cpu_percent: mean, peak_cpu_percent: peak }
        })
        .collect()
}

/// Reproduce Fig. 6: run the testbed twice — monitoring local vs DUST
/// offloading — and compare the DUT's steady-state resource utilization.
///
/// The DUST run's mean is taken over the post-offload tail (second half
/// of the run) to measure the settled state, mirroring how the testbed
/// numbers were read.
pub fn fig6_contrast(duration_ms: u64, seed: u64) -> Fig6Result {
    let (graph, dut) = testbed_topology();
    let run = |dust_enabled: bool| -> (SimReport, usize) {
        let mut sim = Simulation::builder()
            .graph(graph.clone())
            .nodes(testbed_nodes(dut))
            .traffic(TrafficModel::testbed())
            .dust(testbed_dust_config())
            .dust_enabled(dust_enabled)
            .duration_ms(duration_ms)
            .seed(seed)
            .full_monitoring_offload(true)
            .build()
            .expect("fig6 knobs are consistent");
        let r = sim.run();
        let transfers = r.transfers_applied;
        (r, transfers)
    };
    let (local, _) = run(false);
    let (dust, transfers) = run(true);
    let tail = duration_ms / 2;
    Fig6Result {
        local_cpu: local.mean(dut, "device-cpu", tail, duration_ms).unwrap_or(f64::NAN),
        dust_cpu: dust.mean(dut, "device-cpu", tail, duration_ms).unwrap_or(f64::NAN),
        local_mem: local.mean(dut, "device-mem", tail, duration_ms).unwrap_or(f64::NAN),
        dust_mem: dust.mean(dut, "device-mem", tail, duration_ms).unwrap_or(f64::NAN),
        transfers,
    }
}

/// Run the Fig. 5 testbed with a uniformly lossy, duplicating, jittery
/// control plane: drop probability `loss` both ways, duplication at
/// `loss / 2`, 20 ms base delay with 100 ms jitter (enough to reorder).
///
/// The invariant under test is *conservation*: whatever the control
/// plane loses, no monitor agent may vanish — every agent is either
/// local to its owner or hosted somewhere on its behalf, and the
/// protocol ledgers quiesce to a mutually consistent state.
pub fn chaos_run(loss: f64, duration_ms: u64, seed: u64) -> ChaosResult {
    let faults = FaultConfig::symmetric(FaultProfile {
        drop: loss,
        duplicate: loss / 2.0,
        delay_ms: 20,
        jitter_ms: 100,
    });
    chaos_with_faults(faults, duration_ms, seed)
}

/// Sweep control-plane loss rates and collect one [`ChaosResult`] per
/// rate — the degradation curve for `EXPERIMENTS.md` and `dust-bench`.
pub fn chaos_ladder(losses: &[f64], duration_ms: u64, seed: u64) -> Vec<ChaosResult> {
    losses.iter().map(|&l| chaos_run(l, duration_ms, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dust_topology::NodeId;

    #[test]
    fn every_entry_has_a_parsable_slo_spec_and_unique_name() {
        let mut seen = std::collections::BTreeSet::new();
        for s in all() {
            assert!(seen.insert(s.name), "duplicate scenario name {}", s.name);
            let spec = SloSpec::parse(s.slo_spec);
            assert!(spec.is_ok(), "{}: {:?}", s.name, spec.err());
            assert!(s.default_duration_ms > 0, "{}", s.name);
            assert!(!s.summary.is_empty(), "{}", s.name);
        }
        assert!(seen.len() >= 7);
    }

    #[test]
    fn find_resolves_names_and_rejects_junk() {
        assert_eq!(find("int_burst").unwrap().name, "int_burst");
        assert_eq!(find("zone_storm").unwrap().name, "zone_storm");
        assert!(find("figment").is_none());
    }

    #[test]
    fn every_entry_builds_and_passes_its_own_slo_gate() {
        for s in all() {
            let run = s.run(&ScenarioKnobs::seeded(0)).expect(s.name);
            assert!(
                !run.breached(),
                "{} must pass its attached SLO spec at seed 0:\n{}",
                s.name,
                run.slo.report()
            );
            assert!(run.report.transfers_applied > 0, "{} must offload", s.name);
        }
    }

    #[test]
    fn int_burst_raises_dut_load_over_the_plain_testbed() {
        // the INT agents cost real CPU: the unoffloaded DUT reads higher
        // than the plain ten-agent testbed at the same traffic level
        let dut = NodeId(2);
        let load = |name: &str| {
            let sc = find(name).unwrap();
            let mut sim = sc.build(&ScenarioKnobs::seeded(3)).unwrap();
            sim.run().mean(dut, "monitor-cpu", 0, 4_000).unwrap()
        };
        let plain = load("testbed");
        let int = load("int_burst");
        assert!(int > plain + 20.0, "INT must add load: plain {plain:.1} int {int:.1}");
    }

    #[test]
    fn zone_storm_cascades_and_recovers() {
        let sc = find("zone_storm").unwrap();
        let knobs = ScenarioKnobs { obs: ObsHandle::recording(7), ..ScenarioKnobs::seeded(7) };
        let run = sc.run(&knobs).unwrap();
        assert!(run.report.transfers_applied > 0, "storm fleet must offload");
        let cascades = knobs.obs.counter("sim.storm_cascades");
        assert!(cascades > 0, "the CPU storm must actually cascade");
        assert!(cascades <= 2, "cascade budget must hold, got {cascades}");
        let killed = knobs.obs.counter("sim.nodes_killed");
        assert!(killed >= cascades + 4, "pod outage + cascades, got {killed}");
        assert_eq!(knobs.obs.counter("sim.nodes_revived"), 4, "pod 0 revives");
        let trace = knobs.obs.trace_snapshot().unwrap();
        let storms =
            trace.entries().iter().filter(|e| e.event.kind() == "StormCascade").count() as u64;
        assert_eq!(storms, cascades, "every cascade is traced");
    }

    #[test]
    fn storm_is_deterministic_per_seed_and_varies_shape_by_duration() {
        let sc = find("zone_storm").unwrap();
        let digest = |seed: u64| {
            let knobs =
                ScenarioKnobs { obs: ObsHandle::recording(seed), ..ScenarioKnobs::seeded(seed) };
            sc.run(&knobs).unwrap();
            knobs.obs.digest().unwrap()
        };
        assert_eq!(digest(5), digest(5), "same seed, same digest");
    }

    #[test]
    fn profiling_never_perturbs_the_digest_or_metrics() {
        let sc = find("testbed").unwrap();
        let run_with = |profiled: bool| {
            let obs = ObsHandle::recording(11);
            if profiled {
                obs.enable_profiling();
            }
            let knobs = ScenarioKnobs {
                obs: obs.clone(),
                duration_ms: Some(30_000),
                ..ScenarioKnobs::seeded(11)
            };
            sc.run(&knobs).unwrap();
            (obs.digest().unwrap(), obs.metrics().unwrap().to_json())
        };
        let (plain_digest, plain_metrics) = run_with(false);
        let (prof_digest, prof_metrics) = run_with(true);
        assert_eq!(plain_digest, prof_digest, "profiler must not touch the trace digest");
        assert_eq!(plain_metrics, prof_metrics, "profiler must not touch recorded metrics");
    }

    #[test]
    fn flash_crowd_peaks_where_configured() {
        let sc = find("flash_crowd").unwrap();
        let mut sim = sc.build(&ScenarioKnobs::seeded(1)).unwrap();
        let report = sim.run();
        let dut = NodeId(2);
        let d = sc.default_duration_ms;
        // traffic (and hence device CPU) must be higher inside the crowd
        // window than in the quiet lead-in
        let quiet = report.mean(dut, "device-cpu", 0, d / 4).unwrap();
        let crowd = report.max(dut, "device-cpu", d / 3, 2 * d / 3).unwrap();
        assert!(crowd > quiet, "crowd must load the DUT: quiet {quiet:.1} peak {crowd:.1}");
    }

    #[test]
    fn churn_drifts_rehomes_and_saves_pivots() {
        let sc = find("churn").unwrap();
        let knobs = ScenarioKnobs { obs: ObsHandle::recording(0), ..ScenarioKnobs::seeded(0) };
        let run = sc.run(&knobs).unwrap();
        assert!(run.report.transfers_applied > 0, "churn must offload");
        assert!(knobs.obs.counter("sim.drift_ticks") > 0, "drift must tick");
        let delta = knobs.obs.counter("proto.delta_rounds");
        let full = knobs.obs.counter("proto.placement_rounds") - delta;
        assert!(delta > 0, "delta rounds must fire");
        assert!(full > 0, "the periodic full-solve cadence must hold");
        assert!(delta > full, "under churn most rounds must take the delta path");
        assert!(knobs.obs.counter("proto.flows_rehomed") > 0, "drift must force re-homes");
        // dirty-link journaling from drift must keep most refreshes
        // incremental (full invalidation stays available as the
        // fallback) and actually drop the rows crossing drifted links
        let refreshes = knobs.obs.counter("cost.refreshes");
        let full_inval = knobs.obs.counter("cost.full_invalidations");
        assert!(refreshes > 2 * full_inval, "refreshes {refreshes} full {full_inval}");
        assert!(knobs.obs.counter("cost.rows_invalidated") > 0, "dirty rows must be dropped");
        let trace = knobs.obs.trace_snapshot().unwrap();
        let drifts =
            trace.entries().iter().filter(|e| e.event.kind() == "DriftApplied").count() as u64;
        assert_eq!(drifts, knobs.obs.counter("sim.drift_ticks"), "every drift step is traced");
        let rehomes = trace.entries().iter().filter(|e| e.event.kind() == "Rehome").count() as u64;
        assert_eq!(rehomes, knobs.obs.counter("proto.flows_rehomed"), "every re-home is traced");
    }

    #[test]
    fn churn_is_identical_across_cores_and_pinned_at_seed_42() {
        let sc = find("churn").unwrap();
        let run_on = |engine: EngineKind| {
            let knobs = ScenarioKnobs {
                obs: ObsHandle::recording(42),
                engine,
                duration_ms: Some(60_000),
                ..ScenarioKnobs::seeded(42)
            };
            sc.run(&knobs).unwrap();
            (knobs.obs.digest().unwrap(), knobs.obs.metrics().unwrap().to_json())
        };
        let (tick_digest, tick_metrics) = run_on(EngineKind::Tick);
        let (event_digest, event_metrics) = run_on(EngineKind::Event);
        assert_eq!(tick_digest, event_digest, "churn must be core-agnostic");
        assert_eq!(tick_metrics, event_metrics, "churn metrics must be core-agnostic");
        // Golden digest: any change to the churn event stream (drift
        // draws, delta-round decisions, re-home ordering) must be a
        // conscious one — regenerate with
        //   dustctl sim --scenario churn --seed 42 --duration-ms 60000 --trace-digest
        assert_eq!(
            format!("{tick_digest:016x}"),
            CHURN_GOLDEN_DIGEST_SEED42,
            "churn@42 golden digest moved"
        );
    }

    /// Pinned by `churn_is_identical_across_cores_and_pinned_at_seed_42`.
    const CHURN_GOLDEN_DIGEST_SEED42: &str = "c9f9ba6ee7db0c4a";

    #[test]
    fn slo_override_replaces_the_attached_spec() {
        let sc = find("testbed").unwrap();
        // an impossible spec must breach even though the attached one passes
        let knobs = ScenarioKnobs {
            slo_override: Some(SloSpec::parse("convergence<=1").unwrap()),
            ..ScenarioKnobs::seeded(0)
        };
        let run = sc.run(&knobs).unwrap();
        assert!(run.breached(), "{}", run.slo.report());
    }

    // -- moved experiment helpers keep their original behaviour --------

    #[test]
    fn fig1_cpu_grows_with_traffic_and_spikes() {
        let rows = fig1_curve(&[0.0, 0.1, 0.2], 61_000, 7);
        assert_eq!(rows.len(), 3);
        assert!(rows[1].mean_cpu_percent > rows[0].mean_cpu_percent);
        assert!(rows[2].mean_cpu_percent > rows[1].mean_cpu_percent);
        let r20 = rows[2];
        assert!(
            r20.mean_cpu_percent > 90.0 && r20.mean_cpu_percent < 180.0,
            "mean {}",
            r20.mean_cpu_percent
        );
        assert!(r20.peak_cpu_percent > 500.0, "peak {}", r20.peak_cpu_percent);
    }

    #[test]
    fn fig6_reductions_match_paper_shape() {
        let r = fig6_contrast(120_000, 11);
        assert!(r.transfers > 0, "DUST run must offload");
        assert!((r.local_cpu - 31.0).abs() < 3.0, "local cpu {}", r.local_cpu);
        assert!((r.dust_cpu - 15.5).abs() < 3.0, "dust cpu {}", r.dust_cpu);
        assert!(
            (r.cpu_reduction_percent() - 52.0).abs() < 10.0,
            "cpu reduction {}",
            r.cpu_reduction_percent()
        );
        assert!((r.local_mem - 70.0).abs() < 3.0, "local mem {}", r.local_mem);
        assert!((r.dust_mem - 62.0).abs() < 3.0, "dust mem {}", r.dust_mem);
        assert!(
            (r.mem_reduction_percent() - 12.0).abs() < 5.0,
            "mem reduction {}",
            r.mem_reduction_percent()
        );
    }

    #[test]
    fn chaos_at_20_percent_loss_conserves_everything() {
        let r = chaos_run(0.2, 120_000, 17);
        assert!(r.msgs_dropped > 0, "faults must actually fire");
        assert!(r.transfers > 0, "offloading must converge despite 20 % loss");
        assert_eq!(r.agents_present, r.agents_expected, "no monitor agent may ever be lost");
        assert_eq!(r.unconfirmed_stale, 0, "offers must confirm, retry, or die — not leak");
        assert!(r.ledgers_consistent, "ledgers must quiesce mutually consistent");
    }

    #[test]
    fn chaos_ladder_degrades_gracefully() {
        let rows = chaos_ladder(&[0.0, 0.1, 0.3], 90_000, 21);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.transfers > 0, "loss {} must still offload", r.loss);
            assert_eq!(r.agents_present, r.agents_expected, "loss {}", r.loss);
            assert!(r.ledgers_consistent, "loss {}", r.loss);
            assert!(r.first_transfer_ms.is_some(), "loss {}", r.loss);
        }
        assert_eq!(rows[0].offer_retries + rows[0].msgs_dropped, 0);
        assert!(rows[2].msgs_dropped > rows[1].msgs_dropped);
        assert!(rows[0].first_transfer_ms <= rows[2].first_transfer_ms);
    }
}
