//! Telemetry flow transport model.
//!
//! Once a hosting arrangement is active, the Busy node streams its
//! monitoring data `D_i` to the Offload-destination every update interval
//! over the controllable route the optimizer picked. This module models
//! that transport: offloaded telemetry rides each link's *leftover*
//! capacity at the lowest QoS class (§III-C — it "is assigned the lowest
//! priority value" and "can be safely discarded in the event of network
//! congestion"), shared max-min-style among flows crossing the link.
//!
//! Note the deliberate asymmetry with the planner: the optimizer prices
//! routes with the paper's `Tr = D / Lu` (Eq. 1, utilized bandwidth),
//! while transport here is constrained by *available* bandwidth and QoS.
//! Comparing predicted vs delivered times quantifies that modeling gap —
//! see `planner_vs_transport_times` below.

use dust_proto::qos::{admit, ClassifiedLoad, Priority};
use dust_topology::{EdgeId, Graph, NodeId, Path};

/// One active telemetry stream from a Busy node to its host.
#[derive(Debug, Clone)]
pub struct TelemetryFlow {
    /// Monitored (Busy) node producing the data.
    pub owner: NodeId,
    /// Offload-destination consuming it.
    pub host: NodeId,
    /// The controllable route the placement chose.
    pub route: Path,
    /// Monitoring data volume per update interval, Mb.
    pub data_mb: f64,
}

/// Delivered performance of one flow over one interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowOutcome {
    /// Rate the flow tried to send, Mbps.
    pub offered_mbps: f64,
    /// Rate the network admitted end-to-end, Mbps.
    pub admitted_mbps: f64,
    /// Time to deliver the interval's data at the admitted rate, seconds
    /// (`f64::INFINITY` when fully starved).
    pub transfer_time_s: f64,
    /// Fraction of the offered telemetry discarded under congestion.
    pub dropped_fraction: f64,
}

/// Evaluate all flows against the current link state.
///
/// Per link, the data-plane load (`capacity × utilization`) is admitted at
/// [`Priority::DataPlane`] and the telemetry flows crossing the link
/// compete at [`Priority::OffloadedTelemetry`]; each flow's end-to-end
/// admitted rate is the minimum of its per-link shares (its bottleneck).
///
/// `interval_ms` is the update interval: a flow offers
/// `data_mb / interval_s` Mbps.
///
/// # Panics
/// Panics if `interval_ms == 0`.
pub fn evaluate_flows(g: &Graph, flows: &[TelemetryFlow], interval_ms: u64) -> Vec<FlowOutcome> {
    assert!(interval_ms > 0, "update interval must be positive");
    let interval_s = interval_ms as f64 / 1e3;

    // offered rate per flow
    let offered: Vec<f64> = flows.iter().map(|f| f.data_mb / interval_s).collect();

    // per-link: which flows cross it
    let mut crossing: std::collections::HashMap<EdgeId, Vec<usize>> = Default::default();
    for (i, f) in flows.iter().enumerate() {
        debug_assert_eq!(f.route.nodes.first(), Some(&f.owner), "route starts at the owner");
        debug_assert_eq!(f.route.nodes.last(), Some(&f.host), "route ends at the host");
        for &e in &f.route.edges {
            crossing.entry(e).or_default().push(i);
        }
    }

    // per-flow admitted rate = min over links of its QoS share
    let mut admitted: Vec<f64> = offered.clone();
    for (&e, flow_ids) in &crossing {
        let link = &g.edge(e).link;
        let mut loads = vec![ClassifiedLoad {
            priority: Priority::DataPlane,
            mbps: link.lu(), // data plane in transit
        }];
        for &i in flow_ids {
            loads.push(ClassifiedLoad { priority: Priority::OffloadedTelemetry, mbps: offered[i] });
        }
        let granted = admit(&loads, link.capacity_mbps);
        for (slot, &i) in flow_ids.iter().enumerate() {
            admitted[i] = admitted[i].min(granted[slot + 1]);
        }
    }

    flows
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let adm = admitted[i];
            let transfer_time_s = if adm > 0.0 { f.data_mb / adm } else { f64::INFINITY };
            let dropped =
                if offered[i] > 0.0 { (1.0 - adm / offered[i]).clamp(0.0, 1.0) } else { 0.0 };
            FlowOutcome {
                offered_mbps: offered[i],
                admitted_mbps: adm,
                transfer_time_s,
                dropped_fraction: dropped,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dust_topology::{min_inv_lu_dp_path, topologies, Link};

    fn flow_over(g: &Graph, a: NodeId, b: NodeId, data_mb: f64) -> TelemetryFlow {
        let (_, route) = min_inv_lu_dp_path(g, a, b, None).expect("route exists");
        TelemetryFlow { owner: a, host: b, route, data_mb }
    }

    #[test]
    fn uncongested_flow_fully_admitted() {
        // 10 Gbps at 50 % leaves 5 Gbps headroom; a 100 Mb/s flow sails
        let g = topologies::line(3, Link::new(10_000.0, 0.5));
        let f = flow_over(&g, NodeId(0), NodeId(2), 100.0);
        let out = evaluate_flows(&g, &[f], 1_000);
        assert_eq!(out[0].offered_mbps, 100.0);
        assert_eq!(out[0].admitted_mbps, 100.0);
        assert_eq!(out[0].dropped_fraction, 0.0);
        assert!((out[0].transfer_time_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn congested_link_squeezes_telemetry() {
        // 1 Gbps link 95 % utilized: only 50 Mbps left for telemetry
        let g = topologies::line(2, Link::new(1_000.0, 0.95));
        let f = flow_over(&g, NodeId(0), NodeId(1), 100.0); // offers 100 Mbps
        let out = evaluate_flows(&g, &[f], 1_000);
        assert!((out[0].admitted_mbps - 50.0).abs() < 1e-9);
        assert!((out[0].dropped_fraction - 0.5).abs() < 1e-9);
        assert!((out[0].transfer_time_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fully_saturated_link_starves_flow() {
        let g = topologies::line(2, Link::new(1_000.0, 1.0));
        let f = flow_over(&g, NodeId(0), NodeId(1), 10.0);
        let out = evaluate_flows(&g, &[f], 1_000);
        assert_eq!(out[0].admitted_mbps, 0.0);
        assert_eq!(out[0].dropped_fraction, 1.0);
        assert!(out[0].transfer_time_s.is_infinite());
    }

    #[test]
    fn competing_flows_share_proportionally() {
        // two flows over the same 60 %-utilized 1 Gbps link: 400 Mbps left,
        // offers 300 + 100 → shares 300·(400/400)=… all fits exactly
        let g = topologies::line(2, Link::new(1_000.0, 0.6));
        let f1 = flow_over(&g, NodeId(0), NodeId(1), 300.0);
        let f2 = flow_over(&g, NodeId(0), NodeId(1), 100.0);
        let out = evaluate_flows(&g, &[f1, f2], 1_000);
        assert!((out[0].admitted_mbps - 300.0).abs() < 1e-9);
        assert!((out[1].admitted_mbps - 100.0).abs() < 1e-9);
        // now shrink headroom to 200 Mbps: proportional split 150/50
        let g2 = topologies::line(2, Link::new(1_000.0, 0.8));
        let f1 = flow_over(&g2, NodeId(0), NodeId(1), 300.0);
        let f2 = flow_over(&g2, NodeId(0), NodeId(1), 100.0);
        let out = evaluate_flows(&g2, &[f1, f2], 1_000);
        assert!((out[0].admitted_mbps - 150.0).abs() < 1e-9);
        assert!((out[1].admitted_mbps - 50.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_is_end_to_end_minimum() {
        // route with a fat first hop and a thin second hop
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), Link::new(10_000.0, 0.1));
        g.add_edge(NodeId(1), NodeId(2), Link::new(100.0, 0.5)); // 50 Mbps left
        let f = flow_over(&g, NodeId(0), NodeId(2), 100.0);
        let out = evaluate_flows(&g, &[f], 1_000);
        assert!((out[0].admitted_mbps - 50.0).abs() < 1e-9);
    }

    use dust_topology::Graph;

    #[test]
    fn planner_vs_transport_times() {
        // The planner's Tr (Eq. 1, D/Lu) and the transport's delivery time
        // (D/available) coincide exactly at 50 % utilization and diverge
        // elsewhere — quantifying the paper's cost-proxy choice.
        let make = |util: f64| topologies::line(2, Link::new(1_000.0, util));
        for (util, expect_ratio) in [(0.5, 1.0), (0.25, 3.0), (0.75, 1.0 / 3.0)] {
            let g = make(util);
            let f = flow_over(&g, NodeId(0), NodeId(1), 10.0);
            let planner_time = f.route.response_time(&g, 10.0); // D / Lu
                                                                // 1 ms interval = burst mode: offered >> available, so the
                                                                // admitted rate is exactly the link's headroom
            let out = evaluate_flows(&g, &[f], 1);
            let ratio = planner_time / out[0].transfer_time_s;
            assert!(
                (ratio - expect_ratio).abs() < 1e-9,
                "util {util}: ratio {ratio} vs {expect_ratio}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_rejected() {
        let g = topologies::line(2, Link::default());
        evaluate_flows(&g, &[], 0);
    }

    #[test]
    fn empty_flow_set_is_empty() {
        let g = topologies::line(2, Link::default());
        assert!(evaluate_flows(&g, &[], 1000).is_empty());
    }
}
