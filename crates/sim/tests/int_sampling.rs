//! Statistical contract of the INT-style per-packet samplers, swept
//! across 12 seeds (ISSUE 8, satellite 2):
//!
//! * deterministic `1/N` sampling emits *exactly* `ceil(pkts / N)`
//!   reports for any packet count — no seed dependence at all;
//! * probabilistic `p` sampling stays within a seeded-binomial tolerance
//!   of `p * pkts` on every seed;
//! * `p = 1.0` is bit-identical to deterministic `N = 1` — both report
//!   every packet, and (because `gen_bool(1.0)` short-circuits without
//!   consuming a draw) the probabilistic sampler's RNG state cannot
//!   diverge either.

use dust_sim::registry::{self, ScenarioKnobs};
use dust_telemetry::IntSampling;

const SEEDS: [u64; 12] = [0, 1, 2, 7, 13, 42, 99, 1234, 0xDEAD_BEEF, 1 << 40, u64::MAX - 3, 77];

#[test]
fn deterministic_sampling_is_exact_for_every_seed_and_count() {
    for &seed in &SEEDS {
        for n in [1u32, 2, 3, 4, 7, 64] {
            for pkts in [0u64, 1, 2, 63, 64, 65, 1000, 9999] {
                let mut s = IntSampling::Deterministic { n }.sampler(seed);
                let got = s.reports_for(pkts);
                let want = pkts.div_ceil(u64::from(n));
                assert_eq!(got, want, "seed {seed}, 1/{n} over {pkts} pkts");
            }
        }
    }
}

#[test]
fn probabilistic_sampling_stays_within_binomial_tolerance() {
    let pkts = 20_000u64;
    for &seed in &SEEDS {
        for p in [0.1f64, 0.25, 0.5, 0.9] {
            let mut s = IntSampling::Probabilistic { p }.sampler(seed);
            let got = s.reports_for(pkts) as f64;
            let mean = p * pkts as f64;
            // 6 sigma of Binomial(pkts, p): astronomically unlikely to
            // trip for a correct Bernoulli stream, catches a broken one
            let sigma = (pkts as f64 * p * (1.0 - p)).sqrt();
            let tol = 6.0 * sigma;
            assert!(
                (got - mean).abs() <= tol,
                "seed {seed}, p {p}: got {got}, want {mean} +/- {tol}"
            );
        }
    }
}

#[test]
fn probabilistic_one_is_bit_identical_to_deterministic_every_packet() {
    for &seed in &SEEDS {
        let mut det = IntSampling::Deterministic { n: 1 }.sampler(seed);
        let mut prob = IntSampling::Probabilistic { p: 1.0 }.sampler(seed);
        for pkt in 0..10_000u64 {
            let d = det.sample_packet();
            let p = prob.sample_packet();
            assert!(d, "1/1 must report packet {pkt}");
            assert_eq!(d, p, "seed {seed}: divergence at packet {pkt}");
        }
        assert_eq!(det.reports_for(1234), prob.reports_for(1234), "seed {seed}");
    }
}

#[test]
fn probabilistic_extremes_clamp() {
    for &seed in &SEEDS[..4] {
        let mut zero = IntSampling::Probabilistic { p: 0.0 }.sampler(seed);
        assert_eq!(zero.reports_for(5_000), 0, "p=0 must never report");
        let mut neg = IntSampling::Probabilistic { p: -0.5 }.sampler(seed);
        assert_eq!(neg.reports_for(5_000), 0, "negative p clamps to 0");
        let mut over = IntSampling::Probabilistic { p: 1.5 }.sampler(seed);
        assert_eq!(over.reports_for(5_000), 5_000, "p>1 clamps to 1");
    }
}

#[test]
fn expected_fractions_match_the_costing_knob() {
    // the simulator costs INT agents by IntSampling::fraction(); the
    // samplers must realize that fraction (exactly for deterministic,
    // asymptotically for probabilistic) or the resource model lies
    assert_eq!(IntSampling::Deterministic { n: 4 }.fraction(), 0.25);
    assert_eq!(IntSampling::Probabilistic { p: 0.25 }.fraction(), 0.25);
    let pkts = 200_000u64;
    let mut s = IntSampling::Probabilistic { p: 0.25 }.sampler(99);
    let got = s.reports_for(pkts) as f64 / pkts as f64;
    assert!((got - 0.25).abs() < 0.01, "realized fraction {got}");
}

#[test]
fn int_burst_scenario_is_deterministic_across_the_seed_sweep() {
    // end to end: the registry scenario embedding both sampler kinds
    // reproduces its report exactly per seed
    let sc = registry::find("int_burst").expect("registered");
    for &seed in &SEEDS[..3] {
        let knobs = ScenarioKnobs { duration_ms: Some(20_000), ..ScenarioKnobs::seeded(seed) };
        let a = sc.run(&knobs).unwrap();
        let b = sc.run(&knobs).unwrap();
        assert_eq!(
            a.report.events_processed, b.report.events_processed,
            "seed {seed}: event count must reproduce"
        );
        assert_eq!(
            a.report.transfers_applied, b.report.transfers_applied,
            "seed {seed}: transfers must reproduce"
        );
    }
}
