//! Property-based tests for the topology substrate: the exhaustive path
//! enumerator and the hop-bounded DP must agree everywhere, enumerated
//! paths must be simple and within bounds, and generator invariants must
//! hold for arbitrary parameters.

use dust_topology::{
    count_simple_paths, enumerate_simple_paths, min_inv_lu_dp, min_inv_lu_enumerated,
    topologies::random_regular, FatTree, Graph, Link, NodeId,
};
use proptest::prelude::*;

/// A small random connected graph: a spanning line plus extra random edges,
/// with randomized link states.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..10, proptest::collection::vec((0usize..100, 0usize..100, 1u32..10_000, 1u32..100), 0..12))
        .prop_map(|(n, extras)| {
            let mut g = Graph::with_nodes(n);
            for i in 1..n {
                g.add_edge(
                    NodeId(i as u32 - 1),
                    NodeId(i as u32),
                    Link::new(1000.0, 0.5),
                );
            }
            for (a, b, cap, util) in extras {
                let (a, b) = (a % n, b % n);
                if a != b {
                    g.add_edge(
                        NodeId(a as u32),
                        NodeId(b as u32),
                        Link::new(f64::from(cap), f64::from(util) / 100.0),
                    );
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Enumerated minimum equals DP minimum for every pair and hop bound.
    #[test]
    fn dp_matches_enumeration(g in arb_graph(), max_hop in 1usize..7) {
        let n = g.node_count();
        for s in 0..n.min(4) {
            for d in 0..n.min(4) {
                if s == d { continue; }
                let (src, dst) = (NodeId(s as u32), NodeId(d as u32));
                let e = min_inv_lu_enumerated(&g, src, dst, Some(max_hop))
                    .map(|(c, _)| c)
                    .filter(|c| c.is_finite());
                let p = min_inv_lu_dp(&g, src, dst, Some(max_hop));
                match (e, p) {
                    (Some(a), Some(b)) => prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0),
                        "enumerate {a} vs dp {b}"),
                    (None, None) => {}
                    other => prop_assert!(false, "reachability mismatch: {other:?}"),
                }
            }
        }
    }

    /// Every enumerated path is simple, within the hop bound, and actually a
    /// walk in the graph.
    #[test]
    fn paths_are_simple_and_bounded(g in arb_graph(), max_hop in 1usize..6) {
        let src = NodeId(0);
        let dst = NodeId(g.node_count() as u32 - 1);
        for path in enumerate_simple_paths(&g, src, dst, Some(max_hop)) {
            prop_assert!(path.hops() <= max_hop);
            prop_assert_eq!(path.nodes.len(), path.edges.len() + 1);
            prop_assert_eq!(*path.nodes.first().unwrap(), src);
            prop_assert_eq!(*path.nodes.last().unwrap(), dst);
            // simplicity
            let mut seen = path.nodes.clone();
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(seen.len(), path.nodes.len(), "path revisits a node");
            // each edge joins consecutive nodes
            for (w, &e) in path.nodes.windows(2).zip(&path.edges) {
                let edge = g.edge(e);
                let pair = (edge.a, edge.b);
                prop_assert!(pair == (w[0], w[1]) || pair == (w[1], w[0]));
            }
        }
    }

    /// Path counts are monotone non-decreasing in the hop bound.
    #[test]
    fn path_count_monotone_in_bound(g in arb_graph()) {
        let src = NodeId(0);
        let dst = NodeId(g.node_count() as u32 - 1);
        let mut prev = 0;
        for h in 1..=g.node_count() {
            let c = count_simple_paths(&g, src, dst, Some(h));
            prop_assert!(c >= prev);
            prev = c;
        }
        prop_assert_eq!(count_simple_paths(&g, src, dst, None), prev,
            "unbounded must equal the largest bounded count");
    }

    /// Minimum cost is monotone non-increasing in the hop bound.
    #[test]
    fn min_cost_monotone_in_bound(g in arb_graph()) {
        let src = NodeId(0);
        let dst = NodeId(g.node_count() as u32 - 1);
        let mut prev = f64::INFINITY;
        for h in 1..=g.node_count() {
            if let Some(c) = min_inv_lu_dp(&g, src, dst, Some(h)) {
                prop_assert!(c <= prev + 1e-12);
                prev = c;
            }
        }
    }

    /// Fat-tree sizes follow the closed forms for arbitrary even k.
    #[test]
    fn fat_tree_size_formulas(half in 1usize..9) {
        let k = half * 2;
        let ft = FatTree::with_default_links(k);
        prop_assert_eq!(ft.node_count(), 5 * k * k / 4);
        prop_assert_eq!(ft.edge_count(), k * k * k / 2);
        prop_assert!(ft.graph.is_connected());
    }

    /// Random-regular generation really is d-regular and deterministic.
    #[test]
    fn random_regular_invariants(n in 4usize..24, seed in any::<u64>()) {
        let d = 3;
        let n = if n * d % 2 == 1 { n + 1 } else { n };
        let g = random_regular(n, d, seed, Link::default());
        for v in g.nodes() {
            prop_assert_eq!(g.degree(v), d);
        }
        let g2 = random_regular(n, d, seed, Link::default());
        let e1: Vec<_> = g.edges().iter().map(|e| (e.a, e.b)).collect();
        let e2: Vec<_> = g2.edges().iter().map(|e| (e.a, e.b)).collect();
        prop_assert_eq!(e1, e2);
    }

    /// BFS hop distances satisfy the triangle inequality over edges.
    #[test]
    fn bfs_distance_is_metric_over_edges(g in arb_graph()) {
        let dist = g.hop_distances(NodeId(0));
        for e in g.edges() {
            let (da, db) = (dist[e.a.index()], dist[e.b.index()]);
            if da != usize::MAX && db != usize::MAX {
                prop_assert!(da.abs_diff(db) <= 1);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Yen's k-shortest paths agree with sorted exhaustive enumeration on
    /// random graphs, for every k and hop bound.
    #[test]
    fn ksp_matches_sorted_enumeration(g in arb_graph(), max_hop in 2usize..6, k in 1usize..6) {
        use dust_topology::k_shortest_paths;
        let src = NodeId(0);
        let dst = NodeId(g.node_count() as u32 - 1);
        let mut expect: Vec<f64> = enumerate_simple_paths(&g, src, dst, Some(max_hop))
            .iter()
            .map(|p| p.inv_lu(&g))
            .filter(|c| c.is_finite())
            .collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        expect.truncate(k);
        let got = k_shortest_paths(&g, src, dst, k, Some(max_hop));
        // infinite-cost (zero-Lu) routes may be ranked differently; only
        // compare the finite regime
        let got_finite: Vec<f64> = got.iter().map(|(c, _)| *c).filter(|c| c.is_finite()).collect();
        prop_assert_eq!(got_finite.len(), expect.len(),
            "k={} hop={}: {} vs {}", k, max_hop, got_finite.len(), expect.len());
        for (i, (a, b)) in got_finite.iter().zip(&expect).enumerate() {
            prop_assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "rank {i}: {a} vs {b}");
        }
        // structural sanity
        for (c, p) in &got {
            prop_assert!(p.hops() <= max_hop);
            prop_assert!((p.inv_lu(&g) - c).abs() <= 1e-9 * (1.0 + c.abs()) || c.is_infinite());
        }
    }
}
