//! Property-based tests for the topology substrate, driven by seeded
//! random instances: the exhaustive path enumerator and the hop-bounded DP
//! must agree everywhere, enumerated paths must be simple and within
//! bounds, generator invariants must hold for arbitrary parameters, and
//! the parallel [`CostEngine`] must reproduce the sequential matrices
//! bit-for-bit under every thread count.

use dust_topology::{
    count_simple_paths, enumerate_simple_paths, min_inv_lu_dp, min_inv_lu_enumerated,
    topologies::random_regular, CostEngine, FatTree, Graph, Link, NodeId, PathEngine, SplitMix64,
};

/// A small random connected graph: a spanning line plus extra random
/// edges, with randomized link states. Deterministic in `seed`.
fn arb_graph(seed: u64) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let n = rng.range_u64(3, 10) as usize;
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(NodeId(i as u32 - 1), NodeId(i as u32), Link::new(1000.0, 0.5));
    }
    let extras = rng.below(12) as usize;
    for _ in 0..extras {
        let a = rng.below(n as u64) as usize;
        let b = rng.below(n as u64) as usize;
        if a != b {
            let cap = rng.range_f64(1.0, 10_000.0);
            let util = rng.range_f64(0.01, 1.0);
            g.add_edge(NodeId(a as u32), NodeId(b as u32), Link::new(cap, util));
        }
    }
    g
}

/// Enumerated minimum equals DP minimum for every pair and hop bound.
#[test]
fn dp_matches_enumeration() {
    for seed in 0..64u64 {
        let g = arb_graph(seed);
        let max_hop = 1 + (seed % 6) as usize;
        let n = g.node_count();
        for s in 0..n.min(4) {
            for d in 0..n.min(4) {
                if s == d {
                    continue;
                }
                let (src, dst) = (NodeId(s as u32), NodeId(d as u32));
                let e = min_inv_lu_enumerated(&g, src, dst, Some(max_hop))
                    .map(|(c, _)| c)
                    .filter(|c| c.is_finite());
                let p = min_inv_lu_dp(&g, src, dst, Some(max_hop));
                match (e, p) {
                    (Some(a), Some(b)) => assert!(
                        (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                        "seed {seed}: enumerate {a} vs dp {b}"
                    ),
                    (None, None) => {}
                    other => panic!("seed {seed}: reachability mismatch: {other:?}"),
                }
            }
        }
    }
}

/// Every enumerated path is simple, within the hop bound, and actually a
/// walk in the graph.
#[test]
fn paths_are_simple_and_bounded() {
    for seed in 0..64u64 {
        let g = arb_graph(seed);
        let max_hop = 1 + (seed % 5) as usize;
        let src = NodeId(0);
        let dst = NodeId(g.node_count() as u32 - 1);
        for path in enumerate_simple_paths(&g, src, dst, Some(max_hop)) {
            assert!(path.hops() <= max_hop);
            assert_eq!(path.nodes.len(), path.edges.len() + 1);
            assert_eq!(*path.nodes.first().unwrap(), src);
            assert_eq!(*path.nodes.last().unwrap(), dst);
            // simplicity
            let mut seen = path.nodes.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), path.nodes.len(), "path revisits a node");
            // each edge joins consecutive nodes
            for (w, &e) in path.nodes.windows(2).zip(&path.edges) {
                let edge = g.edge(e);
                let pair = (edge.a, edge.b);
                assert!(pair == (w[0], w[1]) || pair == (w[1], w[0]));
            }
        }
    }
}

/// Path counts are monotone non-decreasing in the hop bound, and the
/// unbounded count equals the largest bounded one.
#[test]
fn path_count_monotone_in_bound() {
    for seed in 0..48u64 {
        let g = arb_graph(seed);
        let src = NodeId(0);
        let dst = NodeId(g.node_count() as u32 - 1);
        let mut prev = 0;
        for h in 1..=g.node_count() {
            let c = count_simple_paths(&g, src, dst, Some(h));
            assert!(c >= prev, "seed {seed}");
            prev = c;
        }
        assert_eq!(
            count_simple_paths(&g, src, dst, None),
            prev,
            "unbounded must equal the largest bounded count"
        );
    }
}

/// Minimum cost is monotone non-increasing in the hop bound.
#[test]
fn min_cost_monotone_in_bound() {
    for seed in 0..48u64 {
        let g = arb_graph(seed);
        let src = NodeId(0);
        let dst = NodeId(g.node_count() as u32 - 1);
        let mut prev = f64::INFINITY;
        for h in 1..=g.node_count() {
            if let Some(c) = min_inv_lu_dp(&g, src, dst, Some(h)) {
                assert!(c <= prev + 1e-12, "seed {seed}");
                prev = c;
            }
        }
    }
}

/// Fat-tree sizes follow the closed forms for arbitrary even k.
#[test]
fn fat_tree_size_formulas() {
    for half in 1usize..9 {
        let k = half * 2;
        let ft = FatTree::with_default_links(k);
        assert_eq!(ft.node_count(), 5 * k * k / 4);
        assert_eq!(ft.edge_count(), k * k * k / 2);
        assert!(ft.graph.is_connected());
    }
}

/// Random-regular generation really is d-regular and deterministic.
#[test]
fn random_regular_invariants() {
    for seed in 0..24u64 {
        let d = 3;
        let mut n = 4 + (seed % 20) as usize;
        if n * d % 2 == 1 {
            n += 1;
        }
        let g = random_regular(n, d, seed, Link::default());
        for v in g.nodes() {
            assert_eq!(g.degree(v), d, "seed {seed}");
        }
        let g2 = random_regular(n, d, seed, Link::default());
        let e1: Vec<_> = g.edges().iter().map(|e| (e.a, e.b)).collect();
        let e2: Vec<_> = g2.edges().iter().map(|e| (e.a, e.b)).collect();
        assert_eq!(e1, e2);
    }
}

/// BFS hop distances satisfy the triangle inequality over edges.
#[test]
fn bfs_distance_is_metric_over_edges() {
    for seed in 0..48u64 {
        let g = arb_graph(seed);
        let dist = g.hop_distances(NodeId(0));
        for e in g.edges() {
            let (da, db) = (dist[e.a.index()], dist[e.b.index()]);
            if da != usize::MAX && db != usize::MAX {
                assert!(da.abs_diff(db) <= 1, "seed {seed}");
            }
        }
    }
}

/// Yen's k-shortest paths agree with sorted exhaustive enumeration on
/// random graphs, for every k and hop bound.
#[test]
fn ksp_matches_sorted_enumeration() {
    use dust_topology::k_shortest_paths;
    for seed in 0..48u64 {
        let g = arb_graph(seed);
        let max_hop = 2 + (seed % 4) as usize;
        let k = 1 + (seed % 5) as usize;
        let src = NodeId(0);
        let dst = NodeId(g.node_count() as u32 - 1);
        let mut expect: Vec<f64> = enumerate_simple_paths(&g, src, dst, Some(max_hop))
            .iter()
            .map(|p| p.inv_lu(&g))
            .filter(|c| c.is_finite())
            .collect();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        expect.truncate(k);
        let got = k_shortest_paths(&g, src, dst, k, Some(max_hop));
        // infinite-cost (zero-Lu) routes may be ranked differently; only
        // compare the finite regime
        let got_finite: Vec<f64> = got.iter().map(|(c, _)| *c).filter(|c| c.is_finite()).collect();
        assert_eq!(
            got_finite.len(),
            expect.len(),
            "seed {seed} k={k} hop={max_hop}: {} vs {}",
            got_finite.len(),
            expect.len()
        );
        for (i, (a, b)) in got_finite.iter().zip(&expect).enumerate() {
            assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "seed {seed} rank {i}: {a} vs {b}");
        }
        // structural sanity
        for (c, p) in &got {
            assert!(p.hops() <= max_hop);
            assert!((p.inv_lu(&g) - c).abs() <= 1e-9 * (1.0 + c.abs()) || c.is_infinite());
        }
    }
}

/// The parallel `CostEngine` matrix equals the sequential enumerator's
/// matrix exactly — any topology, any seed, any thread count, both
/// routing engines (the tentpole's determinism contract).
#[test]
fn parallel_cost_engine_matches_sequential_bitwise() {
    for seed in 0..40u64 {
        let g = arb_graph(seed);
        let mut rng = SplitMix64::new(seed ^ 0xC0FFEE);
        let n = g.node_count();
        let sources: Vec<NodeId> = (0..n as u32).filter(|v| v % 2 == 0).map(NodeId).collect();
        let destinations: Vec<NodeId> = (0..n as u32).filter(|v| v % 2 == 1).map(NodeId).collect();
        let data: Vec<f64> = sources.iter().map(|_| rng.range_f64(1.0, 500.0)).collect();
        let max_hop = if seed % 3 == 0 { None } else { Some(1 + (seed % 6) as usize) };
        for engine in [PathEngine::Enumerate, PathEngine::HopBoundedDp] {
            let seq = CostEngine::sequential().build_matrix(
                &g,
                &sources,
                &destinations,
                &data,
                max_hop,
                engine,
            );
            for threads in [2usize, 3, 5, 16] {
                let par = CostEngine::with_threads(threads).build_matrix(
                    &g,
                    &sources,
                    &destinations,
                    &data,
                    max_hop,
                    engine,
                );
                let a: Vec<u64> = seq.t_rmin.iter().map(|v| v.to_bits()).collect();
                let b: Vec<u64> = par.t_rmin.iter().map(|v| v.to_bits()).collect();
                assert_eq!(a, b, "seed {seed} threads {threads} engine {engine:?}");
            }
        }
    }
}

/// Changing any link's utilization moves the graph epoch, so a shared
/// engine re-prices instead of serving stale rows; rebuilding on the
/// unchanged graph hits the cache and reproduces the matrix exactly.
#[test]
fn cache_invalidates_on_epoch_change() {
    for seed in 0..24u64 {
        let mut g = arb_graph(seed);
        let n = g.node_count();
        let sources = vec![NodeId(0)];
        let destinations: Vec<NodeId> = (1..n as u32).map(NodeId).collect();
        let eng = CostEngine::with_threads(4);
        let before =
            eng.build_matrix(&g, &sources, &destinations, &[100.0], None, PathEngine::Enumerate);
        let cached = eng.cached_rows();
        let hot =
            eng.build_matrix(&g, &sources, &destinations, &[100.0], None, PathEngine::Enumerate);
        assert_eq!(eng.cached_rows(), cached, "seed {seed}: warm rebuild must not re-price");
        assert_eq!(before.t_rmin, hot.t_rmin);
        // mutate one link; a fresh sequential engine is the ground truth
        let epoch = g.epoch();
        let mut rng = SplitMix64::new(seed ^ 0xBEEF);
        let e = dust_topology::EdgeId(rng.below(g.edge_count() as u64) as u32);
        g.link_mut(e).utilization = 0.001;
        assert_ne!(g.epoch(), epoch, "seed {seed}: mutation must move the epoch");
        let after =
            eng.build_matrix(&g, &sources, &destinations, &[100.0], None, PathEngine::Enumerate);
        let truth = CostEngine::sequential().build_matrix(
            &g,
            &sources,
            &destinations,
            &[100.0],
            None,
            PathEngine::Enumerate,
        );
        assert_eq!(after.t_rmin, truth.t_rmin, "seed {seed}: stale row served after mutation");
    }
}
