//! `T_rmin` cost matrices between Busy nodes and Offload-candidates (Eq. 2).
//!
//! The placement LP needs, for every pair `(i ∈ V_b, j ∈ V_o)`, the minimum
//! response time over all paths within the hop bound. This module builds
//! that matrix with either the paper-faithful enumerator or the fast DP
//! (see [`crate::paths`]), parameterized per source by the monitoring data
//! volume `D_i` in megabits.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::paths::{min_inv_lu_dp_from, min_inv_lu_enumerated_from};
use dust_obs::{ObsHandle, TraceEvent};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Which routing engine computes `T_rmin` (ablation 1 in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PathEngine {
    /// Exhaustive simple-path enumeration — the paper's approach, whose cost
    /// grows combinatorially with the hop bound (reproduces Figs. 8/10).
    #[default]
    Enumerate,
    /// Hop-bounded Bellman–Ford — same optimum in `O(max_hop · |E|)`.
    HopBoundedDp,
}

/// Dense `|V_b| × |V_o|` matrix of minimum response times (seconds).
///
/// `f64::INFINITY` marks a pair with no path inside the hop bound — the
/// placement layer must not route between such a pair.
#[derive(Debug, Clone)]
pub struct CostMatrix {
    /// Busy (source) nodes, row order.
    pub sources: Vec<NodeId>,
    /// Offload-candidate (destination) nodes, column order.
    pub destinations: Vec<NodeId>,
    /// Row-major `T_rmin` values in seconds.
    pub t_rmin: Vec<f64>,
}

impl CostMatrix {
    /// Build the matrix sequentially with a throwaway [`CostEngine`].
    /// `data_mb[r]` is `D_i` (Mb) for `sources[r]`.
    ///
    /// Prefer holding a [`CostEngine`] across solves — it parallelizes row
    /// computation and reuses cached rows between re-optimizations; this
    /// constructor exists for one-shot and test use.
    ///
    /// # Panics
    /// Panics if `data_mb.len() != sources.len()`.
    pub fn build(
        g: &Graph,
        sources: &[NodeId],
        destinations: &[NodeId],
        data_mb: &[f64],
        max_hop: Option<usize>,
        engine: PathEngine,
    ) -> Self {
        CostEngine::sequential().build_matrix(g, sources, destinations, data_mb, max_hop, engine)
    }

    /// Number of rows (Busy nodes).
    #[inline]
    pub fn rows(&self) -> usize {
        self.sources.len()
    }

    /// Number of columns (Offload-candidates).
    #[inline]
    pub fn cols(&self) -> usize {
        self.destinations.len()
    }

    /// `T_rmin` for row `r`, column `c`, in seconds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.t_rmin[r * self.cols() + c]
    }

    /// True if any (source, destination) pair is connected within the bound.
    pub fn any_reachable(&self) -> bool {
        self.t_rmin.iter().any(|c| c.is_finite())
    }

    /// Row slice for one source.
    pub fn row(&self, r: usize) -> &[f64] {
        let w = self.cols();
        &self.t_rmin[r * w..(r + 1) * w]
    }
}

/// Cache key for one priced row: graph epoch, source, hop bound
/// (`u64::MAX` encodes unbounded), and routing engine.
type RowKey = (u64, NodeId, u64, PathEngine);

fn hop_key(max_hop: Option<usize>) -> u64 {
    max_hop.map_or(u64::MAX, |h| h as u64)
}

/// Hop distance from every node to the nearest endpoint of any dirty
/// link (multi-source BFS); `usize::MAX` where no dirty link is
/// reachable. Utilization-only mutations never change adjacency, so
/// running this on the post-mutation graph answers for the pre-mutation
/// one too.
fn dirty_distances(g: &Graph, dirty: &[EdgeId]) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    for &e in dirty {
        let edge = g.edge(e);
        for v in [edge.a, edge.b] {
            if dist[v.index()] == usize::MAX {
                dist[v.index()] = 0;
                queue.push_back(v);
            }
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        for &(w, _) in g.neighbors(v) {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Parallel, memoized `T_rmin` row provider — the single cost authority
/// behind every placement entry point.
///
/// Pricing a source means computing `min Σ 1/Lu_e` from it to *every*
/// node ([`min_inv_lu_enumerated_from`] or [`min_inv_lu_dp_from`]); the
/// per-source rows are independent, so `build_matrix` fans them out
/// across scoped worker threads pulling row indices from a shared cursor
/// and writing each result into its own slot. Merging happens in
/// node-index order, so output is byte-identical to the sequential path
/// for any thread count.
///
/// Rows are cached keyed by `(graph epoch, source, hop bound, engine)`.
/// The epoch ([`Graph::epoch`]) is reassigned on every graph mutation, so
/// a changed link utilization can never serve a stale row, while repeated
/// re-optimizations over an unchanged graph — `io_rate_sweep`, zoned
/// per-zone solves, the periodic re-solve loop — hit the cache instead of
/// re-enumerating. Cached rows store `Σ 1/Lu_e` (not `T_rmin`), so one
/// row serves every data volume `D_i`.
#[derive(Debug, Default)]
pub struct CostEngine {
    threads: usize,
    cache: RwLock<HashMap<RowKey, Arc<Vec<f64>>>>,
    obs: ObsHandle,
    /// Epoch of the last [`CostEngine::refresh`] snapshot: rows keyed here
    /// predate everything in the graph's dirty journal, so they are the
    /// ones eligible for migration at the next refresh. `0` = never
    /// refreshed (no epoch is ever handed out as 0).
    coherent_epoch: AtomicU64,
}

/// What one [`CostEngine::refresh`] did to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefreshStats {
    /// Rows carried over to the new epoch without re-pricing (no path
    /// within their hop bound can traverse a dirty link).
    pub migrated: usize,
    /// Rows dropped because a dirty link sits inside their hop cone (or
    /// because they were keyed at an unmigratable intermediate epoch).
    pub invalidated: usize,
    /// True when the refresh gave up on per-link precision and fell back
    /// to full invalidation (structural change, journal overflow, or
    /// dirty fraction above the caller's threshold).
    pub full: bool,
}

impl CostEngine {
    /// An engine using all available parallelism.
    pub fn new() -> Self {
        Self::with_threads(0)
    }

    /// An engine with an explicit worker count; `0` means "use available
    /// parallelism". `1` is the sequential reference implementation.
    pub fn with_threads(threads: usize) -> Self {
        CostEngine {
            threads,
            cache: RwLock::new(HashMap::new()),
            obs: ObsHandle::disabled(),
            coherent_epoch: AtomicU64::new(0),
        }
    }

    /// Attach an observability handle (builder form). Cache hit/miss
    /// accounting happens in a sequential pre-pass and the parallel
    /// workers never touch the handle, so recording cannot perturb
    /// row-pricing determinism.
    pub fn with_obs(mut self, obs: ObsHandle) -> Self {
        self.obs = obs;
        self
    }

    /// Attach an observability handle to an existing engine.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// The attached observability handle (disabled by default).
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// The sequential reference engine (one thread, no fan-out).
    pub fn sequential() -> Self {
        Self::with_threads(1)
    }

    /// Resolved worker count: the configured value, or available
    /// parallelism when configured as `0`.
    pub fn threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.threads
        }
    }

    /// Number of rows currently cached (all epochs).
    pub fn cached_rows(&self) -> usize {
        self.cache.read().expect("cost cache poisoned").len()
    }

    /// Drop every cached row.
    pub fn clear(&self) {
        self.cache.write().expect("cost cache poisoned").clear();
    }

    /// Evict rows priced under epochs other than `g`'s current one.
    /// Long-lived engines re-pricing a mutating graph call this to keep
    /// the cache from accumulating dead epochs.
    pub fn retain_epoch(&self, g: &Graph) {
        let epoch = g.epoch();
        self.cache.write().expect("cost cache poisoned").retain(|k, _| k.0 == epoch);
    }

    /// Incrementally re-validate the row cache against the mutations `g`
    /// accumulated since the previous refresh, instead of letting the
    /// epoch bump evict everything.
    ///
    /// Drains `g`'s dirty-link journal ([`Graph::take_dirty`]) and, for
    /// every row priced at the previous refresh's epoch, decides whether
    /// any path inside the row's hop bound could traverse a touched link:
    /// one multi-source BFS from the dirty links' endpoints gives each
    /// node its distance to the nearest dirty link, and a row from `src`
    /// under bound `h` is provably unaffected when
    /// `dist(src, dirty) + 1 > h` — those rows are re-keyed to the
    /// current epoch (same `Arc`, no re-pricing) and every later lookup
    /// hits the cache bit-identically to a from-scratch re-price
    /// (utilization-only mutations never change hop distances, and
    /// structural mutations journal as all-dirty). Rows a dirty link
    /// *might* reach are dropped and re-priced on demand.
    ///
    /// Precision degrades safely: an all-dirty journal, an empty cache
    /// epoch, or a dirty fraction above `max_dirty_fraction` (of the edge
    /// count) falls back to full invalidation, i.e. exactly
    /// [`CostEngine::retain_epoch`]. Records `cost.rows_migrated`,
    /// `cost.rows_invalidated`, `cost.refreshes`, and
    /// `cost.full_invalidations` counters; no trace events, so golden
    /// digests never depend on refresh cadence.
    pub fn refresh(&self, g: &mut Graph, max_dirty_fraction: f64) -> RefreshStats {
        let _prof = self.obs.prof_scope("cost.refresh");
        let cur = g.epoch();
        let prev = self.coherent_epoch.swap(cur, Ordering::Relaxed);
        let dirty = g.take_dirty();
        if self.obs.is_enabled() {
            self.obs.counter_inc("cost.refreshes");
        }
        if prev == cur {
            // nothing mutated since the last refresh: every cached row at
            // `cur` is already coherent
            return RefreshStats::default();
        }
        let full = match &dirty {
            None => true,
            Some(d) => {
                prev == 0
                    || g.edge_count() == 0
                    || (d.len() as f64) > max_dirty_fraction * g.edge_count() as f64
            }
        };
        let mut cache = self.cache.write().expect("cost cache poisoned");
        let mut stats = RefreshStats { full, ..RefreshStats::default() };
        if full {
            let before = cache.len();
            cache.retain(|k, _| k.0 == cur);
            stats.invalidated = before - cache.len();
            if self.obs.is_enabled() {
                self.obs.counter_inc("cost.full_invalidations");
            }
        } else {
            let d = dirty.as_deref().unwrap_or(&[]);
            let ddist = (!d.is_empty()).then(|| dirty_distances(g, d));
            let keys: Vec<RowKey> = cache.keys().filter(|k| k.0 == prev).copied().collect();
            for key in keys {
                let (_, src, hopk, engine) = key;
                let affected = match &ddist {
                    None => false,
                    Some(dist) => match dist.get(src.index()) {
                        // a dirty link is inside the hop cone when its
                        // nearest endpoint is reachable within bound - 1
                        Some(&dd) => dd != usize::MAX && (hopk == u64::MAX || (dd as u64) < hopk),
                        None => true,
                    },
                };
                let row = cache.remove(&key).expect("row key vanished under write lock");
                if affected {
                    stats.invalidated += 1;
                } else {
                    cache.insert((cur, src, hopk, engine), row);
                    stats.migrated += 1;
                }
            }
            // rows priced at intermediate epochs (between refreshes) saw
            // an unknown subset of the dirt: not migratable, just stale
            let before = cache.len();
            cache.retain(|k, _| k.0 == cur);
            stats.invalidated += before - cache.len();
        }
        if self.obs.is_enabled() {
            self.obs.counter_add("cost.rows_migrated", stats.migrated as u64);
            self.obs.counter_add("cost.rows_invalidated", stats.invalidated as u64);
        }
        stats
    }

    /// The cached `Σ 1/Lu_e` row from `src` to every node of `g`, priced
    /// on demand with `engine` under the hop bound. Records one cache
    /// hit/miss into the attached [`ObsHandle`]; this entry point is for
    /// sequential callers — the internal fan-out uses an uncounted path
    /// so worker scheduling never reorders trace events.
    pub fn row(
        &self,
        g: &Graph,
        src: NodeId,
        max_hop: Option<usize>,
        engine: PathEngine,
    ) -> Arc<Vec<f64>> {
        if self.obs.is_enabled() {
            let key: RowKey = (g.epoch(), src, hop_key(max_hop), engine);
            let hit = self.cache.read().expect("cost cache poisoned").contains_key(&key);
            self.record_lookup(src, hit);
        }
        self.row_uncounted(g, src, max_hop, engine)
    }

    /// One hit-or-miss accounting step (sequential context only).
    fn record_lookup(&self, src: NodeId, hit: bool) {
        if hit {
            self.obs.counter_inc("cost.cache_hits");
            self.obs.trace(TraceEvent::CacheHit { node: src.0 });
        } else {
            self.obs.counter_inc("cost.cache_misses");
            self.obs.counter_inc("cost.rows_priced");
            self.obs.trace(TraceEvent::CacheMiss { node: src.0 });
        }
    }

    /// [`CostEngine::row`] without observability accounting — safe to
    /// call from parallel workers.
    fn row_uncounted(
        &self,
        g: &Graph,
        src: NodeId,
        max_hop: Option<usize>,
        engine: PathEngine,
    ) -> Arc<Vec<f64>> {
        let key: RowKey = (g.epoch(), src, hop_key(max_hop), engine);
        if let Some(row) = self.cache.read().expect("cost cache poisoned").get(&key) {
            return Arc::clone(row);
        }
        let row = Arc::new(match engine {
            PathEngine::Enumerate => min_inv_lu_enumerated_from(g, src, max_hop),
            PathEngine::HopBoundedDp => min_inv_lu_dp_from(g, src, max_hop),
        });
        // Two workers may race to price the same source; keep the first
        // insert so every caller sees one canonical Arc.
        let mut cache = self.cache.write().expect("cost cache poisoned");
        Arc::clone(cache.entry(key).or_insert(row))
    }

    /// Price the rows for `sources` in parallel, returning them in source
    /// order. This is the fan-out core shared by [`CostEngine::build_matrix`]
    /// and [`CostEngine::prefetch`]: workers pull row indices from a shared
    /// cursor and each writes into its own slot, so the result — and
    /// everything assembled from it — is identical for any thread count.
    pub fn rows(
        &self,
        g: &Graph,
        sources: &[NodeId],
        max_hop: Option<usize>,
        engine: PathEngine,
    ) -> Vec<Arc<Vec<f64>>> {
        self.rows_counted(g, sources, max_hop, engine).0
    }

    /// Fan-out core returning `(rows, cache_hits, cache_misses)`.
    ///
    /// Hit/miss accounting runs in a *sequential pre-pass* over the
    /// cache (counters and `CacheHit`/`CacheMiss` trace events in source
    /// order); the workers themselves never touch the obs handle, so the
    /// trace is identical for every thread count.
    fn rows_counted(
        &self,
        g: &Graph,
        sources: &[NodeId],
        max_hop: Option<usize>,
        engine: PathEngine,
    ) -> (Vec<Arc<Vec<f64>>>, u64, u64) {
        let _prof = self.obs.prof_scope("cost.price_rows");
        let workers = self.threads().min(sources.len());
        let (mut hits, mut misses) = (0u64, 0u64);
        if self.obs.is_enabled() {
            let _probe = self.obs.prof_scope("cost.cache_probe");
            let epoch = g.epoch();
            let hopk = hop_key(max_hop);
            let lookups: Vec<(NodeId, bool)> = {
                let cache = self.cache.read().expect("cost cache poisoned");
                sources
                    .iter()
                    .map(|&src| (src, cache.contains_key(&(epoch, src, hopk, engine))))
                    .collect()
            };
            for (src, hit) in lookups {
                if hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
                self.record_lookup(src, hit);
            }
            self.obs.gauge_set("cost.workers", workers.max(1) as f64);
        }
        let rows = if workers <= 1 {
            sources
                .iter()
                .map(|&src| {
                    let _row = self.obs.prof_scope("cost.row_price");
                    self.row_uncounted(g, src, max_hop, engine)
                })
                .collect()
        } else {
            // Workers never touch the shared obs handle: each job records
            // into a private forked profiler carried through its result
            // slot, and the locals are grafted back in job-index order
            // after the scope — so profile *counts* (sources.len() rows)
            // are identical for every thread count, like everything else.
            type RowSlot = (Arc<Vec<f64>>, Option<dust_obs::LocalProfiler>);
            let slots: Vec<OnceLock<RowSlot>> = sources.iter().map(|_| OnceLock::new()).collect();
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&src) = sources.get(i) else { break };
                        let mut local = self.obs.prof_fork();
                        let row = match local.as_mut() {
                            Some(l) => l.time("cost.row_price", || {
                                self.row_uncounted(g, src, max_hop, engine)
                            }),
                            None => self.row_uncounted(g, src, max_hop, engine),
                        };
                        slots[i].set((row, local)).expect("row slot filled twice");
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    let (row, local) = slot.into_inner().expect("worker left a row unpriced");
                    if let Some(l) = local {
                        self.obs.prof_join(l);
                    }
                    row
                })
                .collect()
        };
        (rows, hits, misses)
    }

    /// Warm the cache for `sources` using the parallel worker pool, without
    /// assembling a matrix — callers that price rows one at a time (the
    /// heuristic's per-busy-node loop) prefetch first so the sequential
    /// loop only ever hits the cache.
    pub fn prefetch(
        &self,
        g: &Graph,
        sources: &[NodeId],
        max_hop: Option<usize>,
        engine: PathEngine,
    ) {
        let _ = self.rows(g, sources, max_hop, engine);
    }

    /// Run `jobs` independent closures on the engine's scoped-thread pool,
    /// returning the results in job order. Same worker discipline as
    /// [`CostEngine::rows`] — a shared cursor feeds indices, each worker
    /// writes its own slot — so the output is identical for any thread
    /// count. The partitioned placement solver fans its transportation
    /// subproblems out through here.
    pub fn run_parallel<T, F>(&self, jobs: usize, f: F) -> Vec<T>
    where
        T: Send + Sync,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads().min(jobs);
        if workers <= 1 {
            return (0..jobs).map(f).collect();
        }
        let slots: Vec<OnceLock<T>> = (0..jobs).map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    let v = f(i);
                    if slots[i].set(v).is_err() {
                        unreachable!("cursor handed out job {i} twice");
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("worker left a job unfinished"))
            .collect()
    }

    /// Build the `T_rmin` matrix (Eq. 2): row `r` is
    /// `data_mb[r] · Σ 1/Lu_e` from `sources[r]` to each destination, `0`
    /// on the diagonal, `∞` for pairs with no path inside the bound.
    ///
    /// Rows are priced in parallel across [`CostEngine::threads`] workers
    /// and merged in row order — output is identical for every thread
    /// count.
    ///
    /// # Panics
    /// Panics if `data_mb.len() != sources.len()` or any volume is
    /// negative or non-finite.
    pub fn build_matrix(
        &self,
        g: &Graph,
        sources: &[NodeId],
        destinations: &[NodeId],
        data_mb: &[f64],
        max_hop: Option<usize>,
        engine: PathEngine,
    ) -> CostMatrix {
        assert_eq!(sources.len(), data_mb.len(), "one D_i per source required");
        for &d in data_mb {
            assert!(d.is_finite() && d >= 0.0, "monitoring data volume must be >= 0, got {d}");
        }
        let _prof = self.obs.prof_scope("cost.build_matrix");
        let (rows, hits, misses) = self.rows_counted(g, sources, max_hop, engine);
        if self.obs.is_enabled() {
            self.obs.counter_inc("cost.builds");
            self.obs.trace(TraceEvent::MatrixBuilt {
                rows: sources.len() as u32,
                hits: hits as u32,
                misses: misses as u32,
            });
        }
        let mut t_rmin = Vec::with_capacity(sources.len() * destinations.len());
        for (r, &src) in sources.iter().enumerate() {
            let d = data_mb[r];
            let row = &rows[r];
            for &dst in destinations {
                let c = if src == dst {
                    // Offloading to yourself is free but the role model
                    // never produces this pair.
                    0.0
                } else {
                    let inv = row[dst.index()];
                    if inv.is_finite() {
                        d * inv
                    } else {
                        f64::INFINITY
                    }
                };
                t_rmin.push(c);
            }
        }
        CostMatrix { sources: sources.to_vec(), destinations: destinations.to_vec(), t_rmin }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Link;
    use crate::topologies::{example7, example7_roles, line};

    #[test]
    fn engines_agree_on_example7() {
        let mut g = example7(Link::default());
        let utils = [0.9, 0.1, 0.8, 0.7, 0.3, 0.6, 0.2];
        g.retarget_utilization(|e, _| utils[e.index()]);
        let (busy, cands) = example7_roles();
        let d = [120.0];
        for max_hop in [Some(2), Some(4), None] {
            let a = CostMatrix::build(&g, &[busy], &cands, &d, max_hop, PathEngine::Enumerate);
            let b = CostMatrix::build(&g, &[busy], &cands, &d, max_hop, PathEngine::HopBoundedDp);
            for i in 0..a.t_rmin.len() {
                let (x, y) = (a.t_rmin[i], b.t_rmin[i]);
                if x.is_infinite() {
                    assert!(y.is_infinite());
                } else {
                    assert!((x - y).abs() < 1e-9, "entry {i}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = line(4, Link::default());
        let m = CostMatrix::build(
            &g,
            &[NodeId(0)],
            &[NodeId(3)],
            &[10.0],
            Some(2),
            PathEngine::Enumerate,
        );
        assert!(m.at(0, 0).is_infinite());
        assert!(!m.any_reachable());
    }

    #[test]
    fn cost_scales_linearly_with_data_volume() {
        let g = line(3, Link::default());
        let m1 =
            CostMatrix::build(&g, &[NodeId(0)], &[NodeId(2)], &[10.0], None, PathEngine::Enumerate);
        let m2 =
            CostMatrix::build(&g, &[NodeId(0)], &[NodeId(2)], &[20.0], None, PathEngine::Enumerate);
        assert!((m2.at(0, 0) / m1.at(0, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_pair_is_zero() {
        let g = line(3, Link::default());
        let m = CostMatrix::build(
            &g,
            &[NodeId(1)],
            &[NodeId(1)],
            &[5.0],
            None,
            PathEngine::HopBoundedDp,
        );
        assert_eq!(m.at(0, 0), 0.0);
    }

    #[test]
    fn row_access_matches_at() {
        let g = example7(Link::default());
        let (busy, cands) = example7_roles();
        let m = CostMatrix::build(&g, &[busy], &cands, &[50.0], None, PathEngine::HopBoundedDp);
        assert_eq!(m.rows(), 1);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(0)[1], m.at(0, 1));
    }

    #[test]
    #[should_panic(expected = "one D_i per source")]
    fn mismatched_data_len_rejected() {
        let g = line(3, Link::default());
        CostMatrix::build(&g, &[NodeId(0)], &[NodeId(2)], &[], None, PathEngine::Enumerate);
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use crate::fattree::FatTree;
    use crate::graph::{EdgeId, Link};
    use crate::topologies::example7;

    fn fat_tree_instance() -> (Graph, Vec<NodeId>, Vec<NodeId>, Vec<f64>) {
        let ft = FatTree::with_default_links(4);
        let mut g = ft.graph.clone();
        g.retarget_utilization(|e, _| 0.1 + 0.8 * (e.index() % 7) as f64 / 7.0);
        let sources: Vec<NodeId> = (0..8).map(NodeId).collect();
        let destinations: Vec<NodeId> = (8..20).map(NodeId).collect();
        let data: Vec<f64> = (0..8).map(|i| 50.0 + 10.0 * i as f64).collect();
        (g, sources, destinations, data)
    }

    #[test]
    fn parallel_matrix_is_bit_identical_to_sequential() {
        let (g, src, dst, data) = fat_tree_instance();
        for engine in [PathEngine::Enumerate, PathEngine::HopBoundedDp] {
            let seq = CostEngine::sequential().build_matrix(&g, &src, &dst, &data, Some(6), engine);
            for threads in [2, 3, 8] {
                let par = CostEngine::with_threads(threads).build_matrix(
                    &g,
                    &src,
                    &dst,
                    &data,
                    Some(6),
                    engine,
                );
                let a: Vec<u64> = seq.t_rmin.iter().map(|v| v.to_bits()).collect();
                let b: Vec<u64> = par.t_rmin.iter().map(|v| v.to_bits()).collect();
                assert_eq!(a, b, "threads={threads} engine={engine:?}");
            }
        }
    }

    #[test]
    fn rows_are_cached_across_builds() {
        let (g, src, dst, data) = fat_tree_instance();
        let eng = CostEngine::with_threads(4);
        assert_eq!(eng.cached_rows(), 0);
        let m1 = eng.build_matrix(&g, &src, &dst, &data, Some(6), PathEngine::Enumerate);
        assert_eq!(eng.cached_rows(), src.len());
        let m2 = eng.build_matrix(&g, &src, &dst, &data, Some(6), PathEngine::Enumerate);
        assert_eq!(eng.cached_rows(), src.len(), "second build must not price new rows");
        assert_eq!(m1.t_rmin, m2.t_rmin);
    }

    #[test]
    fn cached_rows_serve_any_data_volume() {
        let (g, src, dst, _) = fat_tree_instance();
        let eng = CostEngine::sequential();
        let ones = vec![1.0; src.len()];
        let base = eng.build_matrix(&g, &src, &dst, &ones, Some(6), PathEngine::HopBoundedDp);
        let n = eng.cached_rows();
        let doubled = eng.build_matrix(
            &g,
            &src,
            &dst,
            &vec![2.0; src.len()],
            Some(6),
            PathEngine::HopBoundedDp,
        );
        assert_eq!(eng.cached_rows(), n, "different D_i must reuse the same rows");
        for (a, b) in base.t_rmin.iter().zip(&doubled.t_rmin) {
            if a.is_finite() {
                assert!((b - 2.0 * a).abs() <= 1e-12 * (1.0 + a.abs()));
            }
        }
    }

    #[test]
    fn mutation_changes_epoch_and_invalidates() {
        let mut g = example7(Link::default());
        let eng = CostEngine::sequential();
        let src = [NodeId(0)];
        let dst = [NodeId(1), NodeId(5)];
        let before = eng.build_matrix(&g, &src, &dst, &[100.0], None, PathEngine::Enumerate);
        let e0 = g.epoch();
        g.link_mut(EdgeId(0)).utilization = 0.05;
        assert_ne!(g.epoch(), e0, "mutation must move the epoch");
        let after = eng.build_matrix(&g, &src, &dst, &[100.0], None, PathEngine::Enumerate);
        assert_eq!(eng.cached_rows(), 2, "one row per epoch");
        assert!(after.at(0, 0) > before.at(0, 0), "slower link must raise the cost");
        // evicting dead epochs keeps only the live row
        eng.retain_epoch(&g);
        assert_eq!(eng.cached_rows(), 1);
        let again = eng.build_matrix(&g, &src, &dst, &[100.0], None, PathEngine::Enumerate);
        assert_eq!(again.t_rmin, after.t_rmin);
    }

    #[test]
    fn clone_shares_epoch_until_mutated() {
        let g = example7(Link::default());
        let c = g.clone();
        assert_eq!(g.epoch(), c.epoch());
        let mut c2 = c.clone();
        c2.retarget_utilization(|_, _| 0.3);
        assert_ne!(c2.epoch(), g.epoch());
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let eng = CostEngine::new();
        assert!(eng.threads() >= 1);
        assert_eq!(CostEngine::with_threads(5).threads(), 5);
    }

    #[test]
    fn obs_accounting_is_thread_count_invariant() {
        let (g, src, dst, data) = fat_tree_instance();
        let run = |threads: usize| {
            let obs = ObsHandle::recording(1);
            let eng = CostEngine::with_threads(threads).with_obs(obs.clone());
            eng.build_matrix(&g, &src, &dst, &data, Some(6), PathEngine::HopBoundedDp);
            eng.build_matrix(&g, &src, &dst, &data, Some(6), PathEngine::HopBoundedDp);
            let m = obs.metrics().unwrap();
            (
                m.counter("cost.cache_hits"),
                m.counter("cost.cache_misses"),
                m.counter("cost.rows_priced"),
                obs.digest().unwrap(),
            )
        };
        let seq = run(1);
        assert_eq!(seq.0, src.len() as u64, "second build must hit on every row");
        assert_eq!(seq.1, src.len() as u64, "first build must miss on every row");
        assert_eq!(seq.1, seq.2, "every miss prices exactly one row");
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn profile_scope_counts_are_thread_count_invariant() {
        let (g, src, dst, data) = fat_tree_instance();
        let run = |threads: usize| {
            let obs = ObsHandle::recording(1);
            obs.enable_profiling();
            let eng = CostEngine::with_threads(threads).with_obs(obs.clone());
            eng.build_matrix(&g, &src, &dst, &data, Some(6), PathEngine::HopBoundedDp);
            let report = obs.profile_report().unwrap();
            report.lines().filter(|l| l.starts_with("count ")).map(String::from).collect::<Vec<_>>()
        };
        let seq = run(1);
        assert!(
            seq.iter().any(|l| l
                == &format!(
                    "count cost.build_matrix;cost.price_rows;cost.row_price {}",
                    src.len()
                )),
            "{seq:?}"
        );
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn run_parallel_preserves_job_order_for_any_thread_count() {
        let jobs = 23usize;
        let expect: Vec<usize> = (0..jobs).map(|i| i * i).collect();
        for threads in [1usize, 2, 4, 16, 0] {
            let engine = CostEngine::with_threads(threads);
            let got = engine.run_parallel(jobs, |i| i * i);
            assert_eq!(got, expect, "threads={threads}");
        }
        // more workers than jobs, and zero jobs, are both fine
        assert_eq!(CostEngine::with_threads(8).run_parallel(2, |i| i), vec![0, 1]);
        assert!(CostEngine::new().run_parallel(0, |i| i).is_empty());
    }

    #[test]
    fn refresh_migrates_far_rows_and_reprices_crossing_ones() {
        use crate::topologies::line;
        // line 0-1-2-...-7: mutate the 0-1 link; a 2-hop row from node 7
        // cannot see it, a 2-hop row from node 0 must re-price
        let mut g = line(8, Link::default());
        let obs = ObsHandle::recording(0);
        let eng = CostEngine::sequential().with_obs(obs.clone());
        eng.refresh(&mut g, 0.5); // first refresh: establishes coherence (full)
        let src = [NodeId(0), NodeId(7)];
        let dst: Vec<NodeId> = (1..7).map(NodeId).collect();
        let data = [10.0, 10.0];
        eng.build_matrix(&g, &src, &dst, &data, Some(2), PathEngine::HopBoundedDp);
        assert_eq!(eng.cached_rows(), 2);

        g.link_mut(EdgeId(0)).utilization = 0.95;
        let stats = eng.refresh(&mut g, 0.5);
        assert!(!stats.full);
        assert_eq!(stats.migrated, 1, "node 7's bounded row is provably clean");
        assert_eq!(stats.invalidated, 1, "node 0's row crosses the dirty link");
        assert_eq!(obs.counter("cost.rows_migrated"), 1);
        assert_eq!(obs.counter("cost.rows_invalidated"), 1);
        assert_eq!(obs.counter("cost.full_invalidations"), 1, "only the bootstrap refresh");

        // the incremental cache must answer bit-identically to a cold engine
        let inc = eng.build_matrix(&g, &src, &dst, &data, Some(2), PathEngine::HopBoundedDp);
        let cold = CostEngine::sequential().build_matrix(
            &g,
            &src,
            &dst,
            &data,
            Some(2),
            PathEngine::HopBoundedDp,
        );
        let a: Vec<u64> = inc.t_rmin.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = cold.t_rmin.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "migrated rows must be indistinguishable from re-priced ones");
        // and only the crossing row was re-priced
        assert_eq!(obs.counter("cost.cache_hits"), 1, "migrated row served from cache");
    }

    #[test]
    fn refresh_reprices_unbounded_rows_whenever_dirt_is_reachable() {
        use crate::topologies::line;
        let mut g = line(6, Link::default());
        let eng = CostEngine::sequential();
        eng.refresh(&mut g, 1.0);
        let src = [NodeId(5)];
        let dst = [NodeId(0)];
        eng.build_matrix(&g, &src, &dst, &[10.0], None, PathEngine::HopBoundedDp);
        let before = eng.build_matrix(&g, &src, &dst, &[10.0], None, PathEngine::HopBoundedDp);
        g.link_mut(EdgeId(0)).utilization = 0.01;
        let stats = eng.refresh(&mut g, 1.0);
        assert_eq!(stats.migrated, 0, "an unbounded row sees every link");
        assert_eq!(stats.invalidated, 1);
        let after = eng.build_matrix(&g, &src, &dst, &[10.0], None, PathEngine::HopBoundedDp);
        // Lu = capacity × utilization, Tr = D/Lu: a nearly idle link is a
        // nearly useless link in this model, so the cost must rise
        assert!(after.at(0, 0) > before.at(0, 0), "the mutation must actually show through");
    }

    #[test]
    fn refresh_falls_back_full_above_dirty_fraction() {
        use crate::topologies::line;
        let mut g = line(10, Link::default());
        let obs = ObsHandle::recording(0);
        let eng = CostEngine::sequential().with_obs(obs.clone());
        eng.refresh(&mut g, 0.25);
        let src: Vec<NodeId> = (0..4).map(NodeId).collect();
        let dst = [NodeId(9)];
        eng.build_matrix(&g, &src, &dst, &[1.0; 4], Some(3), PathEngine::HopBoundedDp);
        // touch 4 of 9 links: 44% dirty > 25% threshold
        for e in 0..4 {
            g.link_mut(EdgeId(e)).utilization = 0.9;
        }
        let stats = eng.refresh(&mut g, 0.25);
        assert!(stats.full);
        assert_eq!(stats.migrated, 0);
        assert_eq!(stats.invalidated, 4);
        assert_eq!(eng.cached_rows(), 0);
        assert_eq!(obs.counter("cost.full_invalidations"), 2);
    }

    #[test]
    fn refresh_handles_structural_mutations_as_all_dirty() {
        use crate::topologies::line;
        let mut g = line(5, Link::default());
        let eng = CostEngine::sequential();
        eng.refresh(&mut g, 1.0);
        let src = [NodeId(4)];
        eng.build_matrix(&g, &src, &[NodeId(0)], &[1.0], Some(2), PathEngine::HopBoundedDp);
        // a new edge changes reachability: the bounded row from node 4
        // would be wrong to keep even though no *link state* was touched
        let n = g.add_node();
        g.add_edge(NodeId(0), n, Link::default());
        let stats = eng.refresh(&mut g, 1.0);
        assert!(stats.full);
        assert_eq!(eng.cached_rows(), 0);
    }

    #[test]
    fn refresh_with_no_mutations_keeps_everything() {
        use crate::topologies::line;
        let mut g = line(4, Link::default());
        let eng = CostEngine::sequential();
        eng.refresh(&mut g, 0.5);
        eng.build_matrix(&g, &[NodeId(0)], &[NodeId(3)], &[1.0], None, PathEngine::HopBoundedDp);
        let stats = eng.refresh(&mut g, 0.5);
        assert_eq!(stats, RefreshStats::default());
        assert_eq!(eng.cached_rows(), 1);
    }

    #[test]
    fn refresh_incremental_matches_full_invalidation_bit_for_bit() {
        // seeded drift sweep: after every targeted mutation, an engine
        // using incremental refresh and an always-cold engine must price
        // identical matrices
        let (mut g, src, dst, data) = fat_tree_instance();
        let inc = CostEngine::sequential();
        inc.refresh(&mut g, 0.5);
        let mut state = 0x5EEDu64;
        let mut split = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for round in 0..6 {
            for _ in 0..3 {
                let e = EdgeId((split() % g.edge_count() as u64) as u32);
                let u = 0.05 + 0.9 * (split() % 1000) as f64 / 1000.0;
                g.link_mut(e).utilization = u;
            }
            inc.refresh(&mut g, 0.5);
            let a = inc.build_matrix(&g, &src, &dst, &data, Some(6), PathEngine::HopBoundedDp);
            let cold = CostEngine::sequential().build_matrix(
                &g,
                &src,
                &dst,
                &data,
                Some(6),
                PathEngine::HopBoundedDp,
            );
            let x: Vec<u64> = a.t_rmin.iter().map(|v| v.to_bits()).collect();
            let y: Vec<u64> = cold.t_rmin.iter().map(|v| v.to_bits()).collect();
            assert_eq!(x, y, "round {round}");
        }
    }

    #[test]
    fn enumerated_row_matches_per_destination_calls() {
        use crate::paths::{min_inv_lu_enumerated, min_inv_lu_enumerated_from};
        let mut g = example7(Link::default());
        let utils = [0.9, 0.1, 0.8, 0.7, 0.3, 0.6, 0.2];
        g.retarget_utilization(|e, _| utils[e.index()]);
        for bound in [Some(1), Some(2), Some(4), None] {
            let row = min_inv_lu_enumerated_from(&g, NodeId(0), bound);
            for v in g.nodes().skip(1) {
                let per = min_inv_lu_enumerated(&g, NodeId(0), v, bound)
                    .map_or(f64::INFINITY, |(c, _)| c);
                assert_eq!(row[v.index()].to_bits(), per.to_bits(), "dst {v} bound {bound:?}");
            }
        }
    }
}
