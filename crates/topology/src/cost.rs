//! `T_rmin` cost matrices between Busy nodes and Offload-candidates (Eq. 2).
//!
//! The placement LP needs, for every pair `(i ∈ V_b, j ∈ V_o)`, the minimum
//! response time over all paths within the hop bound. This module builds
//! that matrix with either the paper-faithful enumerator or the fast DP
//! (see [`crate::paths`]), parameterized per source by the monitoring data
//! volume `D_i` in megabits.

use crate::graph::{Graph, NodeId};
use crate::paths::{min_inv_lu_dp_from, min_inv_lu_enumerated};
use serde::{Deserialize, Serialize};

/// Which routing engine computes `T_rmin` (ablation 1 in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PathEngine {
    /// Exhaustive simple-path enumeration — the paper's approach, whose cost
    /// grows combinatorially with the hop bound (reproduces Figs. 8/10).
    #[default]
    Enumerate,
    /// Hop-bounded Bellman–Ford — same optimum in `O(max_hop · |E|)`.
    HopBoundedDp,
}

/// Dense `|V_b| × |V_o|` matrix of minimum response times (seconds).
///
/// `f64::INFINITY` marks a pair with no path inside the hop bound — the
/// placement layer must not route between such a pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostMatrix {
    /// Busy (source) nodes, row order.
    pub sources: Vec<NodeId>,
    /// Offload-candidate (destination) nodes, column order.
    pub destinations: Vec<NodeId>,
    /// Row-major `T_rmin` values in seconds.
    pub t_rmin: Vec<f64>,
}

impl CostMatrix {
    /// Build the matrix. `data_mb[r]` is `D_i` (Mb) for `sources[r]`.
    ///
    /// # Panics
    /// Panics if `data_mb.len() != sources.len()`.
    pub fn build(
        g: &Graph,
        sources: &[NodeId],
        destinations: &[NodeId],
        data_mb: &[f64],
        max_hop: Option<usize>,
        engine: PathEngine,
    ) -> Self {
        assert_eq!(sources.len(), data_mb.len(), "one D_i per source required");
        let mut t_rmin = Vec::with_capacity(sources.len() * destinations.len());
        for (r, &src) in sources.iter().enumerate() {
            let d = data_mb[r];
            assert!(d.is_finite() && d >= 0.0, "monitoring data volume must be >= 0, got {d}");
            match engine {
                PathEngine::Enumerate => {
                    for &dst in destinations {
                        let c = if src == dst {
                            // Offloading to yourself is free but the role
                            // model never produces this pair.
                            0.0
                        } else {
                            min_inv_lu_enumerated(g, src, dst, max_hop)
                                .map_or(f64::INFINITY, |(inv, _)| d * inv)
                        };
                        t_rmin.push(c);
                    }
                }
                PathEngine::HopBoundedDp => {
                    let dist = min_inv_lu_dp_from(g, src, max_hop);
                    for &dst in destinations {
                        let c = if src == dst { 0.0 } else { d * dist[dst.index()] };
                        t_rmin.push(c);
                    }
                }
            }
        }
        CostMatrix { sources: sources.to_vec(), destinations: destinations.to_vec(), t_rmin }
    }

    /// Number of rows (Busy nodes).
    #[inline]
    pub fn rows(&self) -> usize {
        self.sources.len()
    }

    /// Number of columns (Offload-candidates).
    #[inline]
    pub fn cols(&self) -> usize {
        self.destinations.len()
    }

    /// `T_rmin` for row `r`, column `c`, in seconds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.t_rmin[r * self.cols() + c]
    }

    /// True if any (source, destination) pair is connected within the bound.
    pub fn any_reachable(&self) -> bool {
        self.t_rmin.iter().any(|c| c.is_finite())
    }

    /// Row slice for one source.
    pub fn row(&self, r: usize) -> &[f64] {
        let w = self.cols();
        &self.t_rmin[r * w..(r + 1) * w]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Link;
    use crate::topologies::{example7, example7_roles, line};

    #[test]
    fn engines_agree_on_example7() {
        let mut g = example7(Link::default());
        let utils = [0.9, 0.1, 0.8, 0.7, 0.3, 0.6, 0.2];
        g.retarget_utilization(|e, _| utils[e.index()]);
        let (busy, cands) = example7_roles();
        let d = [120.0];
        for max_hop in [Some(2), Some(4), None] {
            let a = CostMatrix::build(&g, &[busy], &cands, &d, max_hop, PathEngine::Enumerate);
            let b = CostMatrix::build(&g, &[busy], &cands, &d, max_hop, PathEngine::HopBoundedDp);
            for i in 0..a.t_rmin.len() {
                let (x, y) = (a.t_rmin[i], b.t_rmin[i]);
                if x.is_infinite() {
                    assert!(y.is_infinite());
                } else {
                    assert!((x - y).abs() < 1e-9, "entry {i}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = line(4, Link::default());
        let m = CostMatrix::build(
            &g,
            &[NodeId(0)],
            &[NodeId(3)],
            &[10.0],
            Some(2),
            PathEngine::Enumerate,
        );
        assert!(m.at(0, 0).is_infinite());
        assert!(!m.any_reachable());
    }

    #[test]
    fn cost_scales_linearly_with_data_volume() {
        let g = line(3, Link::default());
        let m1 = CostMatrix::build(&g, &[NodeId(0)], &[NodeId(2)], &[10.0], None, PathEngine::Enumerate);
        let m2 = CostMatrix::build(&g, &[NodeId(0)], &[NodeId(2)], &[20.0], None, PathEngine::Enumerate);
        assert!((m2.at(0, 0) / m1.at(0, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_pair_is_zero() {
        let g = line(3, Link::default());
        let m = CostMatrix::build(&g, &[NodeId(1)], &[NodeId(1)], &[5.0], None, PathEngine::HopBoundedDp);
        assert_eq!(m.at(0, 0), 0.0);
    }

    #[test]
    fn row_access_matches_at() {
        let g = example7(Link::default());
        let (busy, cands) = example7_roles();
        let m = CostMatrix::build(&g, &[busy], &cands, &[50.0], None, PathEngine::HopBoundedDp);
        assert_eq!(m.rows(), 1);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(0)[1], m.at(0, 1));
    }

    #[test]
    #[should_panic(expected = "one D_i per source")]
    fn mismatched_data_len_rejected() {
        let g = line(3, Link::default());
        CostMatrix::build(&g, &[NodeId(0)], &[NodeId(2)], &[], None, PathEngine::Enumerate);
    }
}
