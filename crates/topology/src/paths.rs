//! Bounded path enumeration and hop-constrained minimum-cost routing.
//!
//! The paper evaluates `Tr_{i,j}` over *all* feasible paths up to a
//! `max-hop` bound and takes the minimum (Eq. 1–2). Two interchangeable
//! engines are provided:
//!
//! * [`for_each_simple_path`] / [`enumerate_simple_paths`] — the
//!   paper-faithful exhaustive enumerator, whose cost explodes with
//!   `max-hop` exactly like the computation-time curves of Figs. 8 and 10;
//! * [`min_inv_lu_dp`] — a hop-bounded Bellman–Ford dynamic program that
//!   computes the same minimum in `O(max_hop · |E|)`. Because edge costs
//!   `1/Lu_e` are strictly positive, a minimum-cost walk never revisits a
//!   node, so the DP optimum equals the simple-path optimum (ablation 1 in
//!   DESIGN.md).
//!
//! Per-edge cost is the *inverse utilized bandwidth* `1/Lu_e` (seconds per
//! megabit); multiplying by the monitoring data volume `D_i` yields the
//! paper's response time `Tr = Σ_e D_i / Lu_e`.

use crate::graph::{EdgeId, Graph, NodeId};

/// A simple path: node sequence plus the edges traversed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Visited nodes, starting at the source and ending at the destination.
    pub nodes: Vec<NodeId>,
    /// Edges traversed; `edges.len() == nodes.len() - 1`.
    pub edges: Vec<EdgeId>,
}

impl Path {
    /// Hop count (number of edges).
    #[inline]
    pub fn hops(&self) -> usize {
        self.edges.len()
    }

    /// Sum of `1/Lu_e` over the path's edges, in seconds per Mb.
    pub fn inv_lu(&self, g: &Graph) -> f64 {
        self.edges.iter().map(|&e| inv_lu_edge(g, e)).sum()
    }

    /// Response time for moving `d_mb` megabits along this path (Eq. 1).
    pub fn response_time(&self, g: &Graph, d_mb: f64) -> f64 {
        d_mb * self.inv_lu(g)
    }
}

/// Cost of one edge: `1/Lu_e`. An idle link (`Lu = 0`) carries no data-plane
/// traffic in the paper's model; we treat it as infinitely slow so it never
/// wins the minimum (matching Eq. 1, where `Lu` is the denominator).
#[inline]
pub fn inv_lu_edge(g: &Graph, e: EdgeId) -> f64 {
    let lu = g.edge(e).link.lu();
    if lu > 0.0 {
        1.0 / lu
    } else {
        f64::INFINITY
    }
}

/// Visit every simple path from `src` to `dst` with at most `max_hop` edges
/// (`None` = unbounded). The visitor receives the node sequence, edge
/// sequence, and the accumulated `Σ 1/Lu_e` of the path.
///
/// This is a depth-first enumeration whose work grows combinatorially with
/// `max_hop` — deliberately so, as it reproduces the paper's optimization
/// cost model (§IV-D complexity analysis).
pub fn for_each_simple_path<F>(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    max_hop: Option<usize>,
    mut f: F,
) where
    F: FnMut(&[NodeId], &[EdgeId], f64),
{
    if src == dst {
        return;
    }
    let bound = max_hop.unwrap_or(usize::MAX);
    if bound == 0 {
        return;
    }
    let mut visited = vec![false; g.node_count()];
    let mut node_stack = vec![src];
    let mut edge_stack: Vec<EdgeId> = Vec::new();
    let mut cost_stack: Vec<f64> = vec![0.0];
    // Iterative DFS: frame = (node, next neighbor index to try).
    let mut frames: Vec<(NodeId, usize)> = vec![(src, 0)];
    visited[src.index()] = true;

    while let Some(&mut (v, ref mut idx)) = frames.last_mut() {
        let neighbors = g.neighbors(v);
        if *idx >= neighbors.len() {
            frames.pop();
            visited[v.index()] = false;
            node_stack.pop();
            edge_stack.pop();
            cost_stack.pop();
            continue;
        }
        let (w, e) = neighbors[*idx];
        *idx += 1;
        if visited[w.index()] {
            continue;
        }
        let new_cost = cost_stack.last().unwrap() + inv_lu_edge(g, e);
        if w == dst {
            node_stack.push(w);
            edge_stack.push(e);
            f(&node_stack, &edge_stack, new_cost);
            node_stack.pop();
            edge_stack.pop();
            continue;
        }
        if edge_stack.len() + 1 >= bound {
            // Extending through w would exceed the hop budget before
            // reaching dst.
            continue;
        }
        visited[w.index()] = true;
        node_stack.push(w);
        edge_stack.push(e);
        cost_stack.push(new_cost);
        frames.push((w, 0));
    }
}

/// Collect every simple path from `src` to `dst` within `max_hop` hops.
///
/// Prefer [`for_each_simple_path`] when only aggregate statistics are
/// needed; this materializes all paths.
pub fn enumerate_simple_paths(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    max_hop: Option<usize>,
) -> Vec<Path> {
    let mut out = Vec::new();
    for_each_simple_path(g, src, dst, max_hop, |nodes, edges, _| {
        out.push(Path { nodes: nodes.to_vec(), edges: edges.to_vec() });
    });
    out
}

/// Count simple paths without materializing them.
pub fn count_simple_paths(g: &Graph, src: NodeId, dst: NodeId, max_hop: Option<usize>) -> u64 {
    let mut n = 0u64;
    for_each_simple_path(g, src, dst, max_hop, |_, _, _| n += 1);
    n
}

/// Minimum `Σ 1/Lu_e` over all simple paths within `max_hop` hops, found by
/// exhaustive enumeration; returns the optimal path too. `None` if `dst` is
/// unreachable within the bound.
pub fn min_inv_lu_enumerated(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    max_hop: Option<usize>,
) -> Option<(f64, Path)> {
    let mut best: Option<(f64, Path)> = None;
    for_each_simple_path(g, src, dst, max_hop, |nodes, edges, cost| {
        let better = match &best {
            Some((c, _)) => cost < *c,
            None => true,
        };
        if better {
            best = Some((cost, Path { nodes: nodes.to_vec(), edges: edges.to_vec() }));
        }
    });
    best
}

/// Minimum `Σ 1/Lu_e` from `src` to *every* node within `max_hop` hops by
/// exhaustive simple-path enumeration. Entry `dist[v]` is `f64::INFINITY`
/// when `v` is unreachable within the bound; `dist[src]` is `0.0`.
///
/// One DFS prices the whole row: every simple path from `src` appears as a
/// stack prefix exactly once, so each destination sees the same path set —
/// and therefore bit-identical minima — as a per-destination
/// [`min_inv_lu_enumerated`] call, at a fraction of the work. This is the
/// row primitive [`crate::CostEngine`] parallelizes over sources.
pub fn min_inv_lu_enumerated_from(g: &Graph, src: NodeId, max_hop: Option<usize>) -> Vec<f64> {
    let n = g.node_count();
    let bound = max_hop.unwrap_or(usize::MAX);
    let mut dist = vec![f64::INFINITY; n];
    dist[src.index()] = 0.0;
    if bound == 0 || n == 0 {
        return dist;
    }
    let mut visited = vec![false; n];
    let mut cost_stack: Vec<f64> = vec![0.0];
    // Iterative DFS over all simple paths: frame = (node, next neighbor idx).
    let mut frames: Vec<(NodeId, usize)> = vec![(src, 0)];
    visited[src.index()] = true;
    while let Some(&mut (v, ref mut idx)) = frames.last_mut() {
        let neighbors = g.neighbors(v);
        if *idx >= neighbors.len() {
            frames.pop();
            visited[v.index()] = false;
            cost_stack.pop();
            continue;
        }
        let (w, e) = neighbors[*idx];
        *idx += 1;
        if visited[w.index()] {
            continue;
        }
        let new_cost = cost_stack.last().unwrap() + inv_lu_edge(g, e);
        if new_cost < dist[w.index()] {
            dist[w.index()] = new_cost;
        }
        if frames.len() >= bound {
            // w sits at the hop budget; nothing beyond it can qualify.
            continue;
        }
        visited[w.index()] = true;
        cost_stack.push(new_cost);
        frames.push((w, 0));
    }
    dist
}

/// Minimum `Σ 1/Lu_e` from `src` to *every* node within `max_hop` hops via
/// hop-bounded Bellman–Ford. Entry `dist[v]` is `f64::INFINITY` when `v` is
/// unreachable within the bound.
///
/// With strictly positive edge costs a minimum-cost walk is simple, so this
/// equals the enumerated optimum at a fraction of the cost.
pub fn min_inv_lu_dp_from(g: &Graph, src: NodeId, max_hop: Option<usize>) -> Vec<f64> {
    let n = g.node_count();
    // Unbounded: n-1 hops suffice for any simple path.
    let bound = max_hop.unwrap_or(n.saturating_sub(1)).min(n.saturating_sub(1));
    let mut dist = vec![f64::INFINITY; n];
    dist[src.index()] = 0.0;
    let mut next = dist.clone();
    for _ in 0..bound {
        let mut changed = false;
        next.copy_from_slice(&dist);
        for (i, e) in g.edges().iter().enumerate() {
            let c = inv_lu_edge(g, EdgeId(i as u32));
            let (a, b) = (e.a.index(), e.b.index());
            if dist[a] + c < next[b] {
                next[b] = dist[a] + c;
                changed = true;
            }
            if dist[b] + c < next[a] {
                next[a] = dist[b] + c;
                changed = true;
            }
        }
        std::mem::swap(&mut dist, &mut next);
        if !changed {
            break;
        }
    }
    // The source's own distance stays 0 but a path to itself is not
    // meaningful for offloading; callers filter src == dst beforehand.
    dist
}

/// Minimum `Σ 1/Lu_e` between one pair of nodes via the DP engine.
pub fn min_inv_lu_dp(g: &Graph, src: NodeId, dst: NodeId, max_hop: Option<usize>) -> Option<f64> {
    if src == dst {
        return None;
    }
    let d = min_inv_lu_dp_from(g, src, max_hop)[dst.index()];
    d.is_finite().then_some(d)
}

/// Like [`min_inv_lu_dp`] but also reconstructs the optimal route.
///
/// Runs the hop-layered DP with parent pointers; the returned path has at
/// most `max_hop` edges and its [`Path::inv_lu`] equals the returned cost.
pub fn min_inv_lu_dp_path(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    max_hop: Option<usize>,
) -> Option<(f64, Path)> {
    if src == dst {
        return None;
    }
    let n = g.node_count();
    let bound = max_hop.unwrap_or(n.saturating_sub(1)).min(n.saturating_sub(1));
    // Exact layered DP: layers[h][v] = min cost reaching v in <= h hops.
    // Layers stop growing once a sweep changes nothing (diameter reached),
    // so memory is O(diameter · |V|) even when the bound is "unbounded".
    let mut layers: Vec<Vec<f64>> = Vec::with_capacity(8);
    let mut first = vec![f64::INFINITY; n];
    first[src.index()] = 0.0;
    layers.push(first);
    for _ in 1..=bound {
        let prev = layers.last().unwrap();
        let mut next = prev.clone();
        let mut changed = false;
        for (i, e) in g.edges().iter().enumerate() {
            let c = inv_lu_edge(g, EdgeId(i as u32));
            let (a, b) = (e.a.index(), e.b.index());
            if prev[a] + c < next[b] {
                next[b] = prev[a] + c;
                changed = true;
            }
            if prev[b] + c < next[a] {
                next[a] = prev[b] + c;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        layers.push(next);
    }
    let final_layer = layers.len() - 1;
    let best = layers[final_layer][dst.index()];
    if !best.is_finite() {
        return None;
    }
    // Backtrack exactly: at layer h and node v, find a predecessor u with
    // layers[h-1][u] + c(u,v) == layers[h][v]; if layers[h-1][v] already
    // equals layers[h][v] the optimal path is shorter — stay on v.
    let mut nodes = vec![dst];
    let mut edges = Vec::new();
    let mut cur = dst;
    let mut h = final_layer;
    while cur != src {
        debug_assert!(h > 0, "ran out of layers during reconstruction");
        let target = layers[h][cur.index()];
        if layers[h - 1][cur.index()] <= target {
            h -= 1; // same cost with fewer hops: shorten
            continue;
        }
        let mut stepped = false;
        for &(u, e) in g.neighbors(cur) {
            let c = inv_lu_edge(g, e);
            if (layers[h - 1][u.index()] + c - target).abs() <= 1e-12 * target.abs().max(1.0) {
                edges.push(e);
                nodes.push(u);
                cur = u;
                h -= 1;
                stepped = true;
                break;
            }
        }
        debug_assert!(stepped, "no predecessor found; DP tables inconsistent");
        if !stepped {
            return None;
        }
    }
    nodes.reverse();
    edges.reverse();
    Some((best, Path { nodes, edges }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Link;
    use crate::topologies::{example7, ring};

    fn uniform(g: &mut Graph, cap: f64, util: f64) {
        g.retarget_utilization(|_, _| util);
        for i in 0..g.edge_count() {
            g.link_mut(EdgeId(i as u32)).capacity_mbps = cap;
        }
    }

    #[test]
    fn ring_has_two_paths() {
        let g = ring(6, Link::default());
        let paths = enumerate_simple_paths(&g, NodeId(0), NodeId(3), None);
        assert_eq!(paths.len(), 2);
        let hops: Vec<_> = paths.iter().map(Path::hops).collect();
        assert!(hops.contains(&3));
        // both directions around the ring
        assert_eq!(hops.iter().sum::<usize>(), 6);
    }

    #[test]
    fn max_hop_prunes() {
        let g = ring(6, Link::default());
        // both ways around the 6-ring reach node 3 in exactly 3 hops
        assert_eq!(count_simple_paths(&g, NodeId(0), NodeId(3), Some(3)), 2);
        assert_eq!(count_simple_paths(&g, NodeId(0), NodeId(3), Some(2)), 0);
        // node 2: short way (2 hops) and long way (4 hops)
        assert_eq!(count_simple_paths(&g, NodeId(0), NodeId(2), Some(3)), 1);
        assert_eq!(count_simple_paths(&g, NodeId(0), NodeId(2), Some(4)), 2);
    }

    #[test]
    fn example7_has_expected_paths_s1_to_s2() {
        let g = example7(Link::default());
        // S1 = n0, S2 = n1. Paths: e1-e2, e1-e3-e4, e1-e7-e6-e5-e4 (S1,S3,S6,S5,S4,S2)
        let paths = enumerate_simple_paths(&g, NodeId(0), NodeId(1), None);
        assert_eq!(paths.len(), 3);
        let mut hops: Vec<_> = paths.iter().map(Path::hops).collect();
        hops.sort_unstable();
        assert_eq!(hops, vec![2, 3, 5]);
    }

    #[test]
    fn enumerated_and_dp_minima_agree() {
        let mut g = example7(Link::default());
        // heterogeneous utilizations so costs differ per edge
        let utils = [0.9, 0.1, 0.8, 0.7, 0.3, 0.6, 0.2];
        g.retarget_utilization(|e, _| utils[e.index()]);
        for max_hop in [Some(2), Some(3), Some(5), None] {
            for dst in [NodeId(1), NodeId(5)] {
                let enumerated = min_inv_lu_enumerated(&g, NodeId(0), dst, max_hop).map(|(c, _)| c);
                let dp = min_inv_lu_dp(&g, NodeId(0), dst, max_hop);
                match (enumerated, dp) {
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < 1e-12, "mismatch {a} vs {b} at {max_hop:?}")
                    }
                    (None, None) => {}
                    other => panic!("reachability mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn dp_respects_hop_bound() {
        let g = ring(8, Link::default());
        // opposite side of an 8-ring is 4 hops away
        assert!(min_inv_lu_dp(&g, NodeId(0), NodeId(4), Some(3)).is_none());
        assert!(min_inv_lu_dp(&g, NodeId(0), NodeId(4), Some(4)).is_some());
    }

    #[test]
    fn response_time_scales_with_data() {
        let mut g = example7(Link::default());
        uniform(&mut g, 1000.0, 0.5); // Lu = 500 Mbps per edge
        let (cost, path) = min_inv_lu_enumerated(&g, NodeId(0), NodeId(1), None).unwrap();
        assert_eq!(path.hops(), 2);
        assert!((cost - 2.0 / 500.0).abs() < 1e-12);
        assert!((path.response_time(&g, 100.0) - 100.0 * 2.0 / 500.0).abs() < 1e-12);
    }

    #[test]
    fn min_prefers_fast_detour_over_slow_direct() {
        // triangle 0-1 direct (slow), 0-2-1 detour (fast)
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), Link::new(100.0, 1.0)); // Lu=100
        g.add_edge(NodeId(0), NodeId(2), Link::new(10_000.0, 1.0)); // Lu=10000
        g.add_edge(NodeId(2), NodeId(1), Link::new(10_000.0, 1.0));
        let (cost, path) = min_inv_lu_enumerated(&g, NodeId(0), NodeId(1), None).unwrap();
        assert_eq!(path.hops(), 2, "detour should win");
        assert!((cost - 2.0 / 10_000.0).abs() < 1e-15);
        // with max_hop 1 only the slow direct link qualifies
        let (c1, p1) = min_inv_lu_enumerated(&g, NodeId(0), NodeId(1), Some(1)).unwrap();
        assert_eq!(p1.hops(), 1);
        assert!((c1 - 1.0 / 100.0).abs() < 1e-15);
    }

    #[test]
    fn zero_utilization_is_infinitely_slow_but_traversable() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), Link::new(1000.0, 0.0));
        let (cost, _) = min_inv_lu_enumerated(&g, NodeId(0), NodeId(1), None).unwrap();
        assert!(cost.is_infinite());
        // DP reports unreachable-in-finite-time as None
        assert!(min_inv_lu_dp(&g, NodeId(0), NodeId(1), None).is_none());
    }

    #[test]
    fn src_equals_dst_yields_nothing() {
        let g = ring(4, Link::default());
        assert_eq!(count_simple_paths(&g, NodeId(0), NodeId(0), None), 0);
        assert!(min_inv_lu_dp(&g, NodeId(0), NodeId(0), None).is_none());
    }

    #[test]
    fn fat_tree_4k_path_counts_grow_with_hops() {
        let ft = crate::fattree::FatTree::with_default_links(4);
        let edges = ft.tier_nodes(crate::fattree::Tier::Edge);
        let (a, b) = (edges[0], *edges.last().unwrap());
        let mut prev = 0;
        for h in [2, 4, 6, 8] {
            let c = count_simple_paths(&ft.graph, a, b, Some(h));
            assert!(c >= prev, "path count must be monotone in max_hop");
            prev = c;
        }
        assert!(prev > 0);
    }
}

#[cfg(test)]
mod dp_path_tests {
    use super::*;
    use crate::graph::{Graph, Link};
    use crate::topologies::example7;

    #[test]
    fn dp_path_matches_enumerated_route_cost() {
        let mut g = example7(Link::default());
        let utils = [0.9, 0.1, 0.8, 0.7, 0.3, 0.6, 0.2];
        g.retarget_utilization(|e, _| utils[e.index()]);
        for max_hop in [Some(2), Some(3), Some(5), None] {
            for dst in [NodeId(1), NodeId(5)] {
                let e = min_inv_lu_enumerated(&g, NodeId(0), dst, max_hop);
                let p = min_inv_lu_dp_path(&g, NodeId(0), dst, max_hop);
                match (e, p) {
                    (Some((ce, _)), Some((cp, path))) => {
                        assert!((ce - cp).abs() < 1e-12, "{ce} vs {cp}");
                        assert!((path.inv_lu(&g) - cp).abs() < 1e-12, "path cost must match");
                        if let Some(h) = max_hop {
                            assert!(path.hops() <= h);
                        }
                    }
                    (None, None) => {}
                    other => panic!("mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn dp_path_respects_tight_bound() {
        // fast detour has 2 hops; with bound 1 only the slow direct edge works
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), Link::new(100.0, 1.0));
        g.add_edge(NodeId(0), NodeId(2), Link::new(10_000.0, 1.0));
        g.add_edge(NodeId(2), NodeId(1), Link::new(10_000.0, 1.0));
        let (_, p1) = min_inv_lu_dp_path(&g, NodeId(0), NodeId(1), Some(1)).unwrap();
        assert_eq!(p1.hops(), 1);
        let (_, p2) = min_inv_lu_dp_path(&g, NodeId(0), NodeId(1), Some(4)).unwrap();
        assert_eq!(p2.hops(), 2);
    }

    #[test]
    fn dp_path_unreachable_is_none() {
        let mut g = Graph::with_nodes(4);
        g.add_default_edge(NodeId(0), NodeId(1));
        assert!(min_inv_lu_dp_path(&g, NodeId(0), NodeId(3), None).is_none());
    }
}
