//! Auxiliary topology generators: line, ring, star, random-regular, and the
//! paper's 7-node illustrative example (Fig. 4).
//!
//! The fat-trees used in the evaluation live in [`crate::fattree`]; these
//! generators exist for unit testing, examples, and for exercising DUST on
//! non-data-center graphs (the architecture is "versatile and can be deployed
//! across various network topologies", §III).

use crate::graph::{Graph, Link, NodeId};
use crate::rng::SplitMix64;

/// A path graph `0 - 1 - ... - (n-1)`.
pub fn line(n: usize, link: Link) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(NodeId(i as u32 - 1), NodeId(i as u32), link);
    }
    g
}

/// A cycle on `n ≥ 3` nodes.
///
/// # Panics
/// Panics if `n < 3`.
pub fn ring(n: usize, link: Link) -> Graph {
    assert!(n >= 3, "ring needs at least 3 nodes, got {n}");
    let mut g = line(n, link);
    g.add_edge(NodeId(n as u32 - 1), NodeId(0), link);
    g
}

/// A star: node 0 is the hub, nodes `1..n` are leaves.
///
/// # Panics
/// Panics if `n < 2`.
pub fn star(n: usize, link: Link) -> Graph {
    assert!(n >= 2, "star needs at least 2 nodes, got {n}");
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(NodeId(0), NodeId(i as u32), link);
    }
    g
}

/// A random `d`-regular simple graph on `n` nodes via the pairing model with
/// rejection, deterministic in `seed`.
///
/// # Panics
/// Panics if `n * d` is odd or `d >= n`.
pub fn random_regular(n: usize, d: usize, seed: u64, link: Link) -> Graph {
    assert!((n * d).is_multiple_of(2), "n*d must be even (n={n}, d={d})");
    assert!(d < n, "degree {d} must be below node count {n}");
    let mut rng = SplitMix64::new(seed);
    'retry: loop {
        // Pairing model: d stubs per node, shuffle, pair consecutive stubs.
        let mut stubs: Vec<u32> = (0..n as u32).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        rng.shuffle(&mut stubs);
        let mut seen = std::collections::HashSet::new();
        let mut pairs = Vec::with_capacity(n * d / 2);
        for chunk in stubs.chunks(2) {
            let (a, b) = (chunk[0], chunk[1]);
            if a == b {
                continue 'retry; // self-loop: resample
            }
            let key = (a.min(b), a.max(b));
            if !seen.insert(key) {
                continue 'retry; // parallel edge: resample
            }
            pairs.push((a, b));
        }
        let mut g = Graph::with_nodes(n);
        for (a, b) in pairs {
            g.add_edge(NodeId(a), NodeId(b), link);
        }
        return g;
    }
}

/// A two-tier leaf–spine (Clos) fabric: every leaf connects to every
/// spine, and `servers_per_leaf` servers hang off each leaf. Node order:
/// spines, then leaves, then servers (grouped by leaf).
///
/// This is the generalized form of the paper's testbed topology (Fig. 5).
///
/// # Panics
/// Panics when `spines` or `leaves` is zero.
pub fn leaf_spine(spines: usize, leaves: usize, servers_per_leaf: usize, link: Link) -> Graph {
    assert!(spines > 0 && leaves > 0, "need at least one spine and one leaf");
    let mut g = Graph::with_nodes(spines + leaves + leaves * servers_per_leaf);
    for s in 0..spines {
        for l in 0..leaves {
            g.add_edge(NodeId(s as u32), NodeId((spines + l) as u32), link);
        }
    }
    for l in 0..leaves {
        for v in 0..servers_per_leaf {
            let server = spines + leaves + l * servers_per_leaf + v;
            g.add_edge(NodeId((spines + l) as u32), NodeId(server as u32), link);
        }
    }
    g
}

/// A 2-D torus of `w × h` nodes (each node links to its four neighbors
/// with wraparound) — a common HPC interconnect, exercising DUST outside
/// data-center fabrics (§I's HPC motivation).
///
/// # Panics
/// Panics unless both dimensions are at least 3 (smaller wraps create
/// parallel edges).
pub fn torus2d(w: usize, h: usize, link: Link) -> Graph {
    assert!(w >= 3 && h >= 3, "torus needs both dimensions >= 3, got {w}x{h}");
    let mut g = Graph::with_nodes(w * h);
    let id = |x: usize, y: usize| NodeId((y * w + x) as u32);
    for y in 0..h {
        for x in 0..w {
            g.add_edge(id(x, y), id((x + 1) % w, y), link);
            g.add_edge(id(x, y), id(x, (y + 1) % h), link);
        }
    }
    g
}

/// The illustrative 7-node / 7-edge topology of the paper's Fig. 4.
///
/// Nodes are `S1..S7` mapped to `NodeId(0)..NodeId(6)`. The edge ids match
/// the paper's `e1..e7` as `EdgeId(0)..EdgeId(6)`:
///
/// ```text
///   e1: S1-S3   e2: S3-S2   e3: S3-S4   e4: S4-S2
///   e5: S4-S5   e6: S5-S6   e7: S3-S6
/// ```
///
/// With this wiring the paper's example routes from the Busy node S1 to the
/// candidates exist: `r1 = {e1,e2}` (S1→S3→S2), `r2 = {e1,e3,e4}`
/// (S1→S3→S4→S2), and `r4 = {e1,e7}` (S1→S3→S6).
pub fn example7(link: Link) -> Graph {
    let mut g = Graph::with_nodes(7);
    let s = |i: u32| NodeId(i - 1); // paper's 1-based S-names
    g.add_edge(s(1), s(3), link); // e1
    g.add_edge(s(3), s(2), link); // e2
    g.add_edge(s(3), s(4), link); // e3
    g.add_edge(s(4), s(2), link); // e4
    g.add_edge(s(4), s(5), link); // e5
    g.add_edge(s(5), s(6), link); // e6
    g.add_edge(s(3), s(6), link); // e7
    g
}

/// Node ids of Fig. 4's Busy node (S1) and Offload-candidates (S2, S6).
pub fn example7_roles() -> (NodeId, [NodeId; 2]) {
    (NodeId(0), [NodeId(1), NodeId(5)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeId;

    #[test]
    fn line_counts() {
        let g = line(5, Link::default());
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert!(g.is_connected());
    }

    #[test]
    fn ring_counts() {
        let g = ring(6, Link::default());
        assert_eq!(g.edge_count(), 6);
        for n in g.nodes() {
            assert_eq!(g.degree(n), 2);
        }
    }

    #[test]
    fn star_hub_degree() {
        let g = star(9, Link::default());
        assert_eq!(g.degree(NodeId(0)), 8);
        assert_eq!(g.edge_count(), 8);
    }

    #[test]
    fn random_regular_is_regular_and_deterministic() {
        let g1 = random_regular(16, 3, 42, Link::default());
        let g2 = random_regular(16, 3, 42, Link::default());
        assert_eq!(g1.edge_count(), 16 * 3 / 2);
        for n in g1.nodes() {
            assert_eq!(g1.degree(n), 3);
        }
        // determinism: identical edge lists
        let e1: Vec<_> = g1.edges().iter().map(|e| (e.a, e.b)).collect();
        let e2: Vec<_> = g2.edges().iter().map(|e| (e.a, e.b)).collect();
        assert_eq!(e1, e2);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn random_regular_odd_rejected() {
        random_regular(5, 3, 0, Link::default());
    }

    #[test]
    fn leaf_spine_structure() {
        let g = leaf_spine(2, 4, 3, Link::default());
        assert_eq!(g.node_count(), 2 + 4 + 12);
        assert_eq!(g.edge_count(), 2 * 4 + 12);
        assert!(g.is_connected());
        // spines touch every leaf
        assert_eq!(g.degree(NodeId(0)), 4);
        // leaves: 2 spines + 3 servers
        assert_eq!(g.degree(NodeId(2)), 5);
        // servers are leaves of the tree
        assert_eq!(g.degree(NodeId(6)), 1);
        // any two servers are at most 4 hops apart (server-leaf-spine-leaf-server)
        let d = g.hop_distances(NodeId(6));
        assert!(d.iter().all(|&x| x <= 4));
    }

    #[test]
    fn torus_structure() {
        let g = torus2d(4, 5, Link::default());
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 40); // 2 edges per node
        assert!(g.is_connected());
        for n in g.nodes() {
            assert_eq!(g.degree(n), 4);
        }
        // wraparound: corner reaches the opposite corner in w/2 + h/2 hops
        let d = g.hop_distances(NodeId(0));
        assert_eq!(d[NodeId(2 + 2 * 4).index()], 4); // (2,2): 2 + 2
    }

    #[test]
    #[should_panic(expected = "torus needs")]
    fn tiny_torus_rejected() {
        torus2d(2, 3, Link::default());
    }

    #[test]
    #[should_panic(expected = "at least one spine")]
    fn empty_leaf_spine_rejected() {
        leaf_spine(0, 2, 1, Link::default());
    }

    #[test]
    fn example7_matches_figure() {
        let g = example7(Link::default());
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 7);
        // e1 joins S1 and S3
        let e1 = g.edge(EdgeId(0));
        assert_eq!((e1.a, e1.b), (NodeId(0), NodeId(2)));
        // busy node S1 has exactly one neighbor (S3)
        let (busy, cands) = example7_roles();
        assert_eq!(g.one_hop_neighbors(busy), vec![NodeId(2)]);
        assert_eq!(cands, [NodeId(1), NodeId(5)]);
    }

    #[test]
    fn example7_route_r1_exists() {
        // S1→S3→S2 must be a 2-hop walk in the graph.
        let g = example7(Link::default());
        let d = g.hop_distances(NodeId(0));
        assert_eq!(d[NodeId(1).index()], 2); // S2 two hops from S1
        assert_eq!(d[NodeId(5).index()], 2); // S6 two hops from S1
    }
}
