//! k-ary fat-tree topology generator (Al-Fares et al., SIGCOMM '08).
//!
//! The DUST paper evaluates on switch-only three-level fat-trees and counts
//! only the switches (§V-B): a `k`-port fat-tree has `(k/2)^2` core switches,
//! `k` pods each containing `k/2` aggregation and `k/2` edge switches, for
//! `5k^2/4` switches total and `k^3/2` switch-to-switch links. That yields
//! exactly the paper's sizes: 4-k → 20 nodes / 32 edges, 8-k → 80 / 256,
//! 16-k → 320 / 2048, 64-k → 5120 / 131072.

use crate::graph::{Graph, Link, NodeId};

/// The layer a fat-tree switch sits in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Core layer, `(k/2)^2` switches.
    Core,
    /// Aggregation layer, `k/2` per pod.
    Aggregation,
    /// Edge (top-of-rack) layer, `k/2` per pod.
    Edge,
}

/// A generated fat-tree: the graph plus structural metadata.
#[derive(Debug, Clone)]
pub struct FatTree {
    /// Switch-to-switch topology.
    pub graph: Graph,
    /// Port count `k` (must be even).
    pub k: usize,
    /// Tier of each node, indexable by `NodeId::index`.
    pub tiers: Vec<Tier>,
    /// Pod of each node (`None` for core switches).
    pub pods: Vec<Option<usize>>,
}

impl FatTree {
    /// Build a `k`-port three-level fat-tree with the given link template.
    ///
    /// Node ids are assigned core-first, then pod by pod (aggregation before
    /// edge within each pod).
    ///
    /// # Panics
    /// Panics if `k` is not an even number ≥ 2.
    pub fn new(k: usize, link: Link) -> Self {
        assert!(k >= 2 && k.is_multiple_of(2), "fat-tree requires even k >= 2, got {k}");
        let half = k / 2;
        let n_core = half * half;
        let n_per_pod = k; // k/2 agg + k/2 edge
        let n_total = n_core + k * n_per_pod;

        let mut graph = Graph::with_nodes(n_total);
        let mut tiers = vec![Tier::Core; n_total];
        let mut pods = vec![None; n_total];

        // Core switch (i, j) for i, j in 0..k/2 is node i*half + j.
        let core = |i: usize, j: usize| NodeId((i * half + j) as u32);

        for pod in 0..k {
            let pod_base = n_core + pod * n_per_pod;
            // aggregation switches: pod_base .. pod_base + half
            // edge switches:        pod_base + half .. pod_base + k
            for a in 0..half {
                let agg = NodeId((pod_base + a) as u32);
                tiers[agg.index()] = Tier::Aggregation;
                pods[agg.index()] = Some(pod);
                // Aggregation switch `a` connects to core row `a`:
                // cores (a, 0..half).
                for j in 0..half {
                    graph.add_edge(agg, core(a, j), link);
                }
            }
            for e in 0..half {
                let edge = NodeId((pod_base + half + e) as u32);
                tiers[edge.index()] = Tier::Edge;
                pods[edge.index()] = Some(pod);
                // Every edge switch connects to every aggregation switch in
                // its pod.
                for a in 0..half {
                    let agg = NodeId((pod_base + a) as u32);
                    graph.add_edge(edge, agg, link);
                }
            }
        }

        debug_assert_eq!(graph.node_count(), 5 * k * k / 4);
        debug_assert_eq!(graph.edge_count(), k * k * k / 2);
        FatTree { graph, k, tiers, pods }
    }

    /// Build with the default 10 Gbps / 50 % link.
    pub fn with_default_links(k: usize) -> Self {
        Self::new(k, Link::default())
    }

    /// All node ids in a given tier.
    pub fn tier_nodes(&self, tier: Tier) -> Vec<NodeId> {
        self.tiers
            .iter()
            .enumerate()
            .filter(|&(_, t)| *t == tier)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// All node ids belonging to pod `p`.
    pub fn pod_nodes(&self, p: usize) -> Vec<NodeId> {
        self.pods
            .iter()
            .enumerate()
            .filter(|&(_, q)| *q == Some(p))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Number of switches (`5k²/4`).
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of switch-to-switch links (`k³/2`).
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }
}

/// The paper's four evaluation sizes (§V-B).
///
/// Returns `(k, nodes, edges)` tuples for 4-k, 8-k, 16-k, 64-k.
pub fn paper_sizes() -> [(usize, usize, usize); 4] {
    [(4, 20, 32), (8, 80, 256), (16, 320, 2048), (64, 5120, 131_072)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_node_and_edge_counts() {
        for (k, nodes, edges) in paper_sizes() {
            let ft = FatTree::with_default_links(k);
            assert_eq!(ft.node_count(), nodes, "k={k} node count");
            assert_eq!(ft.edge_count(), edges, "k={k} edge count");
        }
    }

    #[test]
    fn fat_tree_is_connected() {
        for k in [2, 4, 8] {
            let ft = FatTree::with_default_links(k);
            assert!(ft.graph.is_connected(), "k={k} must be connected");
        }
    }

    #[test]
    fn tier_populations() {
        let k = 8;
        let ft = FatTree::with_default_links(k);
        assert_eq!(ft.tier_nodes(Tier::Core).len(), k * k / 4);
        assert_eq!(ft.tier_nodes(Tier::Aggregation).len(), k * k / 2);
        assert_eq!(ft.tier_nodes(Tier::Edge).len(), k * k / 2);
    }

    #[test]
    fn degrees_match_roles() {
        let k = 4;
        let ft = FatTree::with_default_links(k);
        for n in ft.graph.nodes() {
            let deg = ft.graph.degree(n);
            match ft.tiers[n.index()] {
                // every core switch connects to one agg switch per pod
                Tier::Core => assert_eq!(deg, k, "core degree"),
                // k/2 up to core + k/2 down to edge
                Tier::Aggregation => assert_eq!(deg, k, "agg degree"),
                // k/2 up to agg (host links not modeled)
                Tier::Edge => assert_eq!(deg, k / 2, "edge degree"),
            }
        }
    }

    #[test]
    fn pods_have_k_switches() {
        let k = 4;
        let ft = FatTree::with_default_links(k);
        for p in 0..k {
            assert_eq!(ft.pod_nodes(p).len(), k, "pod {p}");
        }
    }

    #[test]
    fn core_nodes_have_no_pod() {
        let ft = FatTree::with_default_links(4);
        for n in ft.tier_nodes(Tier::Core) {
            assert_eq!(ft.pods[n.index()], None);
        }
    }

    #[test]
    fn edge_to_edge_same_pod_distance_is_two() {
        let ft = FatTree::with_default_links(4);
        let edges = ft.tier_nodes(Tier::Edge);
        // two edge switches in pod 0
        let in_pod0: Vec<_> =
            edges.iter().copied().filter(|n| ft.pods[n.index()] == Some(0)).collect();
        let d = ft.graph.hop_distances(in_pod0[0]);
        assert_eq!(d[in_pod0[1].index()], 2);
    }

    #[test]
    fn edge_to_edge_cross_pod_distance_is_four() {
        let ft = FatTree::with_default_links(4);
        let edges = ft.tier_nodes(Tier::Edge);
        let pod0 = edges.iter().copied().find(|n| ft.pods[n.index()] == Some(0)).unwrap();
        let pod1 = edges.iter().copied().find(|n| ft.pods[n.index()] == Some(1)).unwrap();
        let d = ft.graph.hop_distances(pod0);
        assert_eq!(d[pod1.index()], 4);
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn odd_k_rejected() {
        FatTree::with_default_links(3);
    }
}
