//! Network-topology substrate for the DUST reproduction.
//!
//! Provides the undirected graph model the paper's placement problem lives
//! on (§IV-B), the fat-tree generator used throughout the evaluation
//! (§V-B), bounded simple-path enumeration and its fast dynamic-programming
//! equivalent (Eq. 1–2), and the `T_rmin` cost-matrix builder consumed by
//! the `dust-core` placement engine.
//!
//! # Example
//!
//! ```
//! use dust_topology::{FatTree, CostMatrix, PathEngine, Tier};
//!
//! let ft = FatTree::with_default_links(4); // 20 switches, 32 links
//! assert_eq!(ft.node_count(), 20);
//! let edges = ft.tier_nodes(Tier::Edge);
//! let m = CostMatrix::build(
//!     &ft.graph,
//!     &edges[..1],
//!     &edges[1..3],
//!     &[100.0],
//!     Some(6),
//!     PathEngine::HopBoundedDp,
//! );
//! assert!(m.any_reachable());
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod dot;
pub mod fattree;
pub mod graph;
pub mod ksp;
pub mod paths;
pub mod rng;
pub mod topologies;

pub use cost::{CostEngine, CostMatrix, PathEngine, RefreshStats};
pub use dot::{placement_to_dot, to_dot, NodeStyle};
pub use fattree::{paper_sizes, FatTree, Tier};
pub use graph::{Edge, EdgeId, Graph, Link, NodeId};
pub use ksp::k_shortest_paths;
pub use paths::{
    count_simple_paths, enumerate_simple_paths, for_each_simple_path, min_inv_lu_dp,
    min_inv_lu_dp_from, min_inv_lu_dp_path, min_inv_lu_enumerated, min_inv_lu_enumerated_from,
    Path,
};
pub use rng::SplitMix64;
