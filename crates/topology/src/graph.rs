//! Undirected network graph with per-link bandwidth and utilization.
//!
//! This is the substrate the DUST paper's placement problem is defined on
//! (§IV-B): an undirected graph `G = (V, E)` where every edge carries a
//! physical bandwidth and a dynamic utilization rate whose product is the
//! paper's `Lu_{i,j}` (utilized bandwidth, Mbps) used in the response-time
//! cost `Tr = D / Lu` (Eq. 1).

use std::fmt;

/// Index of a node in a [`Graph`]. Stable for the lifetime of the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Index of an undirected edge in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The edge index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Physical link state: capacity and dynamic utilization.
///
/// The paper defines `Lu_{i,j}` (Mbps) as "the physical link bandwidth
/// [multiplied by] the dynamic utilization rate resulting from the data in
/// transit" (§IV-B). [`Link::lu`] follows that definition verbatim so that
/// the reproduced cost model matches Eq. 1 exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Physical line rate of the link, in Mbps.
    pub capacity_mbps: f64,
    /// Dynamic utilization rate in `[0, 1]` from data-plane traffic in transit.
    pub utilization: f64,
}

impl Link {
    /// A link with the given capacity and utilization.
    ///
    /// # Panics
    /// Panics if `capacity_mbps` is not finite and positive, or `utilization`
    /// is outside `[0, 1]`.
    pub fn new(capacity_mbps: f64, utilization: f64) -> Self {
        assert!(
            capacity_mbps.is_finite() && capacity_mbps > 0.0,
            "link capacity must be finite and positive, got {capacity_mbps}"
        );
        assert!(
            (0.0..=1.0).contains(&utilization),
            "link utilization must be in [0,1], got {utilization}"
        );
        Link { capacity_mbps, utilization }
    }

    /// Utilized bandwidth `Lu` in Mbps (paper §IV-B): capacity × utilization.
    #[inline]
    pub fn lu(&self) -> f64 {
        self.capacity_mbps * self.utilization
    }

    /// Headroom left on the link in Mbps.
    #[inline]
    pub fn available_mbps(&self) -> f64 {
        self.capacity_mbps * (1.0 - self.utilization)
    }
}

impl Default for Link {
    /// A 10 Gbps link at 50 % utilization — the generator default.
    fn default() -> Self {
        Link { capacity_mbps: 10_000.0, utilization: 0.5 }
    }
}

/// An undirected edge between two nodes carrying a [`Link`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Link state on this edge.
    pub link: Link,
}

impl Edge {
    /// Given one endpoint of this edge, return the other.
    ///
    /// # Panics
    /// Panics if `n` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else {
            debug_assert_eq!(n, self.b, "node {n} is not an endpoint of this edge");
            self.a
        }
    }
}

/// An undirected multigraph with adjacency lists.
///
/// Nodes are dense indices `0..node_count()`. Parallel edges and self-loop
/// rejection are handled at insertion time ([`Graph::add_edge`] forbids
/// self-loops, allows parallel edges since fat-tree pods never produce them
/// but ad-hoc topologies may).
#[derive(Debug, Clone)]
pub struct Graph {
    edges: Vec<Edge>,
    /// `adj[v]` lists `(neighbor, edge)` pairs for node `v`.
    adj: Vec<Vec<(NodeId, EdgeId)>>,
    /// Globally-unique state stamp; see [`Graph::epoch`].
    epoch: u64,
    /// True when the dirty journal lost precision (structural mutation,
    /// bulk retarget, or journal overflow): everything must be treated as
    /// touched.
    dirty_all: bool,
    /// Links touched via [`Graph::link_mut`] since the last
    /// [`Graph::take_dirty`] (unsorted, may hold duplicates; meaningless
    /// while `dirty_all` is set).
    dirty: Vec<EdgeId>,
}

/// Process-global source of graph state stamps. Every stamp is handed out
/// exactly once, so two graphs share an epoch only when one is an
/// unmutated clone of the other — which is exactly when cached path costs
/// keyed by epoch remain valid across both.
fn next_epoch() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph {
            edges: Vec::new(),
            adj: Vec::new(),
            epoch: next_epoch(),
            dirty_all: true,
            dirty: Vec::new(),
        }
    }

    /// An empty graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            epoch: next_epoch(),
            dirty_all: true,
            dirty: Vec::new(),
        }
    }

    /// The link-state epoch: a process-globally-unique stamp reassigned on
    /// every mutation (adding nodes or edges, touching a link, retargeting
    /// utilizations). Clones share their original's stamp until either
    /// side mutates, so `a.epoch() == b.epoch()` implies `a` and `b` are
    /// bit-identical — the invariant [`crate::CostEngine`] keys its path
    /// cost cache on.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Add a new isolated node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(u32::try_from(self.adj.len()).expect("more than u32::MAX nodes"));
        self.adj.push(Vec::new());
        self.epoch = next_epoch();
        self.mark_all_dirty();
        id
    }

    /// Add `k` nodes, returning their ids in order.
    pub fn add_nodes(&mut self, k: usize) -> Vec<NodeId> {
        (0..k).map(|_| self.add_node()).collect()
    }

    /// Add an undirected edge between `a` and `b` with the given link state.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range node ids.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, link: Link) -> EdgeId {
        assert_ne!(a, b, "self-loops are not allowed");
        assert!(a.index() < self.adj.len(), "node {a} out of range");
        assert!(b.index() < self.adj.len(), "node {b} out of range");
        let id = EdgeId(u32::try_from(self.edges.len()).expect("more than u32::MAX edges"));
        self.edges.push(Edge { a, b, link });
        self.adj[a.index()].push((b, id));
        self.adj[b.index()].push((a, id));
        self.epoch = next_epoch();
        self.mark_all_dirty();
        id
    }

    /// Add an edge with the default 10 Gbps / 50 % link.
    pub fn add_default_edge(&mut self, a: NodeId, b: NodeId) -> EdgeId {
        self.add_edge(a, b, Link::default())
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len() as u32).map(NodeId)
    }

    /// All edges, indexable by [`EdgeId`].
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with the given id.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// `(neighbor, edge)` pairs adjacent to `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[v.index()]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Mutable access to the link state of an edge (dynamic utilization
    /// updates during simulation). The touched edge is journaled for
    /// [`Graph::take_dirty`], so targeted drift keeps incremental row
    /// re-pricing possible.
    pub fn link_mut(&mut self, e: EdgeId) -> &mut Link {
        self.epoch = next_epoch();
        if !self.dirty_all {
            self.dirty.push(e);
            // a journal bigger than the edge set carries no information
            // beyond "everything" — collapse it instead of growing forever
            if self.dirty.len() > self.edges.len() {
                self.mark_all_dirty();
            }
        }
        &mut self.edges[e.index()].link
    }

    /// Set every edge's utilization with a callback (used by traffic models).
    pub fn retarget_utilization(&mut self, mut f: impl FnMut(EdgeId, &Edge) -> f64) {
        for i in 0..self.edges.len() {
            let u = f(EdgeId(i as u32), &self.edges[i]);
            assert!((0.0..=1.0).contains(&u), "utilization callback returned {u}");
            self.edges[i].link.utilization = u;
        }
        self.epoch = next_epoch();
        self.mark_all_dirty();
    }

    /// Forget the journal's precision: everything counts as touched.
    fn mark_all_dirty(&mut self) {
        self.dirty_all = true;
        self.dirty.clear();
    }

    /// Drain the dirty-link journal accumulated since the last call (or
    /// since construction): `None` means *everything* is dirty (structural
    /// mutation, bulk retarget, journal overflow, or first call), `Some`
    /// lists the touched links, sorted and deduplicated — possibly empty
    /// when nothing changed. Clones carry their own copy of the journal,
    /// so draining one graph never blinds another.
    pub fn take_dirty(&mut self) -> Option<Vec<EdgeId>> {
        if self.dirty_all {
            self.dirty_all = false;
            self.dirty.clear();
            return None;
        }
        let mut taken = std::mem::take(&mut self.dirty);
        taken.sort_unstable();
        taken.dedup();
        Some(taken)
    }

    /// Hop distances from `src` to every node (BFS). Unreachable nodes get
    /// `usize::MAX`.
    pub fn hop_distances(&self, src: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.node_count()];
        let mut queue = std::collections::VecDeque::new();
        dist[src.index()] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            let d = dist[v.index()];
            for &(w, _) in self.neighbors(v) {
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = d + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// True if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.node_count() == 0 {
            return true;
        }
        let dist = self.hop_distances(NodeId(0));
        dist.iter().all(|&d| d != usize::MAX)
    }

    /// Nodes within exactly one hop of `v` (the heuristic's candidate pool,
    /// Algorithm 1 line 4: "within shortest path of max-hop = 1").
    pub fn one_hop_neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.neighbors(v).iter().map(|&(w, _)| w).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_default_edge(NodeId(0), NodeId(1));
        g.add_default_edge(NodeId(1), NodeId(2));
        g.add_default_edge(NodeId(2), NodeId(0));
        g
    }

    #[test]
    fn build_counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(NodeId(0)), 2);
    }

    #[test]
    fn edge_other_endpoint() {
        let g = triangle();
        let e = g.edge(EdgeId(0));
        assert_eq!(e.other(NodeId(0)), NodeId(1));
        assert_eq!(e.other(NodeId(1)), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut g = Graph::with_nodes(1);
        g.add_default_edge(NodeId(0), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut g = Graph::with_nodes(1);
        g.add_default_edge(NodeId(0), NodeId(5));
    }

    #[test]
    fn lu_is_capacity_times_utilization() {
        let l = Link::new(10_000.0, 0.25);
        assert_eq!(l.lu(), 2_500.0);
        assert_eq!(l.available_mbps(), 7_500.0);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn link_rejects_bad_utilization() {
        Link::new(1000.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn link_rejects_bad_capacity() {
        Link::new(0.0, 0.5);
    }

    #[test]
    fn bfs_distances() {
        // path graph 0-1-2-3
        let mut g = Graph::with_nodes(4);
        g.add_default_edge(NodeId(0), NodeId(1));
        g.add_default_edge(NodeId(1), NodeId(2));
        g.add_default_edge(NodeId(2), NodeId(3));
        let d = g.hop_distances(NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3]);
        assert!(g.is_connected());
    }

    #[test]
    fn disconnected_detected() {
        let mut g = Graph::with_nodes(3);
        g.add_default_edge(NodeId(0), NodeId(1));
        assert!(!g.is_connected());
        let d = g.hop_distances(NodeId(0));
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn one_hop_neighbors_sorted_dedup() {
        let mut g = Graph::with_nodes(4);
        g.add_default_edge(NodeId(0), NodeId(2));
        g.add_default_edge(NodeId(0), NodeId(1));
        // parallel edge
        g.add_default_edge(NodeId(0), NodeId(1));
        assert_eq!(g.one_hop_neighbors(NodeId(0)), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn retarget_utilization_applies() {
        let mut g = triangle();
        g.retarget_utilization(|_, _| 0.9);
        for e in g.edges() {
            assert_eq!(e.link.utilization, 0.9);
        }
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(Graph::new().is_connected());
    }

    #[test]
    fn dirty_journal_tracks_link_mut_precisely() {
        let mut g = triangle();
        assert_eq!(g.take_dirty(), None, "a fresh graph is all-dirty");
        assert_eq!(g.take_dirty(), Some(vec![]), "nothing touched since the drain");
        g.link_mut(EdgeId(2)).utilization = 0.7;
        g.link_mut(EdgeId(0)).utilization = 0.6;
        g.link_mut(EdgeId(2)).utilization = 0.8;
        assert_eq!(
            g.take_dirty(),
            Some(vec![EdgeId(0), EdgeId(2)]),
            "sorted, deduplicated, exactly the touched links"
        );
    }

    #[test]
    fn structural_mutations_and_retarget_go_all_dirty() {
        let mut g = triangle();
        g.take_dirty();
        g.add_node();
        assert_eq!(g.take_dirty(), None);
        g.retarget_utilization(|_, _| 0.4);
        assert_eq!(g.take_dirty(), None);
        let n = g.add_node();
        g.take_dirty();
        g.add_edge(NodeId(0), n, Link::default());
        assert_eq!(g.take_dirty(), None);
    }

    #[test]
    fn journal_overflow_collapses_to_all_dirty() {
        let mut g = triangle();
        g.take_dirty();
        for _ in 0..4 {
            // 4 touches > 3 edges: precision is gone
            g.link_mut(EdgeId(1)).utilization = 0.3;
        }
        assert_eq!(g.take_dirty(), None);
    }

    #[test]
    fn clones_keep_independent_journals() {
        let mut g = triangle();
        g.take_dirty();
        g.link_mut(EdgeId(1)).utilization = 0.9;
        let mut h = g.clone();
        assert_eq!(g.take_dirty(), Some(vec![EdgeId(1)]));
        assert_eq!(h.take_dirty(), Some(vec![EdgeId(1)]), "the clone still sees its copy");
    }
}
