//! K-shortest loopless paths (Yen's algorithm) under the `1/Lu` metric.
//!
//! The DUST-Manager programs "controllable routes" (§IV); a single best
//! path is enough for the published optimizer, but replica substitution
//! and congestion avoidance want ranked alternatives: when the primary
//! route degrades, the Manager can fail over to the next-cheapest path
//! without re-running the whole placement. This module provides Yen's
//! algorithm on top of the hop-bounded DP, with the same optional
//! `max_hop` bound the rest of the routing stack uses.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::paths::{inv_lu_edge, Path};

/// Hop-bounded min-cost path avoiding masked nodes/edges.
///
/// Same layered Bellman–Ford as `min_inv_lu_dp_path`, with masks applied.
fn masked_shortest(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    max_hop: Option<usize>,
    banned_nodes: &[bool],
    banned_edges: &std::collections::HashSet<EdgeId>,
) -> Option<(f64, Path)> {
    if src == dst || banned_nodes[src.index()] || banned_nodes[dst.index()] {
        return None;
    }
    let n = g.node_count();
    let bound = max_hop.unwrap_or(n.saturating_sub(1)).min(n.saturating_sub(1));
    let usable = |e: EdgeId, a: usize, b: usize| {
        !banned_edges.contains(&e) && !banned_nodes[a] && !banned_nodes[b]
    };
    let mut layers: Vec<Vec<f64>> = Vec::with_capacity(8);
    let mut first = vec![f64::INFINITY; n];
    first[src.index()] = 0.0;
    layers.push(first);
    for _ in 1..=bound {
        let prev = layers.last().unwrap();
        let mut next = prev.clone();
        let mut changed = false;
        for (i, e) in g.edges().iter().enumerate() {
            let id = EdgeId(i as u32);
            let (a, b) = (e.a.index(), e.b.index());
            if !usable(id, a, b) {
                continue;
            }
            let c = inv_lu_edge(g, id);
            if prev[a] + c < next[b] {
                next[b] = prev[a] + c;
                changed = true;
            }
            if prev[b] + c < next[a] {
                next[a] = prev[b] + c;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        layers.push(next);
    }
    let final_layer = layers.len() - 1;
    let best = layers[final_layer][dst.index()];
    if !best.is_finite() {
        return None;
    }
    // exact backtrack through the layers
    let mut nodes = vec![dst];
    let mut edges = Vec::new();
    let mut cur = dst;
    let mut h = final_layer;
    while cur != src {
        let target = layers[h][cur.index()];
        if h > 0 && layers[h - 1][cur.index()] <= target {
            h -= 1;
            continue;
        }
        let mut stepped = false;
        for &(u, e) in g.neighbors(cur) {
            if banned_edges.contains(&e) || banned_nodes[u.index()] {
                continue;
            }
            let c = inv_lu_edge(g, e);
            if h > 0
                && (layers[h - 1][u.index()] + c - target).abs() <= 1e-12 * target.abs().max(1.0)
            {
                edges.push(e);
                nodes.push(u);
                cur = u;
                h -= 1;
                stepped = true;
                break;
            }
        }
        if !stepped {
            return None; // inconsistent tables (masked everything)
        }
    }
    nodes.reverse();
    edges.reverse();
    Some((best, Path { nodes, edges }))
}

/// The `k` cheapest loopless paths from `src` to `dst` within `max_hop`
/// hops, ranked by `Σ 1/Lu_e` ascending. Fewer than `k` are returned when
/// the graph does not admit that many distinct simple paths in the bound.
pub fn k_shortest_paths(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    max_hop: Option<usize>,
) -> Vec<(f64, Path)> {
    if k == 0 {
        return Vec::new();
    }
    let no_nodes = vec![false; g.node_count()];
    let no_edges = std::collections::HashSet::new();
    let Some(first) = masked_shortest(g, src, dst, max_hop, &no_nodes, &no_edges) else {
        return Vec::new();
    };
    let mut accepted: Vec<(f64, Path)> = vec![first];
    // candidate pool: (cost, path); keep sorted ascending and dedup
    let mut candidates: Vec<(f64, Path)> = Vec::new();

    while accepted.len() < k {
        let (_, last) = accepted.last().unwrap().clone();
        // spur from every prefix of the last accepted path
        for spur_idx in 0..last.nodes.len() - 1 {
            let spur_node = last.nodes[spur_idx];
            let root_nodes = &last.nodes[..=spur_idx];
            let root_edges = &last.edges[..spur_idx];
            let root_cost: f64 = root_edges.iter().map(|&e| inv_lu_edge(g, e)).sum();

            // Ban edges used by any accepted/candidate path sharing this
            // root. On multigraphs the root is identified by its *edge*
            // sequence — two paths over the same nodes but different
            // parallel edges are distinct roots.
            let mut banned_edges = std::collections::HashSet::new();
            for (_, p) in accepted.iter().chain(candidates.iter()) {
                if p.edges.len() > spur_idx && p.edges[..spur_idx] == *root_edges {
                    banned_edges.insert(p.edges[spur_idx]);
                }
            }
            // ban root nodes except the spur node (looplessness)
            let mut banned_nodes = vec![false; g.node_count()];
            for &v in &root_nodes[..spur_idx] {
                banned_nodes[v.index()] = true;
            }
            let remaining_hops = max_hop.map(|h| h.saturating_sub(spur_idx));
            if remaining_hops == Some(0) {
                continue;
            }
            if let Some((spur_cost, spur_path)) =
                masked_shortest(g, spur_node, dst, remaining_hops, &banned_nodes, &banned_edges)
            {
                let mut nodes = root_nodes.to_vec();
                nodes.extend_from_slice(&spur_path.nodes[1..]);
                let mut edges = root_edges.to_vec();
                edges.extend_from_slice(&spur_path.edges);
                let total = Path { nodes, edges };
                let cost = root_cost + spur_cost;
                if let Some(h) = max_hop {
                    if total.hops() > h {
                        continue;
                    }
                }
                // dedup against accepted and candidates
                let duplicate =
                    accepted.iter().chain(candidates.iter()).any(|(_, p)| p.edges == total.edges);
                if !duplicate {
                    candidates.push((cost, total));
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.edges.cmp(&b.1.edges))
        });
        accepted.push(candidates.remove(0));
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Link;
    use crate::paths::enumerate_simple_paths;
    use crate::topologies::{example7, ring};

    /// Brute force: all simple paths, sorted by cost.
    fn brute(g: &Graph, src: NodeId, dst: NodeId, max_hop: Option<usize>) -> Vec<f64> {
        let mut costs: Vec<f64> =
            enumerate_simple_paths(g, src, dst, max_hop).iter().map(|p| p.inv_lu(g)).collect();
        costs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        costs
    }

    #[test]
    fn ring_has_exactly_two_paths() {
        let g = ring(6, Link::default());
        let ps = k_shortest_paths(&g, NodeId(0), NodeId(2), 5, None);
        assert_eq!(ps.len(), 2, "a ring offers exactly two loopless routes");
        assert!(ps[0].0 <= ps[1].0);
        assert_eq!(ps[0].1.hops(), 2);
        assert_eq!(ps[1].1.hops(), 4);
    }

    #[test]
    fn matches_brute_force_on_example7() {
        let mut g = example7(Link::default());
        let utils = [0.9, 0.1, 0.8, 0.7, 0.3, 0.6, 0.2];
        g.retarget_utilization(|e, _| utils[e.index()]);
        for max_hop in [Some(3), Some(5), None] {
            for dst in [NodeId(1), NodeId(5)] {
                let expect = brute(&g, NodeId(0), dst, max_hop);
                let got = k_shortest_paths(&g, NodeId(0), dst, expect.len() + 2, max_hop);
                assert_eq!(got.len(), expect.len(), "path count at {max_hop:?}");
                for (i, (c, p)) in got.iter().enumerate() {
                    assert!((c - expect[i]).abs() < 1e-9, "rank {i}: {c} vs {}", expect[i]);
                    assert!((p.inv_lu(&g) - c).abs() < 1e-12, "cost matches its path");
                }
            }
        }
    }

    #[test]
    fn paths_are_simple_and_ranked() {
        let ft = crate::fattree::FatTree::with_default_links(4);
        let edges = ft.tier_nodes(crate::fattree::Tier::Edge);
        let (a, b) = (edges[0], *edges.last().unwrap());
        let ps = k_shortest_paths(&ft.graph, a, b, 8, Some(6));
        assert!(ps.len() >= 2);
        for w in ps.windows(2) {
            assert!(w[0].0 <= w[1].0 + 1e-12, "ranking must be ascending");
        }
        for (_, p) in &ps {
            let mut seen = p.nodes.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), p.nodes.len(), "loopless");
            assert!(p.hops() <= 6);
            assert_eq!(p.nodes[0], a);
            assert_eq!(*p.nodes.last().unwrap(), b);
        }
        // all distinct
        for i in 0..ps.len() {
            for j in i + 1..ps.len() {
                assert_ne!(ps[i].1.edges, ps[j].1.edges, "paths {i} and {j} identical");
            }
        }
    }

    #[test]
    fn k_zero_and_unreachable() {
        let g = ring(4, Link::default());
        assert!(k_shortest_paths(&g, NodeId(0), NodeId(2), 0, None).is_empty());
        let mut g2 = Graph::with_nodes(3);
        g2.add_default_edge(NodeId(0), NodeId(1));
        assert!(k_shortest_paths(&g2, NodeId(0), NodeId(2), 3, None).is_empty());
    }

    #[test]
    fn hop_bound_filters_long_alternatives() {
        let g = ring(6, Link::default());
        let ps = k_shortest_paths(&g, NodeId(0), NodeId(2), 5, Some(2));
        assert_eq!(ps.len(), 1, "only the short way fits in 2 hops");
    }

    use crate::graph::Graph;

    #[test]
    fn first_path_matches_single_shortest() {
        let mut g = example7(Link::default());
        let utils = [0.9, 0.1, 0.8, 0.7, 0.3, 0.6, 0.2];
        g.retarget_utilization(|e, _| utils[e.index()]);
        let ks = k_shortest_paths(&g, NodeId(0), NodeId(1), 1, None);
        let single = crate::paths::min_inv_lu_enumerated(&g, NodeId(0), NodeId(1), None).unwrap();
        assert!((ks[0].0 - single.0).abs() < 1e-12);
    }
}
