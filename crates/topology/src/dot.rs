//! Graphviz DOT export for topologies and placements.
//!
//! Operators debugging a placement want to *see* it: `to_dot` renders the
//! graph with per-link utilization shading, and `placement_to_dot`
//! overlays role colors plus the chosen offload routes — pipe the output
//! through `dot -Tsvg` and the Fig. 4-style picture falls out.

use crate::graph::Graph;
use crate::paths::Path;
use std::fmt::Write as _;

/// Per-node decoration for [`to_dot`].
#[derive(Debug, Clone, Default)]
pub struct NodeStyle {
    /// Extra label line under the node id (e.g. `"87.5%"`).
    pub label: Option<String>,
    /// Graphviz fill color (e.g. `"tomato"`, `"#ffcc00"`).
    pub fill: Option<String>,
}

/// Render the graph as an undirected Graphviz document.
///
/// `styles` may be empty (no decoration) or hold one entry per node.
/// Edge grey level encodes utilization (darker = busier) and the edge
/// label shows `capacity-utilization%`.
///
/// # Panics
/// Panics if `styles` is non-empty but not one per node.
pub fn to_dot(g: &Graph, name: &str, styles: &[NodeStyle]) -> String {
    assert!(
        styles.is_empty() || styles.len() == g.node_count(),
        "styles must be empty or one per node"
    );
    let mut out = String::new();
    let _ = writeln!(out, "graph {} {{", sanitize(name));
    let _ = writeln!(out, "  layout=neato; overlap=false; node [shape=circle];");
    for n in g.nodes() {
        let style = styles.get(n.index());
        let mut attrs = Vec::new();
        if let Some(s) = style {
            let label = match &s.label {
                Some(l) => format!("n{}\\n{}", n.0, l),
                None => format!("n{}", n.0),
            };
            attrs.push(format!("label=\"{label}\""));
            if let Some(f) = &s.fill {
                attrs.push(format!("style=filled, fillcolor=\"{f}\""));
            }
        }
        let _ = writeln!(out, "  n{} [{}];", n.0, attrs.join(", "));
    }
    for e in g.edges() {
        // darker grey for higher utilization: grey90 (idle) … grey20 (full)
        let grey = 90.0 - e.link.utilization * 70.0;
        let _ = writeln!(
            out,
            "  n{} -- n{} [color=grey{}, label=\"{:.0}% of {:.0}M\"];",
            e.a.0,
            e.b.0,
            grey.round() as i64,
            e.link.utilization * 100.0,
            e.link.capacity_mbps,
        );
    }
    out.push_str("}\n");
    out
}

/// Render a placement overlay: the base graph plus bold red directed
/// arrows along each offload route.
pub fn placement_to_dot(g: &Graph, name: &str, styles: &[NodeStyle], routes: &[Path]) -> String {
    let mut out = to_dot(g, name, styles);
    // re-open the document to append route edges
    out.truncate(out.len() - 2); // drop "}\n"
    for (i, r) in routes.iter().enumerate() {
        for w in r.nodes.windows(2) {
            let _ = writeln!(
                out,
                "  n{} -- n{} [color=red, penwidth=2.5, label=\"route {}\", fontcolor=red, dir=forward];",
                w[0].0, w[1].0, i
            );
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String =
        name.chars().map(|c| if c.is_alphanumeric() || c == '_' { c } else { '_' }).collect();
    if cleaned.is_empty() || cleaned.chars().next().unwrap().is_numeric() {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Link, NodeId};
    use crate::topologies::example7;

    #[test]
    fn dot_contains_every_node_and_edge() {
        let g = example7(Link::new(10_000.0, 0.5));
        let dot = to_dot(&g, "fig4", &[]);
        assert!(dot.starts_with("graph fig4 {"));
        for n in 0..7 {
            assert!(dot.contains(&format!("n{n} [")), "missing node {n}");
        }
        assert_eq!(dot.matches(" -- ").count(), 7, "one line per edge");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn styles_render_labels_and_fills() {
        let g = example7(Link::new(10_000.0, 0.5));
        let mut styles = vec![NodeStyle::default(); 7];
        styles[0] = NodeStyle { label: Some("92%".into()), fill: Some("tomato".into()) };
        let dot = to_dot(&g, "styled", &styles);
        assert!(dot.contains("n0\\n92%"));
        assert!(dot.contains("fillcolor=\"tomato\""));
    }

    #[test]
    fn utilization_darkens_edges() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), Link::new(1000.0, 0.9));
        let dot = to_dot(&g, "dark", &[]);
        assert!(dot.contains("grey27"), "90% utilization → grey27: {dot}");
    }

    #[test]
    fn placement_overlay_draws_routes() {
        let g = example7(Link::new(10_000.0, 0.5));
        let route = crate::paths::enumerate_simple_paths(&g, NodeId(0), NodeId(1), Some(2))
            .into_iter()
            .next()
            .unwrap();
        let dot = placement_to_dot(&g, "overlay", &[], &[route]);
        assert!(dot.contains("color=red"));
        assert!(dot.contains("route 0"));
        assert!(dot.ends_with("}\n"));
        // base edges still present
        assert!(dot.matches(" -- ").count() > 7);
    }

    #[test]
    fn names_are_sanitized() {
        let g = example7(Link::new(10_000.0, 0.5));
        assert!(to_dot(&g, "4-k fat tree!", &[]).starts_with("graph g_4_k_fat_tree_ {"));
    }

    #[test]
    #[should_panic(expected = "one per node")]
    fn style_arity_checked() {
        let g = example7(Link::new(10_000.0, 0.5));
        to_dot(&g, "bad", &[NodeStyle::default()]);
    }

    use crate::graph::Graph;
}
