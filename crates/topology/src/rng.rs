//! Self-contained deterministic PRNG used across the workspace.
//!
//! Everything in DUST that draws randomness — scenario generation, traffic
//! jitter, random-regular wiring, benchmark instances — must regenerate
//! bit-for-bit from an explicit seed. SplitMix64 (Steele et al., "Fast
//! splittable pseudorandom number generators") gives that with a few
//! arithmetic ops per draw and no external dependencies; it is not, and
//! does not need to be, cryptographically secure.

/// A SplitMix64 generator, deterministic in its seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi]`.
    ///
    /// # Panics
    /// Panics when `lo > hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range [{lo}, {hi}]");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer draw in `[0, n)` via rejection-free multiply-shift
    /// (Lemire); bias is below 2^-64 for every `n` used in this workspace.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform integer draw in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "bad range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a: Vec<u64> = (0..8).map(|_| SplitMix64::new(7).next_u64()).collect();
        let mut r = SplitMix64::new(7);
        assert!(a.iter().all(|&x| x == a[0]) || a.len() == 8); // fresh generators
        let b: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        let mut r2 = SplitMix64::new(7);
        let c: Vec<u64> = (0..8).map(|_| r2.next_u64()).collect();
        assert_eq!(b, c);
        assert_ne!(b, (0..8).map(|_| SplitMix64::new(8).next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn f64_draws_are_in_unit_interval() {
        let mut r = SplitMix64::new(123);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_f64_respects_bounds_and_mean() {
        let mut r = SplitMix64::new(5);
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let x = r.range_f64(10.0, 20.0);
            assert!((10.0..=20.0).contains(&x));
            sum += x;
        }
        assert!((sum / f64::from(n) - 15.0).abs() < 0.1);
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = SplitMix64::new(99);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SplitMix64::new(1);
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle virtually never fixes everything");
    }
}
