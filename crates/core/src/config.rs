//! DUST configuration: the user-defined thresholds of §III-B / §IV-A.

use dust_topology::PathEngine;

/// Threshold and routing configuration for a DUST deployment.
///
/// * `c_max` — a node whose utilized capacity `C_i ≥ c_max` is a **Busy
///   node** and must offload its excess `Cs_i = C_i − c_max` (Eq. 3c).
/// * `co_max` — a node with `C_j ≤ co_max` is an **Offload-candidate** with
///   spare capacity `Cd_j = co_max − C_j` (Eq. 3d).
/// * `x_min` — the minimum utilization any node exhibits (constraint 3e);
///   also feeds the `Δ_io` feasibility parameter (Eq. 5).
/// * `max_hop` — hop bound on controllable routes (`None` = unlimited).
/// * `path_engine` — exhaustive enumeration (paper-faithful) or the
///   hop-bounded DP (fast equivalent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DustConfig {
    /// Busy-node threshold capacity, percent.
    pub c_max: f64,
    /// Offload-candidate threshold capacity, percent.
    pub co_max: f64,
    /// Minimum node utilization, percent.
    pub x_min: f64,
    /// Hop bound for controllable routes.
    pub max_hop: Option<usize>,
    /// Routing engine used to build `T_rmin`.
    pub path_engine: PathEngine,
}

impl DustConfig {
    /// A configuration with paper-flavoured defaults:
    /// `C_max = 80`, `CO_max = 50`, `x_min = 5`, unlimited hops,
    /// paper-faithful path enumeration. These satisfy the paper's
    /// recommendation `Δ_io ≥ 2` (Eq. 5: `(50−5)/(100−80) = 2.25`).
    pub fn paper_defaults() -> Self {
        DustConfig {
            c_max: 80.0,
            co_max: 50.0,
            x_min: 5.0,
            max_hop: None,
            path_engine: PathEngine::Enumerate,
        }
    }

    /// Validate invariant ordering `0 ≤ x_min ≤ co_max ≤ c_max ≤ 100`.
    ///
    /// `co_max < c_max` is required so no node is simultaneously Busy and an
    /// Offload-candidate; equality is permitted at the boundary.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.x_min >= 0.0 && self.x_min <= 100.0) {
            return Err(format!("x_min must be in [0,100], got {}", self.x_min));
        }
        if !(self.c_max > 0.0 && self.c_max <= 100.0) {
            return Err(format!("c_max must be in (0,100], got {}", self.c_max));
        }
        if !(self.co_max >= 0.0 && self.co_max <= 100.0) {
            return Err(format!("co_max must be in [0,100], got {}", self.co_max));
        }
        if self.co_max > self.c_max {
            return Err(format!(
                "co_max ({}) must not exceed c_max ({}): a node must never be Busy and a candidate at once",
                self.co_max, self.c_max
            ));
        }
        if self.x_min > self.co_max {
            return Err(format!(
                "x_min ({}) above co_max ({}) leaves candidates no expressible spare capacity",
                self.x_min, self.co_max
            ));
        }
        if let Some(0) = self.max_hop {
            return Err("max_hop of 0 forbids all routes".to_string());
        }
        Ok(())
    }

    /// The `Δ_io` feasibility parameter (Eq. 5):
    /// `Δ_io = (CO_max − x_min) / (100 − C_max)`.
    ///
    /// Larger values mean candidate headroom dwarfs possible excess load, so
    /// the optimization is more likely feasible. The paper recommends
    /// choosing thresholds with `Δ_io ≥ K_io = 2`.
    ///
    /// Returns `f64::INFINITY` when `c_max = 100` (busy nodes then have no
    /// excess by definition).
    pub fn delta_io(&self) -> f64 {
        let num = self.co_max - self.x_min;
        let den = 100.0 - self.c_max;
        if den <= 0.0 {
            f64::INFINITY
        } else {
            num / den
        }
    }

    /// Builder-style: set the hop bound.
    pub fn with_max_hop(mut self, h: Option<usize>) -> Self {
        self.max_hop = h;
        self
    }

    /// Builder-style: set the path engine.
    pub fn with_engine(mut self, e: PathEngine) -> Self {
        self.path_engine = e;
        self
    }

    /// Builder-style: set thresholds.
    pub fn with_thresholds(mut self, c_max: f64, co_max: f64, x_min: f64) -> Self {
        self.c_max = c_max;
        self.co_max = co_max;
        self.x_min = x_min;
        self
    }
}

impl Default for DustConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_valid_and_recommended() {
        let c = DustConfig::paper_defaults();
        c.validate().unwrap();
        assert!(c.delta_io() >= 2.0, "defaults must satisfy the K_io >= 2 recommendation");
    }

    #[test]
    fn delta_io_formula() {
        let c = DustConfig::paper_defaults().with_thresholds(80.0, 50.0, 5.0);
        assert!((c.delta_io() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn delta_io_infinite_at_cmax_100() {
        let c = DustConfig::paper_defaults().with_thresholds(100.0, 50.0, 5.0);
        assert!(c.delta_io().is_infinite());
    }

    #[test]
    fn overlapping_thresholds_rejected() {
        let c = DustConfig::paper_defaults().with_thresholds(60.0, 70.0, 5.0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn xmin_above_comax_rejected() {
        let c = DustConfig::paper_defaults().with_thresholds(80.0, 50.0, 55.0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_max_hop_rejected() {
        let c = DustConfig::paper_defaults().with_max_hop(Some(0));
        assert!(c.validate().is_err());
    }

    #[test]
    fn boundary_equal_thresholds_allowed() {
        let c = DustConfig::paper_defaults().with_thresholds(70.0, 70.0, 5.0);
        c.validate().unwrap();
    }
}
