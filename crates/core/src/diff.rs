//! Placement diffing for dynamic re-optimization rounds.
//!
//! DUST is "a dynamic traffic-aware solution that periodically monitors
//! the in-device computational load of all nodes and makes distributed
//! monitoring decisions accordingly" (§I). Re-running the optimizer every
//! Update-Interval produces a fresh [`Placement`]; tearing everything down
//! and re-issuing it would thrash the network. This module computes the
//! *minimal action set* between two placements — which transfers to start,
//! stop, or resize — so the Manager only signals what actually changed.

use crate::optimizer::Assignment;
use dust_topology::NodeId;
use std::collections::BTreeMap;

/// One reconciliation action between consecutive placement rounds.
#[derive(Debug, Clone, PartialEq)]
pub enum TransferAction {
    /// Begin a new hosting arrangement.
    Start {
        /// Busy node shedding load.
        from: NodeId,
        /// Destination absorbing it.
        to: NodeId,
        /// Capacity-percent to move.
        amount: f64,
    },
    /// End an existing arrangement entirely (the owner reclaims or the
    /// load moved elsewhere).
    Stop {
        /// Owner of the workload.
        from: NodeId,
        /// Destination currently hosting it.
        to: NodeId,
    },
    /// Resize an existing arrangement in place.
    Adjust {
        /// Owner of the workload.
        from: NodeId,
        /// Destination hosting it.
        to: NodeId,
        /// Previous amount.
        old_amount: f64,
        /// New amount.
        new_amount: f64,
    },
}

/// Amount below which two assignments count as equal (avoids churn from
/// floating-point noise between LP solves).
pub const AMOUNT_TOLERANCE: f64 = 1e-6;

/// Compute the minimal action set turning `prev` into `next`.
///
/// Assignments are keyed by `(from, to)`; duplicate pairs within one
/// placement are summed. Actions come out in deterministic order: stops
/// first (freeing capacity), then adjusts, then starts.
pub fn placement_diff(prev: &[Assignment], next: &[Assignment]) -> Vec<TransferAction> {
    let collapse = |list: &[Assignment]| -> BTreeMap<(NodeId, NodeId), f64> {
        let mut m = BTreeMap::new();
        for a in list {
            *m.entry((a.from, a.to)).or_insert(0.0) += a.amount;
        }
        m
    };
    let old = collapse(prev);
    let new = collapse(next);

    let mut stops = Vec::new();
    let mut adjusts = Vec::new();
    let mut starts = Vec::new();
    for (&(from, to), &old_amount) in &old {
        match new.get(&(from, to)) {
            None => stops.push(TransferAction::Stop { from, to }),
            Some(&new_amount) => {
                if (new_amount - old_amount).abs() > AMOUNT_TOLERANCE {
                    adjusts.push(TransferAction::Adjust { from, to, old_amount, new_amount });
                }
            }
        }
    }
    for (&(from, to), &amount) in &new {
        if !old.contains_key(&(from, to)) {
            starts.push(TransferAction::Start { from, to, amount });
        }
    }
    stops.into_iter().chain(adjusts).chain(starts).collect()
}

/// Apply an action list to a collapsed placement (for tests and for the
/// Manager's ledger): returns the resulting `(from, to) → amount` map.
pub fn apply_actions(
    prev: &[Assignment],
    actions: &[TransferAction],
) -> BTreeMap<(NodeId, NodeId), f64> {
    let mut m: BTreeMap<(NodeId, NodeId), f64> = BTreeMap::new();
    for a in prev {
        *m.entry((a.from, a.to)).or_insert(0.0) += a.amount;
    }
    for act in actions {
        match *act {
            TransferAction::Start { from, to, amount } => {
                m.insert((from, to), amount);
            }
            TransferAction::Stop { from, to } => {
                m.remove(&(from, to));
            }
            TransferAction::Adjust { from, to, new_amount, .. } => {
                m.insert((from, to), new_amount);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asg(from: u32, to: u32, amount: f64) -> Assignment {
        Assignment { from: NodeId(from), to: NodeId(to), amount, t_rmin: 0.1, route: None }
    }

    #[test]
    fn identical_placements_need_nothing() {
        let p = vec![asg(0, 1, 5.0), asg(2, 3, 7.0)];
        assert!(placement_diff(&p, &p).is_empty());
    }

    #[test]
    fn tiny_float_noise_is_ignored() {
        let a = vec![asg(0, 1, 5.0)];
        let b = vec![asg(0, 1, 5.0 + 1e-9)];
        assert!(placement_diff(&a, &b).is_empty());
    }

    #[test]
    fn start_stop_adjust_detected() {
        let prev = vec![asg(0, 1, 5.0), asg(0, 2, 3.0)];
        let next = vec![asg(0, 1, 8.0), asg(4, 5, 2.0)];
        let d = placement_diff(&prev, &next);
        assert_eq!(
            d,
            vec![
                TransferAction::Stop { from: NodeId(0), to: NodeId(2) },
                TransferAction::Adjust {
                    from: NodeId(0),
                    to: NodeId(1),
                    old_amount: 5.0,
                    new_amount: 8.0
                },
                TransferAction::Start { from: NodeId(4), to: NodeId(5), amount: 2.0 },
            ]
        );
    }

    #[test]
    fn stops_ordered_before_starts() {
        // moving a workload to a different destination = stop + start
        let prev = vec![asg(0, 1, 5.0)];
        let next = vec![asg(0, 2, 5.0)];
        let d = placement_diff(&prev, &next);
        assert_eq!(d.len(), 2);
        assert!(matches!(d[0], TransferAction::Stop { .. }));
        assert!(matches!(d[1], TransferAction::Start { .. }));
    }

    #[test]
    fn duplicate_pairs_are_summed() {
        let prev = vec![asg(0, 1, 2.0), asg(0, 1, 3.0)];
        let next = vec![asg(0, 1, 5.0)];
        assert!(placement_diff(&prev, &next).is_empty());
    }

    #[test]
    fn applying_diff_reproduces_next() {
        let prev = vec![asg(0, 1, 5.0), asg(0, 2, 3.0), asg(7, 8, 1.0)];
        let next = vec![asg(0, 1, 4.0), asg(3, 2, 6.0), asg(7, 8, 1.0)];
        let actions = placement_diff(&prev, &next);
        let applied = apply_actions(&prev, &actions);
        let mut want = BTreeMap::new();
        for a in &next {
            *want.entry((a.from, a.to)).or_insert(0.0) += a.amount;
        }
        assert_eq!(applied, want);
    }

    #[test]
    fn from_empty_and_to_empty() {
        let p = vec![asg(0, 1, 5.0)];
        let up = placement_diff(&[], &p);
        assert_eq!(up, vec![TransferAction::Start { from: NodeId(0), to: NodeId(1), amount: 5.0 }]);
        let down = placement_diff(&p, &[]);
        assert_eq!(down, vec![TransferAction::Stop { from: NodeId(0), to: NodeId(1) }]);
        assert!(placement_diff(&[], &[]).is_empty());
    }
}
