//! The DUST optimization engine: the min-cost placement of Eq. 3.
//!
//! Given an NMDB snapshot and thresholds, the engine
//!
//! 1. classifies Busy nodes `V_b` and Offload-candidates `V_o`,
//! 2. builds the `T_rmin` matrix over all controllable routes within the
//!    hop bound (Eq. 1–2),
//! 3. solves `min β = Σ x_ij · T_rmin(i,j)` subject to capacity (3a) and
//!    full-offload equality (3b) constraints, and
//! 4. extracts the chosen routes so the Manager can program them.
//!
//! Two interchangeable LP backends are offered (ablation 2 in DESIGN.md):
//! the specialized transportation solver and the general two-phase simplex.

use crate::config::DustConfig;
use crate::error::DustError;
use crate::state::Nmdb;
use dust_lp::{
    Cmp, PartitionWarm, Problem, SolveOptions, Status, TransportProblem, TransportStatus,
};
use dust_topology::{
    min_inv_lu_dp_path, min_inv_lu_enumerated, CostEngine, NodeId, Path, PathEngine,
};
use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

/// Which LP machinery solves the placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBackend {
    /// Vogel + MODI transportation solver (fast, structure-aware).
    #[default]
    Transportation,
    /// General two-phase simplex over the explicit LP.
    Simplex,
}

/// How the transportation LP is attacked — the quality-vs-latency knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolvePath {
    /// One whole-problem MODI solve: the exact optimum.
    #[default]
    Exact,
    /// POP-style: deal the busy nodes into `parts` seeded random groups,
    /// give each group a supply-proportional slice of every candidate's
    /// capacity, solve the subproblems in parallel on the cost engine's
    /// scoped-thread pool, and recombine. Near-optimal (typically well
    /// under 1 % on fat-tree instances) at a fraction of the latency;
    /// falls back to the exact solve if any subproblem is infeasible
    /// (which supply-proportional shares only allow when the joint
    /// problem is itself infeasible).
    Partitioned {
        /// Subproblem count (1 behaves exactly like [`SolvePath::Exact`]).
        parts: NonZeroUsize,
        /// Seed for the random row split.
        seed: u64,
    },
}

/// Spanning-tree bases carried from one placement round to the next so a
/// drifting instance re-solves warm instead of cold.
///
/// The bases are only offered back to the solver when the busy/candidate
/// sets match the round they were exported from — a changed set reshapes
/// the LP's rows/columns, and although a mismatched basis would be
/// rejected (or re-optimized) safely by MODI anyway, the guard keeps
/// `lp.pivots_saved` honest. Feed the previous round's
/// [`Placement::warm`] into [`optimize_with_path_warm`] (or
/// `PlacementRequest::warm_start`).
#[derive(Debug, Clone, Default)]
pub struct WarmState {
    /// Per-group bases (a single slot when the exact path ran).
    pub bases: PartitionWarm,
    /// Busy set the bases were exported under, in row order.
    pub busy: Vec<NodeId>,
    /// Candidate set the bases were exported under, in column order.
    pub candidates: Vec<NodeId>,
}

impl WarmState {
    /// True when no basis is carried (cold round, infeasible round, or
    /// simplex backend).
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// Whether these bases may be offered for a round over the given
    /// busy/candidate sets.
    fn matches(&self, busy: &[NodeId], candidates: &[NodeId]) -> bool {
        !self.is_empty() && self.busy == busy && self.candidates == candidates
    }
}

/// One accepted offload decision.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Busy node shedding load.
    pub from: NodeId,
    /// Offload-destination node absorbing it.
    pub to: NodeId,
    /// Capacity-percent moved (`x_ij`).
    pub amount: f64,
    /// Minimum response time for this pair (seconds).
    pub t_rmin: f64,
    /// The controllable route realizing `t_rmin`.
    pub route: Option<Path>,
}

/// Outcome of a placement round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStatus {
    /// Every Busy node's excess was placed at minimum cost.
    Optimal,
    /// Constraint 3a/3b cannot all hold — the "Infeasible Optimization"
    /// outcome counted by Fig. 7.
    Infeasible,
    /// No node exceeded `C_max`; nothing to do.
    NoBusyNodes,
}

/// Result of running the optimization engine once.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Outcome.
    pub status: PlacementStatus,
    /// Offload decisions (empty unless optimal).
    pub assignments: Vec<Assignment>,
    /// Objective `β = Σ x_ij · T_rmin(i,j)` in second-percent units.
    pub beta: f64,
    /// The Busy set this round.
    pub busy: Vec<NodeId>,
    /// The Offload-candidate set this round.
    pub candidates: Vec<NodeId>,
    /// Wall time spent building the `T_rmin` matrix (dominates with the
    /// enumeration engine — this is what Figs. 8/10 measure growing).
    pub cost_time: Duration,
    /// Wall time spent in the LP solve proper.
    pub solve_time: Duration,
    /// Shadow price per Offload-candidate (transportation backend only):
    /// the marginal β saved by one more unit of spare capacity at that
    /// node — the most negative entries are the candidates most worth
    /// upgrading. Empty for the simplex backend or non-optimal outcomes.
    /// Under [`SolvePath::Partitioned`] these are share-weighted averages
    /// of the per-group duals, not the joint optimum's prices.
    pub shadow_prices: Vec<(NodeId, f64)>,
    /// Subproblems the solve actually ran (1 = the whole-problem path).
    pub partitions: usize,
    /// True when a partitioned solve hit an infeasible subproblem and
    /// re-ran the exact whole-problem solve instead.
    pub partition_fallback: bool,
    /// Bases for warm-starting the next round over the same busy/candidate
    /// sets (empty unless the transportation backend reached optimality).
    pub warm: WarmState,
    /// True when this round's solve actually started from an accepted
    /// warm basis (at least one subproblem, for the partitioned path).
    pub warm_used: bool,
}

impl Placement {
    /// Total optimization time: routing + LP.
    pub fn total_time(&self) -> Duration {
        self.cost_time + self.solve_time
    }

    /// Total capacity-percent moved.
    pub fn total_offloaded(&self) -> f64 {
        self.assignments.iter().map(|a| a.amount).sum()
    }

    /// Mean hop count over chosen routes (the paper's "number of hops
    /// required to reach the destination" metric), `None` when no
    /// assignment carries a route.
    pub fn mean_hops(&self) -> Option<f64> {
        let hops: Vec<usize> =
            self.assignments.iter().filter_map(|a| a.route.as_ref().map(Path::hops)).collect();
        if hops.is_empty() {
            None
        } else {
            Some(hops.iter().sum::<usize>() as f64 / hops.len() as f64)
        }
    }
}

/// Run the optimization engine on a snapshot.
///
/// Thin wrapper over [`crate::PlacementRequest`] kept for source
/// compatibility — prefer the builder, which shares one [`CostEngine`]
/// across entry points and returns typed [`DustError`]s instead of
/// panicking.
///
/// # Panics
/// Panics when `cfg` is invalid.
pub fn optimize(nmdb: &Nmdb, cfg: &DustConfig, backend: SolverBackend) -> Placement {
    cfg.validate().expect("invalid DustConfig");
    match crate::PlacementRequest::new(nmdb, cfg).backend(backend).run_lp() {
        Ok(p) => p,
        // Unbounded cannot occur for well-formed placement instances
        // (non-negative costs, finite supplies); fold it into the
        // infeasible outcome the legacy status enum can express.
        Err(_) => Placement {
            status: PlacementStatus::Infeasible,
            assignments: Vec::new(),
            beta: f64::NAN,
            busy: nmdb.busy_nodes(cfg),
            candidates: nmdb.candidate_nodes(cfg),
            cost_time: Duration::ZERO,
            solve_time: Duration::ZERO,
            shadow_prices: Vec::new(),
            partitions: 1,
            partition_fallback: false,
            warm: WarmState::default(),
            warm_used: false,
        },
    }
}

/// Run the optimization engine with an explicit shared [`CostEngine`].
///
/// This is the paper's "ILP" (continuous `x_ij`, Eq. 3) solved exactly.
/// The `T_rmin` matrix comes from `engine` — parallel across its worker
/// threads and memoized across calls on an unchanged graph. Routes for
/// chosen assignments are reconstructed with the same path engine that
/// produced the costs.
pub fn optimize_with(
    nmdb: &Nmdb,
    cfg: &DustConfig,
    backend: SolverBackend,
    engine: &CostEngine,
) -> Result<Placement, DustError> {
    optimize_with_path(nmdb, cfg, backend, engine, SolvePath::Exact)
}

/// [`optimize_with`], plus the [`SolvePath`] choice: `Exact` reproduces
/// the whole-problem solve bit for bit; `Partitioned` trades a bounded
/// slice of objective quality for a large latency cut at fleet scale.
/// Partitioning applies to the transportation backend only — combining it
/// with [`SolverBackend::Simplex`] is a [`DustError::BadConfig`].
pub fn optimize_with_path(
    nmdb: &Nmdb,
    cfg: &DustConfig,
    backend: SolverBackend,
    engine: &CostEngine,
    path: SolvePath,
) -> Result<Placement, DustError> {
    optimize_with_path_warm(nmdb, cfg, backend, engine, path, None)
}

/// [`optimize_with_path`], plus warm-start bases from a previous round
/// ([`Placement::warm`]). Warm and cold solves reach the same objective —
/// the bases only skip the initial-assignment phase and most pivots when
/// the instance drifted little. Ignored (solved cold) when the
/// busy/candidate sets no longer match, when the bases are empty, or for
/// the simplex backend.
pub fn optimize_with_path_warm(
    nmdb: &Nmdb,
    cfg: &DustConfig,
    backend: SolverBackend,
    engine: &CostEngine,
    path: SolvePath,
    warm: Option<&WarmState>,
) -> Result<Placement, DustError> {
    cfg.validate().map_err(DustError::BadConfig)?;
    if let SolvePath::Partitioned { .. } = path {
        if backend == SolverBackend::Simplex {
            return Err(DustError::BadConfig(
                "partitioned solves require the transportation backend".to_string(),
            ));
        }
    }
    // Solver metrics (pivots, B&B nodes) are recorded through the
    // engine's observability handle — attach one with
    // `CostEngine::set_obs` or `PlacementRequest::obs`.
    let obs = engine.obs();
    obs.counter_inc("core.placements");
    let busy = nmdb.busy_nodes(cfg);
    let candidates = nmdb.candidate_nodes(cfg);
    if busy.is_empty() {
        obs.counter_inc("core.placements_no_busy");
        return Ok(Placement {
            status: PlacementStatus::NoBusyNodes,
            assignments: Vec::new(),
            beta: 0.0,
            busy,
            candidates,
            cost_time: Duration::ZERO,
            solve_time: Duration::ZERO,
            shadow_prices: Vec::new(),
            partitions: 1,
            partition_fallback: false,
            warm: WarmState::default(),
            warm_used: false,
        });
    }

    // ---- T_rmin matrix over controllable routes ---------------------------
    let t0 = Instant::now();
    let data: Vec<f64> = busy.iter().map(|&b| nmdb.state(b).data_mb).collect();
    let costs =
        engine.build_matrix(&nmdb.graph, &busy, &candidates, &data, cfg.max_hop, cfg.path_engine);
    let cost_time = t0.elapsed();

    let supply: Vec<f64> = busy.iter().map(|&b| nmdb.cs(b, cfg)).collect();
    let capacity: Vec<f64> = candidates.iter().map(|&c| nmdb.cd(c, cfg)).collect();

    // ---- LP solve ----------------------------------------------------------
    let t1 = Instant::now();
    let mut shadow_prices: Vec<(NodeId, f64)> = Vec::new();
    let mut partitions = 1usize;
    let mut partition_fallback = false;
    let mut warm_next = WarmState::default();
    let mut warm_used = false;
    let flows: Option<(Vec<f64>, f64)> = match backend {
        SolverBackend::Transportation => {
            let tp = TransportProblem::new(supply.clone(), capacity.clone(), costs.t_rmin.clone());
            let offered = warm.filter(|w| w.matches(&busy, &candidates));
            let (sol, bases) = match path {
                SolvePath::Exact => {
                    let warm_start = offered.and_then(|w| {
                        if w.bases.bases.len() == 1 {
                            w.bases.bases[0].clone()
                        } else {
                            None
                        }
                    });
                    let s = tp.solve_with_options(obs, &SolveOptions { warm_start });
                    let bases = PartitionWarm { bases: vec![s.basis.clone()] };
                    (s, bases)
                }
                SolvePath::Partitioned { parts, seed } => {
                    // Subproblems run with detached observability so the
                    // recorded trace stays identical for every thread
                    // count; the partition counters land on `obs` inside
                    // solve_partitioned_via_warm.
                    let out = dust_lp::solve_partitioned_via_warm(
                        &tp,
                        parts,
                        seed,
                        obs,
                        offered.map(|w| &w.bases),
                        |subs| {
                            engine.run_parallel(subs.len(), |i| {
                                let sub = &subs[i];
                                sub.problem.solve_with_options(
                                    &dust_obs::ObsHandle::disabled(),
                                    &SolveOptions { warm_start: sub.warm.clone() },
                                )
                            })
                        },
                    );
                    partitions = out.parts;
                    partition_fallback = out.fell_back;
                    (out.solution, out.warm)
                }
            };
            warm_used = sol.warm_used;
            if sol.status == TransportStatus::Optimal {
                shadow_prices =
                    candidates.iter().copied().zip(sol.col_potentials.iter().copied()).collect();
                warm_next = WarmState { bases, busy: busy.clone(), candidates: candidates.clone() };
            }
            (sol.status == TransportStatus::Optimal).then_some((sol.flow, sol.objective))
        }
        SolverBackend::Simplex => {
            let n = candidates.len();
            let mut p = Problem::new();
            let mut vars = Vec::with_capacity(busy.len() * n);
            for r in 0..busy.len() {
                for c in 0..n {
                    let t = costs.at(r, c);
                    // Unreachable pairs are simply not modeled (equivalent
                    // to a forbidden cell).
                    vars.push(t.is_finite().then(|| p.add_nonneg(t)));
                }
            }
            for (r, &s) in supply.iter().enumerate() {
                let terms: Vec<_> =
                    (0..n).filter_map(|c| vars[r * n + c].map(|v| (v, 1.0))).collect();
                p.add_constraint(&terms, Cmp::Eq, s);
            }
            for (c, &cap) in capacity.iter().enumerate() {
                let terms: Vec<_> =
                    (0..busy.len()).filter_map(|r| vars[r * n + c].map(|v| (v, 1.0))).collect();
                p.add_constraint(&terms, Cmp::Le, cap);
            }
            let sol = dust_lp::solve_with(&p, dust_lp::Options::default(), obs);
            if sol.status == Status::Unbounded {
                return Err(DustError::Unbounded);
            }
            sol.is_optimal().then(|| {
                let mut flow = vec![0.0; busy.len() * n];
                for (idx, v) in vars.iter().enumerate() {
                    if let Some(v) = v {
                        flow[idx] = sol.x[v.index()];
                    }
                }
                (flow, sol.objective)
            })
        }
    };
    let solve_time = t1.elapsed();

    let Some((flow, beta)) = flows else {
        obs.counter_inc("core.placements_infeasible");
        return Ok(Placement {
            status: PlacementStatus::Infeasible,
            assignments: Vec::new(),
            beta: f64::NAN,
            busy,
            candidates,
            cost_time,
            solve_time,
            shadow_prices: Vec::new(),
            partitions,
            partition_fallback,
            warm: WarmState::default(),
            warm_used,
        });
    };

    // ---- Route extraction for the chosen pairs -----------------------------
    const FLOW_TOL: f64 = 1e-7;
    let mut assignments = Vec::new();
    for (r, &b) in busy.iter().enumerate() {
        for (c, &o) in candidates.iter().enumerate() {
            let x = flow[r * candidates.len() + c];
            if x > FLOW_TOL {
                let route = match cfg.path_engine {
                    PathEngine::Enumerate => {
                        min_inv_lu_enumerated(&nmdb.graph, b, o, cfg.max_hop).map(|(_, p)| p)
                    }
                    PathEngine::HopBoundedDp => {
                        min_inv_lu_dp_path(&nmdb.graph, b, o, cfg.max_hop).map(|(_, p)| p)
                    }
                };
                assignments.push(Assignment {
                    from: b,
                    to: o,
                    amount: x,
                    t_rmin: costs.at(r, c),
                    route,
                });
            }
        }
    }

    obs.counter_inc("core.placements_optimal");
    Ok(Placement {
        status: PlacementStatus::Optimal,
        assignments,
        beta,
        busy,
        candidates,
        cost_time,
        solve_time,
        shadow_prices,
        partitions,
        partition_fallback,
        warm: warm_next,
        warm_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NodeState;
    use dust_topology::{topologies, Graph, Link};

    fn cfg() -> DustConfig {
        DustConfig::paper_defaults()
    }

    /// Line 0-1-2 where node 0 is busy and node 2 is a candidate.
    fn simple_nmdb() -> Nmdb {
        let g = topologies::line(3, Link::default());
        Nmdb::new(
            g,
            vec![
                NodeState::new(90.0, 100.0),
                NodeState::new(60.0, 10.0),
                NodeState::new(20.0, 10.0),
            ],
        )
    }

    #[test]
    fn basic_offload_places_all_excess() {
        let db = simple_nmdb();
        for backend in [SolverBackend::Transportation, SolverBackend::Simplex] {
            let p = optimize(&db, &cfg(), backend);
            assert_eq!(p.status, PlacementStatus::Optimal, "{backend:?}");
            assert!((p.total_offloaded() - 10.0).abs() < 1e-6);
            assert_eq!(p.assignments.len(), 1);
            let a = &p.assignments[0];
            assert_eq!((a.from, a.to), (NodeId(0), NodeId(2)));
            let route = a.route.as_ref().unwrap();
            assert_eq!(route.hops(), 2);
        }
    }

    #[test]
    fn backends_agree_on_objective() {
        let db = simple_nmdb();
        let a = optimize(&db, &cfg(), SolverBackend::Transportation);
        let b = optimize(&db, &cfg(), SolverBackend::Simplex);
        assert!((a.beta - b.beta).abs() < 1e-6 * (1.0 + a.beta.abs()));
    }

    #[test]
    fn no_busy_nodes_short_circuits() {
        let g = topologies::line(2, Link::default());
        let db = Nmdb::new(g, vec![NodeState::new(50.0, 1.0), NodeState::new(50.0, 1.0)]);
        let p = optimize(&db, &cfg(), SolverBackend::Transportation);
        assert_eq!(p.status, PlacementStatus::NoBusyNodes);
    }

    #[test]
    fn infeasible_when_candidates_lack_capacity() {
        // busy node has 19 points of excess, single candidate only 1 spare
        let g = topologies::line(2, Link::default());
        let db = Nmdb::new(g, vec![NodeState::new(99.0, 10.0), NodeState::new(49.0, 1.0)]);
        let p = optimize(&db, &cfg(), SolverBackend::Transportation);
        assert_eq!(p.status, PlacementStatus::Infeasible);
    }

    #[test]
    fn infeasible_when_out_of_hop_range() {
        // candidate exists but is 2 hops away with max_hop = 1
        let db = simple_nmdb();
        let c = cfg().with_max_hop(Some(1));
        let p = optimize(&db, &c, SolverBackend::Transportation);
        assert_eq!(p.status, PlacementStatus::Infeasible);
        // …and feasible again at 2 hops
        let p2 = optimize(&db, &cfg().with_max_hop(Some(2)), SolverBackend::Transportation);
        assert_eq!(p2.status, PlacementStatus::Optimal);
    }

    #[test]
    fn splits_across_candidates_when_one_lacks_capacity() {
        // star: busy hub with two leaf candidates of 6 + 6 spare, excess 10
        let g = topologies::star(3, Link::default());
        let db = Nmdb::new(
            g,
            vec![NodeState::new(90.0, 50.0), NodeState::new(44.0, 1.0), NodeState::new(44.0, 1.0)],
        );
        let p = optimize(&db, &cfg(), SolverBackend::Transportation);
        assert_eq!(p.status, PlacementStatus::Optimal);
        assert_eq!(p.assignments.len(), 2, "flexible offloading must split");
        assert!((p.total_offloaded() - 10.0).abs() < 1e-6);
        for a in &p.assignments {
            assert!(a.amount <= 6.0 + 1e-9, "no candidate may exceed its Cd");
        }
    }

    #[test]
    fn multiple_busy_share_one_destination() {
        // two busy leaves, hub is the only candidate
        let g = topologies::star(3, Link::default());
        let db = Nmdb::new(
            g,
            vec![NodeState::new(20.0, 1.0), NodeState::new(85.0, 10.0), NodeState::new(88.0, 10.0)],
        );
        let p = optimize(&db, &cfg(), SolverBackend::Simplex);
        assert_eq!(p.status, PlacementStatus::Optimal);
        assert!((p.total_offloaded() - (5.0 + 8.0)).abs() < 1e-6);
        assert!(p.assignments.iter().all(|a| a.to == NodeId(0)));
    }

    #[test]
    fn prefers_cheaper_route_destination() {
        // busy node 0; candidate 1 via fast link, candidate 2 via slow link
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), Link::new(10_000.0, 0.9)); // Lu = 9000
        g.add_edge(NodeId(0), NodeId(2), Link::new(100.0, 0.5)); // Lu = 50
        let db = Nmdb::new(
            g,
            vec![NodeState::new(85.0, 100.0), NodeState::new(10.0, 1.0), NodeState::new(10.0, 1.0)],
        );
        let p = optimize(&db, &cfg(), SolverBackend::Transportation);
        assert_eq!(p.status, PlacementStatus::Optimal);
        assert_eq!(p.assignments.len(), 1);
        assert_eq!(p.assignments[0].to, NodeId(1), "faster route must win");
    }

    #[test]
    fn beta_equals_sum_of_amount_times_trmin() {
        let db = simple_nmdb();
        let p = optimize(&db, &cfg(), SolverBackend::Transportation);
        let recomputed: f64 = p.assignments.iter().map(|a| a.amount * a.t_rmin).sum();
        assert!((p.beta - recomputed).abs() < 1e-9 * (1.0 + p.beta.abs()));
    }

    #[test]
    fn engines_produce_same_placement() {
        let db = simple_nmdb();
        let e =
            optimize(&db, &cfg().with_engine(PathEngine::Enumerate), SolverBackend::Transportation);
        let d = optimize(
            &db,
            &cfg().with_engine(PathEngine::HopBoundedDp),
            SolverBackend::Transportation,
        );
        assert_eq!(e.status, d.status);
        assert!((e.beta - d.beta).abs() < 1e-9);
    }

    #[test]
    fn shadow_prices_identify_binding_candidate() {
        // busy hub (excess 10); cheap candidate with tiny capacity (binds)
        // and an expensive roomy one: the binding candidate's shadow price
        // must be strictly more negative.
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), Link::new(10_000.0, 0.9)); // fast
        g.add_edge(NodeId(0), NodeId(2), Link::new(100.0, 0.5)); // slow
        let db = Nmdb::new(
            g,
            vec![
                NodeState::new(90.0, 100.0),
                NodeState::new(46.0, 1.0), // spare 4 on the fast route — binds
                NodeState::new(10.0, 1.0), // spare 40 on the slow route
            ],
        );
        let p = optimize(&db, &cfg(), SolverBackend::Transportation);
        assert_eq!(p.status, PlacementStatus::Optimal);
        let price = |n: u32| {
            p.shadow_prices.iter().find(|(id, _)| *id == NodeId(n)).map(|(_, v)| *v).unwrap()
        };
        assert!(
            price(1) < price(2) - 1e-9,
            "binding fast candidate must be worth upgrading: {:?}",
            p.shadow_prices
        );
        // simplex backend leaves the field empty
        let ps = optimize(&db, &cfg(), SolverBackend::Simplex);
        assert!(ps.shadow_prices.is_empty());
    }

    #[test]
    fn mean_hops_reported() {
        let db = simple_nmdb();
        let p = optimize(&db, &cfg(), SolverBackend::Transportation);
        assert_eq!(p.mean_hops(), Some(2.0));
    }

    fn nz(k: usize) -> NonZeroUsize {
        NonZeroUsize::new(k).unwrap()
    }

    /// Thresholds from `cfg()` but `T_rmin` priced by the hop-bounded DP:
    /// exhaustive enumeration is exponential on fat-trees beyond 4-k, so
    /// the partition tests would never finish under `paper_defaults`.
    fn fat_cfg() -> DustConfig {
        cfg().with_engine(dust_topology::PathEngine::HopBoundedDp)
    }

    fn fat_tree_nmdb(k: usize, seed: u64) -> Nmdb {
        let ft = dust_topology::FatTree::with_default_links(k);
        crate::scenario::random_nmdb(&ft.graph, &fat_cfg(), &crate::ScenarioParams::default(), seed)
    }

    #[test]
    fn partitioned_k1_matches_exact_bit_for_bit() {
        let db = fat_tree_nmdb(8, 42);
        let engine = CostEngine::sequential();
        let exact = optimize_with(&db, &fat_cfg(), SolverBackend::Transportation, &engine).unwrap();
        let part = optimize_with_path(
            &db,
            &fat_cfg(),
            SolverBackend::Transportation,
            &engine,
            SolvePath::Partitioned { parts: nz(1), seed: 7 },
        )
        .unwrap();
        assert_eq!(part.partitions, 1);
        assert!(!part.partition_fallback);
        assert_eq!(part.beta.to_bits(), exact.beta.to_bits());
        assert_eq!(part.assignments.len(), exact.assignments.len());
    }

    #[test]
    fn partitioned_solve_is_feasible_with_bounded_gap() {
        let db = fat_tree_nmdb(8, 3);
        let engine = CostEngine::new();
        let exact = optimize_with(&db, &fat_cfg(), SolverBackend::Transportation, &engine).unwrap();
        assert_eq!(exact.status, PlacementStatus::Optimal);
        for k in [2usize, 4] {
            let part = optimize_with_path(
                &db,
                &fat_cfg(),
                SolverBackend::Transportation,
                &engine,
                SolvePath::Partitioned { parts: nz(k), seed: 1 },
            )
            .unwrap();
            assert_eq!(part.status, PlacementStatus::Optimal, "k={k}");
            assert!((part.total_offloaded() - exact.total_offloaded()).abs() < 1e-6);
            assert!(part.beta >= exact.beta - 1e-9, "partitioned can't beat the optimum");
            if !part.partition_fallback {
                assert_eq!(part.partitions, k);
                // random fat-tree instances are granular; a huge gap would
                // mean recombination lost flow
                assert!(part.beta <= exact.beta * 2.0, "k={k}: gap too large");
            }
        }
    }

    #[test]
    fn partitioned_is_deterministic_for_any_thread_count() {
        let db = fat_tree_nmdb(8, 11);
        let path = SolvePath::Partitioned { parts: nz(4), seed: 5 };
        let base = optimize_with_path(
            &db,
            &fat_cfg(),
            SolverBackend::Transportation,
            &CostEngine::sequential(),
            path,
        )
        .unwrap();
        for threads in [2usize, 8] {
            let p = optimize_with_path(
                &db,
                &fat_cfg(),
                SolverBackend::Transportation,
                &CostEngine::with_threads(threads),
                path,
            )
            .unwrap();
            assert_eq!(p.beta.to_bits(), base.beta.to_bits(), "threads {threads}");
            assert_eq!(p.assignments.len(), base.assignments.len());
        }
    }

    #[test]
    fn partitioned_k_beyond_busy_count_still_places_everything() {
        let db = simple_nmdb(); // exactly one busy node
        let part = optimize_with_path(
            &db,
            &cfg(),
            SolverBackend::Transportation,
            &CostEngine::new(),
            SolvePath::Partitioned { parts: nz(64), seed: 0 },
        )
        .unwrap();
        assert_eq!(part.status, PlacementStatus::Optimal);
        assert!((part.total_offloaded() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn partitioned_simplex_is_a_bad_config() {
        let db = simple_nmdb();
        let err = optimize_with_path(
            &db,
            &cfg(),
            SolverBackend::Simplex,
            &CostEngine::new(),
            SolvePath::Partitioned { parts: nz(4), seed: 0 },
        )
        .unwrap_err();
        assert!(matches!(err, DustError::BadConfig(_)));
    }

    // ---- warm-start rounds ------------------------------------------------

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Retune a seeded sample of link utilizations: `T_rmin` drifts but the
    /// node states — and therefore the busy/candidate sets a warm basis is
    /// keyed on — survive untouched.
    fn drifted(db: &Nmdb, seed: u64) -> Nmdb {
        let mut g = db.graph.clone();
        let mut s = seed;
        let edges = g.edge_count() as u64;
        for _ in 0..(edges / 4 + 1) {
            let e = dust_topology::EdgeId((splitmix(&mut s) % edges) as u32);
            let u = 0.05 + 0.9 * (splitmix(&mut s) as f64 / u64::MAX as f64);
            g.link_mut(e).utilization = u;
        }
        let states = g.nodes().map(|n| *db.state(n)).collect();
        Nmdb::new(g, states)
    }

    #[test]
    fn warm_vs_cold_objective_equality_sweep() {
        // 12 seeds × {testbed, 16-k fat-tree} × k∈{1,4}: after seeded link
        // drift, a solve warm-started from the previous round's bases must
        // land on the same objective a cold solve reaches. Warm starts trade
        // pivots, never optimality.
        let testbed = topologies::example7(Link::default());
        let params = crate::ScenarioParams::default();
        for seed in 0..12u64 {
            for topo in 0..2usize {
                let base = if topo == 0 {
                    crate::scenario::random_nmdb(&testbed, &fat_cfg(), &params, seed)
                } else {
                    fat_tree_nmdb(16, seed)
                };
                let engine = CostEngine::new();
                for k in [1usize, 4] {
                    let path = SolvePath::Partitioned { parts: nz(k), seed: 9 };
                    let first = optimize_with_path(
                        &base,
                        &fat_cfg(),
                        SolverBackend::Transportation,
                        &engine,
                        path,
                    )
                    .unwrap();
                    if first.status != PlacementStatus::Optimal {
                        continue;
                    }
                    let next = drifted(&base, seed.wrapping_mul(2654435761).wrapping_add(k as u64));
                    let cold = optimize_with_path(
                        &next,
                        &fat_cfg(),
                        SolverBackend::Transportation,
                        &engine,
                        path,
                    )
                    .unwrap();
                    let warm = optimize_with_path_warm(
                        &next,
                        &fat_cfg(),
                        SolverBackend::Transportation,
                        &engine,
                        path,
                        Some(&first.warm),
                    )
                    .unwrap();
                    assert_eq!(cold.status, warm.status, "topo={topo} seed={seed} k={k}");
                    if cold.status == PlacementStatus::Optimal {
                        assert!(
                            (warm.beta - cold.beta).abs() <= 1e-7 * (1.0 + cold.beta.abs()),
                            "topo={topo} seed={seed} k={k}: warm {} vs cold {}",
                            warm.beta,
                            cold.beta
                        );
                        assert!(
                            (warm.total_offloaded() - cold.total_offloaded()).abs() < 1e-6,
                            "topo={topo} seed={seed} k={k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn warm_round_over_unchanged_instance_pivots_zero_times() {
        let db = fat_tree_nmdb(8, 42);
        let obs = dust_obs::ObsHandle::recording(0);
        let engine = CostEngine::new().with_obs(obs.clone());
        let first = optimize_with(&db, &fat_cfg(), SolverBackend::Transportation, &engine).unwrap();
        assert_eq!(first.status, PlacementStatus::Optimal);
        assert!(!first.warm.is_empty(), "optimal transportation rounds must export bases");
        let warm = optimize_with_path_warm(
            &db,
            &fat_cfg(),
            SolverBackend::Transportation,
            &engine,
            SolvePath::Exact,
            Some(&first.warm),
        )
        .unwrap();
        assert!(warm.warm_used);
        // flows are re-derived from the basis by leaf-peeling, so the sum
        // may round differently — equality is mathematical, not bitwise
        assert!((warm.beta - first.beta).abs() <= 1e-9 * (1.0 + first.beta.abs()));
        assert_eq!(obs.counter("lp.warm_solves"), 1);
        assert_eq!(obs.counter("lp.warm_pivots"), 0, "an already-optimal basis needs no pivots");
        assert!(obs.counter("lp.pivots_saved") > 0);
        assert_eq!(obs.counter("lp.warm_rejects"), 0);
    }

    #[test]
    fn partitioned_warm_round_saves_pivots_and_matches_cold() {
        let db = fat_tree_nmdb(8, 21);
        let obs = dust_obs::ObsHandle::recording(0);
        let engine = CostEngine::new().with_obs(obs.clone());
        let path = SolvePath::Partitioned { parts: nz(4), seed: 3 };
        let first =
            optimize_with_path(&db, &fat_cfg(), SolverBackend::Transportation, &engine, path)
                .unwrap();
        assert_eq!(first.status, PlacementStatus::Optimal);
        let next = drifted(&db, 5);
        let saved_before = obs.counter("lp.pivots_saved");
        let warm = optimize_with_path_warm(
            &next,
            &fat_cfg(),
            SolverBackend::Transportation,
            &engine,
            path,
            Some(&first.warm),
        )
        .unwrap();
        let cold =
            optimize_with_path(&next, &fat_cfg(), SolverBackend::Transportation, &engine, path)
                .unwrap();
        if !first.partition_fallback && !warm.partition_fallback {
            assert!(warm.warm_used, "matching per-partition bases must be accepted");
            assert!(obs.counter("lp.pivots_saved") > saved_before);
        }
        assert!(
            (warm.beta - cold.beta).abs() <= 1e-7 * (1.0 + cold.beta.abs()),
            "warm {} vs cold {}",
            warm.beta,
            cold.beta
        );
    }

    #[test]
    fn warm_bases_are_ignored_when_the_busy_set_changes() {
        let db = fat_tree_nmdb(8, 7);
        let engine = CostEngine::new();
        let first = optimize_with(&db, &fat_cfg(), SolverBackend::Transportation, &engine).unwrap();
        assert_eq!(first.status, PlacementStatus::Optimal);
        // flip one candidate to busy: the LP's rows/columns reshape, so the
        // stale bases must be ignored, not trusted
        let mut db2 = db.clone();
        let flipped = first.candidates[0];
        db2.state_mut(flipped).utilization = 99.0;
        let warm = optimize_with_path_warm(
            &db2,
            &fat_cfg(),
            SolverBackend::Transportation,
            &engine,
            SolvePath::Exact,
            Some(&first.warm),
        )
        .unwrap();
        assert!(!warm.warm_used);
    }

    #[test]
    fn simplex_backend_carries_no_warm_state() {
        let db = simple_nmdb();
        let engine = CostEngine::new();
        let p = optimize_with(&db, &cfg(), SolverBackend::Simplex, &engine).unwrap();
        assert_eq!(p.status, PlacementStatus::Optimal);
        assert!(p.warm.is_empty());
        assert!(!p.warm_used);
    }
}
