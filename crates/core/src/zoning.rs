//! Zoned placement — the paper's scaling recommendation implemented.
//!
//! §V-B: "we suggest dividing large-scale networks into zones containing a
//! maximum of 80 nodes. This approach has an acceptable optimization cost
//! of 0.8 seconds for a max-hop value of 7". This module partitions a
//! network into bounded-size zones, runs the exact placement *inside* each
//! zone independently, and then (optionally) sweeps leftover excess across
//! zone borders with the ILP on the residual instance — keeping per-solve
//! cost bounded while recovering most of the global optimum.
//!
//! Two partitioners are provided: fat-tree pod-aware zoning (pods plus the
//! core layer) and a topology-agnostic BFS grower for arbitrary graphs.

use crate::config::DustConfig;
use crate::error::DustError;
use crate::optimizer::{optimize_with, Assignment, PlacementStatus, SolverBackend};
use crate::state::{Nmdb, NodeState};
use dust_topology::{CostEngine, FatTree, Graph, NodeId};
use std::time::{Duration, Instant};

/// A partition of the node set into zones.
#[derive(Debug, Clone)]
pub struct Zoning {
    /// `zone_of[v]` = zone index of node `v`.
    pub zone_of: Vec<usize>,
    /// Node lists per zone.
    pub zones: Vec<Vec<NodeId>>,
}

impl Zoning {
    /// Build from a membership vector.
    ///
    /// # Panics
    /// Panics if zone indices are not dense `0..zones`.
    pub fn from_membership(zone_of: Vec<usize>) -> Self {
        let n_zones = zone_of.iter().copied().max().map_or(0, |m| m + 1);
        let mut zones = vec![Vec::new(); n_zones];
        for (i, &z) in zone_of.iter().enumerate() {
            zones[z].push(NodeId(i as u32));
        }
        assert!(
            zones.iter().all(|z| !z.is_empty()),
            "zone indices must be dense (an intermediate zone is empty)"
        );
        Zoning { zone_of, zones }
    }

    /// Number of zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Size of the largest zone.
    pub fn max_zone_size(&self) -> usize {
        self.zones.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Pod-aware zoning for fat-trees: each pod is a zone, and the core layer
/// is distributed round-robin over the pod zones so every zone contains
/// usable transit capacity. Zones of a `k`-port fat-tree have
/// `k + k/4` nodes — e.g. 68 for 64-k, under the paper's 80-node budget.
pub fn zone_fat_tree(ft: &FatTree) -> Zoning {
    let n = ft.graph.node_count();
    let mut zone_of = vec![0usize; n];
    let mut core_cursor = 0usize;
    for (v, z) in zone_of.iter_mut().enumerate() {
        match ft.pods[v] {
            Some(p) => *z = p,
            None => {
                *z = core_cursor % ft.k;
                core_cursor += 1;
            }
        }
    }
    Zoning::from_membership(zone_of)
}

/// Topology-agnostic zoning: grow zones by BFS from unassigned seeds until
/// `max_zone_size` nodes, then start the next zone. Produces connected
/// zones on connected graphs.
///
/// # Panics
/// Panics if `max_zone_size == 0`.
pub fn zone_by_bfs(g: &Graph, max_zone_size: usize) -> Zoning {
    assert!(max_zone_size > 0, "zones must hold at least one node");
    let n = g.node_count();
    let mut zone_of = vec![usize::MAX; n];
    let mut next_zone = 0usize;
    for seed in 0..n {
        if zone_of[seed] != usize::MAX {
            continue;
        }
        // BFS from the seed over unassigned nodes only
        let mut queue = std::collections::VecDeque::from([NodeId(seed as u32)]);
        zone_of[seed] = next_zone;
        let mut size = 1usize;
        while let Some(v) = queue.pop_front() {
            if size >= max_zone_size {
                break;
            }
            for &(w, _) in g.neighbors(v) {
                if size >= max_zone_size {
                    break;
                }
                if zone_of[w.index()] == usize::MAX {
                    zone_of[w.index()] = next_zone;
                    size += 1;
                    queue.push_back(w);
                }
            }
        }
        next_zone += 1;
    }
    Zoning::from_membership(zone_of)
}

/// Result of a zoned placement round.
#[derive(Debug, Clone)]
pub struct ZonedPlacement {
    /// Accepted intra-zone assignments.
    pub assignments: Vec<Assignment>,
    /// Objective contribution of the accepted assignments.
    pub beta: f64,
    /// Excess that could not be placed inside its own zone, per busy node
    /// (before the optional cross-zone sweep).
    pub intra_residual: Vec<(NodeId, f64)>,
    /// Excess left even after the cross-zone sweep (empty when the sweep
    /// is disabled: then equals `intra_residual`).
    pub final_residual: Vec<(NodeId, f64)>,
    /// Wall time of the *slowest single zone solve* — the latency bound
    /// when zones run in parallel on the DUST-Manager (§V-B motivation).
    pub max_zone_time: Duration,
    /// Sum of all zone solve times (sequential cost).
    pub total_time: Duration,
    /// Zones that had busy nodes.
    pub active_zones: usize,
}

impl ZonedPlacement {
    /// Fraction of total excess that failed to place, percent — comparable
    /// with the heuristic's HFR.
    pub fn residual_rate_percent(&self, total_cs: f64) -> f64 {
        let unplaced: f64 = self.final_residual.iter().map(|(_, r)| r).sum();
        // explicit branch: f64::max(-0.0, 0.0) may keep the negative zero
        if total_cs <= 0.0 || unplaced <= 0.0 {
            0.0
        } else {
            100.0 * unplaced / total_cs
        }
    }
}

/// Run the exact placement independently inside every zone, then (if
/// `cross_zone_sweep`) place the leftovers with one global ILP restricted
/// to residual busy nodes and leftover candidate capacity.
///
/// Every zone solve sees the *full* graph for routing (relay through
/// foreign nodes is free per the paper's zero-relay-cost assumption) but
/// only its own zone's busy/candidate sets — the |V_b|·|V_o| cost term
/// that dominates (§IV-D) shrinks quadratically with zoning.
pub fn optimize_zoned(
    nmdb: &Nmdb,
    cfg: &DustConfig,
    zoning: &Zoning,
    backend: SolverBackend,
    cross_zone_sweep: bool,
) -> ZonedPlacement {
    cfg.validate().expect("invalid DustConfig");
    crate::PlacementRequest::new(nmdb, cfg)
        .backend(backend)
        .zoned(zoning, cross_zone_sweep)
        .run_zoned()
        .expect("config validated above; placement LPs are never unbounded")
}

/// Zoned placement with an explicit shared [`CostEngine`].
///
/// All zone solves (and the sweep) price rows through `engine`; masked
/// per-zone snapshots clone the graph, which shares the epoch stamp, so a
/// Busy row priced in one zone solve is a cache hit in the sweep.
pub fn optimize_zoned_with(
    nmdb: &Nmdb,
    cfg: &DustConfig,
    zoning: &Zoning,
    backend: SolverBackend,
    cross_zone_sweep: bool,
    engine: &CostEngine,
) -> Result<ZonedPlacement, DustError> {
    cfg.validate().map_err(DustError::BadConfig)?;
    let mut assignments: Vec<Assignment> = Vec::new();
    let mut beta = 0.0;
    let mut intra_residual: Vec<(NodeId, f64)> = Vec::new();
    let mut max_zone_time = Duration::ZERO;
    let mut total_time = Duration::ZERO;
    let mut active_zones = 0usize;
    // capacity consumed per candidate (for the sweep)
    let mut consumed = vec![0.0f64; nmdb.graph.node_count()];

    for zone in &zoning.zones {
        // Mask the NMDB: nodes outside the zone become non-offloading so
        // they are neither busy nor candidates, but still relay routes.
        let in_zone: Vec<bool> = {
            let mut v = vec![false; nmdb.graph.node_count()];
            for n in zone {
                v[n.index()] = true;
            }
            v
        };
        let masked_states: Vec<NodeState> = nmdb
            .states
            .iter()
            .enumerate()
            .map(|(i, s)| if in_zone[i] { *s } else { s.non_offloading() })
            .collect();
        let masked = Nmdb::new(nmdb.graph.clone(), masked_states);
        if masked.busy_nodes(cfg).is_empty() {
            continue;
        }
        active_zones += 1;

        let t = Instant::now();
        let p = optimize_with(&masked, cfg, backend, engine)?;
        let dt = t.elapsed();
        max_zone_time = max_zone_time.max(dt);
        total_time += dt;

        match p.status {
            PlacementStatus::Optimal => {
                for a in &p.assignments {
                    consumed[a.to.index()] += a.amount;
                }
                beta += p.beta;
                assignments.extend(p.assignments);
            }
            PlacementStatus::Infeasible => {
                // Zone-level infeasibility: try a per-busy-node partial
                // placement is out of scope for the exact solver; record
                // the whole zone's excess as residual for the sweep.
                for b in masked.busy_nodes(cfg) {
                    intra_residual.push((b, masked.cs(b, cfg)));
                }
            }
            PlacementStatus::NoBusyNodes => unreachable!("checked above"),
        }
    }

    // Cross-zone sweep: one ILP over the residual busy nodes and the
    // network-wide leftover candidate capacity.
    let final_residual = if cross_zone_sweep && !intra_residual.is_empty() {
        let sweep_states: Vec<NodeState> = nmdb
            .states
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let id = NodeId(i as u32);
                if let Some((_, r)) = intra_residual.iter().find(|(b, _)| *b == id) {
                    // keep the node busy with exactly its residual excess
                    NodeState::new((cfg.c_max + r).min(100.0), s.data_mb)
                } else if s.offload_capable && s.utilization <= cfg.co_max {
                    // shrink candidate capacity by what zones consumed
                    NodeState::new((s.utilization + consumed[i]).min(100.0), s.data_mb)
                } else {
                    s.non_offloading()
                }
            })
            .collect();
        let sweep_db = Nmdb::new(nmdb.graph.clone(), sweep_states);
        let t = Instant::now();
        let p = optimize_with(&sweep_db, cfg, backend, engine)?;
        let dt = t.elapsed();
        max_zone_time = max_zone_time.max(dt);
        total_time += dt;
        if p.status == PlacementStatus::Optimal {
            beta += p.beta;
            assignments.extend(p.assignments);
            Vec::new()
        } else {
            intra_residual.clone()
        }
    } else {
        intra_residual.clone()
    };

    Ok(ZonedPlacement {
        assignments,
        beta,
        intra_residual,
        final_residual,
        max_zone_time,
        total_time,
        active_zones,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use crate::scenario::{random_nmdb, ScenarioParams};
    use dust_topology::{topologies, Link, PathEngine};

    fn cfg() -> DustConfig {
        DustConfig::paper_defaults().with_engine(PathEngine::HopBoundedDp)
    }

    #[test]
    fn fat_tree_zoning_respects_budget() {
        for k in [4usize, 8, 16] {
            let ft = FatTree::with_default_links(k);
            let z = zone_fat_tree(&ft);
            assert_eq!(z.zone_count(), k, "one zone per pod");
            assert_eq!(z.max_zone_size(), k + k / 4, "pod + its core share");
            assert!(z.max_zone_size() <= 80 || k > 64, "paper's 80-node budget");
            // every node assigned exactly once
            let total: usize = z.zones.iter().map(Vec::len).sum();
            assert_eq!(total, ft.node_count());
        }
    }

    #[test]
    fn bfs_zoning_covers_everything_within_budget() {
        let g = topologies::ring(50, Link::default());
        let z = zone_by_bfs(&g, 12);
        assert!(z.max_zone_size() <= 12);
        let total: usize = z.zones.iter().map(Vec::len).sum();
        assert_eq!(total, 50);
        // membership consistent with lists
        for (zi, zone) in z.zones.iter().enumerate() {
            for n in zone {
                assert_eq!(z.zone_of[n.index()], zi);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_zone_size_rejected() {
        let g = topologies::ring(4, Link::default());
        zone_by_bfs(&g, 0);
    }

    #[test]
    fn zoned_equals_global_when_one_zone() {
        let ft = FatTree::with_default_links(4);
        let c = cfg();
        let nmdb = random_nmdb(&ft.graph, &c, &ScenarioParams::default(), 5);
        let zoning = Zoning::from_membership(vec![0; ft.node_count()]);
        let global = optimize(&nmdb, &c, SolverBackend::Transportation);
        let zoned = optimize_zoned(&nmdb, &c, &zoning, SolverBackend::Transportation, false);
        if global.status == PlacementStatus::Optimal {
            assert!((zoned.beta - global.beta).abs() < 1e-6 * (1.0 + global.beta.abs()));
            assert!(zoned.final_residual.is_empty());
        }
    }

    #[test]
    fn zoned_beta_never_beats_global() {
        // restricting candidates to a zone can only worsen (or match) the
        // optimum whenever both fully place
        let ft = FatTree::with_default_links(4);
        let c = cfg();
        let zoning = zone_fat_tree(&ft);
        let mut compared = 0;
        for seed in 0..30u64 {
            let nmdb = random_nmdb(&ft.graph, &c, &ScenarioParams::default(), seed);
            let global = optimize(&nmdb, &c, SolverBackend::Transportation);
            let zoned = optimize_zoned(&nmdb, &c, &zoning, SolverBackend::Transportation, false);
            if global.status == PlacementStatus::Optimal && zoned.final_residual.is_empty() {
                assert!(
                    zoned.beta >= global.beta - 1e-6 * (1.0 + global.beta.abs()),
                    "seed {seed}: zoned {} < global {}",
                    zoned.beta,
                    global.beta
                );
                compared += 1;
            }
        }
        assert!(compared > 0, "need at least one comparable scenario");
    }

    #[test]
    fn cross_zone_sweep_reduces_residual() {
        // construct a state where one pod is overloaded beyond its own
        // spare capacity, forcing cross-zone placement
        let ft = FatTree::with_default_links(4);
        let c = cfg();
        let zoning = zone_fat_tree(&ft);
        let pod0: Vec<NodeId> = zoning.zones[0].clone();
        let states: Vec<NodeState> = ft
            .graph
            .nodes()
            .map(|n| {
                if pod0.contains(&n) {
                    NodeState::new(95.0, 50.0) // every pod-0 node busy
                } else {
                    NodeState::new(10.0, 10.0) // everyone else idle
                }
            })
            .collect();
        let nmdb = Nmdb::new(ft.graph.clone(), states);
        let without = optimize_zoned(&nmdb, &c, &zoning, SolverBackend::Transportation, false);
        assert!(!without.final_residual.is_empty(), "pod 0 must be unable to place internally");
        let with = optimize_zoned(&nmdb, &c, &zoning, SolverBackend::Transportation, true);
        assert!(with.final_residual.is_empty(), "sweep must place the leftovers");
        let total_cs = nmdb.total_cs(&c);
        assert_eq!(with.residual_rate_percent(total_cs), 0.0);
        assert!(without.residual_rate_percent(total_cs) > 0.0);
    }

    #[test]
    fn zoned_assignments_respect_capacity_globally() {
        let ft = FatTree::with_default_links(8);
        let c = cfg();
        let zoning = zone_fat_tree(&ft);
        let nmdb = random_nmdb(&ft.graph, &c, &ScenarioParams::default(), 11);
        let z = optimize_zoned(&nmdb, &c, &zoning, SolverBackend::Transportation, true);
        for n in nmdb.graph.nodes() {
            let got: f64 = z.assignments.iter().filter(|a| a.to == n).map(|a| a.amount).sum();
            assert!(
                got <= nmdb.cd(n, &c) + 1e-6,
                "{n:?} absorbed {got} beyond Cd {}",
                nmdb.cd(n, &c)
            );
        }
        // every busy node's placed + residual == its Cs
        for b in nmdb.busy_nodes(&c) {
            let placed: f64 = z.assignments.iter().filter(|a| a.from == b).map(|a| a.amount).sum();
            let resid: f64 = z.final_residual.iter().filter(|(n, _)| *n == b).map(|(_, r)| r).sum();
            assert!(
                (placed + resid - nmdb.cs(b, &c)).abs() < 1e-6,
                "{b:?}: placed {placed} + residual {resid} != Cs {}",
                nmdb.cs(b, &c)
            );
        }
    }

    #[test]
    fn max_zone_time_bounds_parallel_latency() {
        let ft = FatTree::with_default_links(8);
        let c = cfg();
        let zoning = zone_fat_tree(&ft);
        let nmdb = random_nmdb(&ft.graph, &c, &ScenarioParams::default(), 3);
        let z = optimize_zoned(&nmdb, &c, &zoning, SolverBackend::Transportation, false);
        assert!(z.max_zone_time <= z.total_time);
        if z.active_zones > 1 {
            assert!(z.max_zone_time < z.total_time);
        }
    }
}
