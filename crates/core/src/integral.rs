//! Integral placement: offloading *indivisible* monitoring agents.
//!
//! The paper's published model (Eq. 3) relaxes `x_ij` to continuous
//! capacity-percent. In a real deployment the unit of offloading is a
//! whole monitor agent (§V-A moves entire agents); this module solves that
//! integer version with the branch-and-bound layer of `dust-lp`:
//!
//! ```text
//! min  Σ_u Σ_j w_u · T_rmin(owner(u), j) · y_uj
//! s.t. Σ_{u: owner(u)=i, j} w_u · y_uj ≥ Cs_i       (de-busy every i)
//!      Σ_u w_u · y_uj ≤ Cd_j                        (capacity, Eq. 3a)
//!      Σ_j y_uj ≤ 1,  y_uj ∈ {0,1}                  (a unit moves once)
//! ```
//!
//! The continuous optimum of Eq. 3 is a lower bound on this objective;
//! tests pin that dominance.

use crate::config::DustConfig;
use crate::error::DustError;
use crate::state::Nmdb;
use dust_lp::{solve_mip_with, Cmp, MipOptions, Problem, Status, Var};
use dust_topology::{CostEngine, NodeId};

/// One indivisible unit of monitoring workload (e.g. a monitor agent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkUnit {
    /// The Busy node this unit currently runs on.
    pub owner: NodeId,
    /// Device-level CPU share of the unit, capacity-percent.
    pub weight: f64,
}

/// One accepted integral move.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitAssignment {
    /// Index into the input `units` slice.
    pub unit: usize,
    /// Destination node.
    pub to: NodeId,
}

/// Result of an integral placement.
#[derive(Debug, Clone)]
pub struct IntegralPlacement {
    /// Whether a feasible integral placement exists.
    pub feasible: bool,
    /// Unit moves (empty when infeasible).
    pub moves: Vec<UnitAssignment>,
    /// Objective `Σ w_u · T_rmin · y` (NaN when infeasible).
    pub beta: f64,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
}

/// Solve the agent-level integral placement.
///
/// `units` lists the movable workload of *every* busy node; units owned by
/// non-busy nodes are ignored. Returns infeasible when no subset of unit
/// moves can bring every Busy node to or below `C_max` within candidate
/// capacities.
pub fn optimize_integral(nmdb: &Nmdb, cfg: &DustConfig, units: &[WorkUnit]) -> IntegralPlacement {
    cfg.validate().expect("invalid DustConfig");
    for u in units {
        assert!(
            u.weight.is_finite() && u.weight >= 0.0,
            "unit weight must be finite and >= 0, got {}",
            u.weight
        );
    }
    crate::PlacementRequest::new(nmdb, cfg)
        .integral(units)
        .run_integral()
        .expect("config and unit weights validated above")
}

/// Agent-level integral placement with an explicit shared [`CostEngine`].
///
/// Identical model to [`optimize_integral`], but the `T_rmin` matrix is
/// priced through `engine` and invalid inputs surface as
/// [`DustError::BadConfig`] instead of panics.
pub fn optimize_integral_with(
    nmdb: &Nmdb,
    cfg: &DustConfig,
    units: &[WorkUnit],
    engine: &CostEngine,
) -> Result<IntegralPlacement, DustError> {
    cfg.validate().map_err(DustError::BadConfig)?;
    let busy = nmdb.busy_nodes(cfg);
    let candidates = nmdb.candidate_nodes(cfg);
    if busy.is_empty() {
        return Ok(IntegralPlacement { feasible: true, moves: Vec::new(), beta: 0.0, nodes: 0 });
    }
    for u in units {
        if !(u.weight.is_finite() && u.weight >= 0.0) {
            return Err(DustError::BadConfig(format!(
                "unit weight must be finite and >= 0, got {}",
                u.weight
            )));
        }
    }
    let data: Vec<f64> = busy.iter().map(|&b| nmdb.state(b).data_mb).collect();
    let costs =
        engine.build_matrix(&nmdb.graph, &busy, &candidates, &data, cfg.max_hop, cfg.path_engine);
    let busy_row = |n: NodeId| busy.iter().position(|&b| b == n);

    // units that belong to busy nodes, in input order
    let movable: Vec<(usize, &WorkUnit, usize)> = units
        .iter()
        .enumerate()
        .filter_map(|(i, u)| busy_row(u.owner).map(|row| (i, u, row)))
        .collect();

    let mut p = Problem::new();
    // y[(movable idx, candidate idx)]
    let mut y: Vec<Vec<Option<Var>>> = Vec::with_capacity(movable.len());
    for &(_, u, row) in &movable {
        let mut per_cand = Vec::with_capacity(candidates.len());
        for c in 0..candidates.len() {
            let t = costs.at(row, c);
            if t.is_finite() {
                per_cand.push(Some(p.add_bool(u.weight * t)));
            } else {
                per_cand.push(None);
            }
        }
        y.push(per_cand);
    }
    // each unit moves at most once
    for row in &y {
        let terms: Vec<_> = row.iter().flatten().map(|&v| (v, 1.0)).collect();
        if !terms.is_empty() {
            p.add_constraint(&terms, Cmp::Le, 1.0);
        }
    }
    // de-busy every busy node: Σ moved weight ≥ Cs_i
    for &b in &busy {
        let cs = nmdb.cs(b, cfg);
        let terms: Vec<_> = movable
            .iter()
            .zip(&y)
            .filter(|((_, u, _), _)| u.owner == b)
            .flat_map(|((_, u, _), row)| row.iter().flatten().map(move |&v| (v, u.weight)))
            .collect();
        if terms.is_empty() && cs > 1e-9 {
            return Ok(IntegralPlacement {
                feasible: false,
                moves: Vec::new(),
                beta: f64::NAN,
                nodes: 0,
            });
        }
        p.add_constraint(&terms, Cmp::Ge, cs);
    }
    // candidate capacity (Eq. 3a)
    for (c, &o) in candidates.iter().enumerate() {
        let terms: Vec<_> = movable
            .iter()
            .zip(&y)
            .filter_map(|((_, u, _), row)| row[c].map(|v| (v, u.weight)))
            .collect();
        if !terms.is_empty() {
            p.add_constraint(&terms, Cmp::Le, nmdb.cd(o, cfg));
        }
    }

    let sol = solve_mip_with(&p, MipOptions::default(), &dust_obs::ObsHandle::disabled());
    if sol.status != Status::Optimal {
        return Ok(IntegralPlacement {
            feasible: false,
            moves: Vec::new(),
            beta: f64::NAN,
            nodes: sol.nodes,
        });
    }
    let mut moves = Vec::new();
    for (m, ((i, _, _), row)) in movable.iter().zip(&y).enumerate() {
        let _ = m;
        for (c, v) in row.iter().enumerate() {
            if let Some(v) = v {
                if sol.x[v.index()] > 0.5 {
                    moves.push(UnitAssignment { unit: *i, to: candidates[c] });
                }
            }
        }
    }
    Ok(IntegralPlacement { feasible: true, moves, beta: sol.objective, nodes: sol.nodes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{optimize, PlacementStatus, SolverBackend};
    use crate::state::NodeState;
    use dust_topology::{topologies, Link, PathEngine};

    fn cfg() -> DustConfig {
        DustConfig::paper_defaults().with_engine(PathEngine::HopBoundedDp)
    }

    /// 0 (busy, Cs = 10) — 1 (candidate, Cd = 30).
    fn simple() -> Nmdb {
        let g = topologies::line(2, Link::default());
        Nmdb::new(g, vec![NodeState::new(90.0, 100.0), NodeState::new(20.0, 10.0)])
    }

    fn units_of(owner: u32, weights: &[f64]) -> Vec<WorkUnit> {
        weights.iter().map(|&w| WorkUnit { owner: NodeId(owner), weight: w }).collect()
    }

    #[test]
    fn moves_exactly_enough_units() {
        let db = simple();
        // units 6+6+3: must move at least 10 → optimal subset {6, 6} (12)
        // or {6, 3} = 9 < 10 infeasible subset... {6,6}=12 or {6,6,3}=15
        let units = units_of(0, &[6.0, 6.0, 3.0]);
        let r = optimize_integral(&db, &cfg(), &units);
        assert!(r.feasible);
        let moved: f64 = r.moves.iter().map(|m| units[m.unit].weight).sum();
        assert!(moved >= 10.0, "moved {moved}");
        assert!((moved - 12.0).abs() < 1e-9, "cheapest covering subset is 6+6");
    }

    #[test]
    fn integral_beta_at_least_continuous() {
        let db = simple();
        let c = cfg();
        let cont = optimize(&db, &c, SolverBackend::Transportation);
        assert_eq!(cont.status, PlacementStatus::Optimal);
        let units = units_of(0, &[4.0, 4.0, 4.0]);
        let r = optimize_integral(&db, &c, &units);
        assert!(r.feasible);
        // continuous moves exactly 10; integral must move 12 (3 × 4) at the
        // same per-unit cost → strictly larger beta
        assert!(r.beta >= cont.beta - 1e-9, "integral {} < continuous {}", r.beta, cont.beta);
        assert!(r.beta > cont.beta, "rounding up must cost more here");
    }

    #[test]
    fn infeasible_when_units_cannot_cover_excess() {
        let db = simple();
        // only 4 points of movable weight but Cs = 10
        let r = optimize_integral(&db, &cfg(), &units_of(0, &[2.0, 2.0]));
        assert!(!r.feasible);
    }

    #[test]
    fn infeasible_when_capacity_too_small() {
        let g = topologies::line(2, Link::default());
        // Cs = 19, Cd = 1: continuous also infeasible
        let db = Nmdb::new(g, vec![NodeState::new(99.0, 10.0), NodeState::new(49.0, 1.0)]);
        let r = optimize_integral(&db, &cfg(), &units_of(0, &[19.0]));
        assert!(!r.feasible);
    }

    #[test]
    fn no_busy_nodes_is_trivially_feasible() {
        let g = topologies::line(2, Link::default());
        let db = Nmdb::new(g, vec![NodeState::new(10.0, 1.0), NodeState::new(10.0, 1.0)]);
        let r = optimize_integral(&db, &cfg(), &units_of(0, &[5.0]));
        assert!(r.feasible);
        assert!(r.moves.is_empty());
    }

    #[test]
    fn splits_units_across_candidates() {
        // star: busy hub, two candidates with 6 spare each; units 5+5 must split
        let g = topologies::star(3, Link::default());
        let db = Nmdb::new(
            g,
            vec![NodeState::new(90.0, 50.0), NodeState::new(44.0, 1.0), NodeState::new(44.0, 1.0)],
        );
        let r = optimize_integral(&db, &cfg(), &units_of(0, &[5.0, 5.0]));
        assert!(r.feasible);
        assert_eq!(r.moves.len(), 2);
        let dests: Vec<NodeId> = r.moves.iter().map(|m| m.to).collect();
        assert_ne!(dests[0], dests[1], "6-point candidates cannot both fit 10");
    }

    #[test]
    fn units_of_foreign_owners_ignored() {
        let db = simple();
        let mut units = units_of(0, &[10.0]);
        units.push(WorkUnit { owner: NodeId(1), weight: 99.0 }); // candidate's own unit
        let r = optimize_integral(&db, &cfg(), &units);
        assert!(r.feasible);
        assert!(r.moves.iter().all(|m| m.unit == 0), "only the busy node's unit moves");
    }

    #[test]
    fn two_busy_nodes_share_capacity_integrally() {
        // line 0-1-2: ends busy (Cs 5 each), middle candidate Cd 10 → exactly fits
        let g = topologies::line(3, Link::default());
        let db = Nmdb::new(
            g,
            vec![NodeState::new(85.0, 10.0), NodeState::new(40.0, 1.0), NodeState::new(85.0, 10.0)],
        );
        let mut units = units_of(0, &[5.0]);
        units.extend(units_of(2, &[5.0]));
        let r = optimize_integral(&db, &cfg(), &units);
        assert!(r.feasible);
        assert_eq!(r.moves.len(), 2);
        assert!(r.moves.iter().all(|m| m.to == NodeId(1)));
    }
}
