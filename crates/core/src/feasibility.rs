//! Feasibility analysis: the `Δ_io` parameter and infeasible-optimization
//! rate (Eq. 5, Fig. 7).
//!
//! The optimization of Eq. 3 is infeasible when Busy excess exceeds what
//! reachable candidates can absorb. The paper introduces
//! `Δ_io = (CO_max − x_min) / (100 − C_max)` to let operators pick
//! thresholds where infeasibility is rare (recommendation: `Δ_io ≥ 2`).
//! This module provides a cheap *capacity precheck* and the Monte-Carlo
//! io-rate estimator behind Fig. 7.

use crate::config::DustConfig;
use crate::optimizer::{optimize_with, PlacementStatus, SolverBackend};
use crate::scenario::{scenario_stream, ScenarioParams};
use crate::state::Nmdb;
use dust_topology::{CostEngine, Graph};

/// Aggregate-capacity precheck: `Σ Cs ≤ Σ Cd` is necessary (not
/// sufficient — routing/hop limits can still make Eq. 3 infeasible).
pub fn capacity_precheck(nmdb: &Nmdb, cfg: &DustConfig) -> bool {
    nmdb.total_cs(cfg) <= nmdb.total_cd(cfg) + 1e-9
}

/// One Fig. 7 measurement: thresholds, their `Δ_io`, and the observed
/// infeasible-optimization rate.
#[derive(Debug, Clone, Copy)]
pub struct IoRatePoint {
    /// Busy threshold used.
    pub c_max: f64,
    /// Candidate threshold used.
    pub co_max: f64,
    /// `Δ_io` for these thresholds (Eq. 5).
    pub delta_io: f64,
    /// Fraction of iterations whose optimization was infeasible, percent.
    pub io_rate_percent: f64,
    /// Iterations sampled.
    pub iterations: usize,
}

/// Estimate the infeasible-optimization rate for one configuration by
/// drawing `iterations` random network states (the paper's 1000-iteration
/// loop on the 4-k topology).
///
/// Iterations with no Busy node count as feasible (there is nothing to
/// place).
pub fn estimate_io_rate(
    graph: &Graph,
    cfg: &DustConfig,
    params: &ScenarioParams,
    seed: u64,
    iterations: usize,
) -> IoRatePoint {
    // One shared engine for the whole loop. Each iteration re-rolls link
    // utilizations (a fresh graph epoch), so rows never carry over between
    // iterations — retain only the current epoch to bound cache memory.
    let engine = CostEngine::new();
    let mut infeasible = 0usize;
    for nmdb in scenario_stream(graph, cfg, params, seed, iterations) {
        engine.retain_epoch(&nmdb.graph);
        let p = optimize_with(&nmdb, cfg, SolverBackend::Transportation, &engine)
            .expect("threshold configs are validated by the sweep caller");
        if p.status == PlacementStatus::Infeasible {
            infeasible += 1;
        }
    }
    IoRatePoint {
        c_max: cfg.c_max,
        co_max: cfg.co_max,
        delta_io: cfg.delta_io(),
        io_rate_percent: 100.0 * infeasible as f64 / iterations.max(1) as f64,
        iterations,
    }
}

/// Sweep a set of threshold pairs and report `(Δ_io, io rate)` for each —
/// the series Fig. 7 plots.
pub fn io_rate_sweep(
    graph: &Graph,
    base: &DustConfig,
    thresholds: &[(f64, f64)],
    params: &ScenarioParams,
    seed: u64,
    iterations: usize,
) -> Vec<IoRatePoint> {
    thresholds
        .iter()
        .map(|&(c_max, co_max)| {
            let cfg = base.with_thresholds(c_max, co_max, base.x_min);
            cfg.validate().expect("invalid threshold pair in sweep");
            estimate_io_rate(graph, &cfg, params, seed, iterations)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NodeState;
    use dust_topology::{topologies, FatTree, Link};

    #[test]
    fn precheck_matches_totals() {
        let g = topologies::line(2, Link::default());
        let cfg = DustConfig::paper_defaults();
        let ok = Nmdb::new(g.clone(), vec![NodeState::new(85.0, 1.0), NodeState::new(20.0, 1.0)]);
        assert!(capacity_precheck(&ok, &cfg));
        let bad = Nmdb::new(g, vec![NodeState::new(99.0, 1.0), NodeState::new(49.5, 1.0)]);
        assert!(!capacity_precheck(&bad, &cfg));
    }

    #[test]
    fn io_rate_decreases_with_delta() {
        // Tight thresholds (small Δ_io) must be infeasible more often than
        // generous ones (large Δ_io) — the Fig. 7 anticorrelation.
        let ft = FatTree::with_default_links(4);
        let params = ScenarioParams::default();
        let base = DustConfig::paper_defaults();
        let tight = base.with_thresholds(75.0, 25.0, 5.0); // Δ = 0.8
        let loose = base.with_thresholds(90.0, 45.0, 5.0); // Δ = 4.0
        let r_tight = estimate_io_rate(&ft.graph, &tight, &params, 11, 60);
        let r_loose = estimate_io_rate(&ft.graph, &loose, &params, 11, 60);
        assert!(r_tight.delta_io < r_loose.delta_io);
        assert!(
            r_tight.io_rate_percent >= r_loose.io_rate_percent,
            "tight {} vs loose {}",
            r_tight.io_rate_percent,
            r_loose.io_rate_percent
        );
    }

    #[test]
    fn sweep_reports_each_pair() {
        let ft = FatTree::with_default_links(4);
        let base = DustConfig::paper_defaults();
        let pts = io_rate_sweep(
            &ft.graph,
            &base,
            &[(80.0, 40.0), (85.0, 45.0)],
            &ScenarioParams::default(),
            3,
            20,
        );
        assert_eq!(pts.len(), 2);
        assert!((pts[0].delta_io - (40.0 - 5.0) / 20.0).abs() < 1e-12);
        assert_eq!(pts[0].iterations, 20);
    }

    #[test]
    fn io_rate_zero_when_no_busy_possible() {
        // c_max = 100 means nodes are never Busy (U[x_min,100] hits 100 with
        // probability ~0) → io rate 0
        let ft = FatTree::with_default_links(4);
        let cfg = DustConfig::paper_defaults().with_thresholds(100.0, 50.0, 5.0);
        let r = estimate_io_rate(&ft.graph, &cfg, &ScenarioParams::default(), 5, 30);
        assert_eq!(r.io_rate_percent, 0.0);
    }
}
