//! Heuristic-vs-optimization success classification (Fig. 9).
//!
//! For every random network state the paper compares Algorithm 1 with the
//! full optimization and buckets the outcome: the heuristic offloaded
//! **all** overloaded nodes (18.37 % of iterations), offloaded **none**
//! while the optimization succeeded (6.13 %), or offloaded **part** of the
//! excess with the optimization placing the rest (75.5 %).

use crate::config::DustConfig;
use crate::heuristic::heuristic;
use crate::optimizer::{optimize, PlacementStatus, SolverBackend};
use crate::state::Nmdb;

/// Bucket for one iteration's heuristic-vs-optimization comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuccessClass {
    /// Heuristic fully offloaded every Busy node (one-hop sufficed).
    HeuristicFull,
    /// Heuristic placed some but not all excess.
    HeuristicPartial,
    /// Heuristic placed nothing; the optimization found a placement.
    HeuristicNone,
    /// Even the optimization was infeasible (excluded from Fig. 9's split,
    /// tracked separately — this is Fig. 7 territory).
    OptimizationInfeasible,
    /// No Busy node appeared; nothing to compare.
    NoBusyNodes,
}

/// Tallies over many iterations.
#[derive(Debug, Clone, Default)]
pub struct SuccessTally {
    /// Iterations where the heuristic fully offloaded.
    pub full: usize,
    /// Iterations where it partially offloaded.
    pub partial: usize,
    /// Iterations where it offloaded nothing but optimization succeeded.
    pub none: usize,
    /// Iterations where the optimization itself was infeasible.
    pub infeasible: usize,
    /// Iterations with no Busy nodes.
    pub trivial: usize,
}

impl SuccessTally {
    /// Iterations that Fig. 9 buckets (optimization feasible, busy nodes
    /// present).
    pub fn comparable(&self) -> usize {
        self.full + self.partial + self.none
    }

    /// Percentages `(full, partial, none)` over comparable iterations.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let n = self.comparable().max(1) as f64;
        (
            100.0 * self.full as f64 / n,
            100.0 * self.partial as f64 / n,
            100.0 * self.none as f64 / n,
        )
    }

    /// Record one classified iteration.
    pub fn record(&mut self, class: SuccessClass) {
        match class {
            SuccessClass::HeuristicFull => self.full += 1,
            SuccessClass::HeuristicPartial => self.partial += 1,
            SuccessClass::HeuristicNone => self.none += 1,
            SuccessClass::OptimizationInfeasible => self.infeasible += 1,
            SuccessClass::NoBusyNodes => self.trivial += 1,
        }
    }
}

/// Classify one network state by running both algorithms on it.
pub fn classify_iteration(nmdb: &Nmdb, cfg: &DustConfig) -> SuccessClass {
    let opt = optimize(nmdb, cfg, SolverBackend::Transportation);
    match opt.status {
        PlacementStatus::NoBusyNodes => return SuccessClass::NoBusyNodes,
        PlacementStatus::Infeasible => return SuccessClass::OptimizationInfeasible,
        PlacementStatus::Optimal => {}
    }
    let h = heuristic(nmdb, cfg);
    if h.fully_offloaded() {
        SuccessClass::HeuristicFull
    } else if h.nothing_offloaded() {
        SuccessClass::HeuristicNone
    } else {
        SuccessClass::HeuristicPartial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{scenario_stream, ScenarioParams};
    use crate::state::NodeState;
    use dust_topology::{topologies, FatTree, Link};

    fn cfg() -> DustConfig {
        DustConfig::paper_defaults()
    }

    #[test]
    fn full_when_one_hop_suffices() {
        let g = topologies::line(2, Link::default());
        let db = Nmdb::new(g, vec![NodeState::new(90.0, 1.0), NodeState::new(20.0, 1.0)]);
        assert_eq!(classify_iteration(&db, &cfg()), SuccessClass::HeuristicFull);
    }

    #[test]
    fn none_when_candidate_beyond_one_hop() {
        let g = topologies::line(3, Link::default());
        let db = Nmdb::new(
            g,
            vec![NodeState::new(90.0, 1.0), NodeState::new(60.0, 1.0), NodeState::new(20.0, 1.0)],
        );
        assert_eq!(classify_iteration(&db, &cfg()), SuccessClass::HeuristicNone);
    }

    #[test]
    fn partial_when_neighbor_too_small() {
        // neighbor takes 5 of 20; remote candidate absorbs the rest for the ILP
        let g = topologies::line(3, Link::default());
        let db = Nmdb::new(
            g,
            vec![
                NodeState::new(100.0, 1.0),
                NodeState::new(45.0, 1.0), // spare 5, adjacent
                NodeState::new(5.0, 1.0),  // spare 45, two hops
            ],
        );
        assert_eq!(classify_iteration(&db, &cfg()), SuccessClass::HeuristicPartial);
    }

    #[test]
    fn infeasible_and_trivial_classes() {
        let g = topologies::line(2, Link::default());
        let infeasible =
            Nmdb::new(g.clone(), vec![NodeState::new(99.0, 1.0), NodeState::new(49.5, 1.0)]);
        assert_eq!(classify_iteration(&infeasible, &cfg()), SuccessClass::OptimizationInfeasible);
        let trivial = Nmdb::new(g, vec![NodeState::new(10.0, 1.0), NodeState::new(10.0, 1.0)]);
        assert_eq!(classify_iteration(&trivial, &cfg()), SuccessClass::NoBusyNodes);
    }

    #[test]
    fn tally_percentages_sum_to_100() {
        let mut t = SuccessTally::default();
        for c in [
            SuccessClass::HeuristicFull,
            SuccessClass::HeuristicPartial,
            SuccessClass::HeuristicPartial,
            SuccessClass::HeuristicNone,
            SuccessClass::OptimizationInfeasible,
            SuccessClass::NoBusyNodes,
        ] {
            t.record(c);
        }
        assert_eq!(t.comparable(), 4);
        let (f, p, n) = t.percentages();
        assert!((f + p + n - 100.0).abs() < 1e-9);
        assert!((f - 25.0).abs() < 1e-9);
        assert!((p - 50.0).abs() < 1e-9);
    }

    #[test]
    fn fat_tree_iterations_produce_mostly_partial_or_full() {
        // On the 4-k fat-tree with paper thresholds the dominant Fig. 9
        // bucket is 'partial'; assert the qualitative ordering on a small
        // sample: partial > none.
        let ft = FatTree::with_default_links(4);
        let c = cfg();
        let mut tally = SuccessTally::default();
        for db in scenario_stream(&ft.graph, &c, &ScenarioParams::default(), 21, 60) {
            tally.record(classify_iteration(&db, &c));
        }
        assert!(tally.comparable() > 0);
        assert!(
            tally.partial >= tally.none,
            "partial ({}) should dominate none ({})",
            tally.partial,
            tally.none
        );
    }
}
