//! DUST placement engine — the paper's primary contribution (§IV).
//!
//! Implements the network-monitoring placement problem end to end:
//!
//! * [`config`] — user-defined thresholds `C_max`, `CO_max`, `x_min`, hop
//!   bounds, and the `Δ_io` feasibility parameter (Eq. 5);
//! * [`state`] — per-node state, role classification (Busy /
//!   Offload-candidate / Neutral / None-offloading, §III-B), and the NMDB
//!   snapshot with `Cs`/`Cd` aggregates (Eq. 3c/3d);
//! * [`error`] — the typed [`DustError`] every fallible entry point
//!   returns;
//! * [`request`] — the unified [`PlacementRequest`] builder that fronts
//!   all four placement strategies over one shared, parallel
//!   [`CostEngine`](dust_topology::CostEngine);
//! * [`optimizer`] — the min-cost "ILP" of Eq. 3 solved exactly over
//!   controllable routes, with route extraction;
//! * [`heuristic`](mod@heuristic) — Algorithm 1 (one-hop candidates) plus HFR (Eq. 4) and
//!   a generalized h-hop variant;
//! * [`feasibility`] — `Δ_io` sweeps and the infeasible-optimization rate
//!   estimator behind Fig. 7;
//! * [`success`] — the heuristic-vs-optimization outcome split of Fig. 9;
//! * [`scenario`] — seeded random network states for all Monte-Carlo
//!   experiments.
//!
//! # Example
//!
//! ```
//! use dust_core::{DustConfig, NodeState, Nmdb, PlacementRequest, SolverBackend};
//! use dust_topology::{topologies, Link};
//!
//! // 0 (busy) — 1 (neutral) — 2 (candidate)
//! let g = topologies::line(3, Link::default());
//! let nmdb = Nmdb::new(g, vec![
//!     NodeState::new(92.0, 150.0),
//!     NodeState::new(60.0, 10.0),
//!     NodeState::new(25.0, 10.0),
//! ]);
//! let cfg = DustConfig::paper_defaults();
//! let report = PlacementRequest::new(&nmdb, &cfg)
//!     .backend(SolverBackend::Transportation)
//!     .solve()
//!     .expect("feasible placement");
//! assert!((report.total_offloaded() - 12.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod diff;
pub mod error;
pub mod feasibility;
pub mod heuristic;
pub mod integral;
pub mod optimizer;
pub mod request;
pub mod scenario;
pub mod state;
pub mod success;
pub mod zoning;

pub use config::DustConfig;
pub use diff::{apply_actions, placement_diff, TransferAction};
pub use error::DustError;
pub use feasibility::{capacity_precheck, estimate_io_rate, io_rate_sweep, IoRatePoint};
pub use heuristic::{heuristic, heuristic_with, heuristic_with_hops, HeuristicOutcome};
pub use integral::{
    optimize_integral, optimize_integral_with, IntegralPlacement, UnitAssignment, WorkUnit,
};
pub use optimizer::{
    optimize, optimize_with, optimize_with_path, optimize_with_path_warm, Assignment, Placement,
    PlacementStatus, SolvePath, SolverBackend, WarmState,
};
pub use request::{PlacementReport, PlacementRequest, ReportOutcome};
pub use scenario::{random_nmdb, scenario_stream, ScenarioParams};
pub use state::{classify, Nmdb, NodeState, Role};
pub use success::{classify_iteration, SuccessClass, SuccessTally};
pub use zoning::{
    optimize_zoned, optimize_zoned_with, zone_by_bfs, zone_fat_tree, ZonedPlacement, Zoning,
};
