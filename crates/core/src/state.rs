//! Node state, roles, and the Network Monitoring Data Base (NMDB).
//!
//! The DUST-Manager keeps "the current network status and utilization …
//! and nodes' monitoring and offloading capabilities" in the NMDB (§III-B).
//! Here the NMDB is a snapshot of the topology plus one [`NodeState`] per
//! node; role classification (§III-B) and the `Cs`/`Cd` aggregates
//! (Eq. 3c/3d) derive from it.

use crate::config::DustConfig;
use dust_topology::{Graph, NodeId};

/// Dynamic per-node state reported via `STAT` messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeState {
    /// Utilized capacity `C_i` in percent `[0, 100]`.
    pub utilization: f64,
    /// In-device monitoring data volume `D_i` in megabits — what must move
    /// to a remote node if this node offloads.
    pub data_mb: f64,
    /// Whether the node answered the `Offload-capable` query with `1`
    /// (§III-B); `false` marks a None-offloading node excluded from both
    /// sides of the placement.
    pub offload_capable: bool,
    /// Heterogeneity coefficient κ: one capacity-percent offloaded *to*
    /// this node consumes κ percent here. The paper's homogeneity
    /// assumption is κ = 1; "in industry implementations, it can be
    /// adjusted with a coefficient factor relating two endpoint platform
    /// capacities" (§IV-A). κ < 1 models a beefier host (DPU/server),
    /// κ > 1 a weaker one.
    pub capacity_factor: f64,
}

impl NodeState {
    /// A capable node with the given utilization and data volume.
    ///
    /// # Panics
    /// Panics if `utilization` is outside `[0, 100]` or `data_mb < 0`.
    pub fn new(utilization: f64, data_mb: f64) -> Self {
        assert!(
            (0.0..=100.0).contains(&utilization),
            "utilization must be in [0,100], got {utilization}"
        );
        assert!(data_mb >= 0.0 && data_mb.is_finite(), "data_mb must be >= 0, got {data_mb}");
        NodeState { utilization, data_mb, offload_capable: true, capacity_factor: 1.0 }
    }

    /// Mark the node as refusing to participate in offloading.
    pub fn non_offloading(mut self) -> Self {
        self.offload_capable = false;
        self
    }

    /// Set the heterogeneity coefficient κ (§IV-A industry note).
    ///
    /// # Panics
    /// Panics unless `kappa` is finite and positive.
    pub fn with_capacity_factor(mut self, kappa: f64) -> Self {
        assert!(kappa.is_finite() && kappa > 0.0, "capacity factor must be > 0, got {kappa}");
        self.capacity_factor = kappa;
        self
    }
}

/// Role a node holds in one optimization round (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// `C_i ≥ C_max`: must offload `Cs_i = C_i − C_max`.
    Busy,
    /// `C_j ≤ CO_max`: may absorb up to `Cd_j = CO_max − C_j`.
    OffloadCandidate,
    /// Utilization between the thresholds: neither offloads nor absorbs,
    /// but still relays traffic (zero relay cost is assumed, §IV-A).
    Neutral,
    /// Declared `Offload-capable = 0`; excluded from the placement.
    NonOffloading,
}

/// Classify one node's role under a configuration.
pub fn classify(state: &NodeState, cfg: &DustConfig) -> Role {
    if !state.offload_capable {
        return Role::NonOffloading;
    }
    if state.utilization >= cfg.c_max {
        Role::Busy
    } else if state.utilization <= cfg.co_max {
        Role::OffloadCandidate
    } else {
        Role::Neutral
    }
}

/// Snapshot of the network the optimization engine consumes.
#[derive(Debug, Clone)]
pub struct Nmdb {
    /// Topology with live link utilizations.
    pub graph: Graph,
    /// One state per node, indexable by `NodeId::index`.
    pub states: Vec<NodeState>,
}

impl Nmdb {
    /// Bundle a topology with per-node states.
    ///
    /// # Panics
    /// Panics if `states.len() != graph.node_count()`.
    pub fn new(graph: Graph, states: Vec<NodeState>) -> Self {
        assert_eq!(states.len(), graph.node_count(), "one NodeState per graph node required");
        Nmdb { graph, states }
    }

    /// State of one node.
    pub fn state(&self, n: NodeId) -> &NodeState {
        &self.states[n.index()]
    }

    /// Mutable state of one node (applying `STAT` updates).
    pub fn state_mut(&mut self, n: NodeId) -> &mut NodeState {
        &mut self.states[n.index()]
    }

    /// Role of one node under `cfg`.
    pub fn role(&self, n: NodeId, cfg: &DustConfig) -> Role {
        classify(&self.states[n.index()], cfg)
    }

    /// The Busy set `V_b` (ascending node order, so results are
    /// deterministic).
    pub fn busy_nodes(&self, cfg: &DustConfig) -> Vec<NodeId> {
        self.graph.nodes().filter(|&n| self.role(n, cfg) == Role::Busy).collect()
    }

    /// The Offload-candidate set `V_o`.
    pub fn candidate_nodes(&self, cfg: &DustConfig) -> Vec<NodeId> {
        self.graph.nodes().filter(|&n| self.role(n, cfg) == Role::OffloadCandidate).collect()
    }

    /// Excess load `Cs_i = C_i − C_max` of a Busy node (Eq. 3c).
    ///
    /// Returns 0 for non-busy nodes.
    pub fn cs(&self, n: NodeId, cfg: &DustConfig) -> f64 {
        if self.role(n, cfg) == Role::Busy {
            self.states[n.index()].utilization - cfg.c_max
        } else {
            0.0
        }
    }

    /// Spare capacity `Cd_j = CO_max − C_j` of a candidate (Eq. 3d).
    ///
    /// Returns 0 for non-candidates.
    pub fn cd(&self, n: NodeId, cfg: &DustConfig) -> f64 {
        let s = &self.states[n.index()];
        if self.role(n, cfg) == Role::OffloadCandidate {
            // One source-percent consumes κ destination-percent, so the
            // absorbable amount in *source* units is headroom / κ. With the
            // paper's homogeneity assumption (κ = 1) this is Eq. 3d exactly.
            (cfg.co_max - s.utilization) / s.capacity_factor
        } else {
            0.0
        }
    }

    /// Total load to shed: `Cs = Σ_i Cs_i` (§IV-B).
    pub fn total_cs(&self, cfg: &DustConfig) -> f64 {
        self.graph.nodes().map(|n| self.cs(n, cfg)).sum()
    }

    /// Total spare capacity: `Cd = Σ_j Cd_j` (§IV-B).
    pub fn total_cd(&self, cfg: &DustConfig) -> f64 {
        self.graph.nodes().map(|n| self.cd(n, cfg)).sum()
    }

    /// Apply an accepted offload of `amount` capacity-percent from `from`
    /// to `to` under the homogeneity assumption (§IV-A): the destination's
    /// utilization rises by exactly what the source sheds.
    ///
    /// # Panics
    /// Panics if the transfer would push either node outside `[0, 100]`.
    pub fn apply_transfer(&mut self, from: NodeId, to: NodeId, amount: f64) {
        assert!(amount >= 0.0, "transfer amount must be >= 0, got {amount}");
        let src = &mut self.states[from.index()];
        assert!(
            src.utilization - amount >= -1e-9,
            "transfer {amount} exceeds source utilization {}",
            src.utilization
        );
        src.utilization = (src.utilization - amount).max(0.0);
        let dst = &mut self.states[to.index()];
        let landed = amount * dst.capacity_factor;
        assert!(
            dst.utilization + landed <= 100.0 + 1e-9,
            "transfer {amount} (×κ = {landed}) would overload destination at {}",
            dst.utilization
        );
        dst.utilization = (dst.utilization + landed).min(100.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dust_topology::{topologies::line, Link};

    fn cfg() -> DustConfig {
        DustConfig::paper_defaults() // c_max 80, co_max 50, x_min 5
    }

    fn nmdb(utils: &[f64]) -> Nmdb {
        let g = line(utils.len(), Link::default());
        let states = utils.iter().map(|&u| NodeState::new(u, 100.0)).collect();
        Nmdb::new(g, states)
    }

    #[test]
    fn classify_all_roles() {
        let c = cfg();
        assert_eq!(classify(&NodeState::new(85.0, 1.0), &c), Role::Busy);
        assert_eq!(classify(&NodeState::new(80.0, 1.0), &c), Role::Busy); // boundary
        assert_eq!(classify(&NodeState::new(50.0, 1.0), &c), Role::OffloadCandidate); // boundary
        assert_eq!(classify(&NodeState::new(30.0, 1.0), &c), Role::OffloadCandidate);
        assert_eq!(classify(&NodeState::new(65.0, 1.0), &c), Role::Neutral);
        assert_eq!(classify(&NodeState::new(85.0, 1.0).non_offloading(), &c), Role::NonOffloading);
    }

    #[test]
    fn busy_and_candidate_sets() {
        let db = nmdb(&[90.0, 20.0, 65.0, 85.0, 40.0]);
        let c = cfg();
        assert_eq!(db.busy_nodes(&c), vec![NodeId(0), NodeId(3)]);
        assert_eq!(db.candidate_nodes(&c), vec![NodeId(1), NodeId(4)]);
    }

    #[test]
    fn cs_cd_formulas() {
        let db = nmdb(&[90.0, 20.0]);
        let c = cfg();
        assert!((db.cs(NodeId(0), &c) - 10.0).abs() < 1e-12);
        assert!((db.cd(NodeId(1), &c) - 30.0).abs() < 1e-12);
        // non-busy node has no excess, non-candidate no spare
        assert_eq!(db.cs(NodeId(1), &c), 0.0);
        assert_eq!(db.cd(NodeId(0), &c), 0.0);
        assert!((db.total_cs(&c) - 10.0).abs() < 1e-12);
        assert!((db.total_cd(&c) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_moves_utilization() {
        let mut db = nmdb(&[90.0, 20.0]);
        db.apply_transfer(NodeId(0), NodeId(1), 10.0);
        assert!((db.state(NodeId(0)).utilization - 80.0).abs() < 1e-12);
        assert!((db.state(NodeId(1)).utilization - 30.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "overload destination")]
    fn transfer_overload_rejected() {
        let mut db = nmdb(&[90.0, 95.0]);
        db.apply_transfer(NodeId(0), NodeId(1), 10.0);
    }

    #[test]
    #[should_panic(expected = "one NodeState per graph node")]
    fn state_count_mismatch_rejected() {
        let g = line(3, Link::default());
        Nmdb::new(g, vec![NodeState::new(10.0, 1.0)]);
    }

    #[test]
    fn capacity_factor_scales_cd_and_transfers() {
        let g = line(2, Link::default());
        let c = cfg();
        // a 2x-beefier host (κ = 0.5) absorbs twice the source units
        let db = Nmdb::new(
            g.clone(),
            vec![NodeState::new(90.0, 1.0), NodeState::new(20.0, 1.0).with_capacity_factor(0.5)],
        );
        assert!((db.cd(NodeId(1), &c) - 60.0).abs() < 1e-12, "30 headroom / 0.5");
        let mut db2 = db.clone();
        db2.apply_transfer(NodeId(0), NodeId(1), 10.0);
        // destination rose by 10 × 0.5 = 5
        assert!((db2.state(NodeId(1)).utilization - 25.0).abs() < 1e-12);
        // a weaker host (κ = 2) absorbs half and fills twice as fast
        let db3 = Nmdb::new(
            g,
            vec![NodeState::new(90.0, 1.0), NodeState::new(20.0, 1.0).with_capacity_factor(2.0)],
        );
        assert!((db3.cd(NodeId(1), &c) - 15.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity factor")]
    fn bad_capacity_factor_rejected() {
        NodeState::new(10.0, 1.0).with_capacity_factor(0.0);
    }

    #[test]
    fn non_offloading_excluded_from_both_sets() {
        let g = line(2, Link::default());
        let states = vec![
            NodeState::new(90.0, 1.0).non_offloading(),
            NodeState::new(10.0, 1.0).non_offloading(),
        ];
        let db = Nmdb::new(g, states);
        let c = cfg();
        assert!(db.busy_nodes(&c).is_empty());
        assert!(db.candidate_nodes(&c).is_empty());
    }
}
