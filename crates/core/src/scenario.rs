//! Seeded random scenario generation for the evaluation harness.
//!
//! The paper's simulator draws repeated random network states ("iterations",
//! §V-B) over a fixed topology: node utilizations in `[x_min, 100]`
//! (constraint 3e), dynamic link utilizations from the data plane, and
//! per-node monitoring data volumes. Everything is driven by an explicit
//! seed so every figure regenerates bit-for-bit.

use crate::config::DustConfig;
use crate::state::{Nmdb, NodeState};
use dust_topology::{Graph, SplitMix64};

/// Distribution parameters for one random network state.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioParams {
    /// Monitoring data volume `D_i` range in Mb.
    pub data_mb: (f64, f64),
    /// Dynamic link-utilization range (fraction of line rate in transit).
    pub link_utilization: (f64, f64),
    /// Probability a node answers `Offload-capable = 1`.
    pub offload_capable_prob: f64,
}

impl Default for ScenarioParams {
    /// Defaults modeled on the testbed: 10–500 Mb of telemetry per node,
    /// links 10–90 % utilized, every node willing to participate.
    fn default() -> Self {
        ScenarioParams {
            data_mb: (10.0, 500.0),
            link_utilization: (0.1, 0.9),
            offload_capable_prob: 1.0,
        }
    }
}

/// Draw a random network state over `graph` under `cfg` thresholds.
///
/// Node utilization is uniform in `[x_min, 100]` per constraint 3e, so the
/// fraction of Busy vs candidate nodes — and therefore the infeasibility
/// rate of Fig. 7 — is controlled entirely by the thresholds.
pub fn random_nmdb(graph: &Graph, cfg: &DustConfig, params: &ScenarioParams, seed: u64) -> Nmdb {
    let mut rng = SplitMix64::new(seed);
    let mut g = graph.clone();
    let (lo, hi) = params.link_utilization;
    assert!((0.0..=1.0).contains(&lo) && lo <= hi && hi <= 1.0, "bad link utilization range");
    g.retarget_utilization(|_, _| rng.range_f64(lo, hi));
    let states = (0..g.node_count())
        .map(|_| {
            let u = rng.range_f64(cfg.x_min, 100.0);
            let d = rng.range_f64(params.data_mb.0, params.data_mb.1);
            let s = NodeState::new(u, d);
            if rng.gen_bool(params.offload_capable_prob) {
                s
            } else {
                s.non_offloading()
            }
        })
        .collect();
    Nmdb::new(g, states)
}

/// Iterator producing `count` independent random states with derived seeds
/// (`seed`, `seed+1`, …) — the paper's "1000 iterations" loop.
pub fn scenario_stream<'a>(
    graph: &'a Graph,
    cfg: &'a DustConfig,
    params: &'a ScenarioParams,
    seed: u64,
    count: usize,
) -> impl Iterator<Item = Nmdb> + 'a {
    (0..count as u64).map(move |i| random_nmdb(graph, cfg, params, seed.wrapping_add(i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dust_topology::{topologies, FatTree, Link};

    fn cfg() -> DustConfig {
        DustConfig::paper_defaults()
    }

    #[test]
    fn utilizations_respect_constraint_3e() {
        let ft = FatTree::with_default_links(4);
        let db = random_nmdb(&ft.graph, &cfg(), &ScenarioParams::default(), 7);
        for s in &db.states {
            assert!(s.utilization >= cfg().x_min && s.utilization <= 100.0);
            assert!(s.data_mb >= 10.0 && s.data_mb <= 500.0);
        }
        for e in db.graph.edges() {
            assert!(e.link.utilization >= 0.1 && e.link.utilization <= 0.9);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = topologies::ring(8, Link::default());
        let a = random_nmdb(&g, &cfg(), &ScenarioParams::default(), 42);
        let b = random_nmdb(&g, &cfg(), &ScenarioParams::default(), 42);
        assert_eq!(a.states, b.states);
        let c = random_nmdb(&g, &cfg(), &ScenarioParams::default(), 43);
        assert_ne!(a.states, c.states);
    }

    #[test]
    fn stream_yields_distinct_states() {
        let g = topologies::ring(8, Link::default());
        let params = ScenarioParams::default();
        let cfg = cfg();
        let states: Vec<_> = scenario_stream(&g, &cfg, &params, 0, 5).collect();
        assert_eq!(states.len(), 5);
        assert_ne!(states[0].states, states[1].states);
    }

    #[test]
    fn non_offloading_probability_zero_marks_all() {
        let g = topologies::ring(8, Link::default());
        let params = ScenarioParams { offload_capable_prob: 0.0, ..Default::default() };
        let db = random_nmdb(&g, &cfg(), &params, 1);
        assert!(db.states.iter().all(|s| !s.offload_capable));
        assert!(db.busy_nodes(&cfg()).is_empty());
    }

    #[test]
    fn busy_fraction_tracks_threshold() {
        // With C ~ U(5, 100): P(busy) = (100-c_max)/95. Check the empirical
        // fraction lands in a generous window on a big sample.
        let ft = FatTree::with_default_links(8); // 80 nodes
        let mut busy = 0usize;
        let mut total = 0usize;
        let cfg = cfg();
        for db in scenario_stream(&ft.graph, &cfg, &ScenarioParams::default(), 9, 50) {
            busy += db.busy_nodes(&cfg).len();
            total += db.graph.node_count();
        }
        let frac = busy as f64 / total as f64;
        let expect = (100.0 - cfg.c_max) / (100.0 - cfg.x_min);
        assert!((frac - expect).abs() < 0.05, "empirical {frac} vs expected {expect}");
    }
}
