//! The unified placement API: one builder, four strategies, one engine.
//!
//! [`PlacementRequest`] is the single front door to the placement layer.
//! It owns (or borrows) the [`CostEngine`] that prices `T_rmin` rows —
//! parallel across worker threads and memoized per graph epoch — and
//! routes every strategy through it, so repeated solves on an unchanged
//! graph never re-enumerate paths:
//!
//! ```
//! use dust_core::{DustConfig, Nmdb, NodeState, PlacementRequest, SolverBackend};
//! use dust_topology::{topologies, Link};
//!
//! let g = topologies::line(3, Link::default());
//! let nmdb = Nmdb::new(g, vec![
//!     NodeState::new(92.0, 150.0),
//!     NodeState::new(60.0, 10.0),
//!     NodeState::new(25.0, 10.0),
//! ]);
//! let cfg = DustConfig::paper_defaults();
//! let report = PlacementRequest::new(&nmdb, &cfg)
//!     .backend(SolverBackend::Transportation)
//!     .max_hops(10)
//!     .threads(2)
//!     .solve()
//!     .unwrap();
//! assert!((report.total_offloaded() - 12.0).abs() < 1e-6);
//! ```
//!
//! The four historical free functions ([`optimize`](crate::optimize),
//! [`heuristic`](crate::heuristic()), [`optimize_zoned`](crate::optimize_zoned),
//! [`optimize_integral`](crate::optimize_integral)) remain as thin wrappers
//! over this builder.

use crate::config::DustConfig;
use crate::error::DustError;
use crate::heuristic::{heuristic_with, HeuristicOutcome};
use crate::integral::{optimize_integral_with, IntegralPlacement, WorkUnit};
use crate::optimizer::{
    optimize_with_path_warm, Assignment, Placement, PlacementStatus, SolvePath, SolverBackend,
    WarmState,
};
use crate::state::Nmdb;
use crate::zoning::{optimize_zoned_with, ZonedPlacement, Zoning};
use dust_obs::ObsHandle;
use dust_topology::{CostEngine, PathEngine};
use std::num::NonZeroUsize;

/// Which placement algorithm a request runs.
#[derive(Debug, Clone, Copy)]
enum Strategy<'a> {
    /// Exact continuous placement (Eq. 3) — the default.
    Lp,
    /// Algorithm 1 with candidates within `hops` of each busy node.
    Heuristic { hops: usize },
    /// Per-zone exact placement with an optional cross-zone sweep.
    Zoned { zoning: &'a Zoning, sweep: bool },
    /// Agent-level integral placement over indivisible work units.
    Integral { units: &'a [WorkUnit] },
}

/// Either a request-owned engine or one shared by the caller.
enum EngineRef<'a> {
    Owned(CostEngine),
    Shared(&'a CostEngine),
}

impl EngineRef<'_> {
    fn get(&self) -> &CostEngine {
        match self {
            EngineRef::Owned(e) => e,
            EngineRef::Shared(e) => e,
        }
    }
}

/// Builder for one placement solve over an NMDB snapshot.
///
/// Construct with [`PlacementRequest::new`], refine with the chained
/// setters, then call [`solve`](PlacementRequest::solve) for the unified
/// [`PlacementReport`] — or one of the `run_*` escape hatches when the
/// strategy-specific result type is wanted.
pub struct PlacementRequest<'a> {
    nmdb: &'a Nmdb,
    cfg: DustConfig,
    backend: SolverBackend,
    strategy: Strategy<'a>,
    engine: EngineRef<'a>,
    obs: ObsHandle,
    partitions: Option<NonZeroUsize>,
    partition_seed: u64,
    warm: Option<&'a WarmState>,
}

impl<'a> PlacementRequest<'a> {
    /// Start a request with the snapshot and configuration. The strategy
    /// defaults to the exact LP; the cost engine defaults to one worker
    /// per available core.
    pub fn new(nmdb: &'a Nmdb, cfg: &DustConfig) -> Self {
        PlacementRequest {
            nmdb,
            cfg: *cfg,
            backend: SolverBackend::default(),
            strategy: Strategy::Lp,
            engine: EngineRef::Owned(CostEngine::new()),
            obs: ObsHandle::disabled(),
            partitions: None,
            partition_seed: 0,
            warm: None,
        }
    }

    /// Record metrics and trace events for this solve into `obs` (cost
    /// cache hits/misses, rows priced, solver pivot counts). Applies to
    /// the request-owned engine; when sharing an engine via
    /// [`engine`](PlacementRequest::engine), attach the handle to that
    /// engine with [`CostEngine::set_obs`] instead.
    pub fn obs(mut self, obs: ObsHandle) -> Self {
        if let EngineRef::Owned(e) = &mut self.engine {
            e.set_obs(obs.clone());
        }
        self.obs = obs;
        self
    }

    /// Choose the LP backend (transportation or two-phase simplex).
    pub fn backend(mut self, backend: SolverBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Bound controllable routes to `hops` hops.
    pub fn max_hops(mut self, hops: usize) -> Self {
        self.cfg.max_hop = Some(hops);
        self
    }

    /// Remove the hop bound.
    pub fn unbounded_hops(mut self) -> Self {
        self.cfg.max_hop = None;
        self
    }

    /// Choose the routing engine that prices `T_rmin`.
    pub fn path_engine(mut self, engine: PathEngine) -> Self {
        self.cfg.path_engine = engine;
        self
    }

    /// Price rows with `n` worker threads (0 = one per available core).
    /// Replaces any engine previously set via
    /// [`engine`](PlacementRequest::engine), losing its cache.
    pub fn threads(mut self, n: usize) -> Self {
        self.engine = EngineRef::Owned(CostEngine::with_threads(n).with_obs(self.obs.clone()));
        self
    }

    /// Price rows with a caller-owned [`CostEngine`], sharing its memoized
    /// rows with every other request using the same engine.
    pub fn engine(mut self, engine: &'a CostEngine) -> Self {
        self.engine = EngineRef::Shared(engine);
        self
    }

    /// Solve the transportation LP POP-style in `parts` seeded random
    /// subproblems, recombined after parallel solves on the engine's
    /// thread pool — the quality-vs-latency knob for fleet-scale rounds.
    /// `None` (the default) keeps the exact whole-problem solve;
    /// `Some(1)` is bit-identical to it. Applies to the LP strategy with
    /// the transportation backend; combining partitions with the simplex
    /// backend fails as [`DustError::BadConfig`].
    pub fn partitions(mut self, parts: Option<NonZeroUsize>) -> Self {
        self.partitions = parts;
        self
    }

    /// Seed for the partitioned solve's random row split
    /// (default 0). Ignored without [`partitions`](Self::partitions).
    pub fn partition_seed(mut self, seed: u64) -> Self {
        self.partition_seed = seed;
        self
    }

    /// Warm-start this solve from a previous round's bases
    /// ([`Placement::warm`]). Warm and cold solves reach the same
    /// objective; stale or mismatched bases are rejected cold by the
    /// solver. Applies to the LP strategy with the transportation
    /// backend only.
    pub fn warm_start(mut self, warm: &'a WarmState) -> Self {
        self.warm = Some(warm);
        self
    }

    /// The [`SolvePath`] this request will take.
    pub fn solve_path(&self) -> SolvePath {
        match self.partitions {
            Some(parts) => SolvePath::Partitioned { parts, seed: self.partition_seed },
            None => SolvePath::Exact,
        }
    }

    /// Use Algorithm 1 (the paper's one-hop heuristic).
    pub fn heuristic(self) -> Self {
        self.heuristic_hops(1)
    }

    /// Use the generalized heuristic with candidates within `hops`.
    pub fn heuristic_hops(mut self, hops: usize) -> Self {
        self.strategy = Strategy::Heuristic { hops };
        self
    }

    /// Solve per zone, optionally sweeping leftovers across zones.
    pub fn zoned(mut self, zoning: &'a Zoning, cross_zone_sweep: bool) -> Self {
        self.strategy = Strategy::Zoned { zoning, sweep: cross_zone_sweep };
        self
    }

    /// Solve the agent-level integral placement over `units`.
    pub fn integral(mut self, units: &'a [WorkUnit]) -> Self {
        self.strategy = Strategy::Integral { units };
        self
    }

    /// The worker-thread count the request will price rows with.
    pub fn thread_count(&self) -> usize {
        self.engine.get().threads()
    }

    /// Run the configured strategy and unify the outcome.
    ///
    /// Hard failures become typed [`DustError`]s: an exact or integral
    /// solve with no feasible placement returns
    /// [`DustError::Infeasible`] — refined to
    /// [`DustError::NoPathWithinHops`] when the hop bound disconnects
    /// every (busy, candidate) pair — and an invalid configuration
    /// returns [`DustError::BadConfig`]. Partial outcomes (heuristic
    /// residuals, zoned leftovers) are data, not errors.
    pub fn solve(&self) -> Result<PlacementReport, DustError> {
        let threads = self.thread_count();
        let outcome = match self.strategy {
            Strategy::Lp => {
                let p = self.run_lp()?;
                if p.status == PlacementStatus::Infeasible {
                    return Err(self.refine_infeasible(&p.busy, &p.candidates));
                }
                ReportOutcome::Lp(p)
            }
            Strategy::Heuristic { .. } => ReportOutcome::Heuristic(self.run_heuristic()?),
            Strategy::Zoned { .. } => ReportOutcome::Zoned(self.run_zoned()?),
            Strategy::Integral { .. } => {
                let p = self.run_integral()?;
                if !p.feasible {
                    let busy = self.nmdb.busy_nodes(&self.cfg);
                    let candidates = self.nmdb.candidate_nodes(&self.cfg);
                    return Err(self.refine_infeasible(&busy, &candidates));
                }
                ReportOutcome::Integral(p)
            }
        };
        Ok(PlacementReport { threads, outcome })
    }

    /// Run the exact LP regardless of the configured strategy, returning
    /// the full [`Placement`] (including the legacy status enum).
    pub fn run_lp(&self) -> Result<Placement, DustError> {
        optimize_with_path_warm(
            self.nmdb,
            &self.cfg,
            self.backend,
            self.engine.get(),
            self.solve_path(),
            self.warm,
        )
    }

    /// Run the heuristic regardless of the configured strategy (reach
    /// defaults to the paper's one hop unless set via
    /// [`heuristic_hops`](PlacementRequest::heuristic_hops)).
    pub fn run_heuristic(&self) -> Result<HeuristicOutcome, DustError> {
        let hops = match self.strategy {
            Strategy::Heuristic { hops } => hops,
            _ => 1,
        };
        heuristic_with(self.nmdb, &self.cfg, hops, self.engine.get())
    }

    /// Run the zoned placement; requires a zoning set via
    /// [`zoned`](PlacementRequest::zoned).
    pub fn run_zoned(&self) -> Result<ZonedPlacement, DustError> {
        let Strategy::Zoned { zoning, sweep } = self.strategy else {
            return Err(DustError::BadConfig(
                "run_zoned requires a zoning (call .zoned(...) first)".to_string(),
            ));
        };
        optimize_zoned_with(self.nmdb, &self.cfg, zoning, self.backend, sweep, self.engine.get())
    }

    /// Run the integral placement; requires units set via
    /// [`integral`](PlacementRequest::integral).
    pub fn run_integral(&self) -> Result<IntegralPlacement, DustError> {
        let Strategy::Integral { units } = self.strategy else {
            return Err(DustError::BadConfig(
                "run_integral requires work units (call .integral(...) first)".to_string(),
            ));
        };
        optimize_integral_with(self.nmdb, &self.cfg, units, self.engine.get())
    }

    /// Distinguish "no route within the hop bound" from a genuine
    /// capacity shortfall. Reads the engine's already-cached rows, so the
    /// check costs no re-pricing after a solve.
    fn refine_infeasible(
        &self,
        busy: &[dust_topology::NodeId],
        candidates: &[dust_topology::NodeId],
    ) -> DustError {
        if busy.is_empty() || candidates.is_empty() {
            return DustError::Infeasible;
        }
        let engine = self.engine.get();
        let reachable = busy.iter().any(|&b| {
            let row = engine.row(&self.nmdb.graph, b, self.cfg.max_hop, self.cfg.path_engine);
            candidates.iter().any(|c| row[c.index()].is_finite())
        });
        if reachable {
            DustError::Infeasible
        } else {
            DustError::NoPathWithinHops
        }
    }
}

/// Strategy-specific payload of a [`PlacementReport`].
#[derive(Debug, Clone)]
pub enum ReportOutcome {
    /// Exact continuous placement.
    Lp(Placement),
    /// Algorithm 1 outcome (may carry residual excess).
    Heuristic(HeuristicOutcome),
    /// Per-zone placement (may carry residual excess).
    Zoned(ZonedPlacement),
    /// Agent-level integral placement.
    Integral(IntegralPlacement),
}

/// Unified result of [`PlacementRequest::solve`].
#[derive(Debug, Clone)]
pub struct PlacementReport {
    /// Worker threads the cost engine priced rows with.
    pub threads: usize,
    /// The strategy-specific result.
    pub outcome: ReportOutcome,
}

impl PlacementReport {
    /// Objective `β = Σ x_ij · T_rmin(i,j)` of the accepted moves.
    pub fn beta(&self) -> f64 {
        match &self.outcome {
            ReportOutcome::Lp(p) => p.beta,
            ReportOutcome::Heuristic(h) => h.beta,
            ReportOutcome::Zoned(z) => z.beta,
            ReportOutcome::Integral(i) => i.beta,
        }
    }

    /// Accepted offload decisions — empty for integral placements, whose
    /// unit-level moves live in [`IntegralPlacement::moves`].
    pub fn assignments(&self) -> &[Assignment] {
        match &self.outcome {
            ReportOutcome::Lp(p) => &p.assignments,
            ReportOutcome::Heuristic(h) => &h.assignments,
            ReportOutcome::Zoned(z) => &z.assignments,
            ReportOutcome::Integral(_) => &[],
        }
    }

    /// Total capacity-percent moved by the accepted assignments.
    pub fn total_offloaded(&self) -> f64 {
        self.assignments().iter().map(|a| a.amount).sum()
    }

    /// The LP placement, when that strategy ran.
    pub fn as_lp(&self) -> Option<&Placement> {
        match &self.outcome {
            ReportOutcome::Lp(p) => Some(p),
            _ => None,
        }
    }

    /// The heuristic outcome, when that strategy ran.
    pub fn as_heuristic(&self) -> Option<&HeuristicOutcome> {
        match &self.outcome {
            ReportOutcome::Heuristic(h) => Some(h),
            _ => None,
        }
    }

    /// The zoned placement, when that strategy ran.
    pub fn as_zoned(&self) -> Option<&ZonedPlacement> {
        match &self.outcome {
            ReportOutcome::Zoned(z) => Some(z),
            _ => None,
        }
    }

    /// The integral placement, when that strategy ran.
    pub fn as_integral(&self) -> Option<&IntegralPlacement> {
        match &self.outcome {
            ReportOutcome::Integral(i) => Some(i),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NodeState;
    use dust_topology::{topologies, Link, NodeId};

    fn cfg() -> DustConfig {
        DustConfig::paper_defaults()
    }

    /// Line 0-1-2 where node 0 is busy and node 2 is a candidate.
    fn simple_nmdb() -> Nmdb {
        let g = topologies::line(3, Link::default());
        Nmdb::new(
            g,
            vec![
                NodeState::new(90.0, 100.0),
                NodeState::new(60.0, 10.0),
                NodeState::new(20.0, 10.0),
            ],
        )
    }

    #[test]
    fn builder_defaults_to_lp_and_matches_free_function() {
        let db = simple_nmdb();
        let report = PlacementRequest::new(&db, &cfg()).solve().unwrap();
        let legacy = crate::optimizer::optimize(&db, &cfg(), SolverBackend::Transportation);
        assert_eq!(report.beta().to_bits(), legacy.beta.to_bits());
        assert_eq!(report.assignments().len(), legacy.assignments.len());
        assert!(report.as_lp().is_some());
    }

    #[test]
    fn thread_counts_do_not_change_the_answer() {
        let db = simple_nmdb();
        let base = PlacementRequest::new(&db, &cfg()).threads(1).solve().unwrap();
        for n in [2usize, 4, 8] {
            let r = PlacementRequest::new(&db, &cfg()).threads(n).solve().unwrap();
            assert_eq!(r.beta().to_bits(), base.beta().to_bits(), "threads {n}");
            assert_eq!(r.threads, n);
        }
    }

    #[test]
    fn bad_config_is_typed() {
        let db = simple_nmdb();
        let bad = cfg().with_thresholds(60.0, 70.0, 5.0);
        let err = PlacementRequest::new(&db, &bad).solve().unwrap_err();
        assert!(matches!(err, DustError::BadConfig(_)));
    }

    #[test]
    fn hop_starvation_is_distinguished_from_capacity_shortfall() {
        let db = simple_nmdb();
        // candidate is 2 hops away; a 1-hop bound starves routing
        let err = PlacementRequest::new(&db, &cfg()).max_hops(1).solve().unwrap_err();
        assert_eq!(err, DustError::NoPathWithinHops);
        // same topology, reachable candidate, but capacity genuinely short
        let g = topologies::line(2, Link::default());
        let tight = Nmdb::new(g, vec![NodeState::new(99.0, 10.0), NodeState::new(49.0, 1.0)]);
        let err = PlacementRequest::new(&tight, &cfg()).solve().unwrap_err();
        assert_eq!(err, DustError::Infeasible);
    }

    #[test]
    fn heuristic_strategy_reports_partial_outcomes_as_data() {
        // two-hop candidate is invisible at one hop: 100% HFR, still Ok
        let db = simple_nmdb();
        let report = PlacementRequest::new(&db, &cfg()).heuristic().solve().unwrap();
        let h = report.as_heuristic().unwrap();
        assert!(h.nothing_offloaded());
        // the generalized reach succeeds
        let report = PlacementRequest::new(&db, &cfg()).heuristic_hops(2).solve().unwrap();
        assert!(report.as_heuristic().unwrap().fully_offloaded());
        assert!((report.total_offloaded() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn shared_engine_reuses_rows_across_strategies() {
        let db = simple_nmdb();
        let c = cfg().with_engine(PathEngine::HopBoundedDp);
        let engine = CostEngine::with_threads(2);
        let lp = PlacementRequest::new(&db, &c).engine(&engine).solve().unwrap();
        let cached = engine.cached_rows();
        assert!(cached > 0, "the solve must populate the shared cache");
        let again = PlacementRequest::new(&db, &c).engine(&engine).solve().unwrap();
        assert_eq!(engine.cached_rows(), cached, "second solve must be all cache hits");
        assert_eq!(lp.beta().to_bits(), again.beta().to_bits());
    }

    #[test]
    fn integral_strategy_routes_through_the_builder() {
        let g = topologies::line(2, Link::default());
        let db = Nmdb::new(g, vec![NodeState::new(90.0, 100.0), NodeState::new(20.0, 10.0)]);
        let units = vec![
            WorkUnit { owner: NodeId(0), weight: 6.0 },
            WorkUnit { owner: NodeId(0), weight: 6.0 },
        ];
        let report = PlacementRequest::new(&db, &cfg()).integral(&units).solve().unwrap();
        let ip = report.as_integral().unwrap();
        assert!(ip.feasible);
        assert_eq!(ip.moves.len(), 2);
        assert!(report.assignments().is_empty(), "integral moves are unit-level");
    }

    #[test]
    fn partitions_knob_routes_through_the_builder() {
        let db = simple_nmdb();
        let exact = PlacementRequest::new(&db, &cfg()).solve().unwrap();
        let req =
            PlacementRequest::new(&db, &cfg()).partitions(NonZeroUsize::new(2)).partition_seed(9);
        assert!(matches!(req.solve_path(), SolvePath::Partitioned { seed: 9, .. }));
        let part = req.solve().unwrap();
        assert!((part.total_offloaded() - exact.total_offloaded()).abs() < 1e-9);
        // the default stays exact
        assert_eq!(PlacementRequest::new(&db, &cfg()).solve_path(), SolvePath::Exact);
        // simplex + partitions is rejected, typed
        let err = PlacementRequest::new(&db, &cfg())
            .backend(SolverBackend::Simplex)
            .partitions(NonZeroUsize::new(4))
            .solve()
            .unwrap_err();
        assert!(matches!(err, DustError::BadConfig(_)));
    }

    #[test]
    fn run_zoned_without_zoning_is_a_bad_config() {
        let db = simple_nmdb();
        let err = PlacementRequest::new(&db, &cfg()).run_zoned().unwrap_err();
        assert!(matches!(err, DustError::BadConfig(_)));
        let err = PlacementRequest::new(&db, &cfg()).run_integral().unwrap_err();
        assert!(matches!(err, DustError::BadConfig(_)));
    }
}
