//! Typed errors for the placement engine.
//!
//! The original entry points signalled failure three different ways:
//! panics on bad configuration, status enums on infeasible solves, and
//! bare `Option`s on missing routes. [`DustError`] unifies them so
//! callers — `dustctl` in particular — can branch on the cause and exit
//! with a meaningful code instead of unwinding.

use std::fmt;

/// Why a placement request could not produce a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DustError {
    /// Constraints 3a/3b cannot all hold: busy excess exceeds what
    /// reachable candidates can absorb (the "Infeasible Optimization"
    /// outcome counted by Fig. 7).
    Infeasible,
    /// The LP relaxation was unbounded — impossible for well-formed
    /// placement instances (costs are non-negative and supplies finite),
    /// so this indicates a malformed custom problem.
    Unbounded,
    /// Busy nodes and candidates both exist, but no (busy, candidate)
    /// pair is connected within the configured hop bound.
    NoPathWithinHops,
    /// The [`DustConfig`](crate::DustConfig) violates its invariants; the
    /// message says which one.
    BadConfig(String),
}

impl fmt::Display for DustError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DustError::Infeasible => {
                write!(f, "infeasible: busy excess exceeds reachable candidate capacity")
            }
            DustError::Unbounded => write!(f, "the placement LP is unbounded"),
            DustError::NoPathWithinHops => {
                write!(f, "no route between any busy node and any candidate within the hop bound")
            }
            DustError::BadConfig(msg) => write!(f, "invalid DustConfig: {msg}"),
        }
    }
}

impl std::error::Error for DustError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DustError::Infeasible.to_string().contains("infeasible"));
        assert!(DustError::NoPathWithinHops.to_string().contains("hop bound"));
        assert!(DustError::BadConfig("x_min out of range".into())
            .to_string()
            .contains("x_min out of range"));
        assert!(DustError::Unbounded.to_string().contains("unbounded"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(DustError::Infeasible);
        assert!(!e.to_string().is_empty());
    }
}
