//! Algorithm 1: the one-hop min-cost heuristic and its HFR metric (Eq. 4).
//!
//! For every Busy node the heuristic restricts Offload-candidates to the
//! node's **directly connected neighbors** (max-hop = 1) and solves the
//! per-node minimum-cost subproblem. Excess that cannot fit in one-hop
//! candidates is recorded as `Cse_i`; the Heuristic Failure Rate is
//! `HFR = Σ Cse_i / Σ Cs_i` (Eq. 4). A generalized `max_hop = h` variant
//! is provided for the ablation benches (ablation 3 in DESIGN.md).
//!
//! Candidate capacity is consumed in Busy-node order (ascending id), so a
//! candidate adjacent to two Busy nodes cannot be double-booked; the whole
//! procedure is deterministic.

use crate::config::DustConfig;
use crate::error::DustError;
use crate::optimizer::Assignment;
use crate::state::Nmdb;
use dust_topology::{min_inv_lu_dp_path, CostEngine, NodeId, PathEngine};
use std::time::{Duration, Instant};

/// Result of one heuristic round.
#[derive(Debug, Clone)]
pub struct HeuristicOutcome {
    /// Accepted offload decisions (may cover only part of the excess).
    pub assignments: Vec<Assignment>,
    /// Per-busy-node leftover `Cse_i` that found no one-hop home.
    pub residual: Vec<(NodeId, f64)>,
    /// `Σ Cs_i` — total excess the round had to place.
    pub total_cs: f64,
    /// `Σ Cse_i` — total excess that failed to place.
    pub total_cse: f64,
    /// Objective contribution `Σ x_ij · Tr(i,j)` of the accepted moves.
    pub beta: f64,
    /// Wall time of the whole heuristic round.
    pub elapsed: Duration,
}

impl HeuristicOutcome {
    /// Heuristic Failure Rate in percent (Eq. 4). Zero when there was
    /// nothing to offload.
    pub fn hfr_percent(&self) -> f64 {
        if self.total_cs <= 0.0 {
            0.0
        } else {
            100.0 * self.total_cse / self.total_cs
        }
    }

    /// True when every Busy node was fully offloaded.
    pub fn fully_offloaded(&self) -> bool {
        self.total_cse <= 1e-9
    }

    /// True when no excess at all could be placed (and there was some).
    pub fn nothing_offloaded(&self) -> bool {
        self.total_cs > 1e-9 && (self.total_cs - self.total_cse).abs() <= 1e-9
    }
}

/// Run Algorithm 1 with the paper's one-hop candidate restriction.
///
/// Thin wrapper over [`crate::PlacementRequest`] — prefer
/// `PlacementRequest::new(nmdb, cfg).heuristic().solve()`, which shares
/// one [`CostEngine`] across entry points.
pub fn heuristic(nmdb: &Nmdb, cfg: &DustConfig) -> HeuristicOutcome {
    heuristic_with_hops(nmdb, cfg, 1)
}

/// Generalized Algorithm 1: candidates within `hops` of each Busy node.
///
/// `hops = 1` is the published algorithm. Larger values trade runtime for a
/// lower HFR (ablation 3 in DESIGN.md). Thin wrapper over
/// [`crate::PlacementRequest`] kept for source compatibility.
///
/// # Panics
/// Panics if `hops == 0` or `cfg` is invalid.
pub fn heuristic_with_hops(nmdb: &Nmdb, cfg: &DustConfig, hops: usize) -> HeuristicOutcome {
    assert!(hops >= 1, "heuristic needs at least one hop of reach");
    cfg.validate().expect("invalid DustConfig");
    crate::PlacementRequest::new(nmdb, cfg)
        .heuristic_hops(hops)
        .run_heuristic()
        .expect("config and hop count validated above")
}

/// Generalized Algorithm 1 with an explicit shared [`CostEngine`].
///
/// Candidate pricing reads one hop-bounded Bellman–Ford row per Busy node
/// from `engine` — prefetched in parallel and memoized per graph epoch, so
/// repeated rounds on an unchanged graph price nothing twice.
pub fn heuristic_with(
    nmdb: &Nmdb,
    cfg: &DustConfig,
    hops: usize,
    engine: &CostEngine,
) -> Result<HeuristicOutcome, DustError> {
    if hops == 0 {
        return Err(DustError::BadConfig("heuristic needs at least one hop of reach".to_string()));
    }
    cfg.validate().map_err(DustError::BadConfig)?;
    let t0 = Instant::now();

    let busy = nmdb.busy_nodes(cfg);
    // Warm every Busy row concurrently before the sequential greedy pass.
    engine.prefetch(&nmdb.graph, &busy, Some(hops), PathEngine::HopBoundedDp);
    // Remaining spare capacity per node, consumed as assignments land.
    let mut remaining_cd: Vec<f64> = nmdb.graph.nodes().map(|n| nmdb.cd(n, cfg)).collect();

    let mut assignments = Vec::new();
    let mut residual = Vec::new();
    let mut total_cs = 0.0;
    let mut total_cse = 0.0;
    let mut beta = 0.0;

    for &b in &busy {
        let mut cs = nmdb.cs(b, cfg);
        total_cs += cs;
        let d_mb = nmdb.state(b).data_mb;

        // Price every in-reach candidate with spare capacity off the
        // engine's hop-bounded row (for `hops = 1` the row degenerates to
        // the cheapest direct link per neighbor — the published
        // algorithm). Sorting cheapest-first then greedy-filling is
        // optimal for a single source (the per-node transportation LP of
        // Algorithm 1 line 8).
        let dist = engine.row(&nmdb.graph, b, Some(hops), PathEngine::HopBoundedDp);
        let mut priced: Vec<(f64, NodeId)> = nmdb
            .graph
            .nodes()
            .filter(|&c| c != b && remaining_cd[c.index()] > 1e-12)
            .filter(|&c| dist[c.index()].is_finite())
            .map(|c| (d_mb * dist[c.index()], c))
            .collect();
        priced.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
        });

        for (t_rmin, c) in priced {
            if cs <= 1e-12 {
                break;
            }
            let take = cs.min(remaining_cd[c.index()]);
            if take <= 1e-12 {
                continue;
            }
            remaining_cd[c.index()] -= take;
            cs -= take;
            beta += take * t_rmin;
            // Routes are reconstructed only for accepted assignments — a
            // handful per Busy node — keeping the heuristic at
            // O(hops·|E|) per Busy node overall.
            let route = min_inv_lu_dp_path(&nmdb.graph, b, c, Some(hops)).map(|(_, p)| p);
            assignments.push(Assignment { from: b, to: c, amount: take, t_rmin, route });
        }
        if cs > 1e-12 {
            residual.push((b, cs));
            total_cse += cs;
        }
    }

    Ok(HeuristicOutcome { assignments, residual, total_cs, total_cse, beta, elapsed: t0.elapsed() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NodeState;
    use dust_topology::{topologies, Graph, Link};

    fn cfg() -> DustConfig {
        DustConfig::paper_defaults() // c_max 80, co_max 50
    }

    #[test]
    fn one_hop_neighbor_takes_all() {
        // 0 (busy, 90) - 1 (candidate, 20): excess 10, spare 30
        let g = topologies::line(2, Link::default());
        let db = Nmdb::new(g, vec![NodeState::new(90.0, 10.0), NodeState::new(20.0, 1.0)]);
        let h = heuristic(&db, &cfg());
        assert!(h.fully_offloaded());
        assert_eq!(h.hfr_percent(), 0.0);
        assert_eq!(h.assignments.len(), 1);
        assert!((h.assignments[0].amount - 10.0).abs() < 1e-9);
        assert_eq!(h.assignments[0].route.as_ref().unwrap().hops(), 1);
    }

    #[test]
    fn two_hop_candidate_is_invisible_to_paper_heuristic() {
        // 0 (busy) - 1 (neutral) - 2 (candidate): heuristic fails fully
        let g = topologies::line(3, Link::default());
        let db = Nmdb::new(
            g,
            vec![NodeState::new(90.0, 10.0), NodeState::new(60.0, 1.0), NodeState::new(20.0, 1.0)],
        );
        let h = heuristic(&db, &cfg());
        assert!(h.nothing_offloaded());
        assert!((h.hfr_percent() - 100.0).abs() < 1e-9);
        // ...but the generalized 2-hop variant succeeds
        let h2 = heuristic_with_hops(&db, &cfg(), 2);
        assert!(h2.fully_offloaded());
    }

    #[test]
    fn partial_offload_counts_residual() {
        // busy with 20 excess, single neighbor with 5 spare
        let g = topologies::line(2, Link::default());
        let db = Nmdb::new(g, vec![NodeState::new(100.0, 10.0), NodeState::new(45.0, 1.0)]);
        let h = heuristic(&db, &cfg());
        assert!(!h.fully_offloaded());
        assert!(!h.nothing_offloaded());
        assert!((h.total_cse - 15.0).abs() < 1e-9);
        assert!((h.hfr_percent() - 75.0).abs() < 1e-9);
        assert_eq!(h.residual, vec![(NodeId(0), 15.0)]);
    }

    #[test]
    fn shared_candidate_not_double_booked() {
        // two busy leaves (5 excess each) around one candidate hub with 6 spare
        let g = topologies::star(3, Link::default());
        let db = Nmdb::new(
            g,
            vec![NodeState::new(44.0, 1.0), NodeState::new(85.0, 10.0), NodeState::new(85.0, 10.0)],
        );
        let h = heuristic(&db, &cfg());
        let absorbed: f64 = h.assignments.iter().map(|a| a.amount).sum();
        assert!((absorbed - 6.0).abs() < 1e-9, "hub only holds 6");
        assert!((h.total_cse - 4.0).abs() < 1e-9);
        // deterministic: first busy node (id 1) fills first
        assert!((h.assignments[0].amount - 5.0).abs() < 1e-9);
        assert_eq!(h.assignments[0].from, NodeId(1));
    }

    #[test]
    fn cheapest_neighbor_fills_first() {
        // busy center, two candidates: fast link to 1, slow to 2
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), Link::new(10_000.0, 0.9));
        g.add_edge(NodeId(0), NodeId(2), Link::new(100.0, 0.5));
        let db = Nmdb::new(
            g,
            vec![
                NodeState::new(85.0, 10.0),
                NodeState::new(48.0, 1.0), // spare 2
                NodeState::new(20.0, 1.0), // spare 30
            ],
        );
        let h = heuristic(&db, &cfg());
        assert!(h.fully_offloaded());
        assert_eq!(h.assignments[0].to, NodeId(1), "cheap route first");
        assert!((h.assignments[0].amount - 2.0).abs() < 1e-9);
        assert_eq!(h.assignments[1].to, NodeId(2));
        assert!((h.assignments[1].amount - 3.0).abs() < 1e-9);
    }

    #[test]
    fn no_busy_nodes_is_trivial_success() {
        let g = topologies::line(2, Link::default());
        let db = Nmdb::new(g, vec![NodeState::new(10.0, 1.0), NodeState::new(10.0, 1.0)]);
        let h = heuristic(&db, &cfg());
        assert_eq!(h.hfr_percent(), 0.0);
        assert!(h.fully_offloaded());
        assert!(!h.nothing_offloaded());
        assert!(h.assignments.is_empty());
    }

    #[test]
    fn busy_neighbor_is_not_a_candidate() {
        // two adjacent busy nodes, no candidates
        let g = topologies::line(2, Link::default());
        let db = Nmdb::new(g, vec![NodeState::new(90.0, 1.0), NodeState::new(95.0, 1.0)]);
        let h = heuristic(&db, &cfg());
        assert!(h.nothing_offloaded());
        assert!((h.hfr_percent() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn beta_consistent_with_assignments() {
        let g = topologies::star(4, Link::default());
        let db = Nmdb::new(
            g,
            vec![
                NodeState::new(90.0, 25.0),
                NodeState::new(45.0, 1.0),
                NodeState::new(30.0, 1.0),
                NodeState::new(70.0, 1.0),
            ],
        );
        // hub busy; candidates are leaves 1 and 2 — but they're 1 hop away
        let h = heuristic(&db, &cfg());
        let recomputed: f64 = h.assignments.iter().map(|a| a.amount * a.t_rmin).sum();
        assert!((h.beta - recomputed).abs() < 1e-9);
        assert!(h.fully_offloaded());
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn zero_hops_rejected() {
        let g = topologies::line(2, Link::default());
        let db = Nmdb::new(g, vec![NodeState::new(90.0, 1.0), NodeState::new(10.0, 1.0)]);
        heuristic_with_hops(&db, &cfg(), 0);
    }
}
