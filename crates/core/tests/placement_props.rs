//! Seeded random-scenario tests for the placement engine: LP-backend
//! agreement, optimality dominance over the heuristic, conservation
//! invariants, and builder/legacy equivalence on random fat-tree states.

use dust_core::{
    heuristic, heuristic_with_hops, optimize, random_nmdb, DustConfig, PlacementRequest,
    PlacementStatus, ScenarioParams, SolverBackend,
};
use dust_topology::{FatTree, PathEngine, SplitMix64};

fn cfg() -> DustConfig {
    DustConfig::paper_defaults().with_engine(PathEngine::HopBoundedDp)
}

/// Both LP backends agree on status and objective for random states.
#[test]
fn backends_agree() {
    let ft = FatTree::with_default_links(4);
    let c = cfg();
    for seed in 0..24u64 {
        let db = random_nmdb(&ft.graph, &c, &ScenarioParams::default(), seed);
        let a = optimize(&db, &c, SolverBackend::Transportation);
        let b = optimize(&db, &c, SolverBackend::Simplex);
        assert_eq!(a.status, b.status, "seed {seed}: status must agree");
        if a.status == PlacementStatus::Optimal {
            assert!(
                (a.beta - b.beta).abs() <= 1e-5 * (1.0 + a.beta.abs()),
                "seed {seed}: beta {} vs {}",
                a.beta,
                b.beta
            );
        }
    }
}

/// Optimal placements satisfy Eq. 3a (capacity) and Eq. 3b (equality).
#[test]
fn placement_respects_constraints() {
    let ft = FatTree::with_default_links(4);
    let c = cfg();
    for seed in 0..24u64 {
        let db = random_nmdb(&ft.graph, &c, &ScenarioParams::default(), seed);
        let p = optimize(&db, &c, SolverBackend::Transportation);
        if p.status != PlacementStatus::Optimal {
            continue;
        }
        // Eq. 3b: every busy node sheds exactly Cs_i
        for &b in &p.busy {
            let shed: f64 = p.assignments.iter().filter(|a| a.from == b).map(|a| a.amount).sum();
            assert!(
                (shed - db.cs(b, &c)).abs() < 1e-6,
                "seed {seed}: busy {b:?} shed {shed} != Cs {}",
                db.cs(b, &c)
            );
        }
        // Eq. 3a: no candidate absorbs beyond Cd_j
        for &o in &p.candidates {
            let got: f64 = p.assignments.iter().filter(|a| a.to == o).map(|a| a.amount).sum();
            assert!(
                got <= db.cd(o, &c) + 1e-6,
                "seed {seed}: candidate {o:?} got {got} > Cd {}",
                db.cd(o, &c)
            );
        }
        // routes stay within the hop bound and connect the right endpoints
        for a in &p.assignments {
            let r = a.route.as_ref().expect("optimal assignments carry routes");
            assert_eq!(*r.nodes.first().unwrap(), a.from);
            assert_eq!(*r.nodes.last().unwrap(), a.to);
            if let Some(h) = c.max_hop {
                assert!(r.hops() <= h);
            }
        }
    }
}

/// When the heuristic fully offloads, its β is never below the
/// optimizer's (the ILP is optimal).
#[test]
fn heuristic_never_beats_optimum() {
    let ft = FatTree::with_default_links(4);
    let c = cfg();
    for seed in 0..24u64 {
        let db = random_nmdb(&ft.graph, &c, &ScenarioParams::default(), seed);
        let p = optimize(&db, &c, SolverBackend::Transportation);
        let h = heuristic(&db, &c);
        if p.status == PlacementStatus::Optimal && h.fully_offloaded() && h.total_cs > 0.0 {
            assert!(
                h.beta >= p.beta - 1e-6 * (1.0 + p.beta.abs()),
                "seed {seed}: heuristic beta {} beat optimal {}",
                h.beta,
                p.beta
            );
        }
    }
}

/// HFR is within [0, 100] and monotone non-increasing in the hop reach.
#[test]
fn hfr_bounds_and_monotonicity() {
    let ft = FatTree::with_default_links(4);
    let c = cfg();
    for seed in 0..24u64 {
        let db = random_nmdb(&ft.graph, &c, &ScenarioParams::default(), seed);
        let mut prev = f64::INFINITY;
        for hops in [1usize, 2, 4, 6] {
            let h = heuristic_with_hops(&db, &c, hops);
            let rate = h.hfr_percent();
            assert!((0.0..=100.0 + 1e-9).contains(&rate), "seed {seed}: HFR {rate} out of range");
            assert!(
                rate <= prev + 1e-9,
                "seed {seed}: HFR must not grow with reach: {rate} > {prev}"
            );
            prev = rate;
        }
    }
}

/// Heuristic assignments never overdraw a candidate even with several
/// busy nodes competing, and residual + placed = total excess.
#[test]
fn heuristic_conservation() {
    let ft = FatTree::with_default_links(4);
    let c = cfg();
    for seed in 0..24u64 {
        let db = random_nmdb(&ft.graph, &c, &ScenarioParams::default(), seed);
        let h = heuristic(&db, &c);
        let placed: f64 = h.assignments.iter().map(|a| a.amount).sum();
        assert!(
            (placed + h.total_cse - h.total_cs).abs() < 1e-6,
            "seed {seed}: placed {placed} + residual {} != total {}",
            h.total_cse,
            h.total_cs
        );
        for n in db.graph.nodes() {
            let got: f64 = h.assignments.iter().filter(|a| a.to == n).map(|a| a.amount).sum();
            assert!(got <= db.cd(n, &c) + 1e-6, "seed {seed}: {n:?} overdrawn");
        }
        // one-hop routes only
        for a in &h.assignments {
            assert_eq!(a.route.as_ref().unwrap().hops(), 1, "seed {seed}");
        }
    }
}

/// The whole pipeline is deterministic in the seed.
#[test]
fn determinism() {
    let ft = FatTree::with_default_links(4);
    let c = cfg();
    for seed in 0..24u64 {
        let db1 = random_nmdb(&ft.graph, &c, &ScenarioParams::default(), seed);
        let db2 = random_nmdb(&ft.graph, &c, &ScenarioParams::default(), seed);
        let p1 = optimize(&db1, &c, SolverBackend::Transportation);
        let p2 = optimize(&db2, &c, SolverBackend::Transportation);
        assert_eq!(p1.status, p2.status, "seed {seed}");
        assert_eq!(p1.assignments.len(), p2.assignments.len(), "seed {seed}");
        let h1 = heuristic(&db1, &c);
        let h2 = heuristic(&db2, &c);
        assert!((h1.beta - h2.beta).abs() < 1e-12, "seed {seed}");
    }
}

/// Hop-bounded optimization cost is monotone: loosening max_hop never
/// worsens β (more routes can only help).
#[test]
fn beta_monotone_in_max_hop() {
    let ft = FatTree::with_default_links(4);
    let base = cfg();
    for seed in 0..24u64 {
        let db = random_nmdb(&ft.graph, &base, &ScenarioParams::default(), seed);
        let mut prev = f64::INFINITY;
        for h in [2usize, 4, 8] {
            let c = base.with_max_hop(Some(h));
            let p = optimize(&db, &c, SolverBackend::Transportation);
            if p.status == PlacementStatus::Optimal {
                assert!(
                    p.beta <= prev + 1e-6 * (1.0 + prev.abs()),
                    "seed {seed}: beta grew from {prev} to {} at hop {h}",
                    p.beta
                );
                prev = p.beta;
            }
        }
    }
}

/// The unified builder reproduces the legacy free functions bit-for-bit
/// at every thread count, for both the LP and the heuristic strategy.
#[test]
fn builder_matches_legacy_at_every_thread_count() {
    let ft = FatTree::with_default_links(4);
    let c = cfg();
    for seed in 0..12u64 {
        let db = random_nmdb(&ft.graph, &c, &ScenarioParams::default(), seed);
        let legacy = optimize(&db, &c, SolverBackend::Transportation);
        let legacy_h = heuristic(&db, &c);
        for threads in [1usize, 2, 7] {
            match PlacementRequest::new(&db, &c).threads(threads).solve() {
                Ok(report) => {
                    assert_eq!(
                        report.beta().to_bits(),
                        legacy.beta.to_bits(),
                        "seed {seed} threads {threads}"
                    );
                    assert_eq!(report.assignments().len(), legacy.assignments.len());
                }
                Err(_) => {
                    assert_eq!(
                        legacy.status,
                        PlacementStatus::Infeasible,
                        "seed {seed} threads {threads}: builder errored on a feasible state"
                    );
                }
            }
            let h = PlacementRequest::new(&db, &c)
                .threads(threads)
                .heuristic()
                .solve()
                .expect("heuristic outcomes are data, not errors");
            assert_eq!(
                h.beta().to_bits(),
                legacy_h.beta.to_bits(),
                "seed {seed} threads {threads}"
            );
        }
    }
}

use dust_core::{apply_actions, placement_diff, Assignment, TransferAction};
use dust_topology::NodeId;

/// Random assignment lists with sources 0–5 and destinations 6–11.
/// Deterministic in `seed`.
fn arb_assignments(seed: u64) -> Vec<Assignment> {
    let mut rng = SplitMix64::new(seed);
    let n = rng.below(10) as usize;
    (0..n)
        .map(|_| Assignment {
            from: NodeId(rng.below(6) as u32),
            to: NodeId(6 + rng.below(6) as u32),
            amount: rng.range_f64(0.1, 20.0),
            t_rmin: 0.1,
            route: None,
        })
        .collect()
}

/// Applying a diff always reproduces the target placement, and a diff
/// against self is empty.
#[test]
fn diff_is_sound() {
    for seed in 0..128u64 {
        let prev = arb_assignments(seed);
        let next = arb_assignments(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let actions = placement_diff(&prev, &next);
        let applied = apply_actions(&prev, &actions);
        let mut want = std::collections::BTreeMap::new();
        for a in &next {
            *want.entry((a.from, a.to)).or_insert(0.0) += a.amount;
        }
        assert_eq!(applied.len(), want.len(), "seed {seed}");
        for (k, v) in &want {
            assert!((applied[k] - v).abs() < 1e-9, "seed {seed}");
        }
        assert!(placement_diff(&next, &next).is_empty(), "seed {seed}");
        // ordering invariant: no Start before the last Stop
        let last_stop = actions.iter().rposition(|a| matches!(a, TransferAction::Stop { .. }));
        let first_start = actions.iter().position(|a| matches!(a, TransferAction::Start { .. }));
        if let (Some(stop), Some(start)) = (last_stop, first_start) {
            assert!(stop < start, "seed {seed}: stops must precede starts");
        }
    }
}
