//! Property tests for the placement engine: LP-backend agreement,
//! optimality dominance over the heuristic, and conservation invariants on
//! random fat-tree scenarios.

use dust_core::{
    heuristic, heuristic_with_hops, optimize, random_nmdb, DustConfig, PlacementStatus,
    ScenarioParams, SolverBackend,
};
use dust_topology::{FatTree, PathEngine};
use proptest::prelude::*;

fn cfg() -> DustConfig {
    DustConfig::paper_defaults().with_engine(PathEngine::HopBoundedDp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both LP backends agree on status and objective for random states.
    #[test]
    fn backends_agree(seed in any::<u64>()) {
        let ft = FatTree::with_default_links(4);
        let c = cfg();
        let db = random_nmdb(&ft.graph, &c, &ScenarioParams::default(), seed);
        let a = optimize(&db, &c, SolverBackend::Transportation);
        let b = optimize(&db, &c, SolverBackend::Simplex);
        prop_assert_eq!(a.status, b.status, "status must agree");
        if a.status == PlacementStatus::Optimal {
            prop_assert!((a.beta - b.beta).abs() <= 1e-5 * (1.0 + a.beta.abs()),
                "beta {} vs {}", a.beta, b.beta);
        }
    }

    /// Optimal placements satisfy Eq. 3a (capacity) and Eq. 3b (equality).
    #[test]
    fn placement_respects_constraints(seed in any::<u64>()) {
        let ft = FatTree::with_default_links(4);
        let c = cfg();
        let db = random_nmdb(&ft.graph, &c, &ScenarioParams::default(), seed);
        let p = optimize(&db, &c, SolverBackend::Transportation);
        if p.status != PlacementStatus::Optimal {
            return Ok(());
        }
        // Eq. 3b: every busy node sheds exactly Cs_i
        for &b in &p.busy {
            let shed: f64 = p.assignments.iter().filter(|a| a.from == b).map(|a| a.amount).sum();
            prop_assert!((shed - db.cs(b, &c)).abs() < 1e-6,
                "busy {b:?} shed {shed} != Cs {}", db.cs(b, &c));
        }
        // Eq. 3a: no candidate absorbs beyond Cd_j
        for &o in &p.candidates {
            let got: f64 = p.assignments.iter().filter(|a| a.to == o).map(|a| a.amount).sum();
            prop_assert!(got <= db.cd(o, &c) + 1e-6,
                "candidate {o:?} got {got} > Cd {}", db.cd(o, &c));
        }
        // routes stay within the hop bound and connect the right endpoints
        for a in &p.assignments {
            let r = a.route.as_ref().expect("optimal assignments carry routes");
            prop_assert_eq!(*r.nodes.first().unwrap(), a.from);
            prop_assert_eq!(*r.nodes.last().unwrap(), a.to);
            if let Some(h) = c.max_hop {
                prop_assert!(r.hops() <= h);
            }
        }
    }

    /// When the heuristic fully offloads, its β is never below the
    /// optimizer's (the ILP is optimal).
    #[test]
    fn heuristic_never_beats_optimum(seed in any::<u64>()) {
        let ft = FatTree::with_default_links(4);
        let c = cfg();
        let db = random_nmdb(&ft.graph, &c, &ScenarioParams::default(), seed);
        let p = optimize(&db, &c, SolverBackend::Transportation);
        let h = heuristic(&db, &c);
        if p.status == PlacementStatus::Optimal && h.fully_offloaded() && h.total_cs > 0.0 {
            prop_assert!(h.beta >= p.beta - 1e-6 * (1.0 + p.beta.abs()),
                "heuristic beta {} beat optimal {}", h.beta, p.beta);
        }
    }

    /// HFR is within [0, 100] and monotone non-increasing in the hop reach.
    #[test]
    fn hfr_bounds_and_monotonicity(seed in any::<u64>()) {
        let ft = FatTree::with_default_links(4);
        let c = cfg();
        let db = random_nmdb(&ft.graph, &c, &ScenarioParams::default(), seed);
        let mut prev = f64::INFINITY;
        for hops in [1usize, 2, 4, 6] {
            let h = heuristic_with_hops(&db, &c, hops);
            let rate = h.hfr_percent();
            prop_assert!((0.0..=100.0 + 1e-9).contains(&rate), "HFR {rate} out of range");
            prop_assert!(rate <= prev + 1e-9, "HFR must not grow with reach: {rate} > {prev}");
            prev = rate;
        }
    }

    /// Heuristic assignments never overdraw a candidate even with several
    /// busy nodes competing, and residual + placed = total excess.
    #[test]
    fn heuristic_conservation(seed in any::<u64>()) {
        let ft = FatTree::with_default_links(4);
        let c = cfg();
        let db = random_nmdb(&ft.graph, &c, &ScenarioParams::default(), seed);
        let h = heuristic(&db, &c);
        let placed: f64 = h.assignments.iter().map(|a| a.amount).sum();
        prop_assert!((placed + h.total_cse - h.total_cs).abs() < 1e-6,
            "placed {placed} + residual {} != total {}", h.total_cse, h.total_cs);
        for n in db.graph.nodes() {
            let got: f64 = h.assignments.iter().filter(|a| a.to == n).map(|a| a.amount).sum();
            prop_assert!(got <= db.cd(n, &c) + 1e-6, "{n:?} overdrawn");
        }
        // one-hop routes only
        for a in &h.assignments {
            prop_assert_eq!(a.route.as_ref().unwrap().hops(), 1);
        }
    }

    /// The whole pipeline is deterministic in the seed.
    #[test]
    fn determinism(seed in any::<u64>()) {
        let ft = FatTree::with_default_links(4);
        let c = cfg();
        let db1 = random_nmdb(&ft.graph, &c, &ScenarioParams::default(), seed);
        let db2 = random_nmdb(&ft.graph, &c, &ScenarioParams::default(), seed);
        let p1 = optimize(&db1, &c, SolverBackend::Transportation);
        let p2 = optimize(&db2, &c, SolverBackend::Transportation);
        prop_assert_eq!(p1.status, p2.status);
        prop_assert_eq!(p1.assignments.len(), p2.assignments.len());
        let h1 = heuristic(&db1, &c);
        let h2 = heuristic(&db2, &c);
        prop_assert!((h1.beta - h2.beta).abs() < 1e-12);
    }

    /// Hop-bounded optimization cost is monotone: loosening max_hop never
    /// worsens β (more routes can only help).
    #[test]
    fn beta_monotone_in_max_hop(seed in any::<u64>()) {
        let ft = FatTree::with_default_links(4);
        let base = cfg();
        let db = random_nmdb(&ft.graph, &base, &ScenarioParams::default(), seed);
        let mut prev = f64::INFINITY;
        for h in [2usize, 4, 8] {
            let c = base.with_max_hop(Some(h));
            let p = optimize(&db, &c, SolverBackend::Transportation);
            if p.status == PlacementStatus::Optimal {
                prop_assert!(p.beta <= prev + 1e-6 * (1.0 + prev.abs()),
                    "beta grew from {prev} to {} at hop {h}", p.beta);
                prev = p.beta;
            }
        }
    }
}

use dust_core::{apply_actions, placement_diff, Assignment, TransferAction};
use dust_topology::NodeId;

fn arb_assignments() -> impl Strategy<Value = Vec<Assignment>> {
    proptest::collection::vec((0u32..6, 6u32..12, 0.1f64..20.0), 0..10).prop_map(|v| {
        v.into_iter()
            .map(|(f, t, a)| Assignment {
                from: NodeId(f),
                to: NodeId(t),
                amount: a,
                t_rmin: 0.1,
                route: None,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Applying a diff always reproduces the target placement, and a diff
    /// against self is empty.
    #[test]
    fn diff_is_sound(prev in arb_assignments(), next in arb_assignments()) {
        let actions = placement_diff(&prev, &next);
        let applied = apply_actions(&prev, &actions);
        let mut want = std::collections::BTreeMap::new();
        for a in &next {
            *want.entry((a.from, a.to)).or_insert(0.0) += a.amount;
        }
        prop_assert_eq!(applied.len(), want.len());
        for (k, v) in &want {
            prop_assert!((applied[k] - v).abs() < 1e-9);
        }
        prop_assert!(placement_diff(&next, &next).is_empty());
        // ordering invariant: no Start before the last Stop
        let last_stop = actions.iter().rposition(|a| matches!(a, TransferAction::Stop { .. }));
        let first_start = actions.iter().position(|a| matches!(a, TransferAction::Start { .. }));
        if let (Some(stop), Some(start)) = (last_stop, first_start) {
            prop_assert!(stop < start, "stops must precede starts");
        }
    }
}
