//! # DUST — Resource-Aware Telemetry Offloading
//!
//! A from-scratch Rust implementation of the DUST system (Sharifian et
//! al., IPDPS-W 2024): dynamic, distributed, hardware-agnostic offloading
//! of in-device network-telemetry workloads from overloaded nodes to
//! under-utilized ones, over controllable minimum-response-time routes.
//!
//! This facade re-exports the whole workspace under stable module names:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`obs`] | `dust-obs` | metrics registry, deterministic event tracing, trace digests |
//! | [`topology`] | `dust-topology` | graphs, fat-trees, bounded path enumeration, `T_rmin` costs |
//! | [`lp`] | `dust-lp` | simplex, transportation solver, branch-and-bound |
//! | [`core`] | `dust-core` | thresholds, roles, NMDB, the placement ILP, Algorithm 1, HFR, `Δ_io` |
//! | [`proto`] | `dust-proto` | Manager/Client state machines and every §III message |
//! | [`telemetry`] | `dust-telemetry` | monitor agents, TSDB, Gorilla compression, federation |
//! | [`sim`] | `dust-sim` | the discrete-event testbed with Fig. 1 / Fig. 6 scenarios |
//!
//! # Quickstart
//!
//! ```
//! use dust::prelude::*;
//!
//! // a 4-port fat-tree: the paper's small-scale network (20 switches)
//! let ft = FatTree::with_default_links(4);
//! let cfg = DustConfig::paper_defaults();
//! let nmdb = random_nmdb(&ft.graph, &cfg, &ScenarioParams::default(), 42);
//!
//! // exact placement (the paper's ILP) through the unified builder,
//! // priced by the parallel memoizing cost engine …
//! let report = PlacementRequest::new(&nmdb, &cfg)
//!     .backend(SolverBackend::Transportation)
//!     .threads(4)
//!     .solve();
//!
//! // … and Algorithm 1, with its failure rate
//! let h = heuristic(&nmdb, &cfg);
//! assert!(h.hfr_percent() >= 0.0);
//! # let _ = report;
//! ```

#![warn(missing_docs)]

pub use dust_core as core;
pub use dust_lp as lp;
pub use dust_obs as obs;
pub use dust_proto as proto;
pub use dust_sim as sim;
pub use dust_telemetry as telemetry;
pub use dust_topology as topology;

/// One-stop imports for applications.
pub mod prelude {
    pub use dust_core::{
        classify, classify_iteration, estimate_io_rate, heuristic, heuristic_with_hops,
        io_rate_sweep, optimize, optimize_integral, optimize_zoned, random_nmdb, scenario_stream,
        zone_by_bfs, zone_fat_tree, Assignment, DustConfig, DustError, HeuristicOutcome,
        IntegralPlacement, IoRatePoint, Nmdb, NodeState, Placement, PlacementReport,
        PlacementRequest, PlacementStatus, ReportOutcome, Role, ScenarioParams, SolvePath,
        SolverBackend, SuccessClass, SuccessTally, WorkUnit, ZonedPlacement, Zoning,
    };
    pub use dust_obs::{
        build_spans, FlightRecorder, FlowId, Histogram, MetricsRegistry, ObsHandle, SloBreach,
        SloEngine, SloKind, SloSpec, SpanForest, SpanOutcome, Trace, TraceAssert, TraceEvent,
    };
    pub use dust_proto::{Client, ClientMsg, Envelope, Manager, ManagerMsg, Priority, RequestId};
    pub use dust_sim::{
        chaos_ladder, chaos_run, fig1_curve, fig6_contrast, registry, Scenario, ScenarioKnobs,
        ScenarioRun, StormConfig,
    };
    pub use dust_sim::{
        chaos_with_faults, chaos_with_faults_observed, chaos_with_faults_observed_on,
        chaos_with_slo, chaos_with_slo_on, evaluate_flows, fleet, scale_fleet, scale_fleet_sim,
        scale_fleet_sim_on, testbed_dust_config, testbed_nodes, testbed_observed,
        testbed_observed_on, testbed_topology, ChaosResult, EngineKind, FaultConfig, FaultProfile,
        FlowOutcome, NodeSpec, SimBuilder, SimConfig, SimNode, SimReport, Simulation,
        TelemetryFlow, TrafficModel, Transport,
    };
    pub use dust_telemetry::{
        aggregate_load, compress, decompress, AgentKind, Alert, Comparison, Federation,
        MonitorAgent, Rule, RuleEngine, Series, Tsdb,
    };
    pub use dust_topology::{
        paper_sizes, CostEngine, CostMatrix, FatTree, Graph, Link, NodeId, Path, PathEngine,
        SplitMix64, Tier,
    };
}
