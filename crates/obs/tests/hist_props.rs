//! Seeded property tests for the log-scale histogram.
//!
//! The crate is dependency-free, so a local SplitMix64 (same algorithm
//! as `dust_topology::SplitMix64`) drives the generators.

use dust_obs::Histogram;

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Positive sample spanning many decades: 10^u for u in [-9, 9).
    fn sample(&mut self) -> f64 {
        10f64.powf(self.next_f64() * 18.0 - 9.0)
    }
}

fn record_all(values: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Exact rank statistic from the raw values, matching the histogram's
/// rank convention (`rank = clamp(ceil(q*n), 1, n)`, 1-based).
fn true_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[test]
fn quantile_estimates_bounded_by_bucket_edges() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64(seed * 1315 + 7);
        let n = 1 + (rng.next_u64() % 500) as usize;
        let values: Vec<f64> = (0..n).map(|_| rng.sample()).collect();
        let h = record_all(&values);
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let est = h.quantile(q).unwrap();
            let truth = true_quantile(&sorted, q);
            let (lo, hi) = Histogram::bucket_edges(Histogram::bucket_index(truth));
            assert!(
                lo <= est && est <= hi,
                "seed {seed} q {q}: estimate {est} outside bucket [{lo}, {hi}] of truth {truth}"
            );
            assert!(est >= truth, "seed {seed} q {q}: estimate {est} below truth {truth}");
            assert!(
                est >= sorted[0] && est <= sorted[n - 1],
                "seed {seed} q {q}: estimate {est} outside observed range"
            );
        }
    }
}

#[test]
fn merge_is_commutative() {
    for seed in 0..16u64 {
        let mut rng = SplitMix64(seed ^ 0xabcd);
        let a: Vec<f64> = (0..200).map(|_| rng.sample()).collect();
        let b: Vec<f64> = (0..150).map(|_| rng.sample()).collect();
        let (ha, hb) = (record_all(&a), record_all(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        assert_eq!(ab, ba, "seed {seed}: merge not commutative");
    }
}

#[test]
fn merge_is_associative() {
    for seed in 0..16u64 {
        let mut rng = SplitMix64(seed.wrapping_mul(0x9e37));
        let parts: Vec<Vec<f64>> =
            (0..3).map(|_| (0..120).map(|_| rng.sample()).collect()).collect();
        let [ha, hb, hc] = [record_all(&parts[0]), record_all(&parts[1]), record_all(&parts[2])];
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        assert_eq!(left, right, "seed {seed}: merge not associative");
    }
}

#[test]
fn merged_shards_equal_single_pass_recording() {
    for seed in 0..16u64 {
        let mut rng = SplitMix64(seed + 99);
        let values: Vec<f64> = (0..400).map(|_| rng.sample()).collect();
        let single = record_all(&values);
        // shard round-robin into 4, merge back in shard order
        let mut merged = Histogram::new();
        for s in 0..4 {
            let shard: Vec<f64> = values.iter().copied().skip(s).step_by(4).collect();
            merged.merge(&record_all(&shard));
        }
        assert_eq!(single, merged, "seed {seed}: sharded merge != single pass");
    }
}

#[test]
fn snapshot_round_trips_through_text_encoding() {
    for seed in 0..16u64 {
        let mut rng = SplitMix64(seed * 31 + 5);
        let n = (rng.next_u64() % 300) as usize; // sometimes empty
        let values: Vec<f64> = (0..n).map(|_| rng.sample()).collect();
        let h = record_all(&values);
        let text = h.encode();
        let back = Histogram::decode(&text)
            .unwrap_or_else(|| panic!("seed {seed}: decode failed on {text:?}"));
        assert_eq!(h, back, "seed {seed}: text round-trip lost information");
        assert_eq!(back.encode(), text, "seed {seed}: re-encode not byte-stable");
    }
}

#[test]
fn merging_disjoint_bucket_ranges_preserves_both_tails() {
    // One histogram entirely in the tiny decades, one entirely in the
    // huge ones: no bucket overlaps, so the merge must be the exact
    // concatenation — counts, extremes, and both quantile tails.
    let small: Vec<f64> = (1..=100).map(|i| 1e-9 * i as f64).collect();
    let large: Vec<f64> = (1..=100).map(|i| 1e9 * i as f64).collect();
    let (hs, hl) = (record_all(&small), record_all(&large));
    let overlap: Vec<usize> = hs
        .nonzero_buckets()
        .filter(|(i, ..)| hl.nonzero_buckets().any(|(j, ..)| i == &j))
        .map(|(i, ..)| i)
        .collect();
    assert!(overlap.is_empty(), "ranges must be bucket-disjoint, shared: {overlap:?}");

    let mut merged = hs.clone();
    merged.merge(&hl);
    assert_eq!(merged.count(), 200);
    assert_eq!(merged.min(), Some(1e-9));
    assert_eq!(merged.max(), Some(1e11));
    // q=0.5 falls on the last small sample; q=0.51 on the first large
    // one — the estimate must stay within the right side's range.
    assert!(merged.quantile(0.5).unwrap() <= *small.last().unwrap() * 2.0);
    assert!(merged.quantile(0.51).unwrap() >= 1e9);
    // and the merge equals single-pass recording of the union
    let mut union = small.clone();
    union.extend(&large);
    assert_eq!(merged, record_all(&union));
}

#[test]
fn quantile_zero_and_one_are_the_exact_extremes() {
    for seed in 0..16u64 {
        let mut rng = SplitMix64(seed * 77 + 3);
        let n = 1 + (rng.next_u64() % 300) as usize;
        let values: Vec<f64> = (0..n).map(|_| rng.sample()).collect();
        let h = record_all(&values);
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(h.quantile(0.0), Some(sorted[0]), "seed {seed}: q=0 must be the exact min");
        assert_eq!(h.quantile(1.0), Some(sorted[n - 1]), "seed {seed}: q=1 must be the exact max");
        // out-of-domain q clamps rather than panicking or extrapolating
        assert_eq!(h.quantile(-0.5), h.quantile(0.0), "seed {seed}");
        assert_eq!(h.quantile(1.5), h.quantile(1.0), "seed {seed}");
    }
}

#[test]
fn single_sample_quantiles_are_stable_across_the_whole_q_range() {
    // With one sample every quantile is that sample, bit-for-bit, for
    // any q — including awkward values and repeated queries.
    let mut rng = SplitMix64(0xfeed);
    for _ in 0..50 {
        let v = rng.sample();
        let mut h = Histogram::new();
        h.record(v);
        let mut q = 0.0;
        while q <= 1.0 {
            assert_eq!(h.quantile(q), Some(v), "v={v} q={q}");
            q += 0.01;
        }
        assert_eq!(h.quantile(f64::MIN_POSITIVE), Some(v));
        assert_eq!(h.quantile(1.0 - f64::EPSILON), Some(v));
    }
}

#[test]
fn merge_with_empty_is_identity() {
    let mut rng = SplitMix64(1);
    let values: Vec<f64> = (0..50).map(|_| rng.sample()).collect();
    let h = record_all(&values);
    let mut merged = h.clone();
    merged.merge(&Histogram::new());
    assert_eq!(h, merged);
    let mut other = Histogram::new();
    other.merge(&h);
    assert_eq!(h, other);
}
