//! Hierarchical wall-clock profiler.
//!
//! Answers the question the metrics tier deliberately avoids: *how long
//! did the host spend where?* Scopes are named phases (`lp.simplex.solve`,
//! `sim.event.telemetry_sample`, …) opened with an RAII [`ScopeTimer`]
//! and assembled into a call tree of invocation counts plus total/self
//! wall-clock nanoseconds. The artifact is a folded-stack text export —
//! `grep '^self ' | cut -d' ' -f2-` feeds straight into `flamegraph.pl`
//! or speedscope — plus a top-N self-time table.
//!
//! # Determinism contract
//!
//! Wall-clock durations are inherently nondeterministic, so they never
//! enter trace digests, `--metrics-json`, or any golden-tested output.
//! The profile artifact itself is split: `count` lines (scope path +
//! invocation count) are a pure function of the seed and byte-identical
//! across same-seed runs — CI diffs them — while `self` lines carry the
//! wall-clock and are expected to vary. Profiling is an observer: the
//! tree lives beside the metrics registry and touches nothing else, so
//! enabling it cannot perturb a run's simulated behavior.
//!
//! # Threading model
//!
//! The shared tree keeps one open-scope stack, so [`ScopeTimer`] guards
//! must come from a single thread at a time — in DUST that is the
//! simulation/solver main thread. Worker threads (the CostEngine pool)
//! instead record into a private lock-free [`LocalProfiler`] forked from
//! the registry and grafted back under the currently open scope with
//! [`ProfileRegistry::join`]. Merging is pure integer addition node-wise
//! by name, so it is exactly associative and commutative: any join order
//! or grouping yields the same tree, keeping counts scheduling-invariant.

use std::fmt::Write as _;
use std::sync::Mutex;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Index of the synthetic root node in every [`ProfTree`].
const ROOT: usize = 0;

/// One node of the call tree: a scope name in the context of its parent.
#[derive(Debug, Clone)]
struct ProfNode {
    /// Index into the interned name table.
    name_id: usize,
    /// Child node indices, in first-entered order.
    children: Vec<usize>,
    /// Times this scope was entered.
    count: u64,
    /// Total wall-clock nanoseconds spent inside, children included.
    total_ns: u64,
}

/// The call tree plus its interned name table and open-scope stack.
#[derive(Debug)]
struct ProfTree {
    /// Interned scope names. Instrumentation sites pass `&'static str`,
    /// so interning is pointer-cheap and the table stays tiny.
    names: Vec<&'static str>,
    nodes: Vec<ProfNode>,
    /// Currently open scope nodes, innermost last. Only the owning
    /// thread pushes/pops; workers use [`LocalProfiler`].
    stack: Vec<usize>,
}

impl ProfTree {
    fn new() -> Self {
        let root = ProfNode { name_id: 0, children: Vec::new(), count: 0, total_ns: 0 };
        ProfTree { names: vec!["<root>"], nodes: vec![root], stack: Vec::new() }
    }

    fn intern(&mut self, name: &'static str) -> usize {
        // linear scan: the scope vocabulary is a few dozen names at most
        match self.names.iter().position(|n| *n == name) {
            Some(i) => i,
            None => {
                self.names.push(name);
                self.names.len() - 1
            }
        }
    }

    /// Find or create the child of `parent` carrying `name_id`.
    fn child(&mut self, parent: usize, name_id: usize) -> usize {
        if let Some(&c) =
            self.nodes[parent].children.iter().find(|&&c| self.nodes[c].name_id == name_id)
        {
            return c;
        }
        let idx = self.nodes.len();
        self.nodes.push(ProfNode { name_id, children: Vec::new(), count: 0, total_ns: 0 });
        self.nodes[parent].children.push(idx);
        idx
    }

    fn open(&mut self) -> usize {
        self.stack.last().copied().unwrap_or(ROOT)
    }

    fn enter(&mut self, name: &'static str) -> usize {
        let name_id = self.intern(name);
        let parent = self.open();
        let idx = self.child(parent, name_id);
        self.nodes[idx].count += 1;
        self.stack.push(idx);
        idx
    }

    fn exit(&mut self, idx: usize, elapsed_ns: u64) {
        self.nodes[idx].total_ns = self.nodes[idx].total_ns.saturating_add(elapsed_ns);
        // defensive search-pop: a guard dropped out of order (e.g. held
        // across an early return) unwinds every scope it encloses
        if let Some(pos) = self.stack.iter().rposition(|&n| n == idx) {
            self.stack.truncate(pos);
        }
    }

    /// Graft `other`'s top-level scopes under `at`, merging node-wise by
    /// name. Integer adds only — exactly associative and commutative.
    fn graft(&mut self, at: usize, other: &ProfTree, other_idx: usize) {
        for &oc in &other.nodes[other_idx].children.clone() {
            let name = other.names[other.nodes[oc].name_id];
            let name_id = self.intern(name);
            let here = self.child(at, name_id);
            self.nodes[here].count += other.nodes[oc].count;
            self.nodes[here].total_ns =
                self.nodes[here].total_ns.saturating_add(other.nodes[oc].total_ns);
            self.graft(here, other, oc);
        }
    }

    /// Self nanoseconds of a node: total minus children totals, clamped.
    fn self_ns(&self, idx: usize) -> u64 {
        let kids: u64 = self.nodes[idx].children.iter().map(|&c| self.nodes[c].total_ns).sum();
        self.nodes[idx].total_ns.saturating_sub(kids)
    }

    /// Every exported scope as `(folded path, count, total_ns, self_ns)`.
    fn rows(&self) -> Vec<(String, u64, u64, u64)> {
        let mut out = Vec::new();
        let mut work: Vec<(usize, String)> = self.nodes[ROOT]
            .children
            .iter()
            .map(|&c| (c, self.names[self.nodes[c].name_id].to_string()))
            .collect();
        while let Some((idx, path)) = work.pop() {
            for &c in &self.nodes[idx].children {
                work.push((c, format!("{path};{}", self.names[self.nodes[c].name_id])));
            }
            out.push((path, self.nodes[idx].count, self.nodes[idx].total_ns, self.self_ns(idx)));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Shared profiling registry: one call tree behind a mutex, attached to
/// an `ObsHandle` after construction via `enable_profiling`.
#[derive(Debug)]
pub struct ProfileRegistry {
    inner: Mutex<ProfTree>,
}

impl Default for ProfileRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// Recover the tree from a poisoned lock: profiling data is advisory, a
/// panicking scope must not cascade into every later scope.
fn lock(reg: &ProfileRegistry) -> std::sync::MutexGuard<'_, ProfTree> {
    reg.inner.lock().unwrap_or_else(|e| e.into_inner())
}

impl ProfileRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ProfileRegistry { inner: Mutex::new(ProfTree::new()) }
    }

    /// Open `name` under the innermost open scope; the returned guard
    /// closes it on drop. Single-threaded use only (see module docs).
    pub fn scope(self: &Arc<Self>, name: &'static str) -> ScopeTimer {
        let node = lock(self).enter(name);
        ScopeTimer { reg: Arc::clone(self), node, start: Instant::now() }
    }

    /// A private per-worker profiler; record with [`LocalProfiler::time`]
    /// and graft back with [`ProfileRegistry::join`].
    pub fn fork(&self) -> LocalProfiler {
        LocalProfiler { tree: ProfTree::new() }
    }

    /// Merge a worker's tree under the currently open scope. Call from
    /// the owning thread, in a deterministic order (e.g. job index) —
    /// merging is commutative anyway, but determinism likes discipline.
    pub fn join(&self, local: LocalProfiler) {
        let mut tree = lock(self);
        let at = tree.open();
        tree.graft(at, &local.tree, ROOT);
    }

    /// Per-scope-name self-time totals in nanoseconds, aggregated across
    /// all paths a name appears under, sorted by self-time descending
    /// (ties by name). Feeds the `phase_self_ms` field of BENCH records.
    pub fn phase_self_ns(&self) -> Vec<(String, u64)> {
        let tree = lock(self);
        let mut by_name: Vec<(String, u64)> = Vec::new();
        for idx in 1..tree.nodes.len() {
            let name = tree.names[tree.nodes[idx].name_id];
            let ns = tree.self_ns(idx);
            match by_name.iter_mut().find(|(n, _)| n == name) {
                Some((_, acc)) => *acc += ns,
                None => by_name.push((name.to_string(), ns)),
            }
        }
        by_name.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        by_name
    }

    /// The folded-stack artifact. Layout, in order:
    ///
    /// 1. comment header (`# …`)
    /// 2. `count <path> <n>` lines, sorted by path — **deterministic**,
    ///    CI byte-diffs these across same-seed runs
    /// 3. `self <path> <ns>` lines, same order — wall-clock; strip the
    ///    prefix (`grep '^self ' | cut -d' ' -f2-`) for flamegraph input
    /// 4. a top-N self-time table as trailing comments
    pub fn report(&self) -> String {
        let rows = lock(self).rows();
        let mut out = String::new();
        out.push_str("# dust profile v1 (folded stacks)\n");
        let _ = writeln!(out, "# scopes: {}", rows.len());
        out.push_str("# count lines are deterministic per seed; self lines are wall-clock ns\n");
        for (path, count, _, _) in &rows {
            let _ = writeln!(out, "count {path} {count}");
        }
        for (path, _, _, self_ns) in &rows {
            let _ = writeln!(out, "self {path} {self_ns}");
        }
        let total: u64 = rows.iter().map(|r| r.3).sum();
        let mut top: Vec<&(String, u64, u64, u64)> = rows.iter().collect();
        top.sort_by(|a, b| b.3.cmp(&a.3).then_with(|| a.0.cmp(&b.0)));
        out.push_str("#\n# top self-time\n");
        for (path, count, _, self_ns) in top.into_iter().take(10) {
            let pct = if total == 0 { 0.0 } else { 100.0 * *self_ns as f64 / total as f64 };
            let _ = writeln!(
                out,
                "# {pct:5.1}% {:>10.3} ms  {count:>8}x  {path}",
                *self_ns as f64 / 1e6
            );
        }
        out
    }
}

/// Shared slot an `ObsHandle` core reserves for its (lazily enabled)
/// profiler. Kept here so the obs core stores exactly one `OnceLock`.
pub type ProfileSlot = OnceLock<Arc<ProfileRegistry>>;

/// RAII guard for one open scope. Owns its registry handle so it can
/// outlive any borrow of the instrumented structure (event loops hold
/// `&mut self` while scopes are open).
#[derive(Debug)]
pub struct ScopeTimer {
    reg: Arc<ProfileRegistry>,
    node: usize,
    start: Instant,
}

impl Drop for ScopeTimer {
    fn drop(&mut self) {
        let elapsed = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        lock(&self.reg).exit(self.node, elapsed);
    }
}

/// A worker-thread profiler: its own tree, no locking, closure-based
/// timing (RAII guards borrow, which `Fn` worker closures cannot
/// afford). Created by [`ProfileRegistry::fork`], consumed by
/// [`ProfileRegistry::join`].
#[derive(Debug)]
pub struct LocalProfiler {
    tree: ProfTree,
}

impl LocalProfiler {
    /// Run `f` inside scope `name`, timing it.
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let idx = self.tree.enter(name);
        let start = Instant::now();
        let out = f();
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.tree.exit(idx, elapsed);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> Arc<ProfileRegistry> {
        Arc::new(ProfileRegistry::new())
    }

    fn counts(r: &ProfileRegistry) -> Vec<(String, u64)> {
        lock(r).rows().into_iter().map(|(p, c, _, _)| (p, c)).collect()
    }

    #[test]
    fn nested_scopes_build_a_tree() {
        let r = reg();
        {
            let _a = r.scope("outer");
            let _b = r.scope("inner");
            drop(_b);
            let _c = r.scope("inner");
        }
        assert_eq!(counts(&r), vec![("outer".into(), 1), ("outer;inner".into(), 2)]);
    }

    #[test]
    fn zero_duration_scopes_still_count() {
        let r = reg();
        for _ in 0..5 {
            let _s = r.scope("blink");
        }
        let rows = lock(&r).rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1, 5, "five entries even if elapsed rounds to 0ns");
        // self time equals total for a leaf, whatever tiny value it is
        assert_eq!(rows[0].2, rows[0].3);
    }

    #[test]
    fn reentrant_same_name_nests_not_merges() {
        let r = reg();
        {
            let _a = r.scope("solve");
            let _b = r.scope("solve");
        }
        assert_eq!(counts(&r), vec![("solve".into(), 1), ("solve;solve".into(), 1)]);
    }

    #[test]
    fn out_of_order_drop_unwinds_enclosed_scopes() {
        let r = reg();
        let a = r.scope("a");
        let b = r.scope("b");
        drop(a); // drops while b is still open: stack unwinds past b
        drop(b); // must not corrupt the tree
        let _c = r.scope("c");
        drop(_c);
        let got = counts(&r);
        assert_eq!(got, vec![("a".into(), 1), ("a;b".into(), 1), ("c".into(), 1)]);
    }

    #[test]
    fn join_grafts_under_the_open_scope() {
        let r = reg();
        {
            let _fan = r.scope("fan_out");
            let mut w = r.fork();
            w.time("job", || ());
            w.time("job", || ());
            r.join(w);
        }
        assert_eq!(counts(&r), vec![("fan_out".into(), 1), ("fan_out;job".into(), 2)]);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        // three workers with overlapping scope sets, joined in every
        // order and grouping: identical count trees (integer adds only)
        let make = |spec: &[(&'static str, u32)]| {
            let r = reg();
            let mut w = r.fork();
            for &(name, n) in spec {
                for _ in 0..n {
                    w.time(name, || ());
                }
            }
            w
        };
        let workers =
            [vec![("a", 2), ("b", 1)], vec![("b", 3), ("c", 1)], vec![("a", 1), ("c", 4)]];
        let mut reference: Option<Vec<(String, u64)>> = None;
        for order in [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            let r = reg();
            {
                let _fan = r.scope("fan_out");
                for &i in &order {
                    r.join(make(&workers[i]));
                }
            }
            let got = counts(&r);
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(&got, want, "join order {order:?} diverged"),
            }
        }
        let want = reference.unwrap();
        assert!(want.iter().any(|(p, c)| p == "fan_out;a" && *c == 3), "{want:?}");
        assert!(want.iter().any(|(p, c)| p == "fan_out;b" && *c == 4), "{want:?}");
        assert!(want.iter().any(|(p, c)| p == "fan_out;c" && *c == 5), "{want:?}");
    }

    #[test]
    fn report_separates_counts_from_wallclock() {
        let r = reg();
        {
            let _a = r.scope("phase");
            std::thread::yield_now();
        }
        let text = r.report();
        assert!(text.contains("count phase 1\n"), "{text}");
        assert!(text.lines().any(|l| l.starts_with("self phase ")), "{text}");
        assert!(text.contains("# top self-time"), "{text}");
        // count lines carry no wall-clock: re-running the same scope
        // sequence must reproduce them byte-for-byte
        let r2 = reg();
        {
            let _a = r2.scope("phase");
        }
        let pick = |s: &str| {
            s.lines().filter(|l| l.starts_with("count ")).map(String::from).collect::<Vec<_>>()
        };
        assert_eq!(pick(&text), pick(&r2.report()));
    }

    #[test]
    fn phase_self_ns_aggregates_across_paths() {
        let r = reg();
        {
            let _a = r.scope("outer");
            let _b = r.scope("shared");
        }
        {
            let _c = r.scope("shared");
        }
        let phases = r.phase_self_ns();
        let names: Vec<&str> = phases.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"outer") && names.contains(&"shared"), "{names:?}");
        assert_eq!(phases.iter().filter(|(n, _)| n == "shared").count(), 1);
    }
}
