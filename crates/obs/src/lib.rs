//! # dust-obs — deterministic observability for DUST
//!
//! A dependency-free metrics + tracing layer shared by every crate in
//! the workspace. Two halves:
//!
//! * [`MetricsRegistry`] — monotonic counters, gauges, and log-scale
//!   [`Histogram`]s with exactly mergeable snapshots and stable
//!   text/JSON encodings.
//! * [`Trace`] — an append-only structured event log keyed by sim time
//!   and seed, with a running FNV-1a digest so two runs at the same
//!   seed are bit-identical iff their digests match. [`TraceAssert`]
//!   turns traces into regression tests.
//!
//! Both live behind [`ObsHandle`], a cheap clonable handle that is a
//! **no-op by default**: `ObsHandle::disabled()` (also `Default`)
//! carries no allocation and every recording call short-circuits on one
//! `Option` check, so instrumented code pays nothing when observability
//! is off. `ObsHandle::recording(seed)` turns everything on.
//!
//! ## Determinism contract
//!
//! Instrumentation must never perturb the instrumented system: handles
//! are passed by value/clone, recording never fails, and nothing reads
//! back from the registry on the hot path. Callers in parallel regions
//! must restrict themselves to counter increments (commutative — totals
//! are deterministic regardless of interleaving) and must not emit
//! trace events, whose order would depend on thread scheduling; the
//! cost engine, for example, decides cache hits in a sequential pre-pass
//! and emits a single summary event per matrix build.

#![warn(missing_docs)]

mod assert;
mod hist;
mod metrics;
mod trace;

pub use assert::TraceAssert;
pub use hist::{Histogram, NUM_BUCKETS, SUB_BUCKETS};
pub use metrics::MetricsRegistry;
pub use trace::{Trace, TraceEntry, TraceEvent};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

#[derive(Debug)]
struct ObsCore {
    /// Sim clock, mirrored by whoever owns the clock (the sim runner)
    /// so layers without one (cost engine, solvers) can stamp events.
    now_ms: AtomicU64,
    inner: Mutex<ObsInner>,
}

#[derive(Debug)]
struct ObsInner {
    metrics: MetricsRegistry,
    trace: Trace,
}

/// Shared handle to one run's metrics + trace. Clones are cheap and all
/// point at the same underlying recorder.
#[derive(Debug, Clone, Default)]
pub struct ObsHandle {
    core: Option<Arc<ObsCore>>,
}

impl ObsHandle {
    /// The no-op handle: every recording call returns immediately.
    pub fn disabled() -> Self {
        ObsHandle { core: None }
    }

    /// A live handle recording into a fresh registry and trace.
    pub fn recording(seed: u64) -> Self {
        ObsHandle {
            core: Some(Arc::new(ObsCore {
                now_ms: AtomicU64::new(0),
                inner: Mutex::new(ObsInner {
                    metrics: MetricsRegistry::new(),
                    trace: Trace::new(seed),
                }),
            })),
        }
    }

    /// True when this handle actually records.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    fn lock(core: &ObsCore) -> MutexGuard<'_, ObsInner> {
        // recording never panics while holding the lock; if a caller's
        // assertion ever poisons it, keep recording anyway
        core.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mirror the sim clock (ms). Called by the clock owner per event.
    pub fn set_now(&self, t_ms: u64) {
        if let Some(c) = &self.core {
            c.now_ms.store(t_ms, Ordering::Relaxed);
        }
    }

    /// Current mirrored sim time, ms (0 when disabled or never set).
    pub fn now(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.now_ms.load(Ordering::Relaxed))
    }

    /// Add `n` to a counter.
    pub fn counter_add(&self, name: &str, n: u64) {
        if let Some(c) = &self.core {
            Self::lock(c).metrics.counter_add(name, n);
        }
    }

    /// Add 1 to a counter.
    pub fn counter_inc(&self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Set a gauge. Must only be called from deterministic (sequential)
    /// context — last write wins.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(c) = &self.core {
            Self::lock(c).metrics.gauge_set(name, v);
        }
    }

    /// Record a histogram sample.
    pub fn observe(&self, name: &str, v: f64) {
        if let Some(c) = &self.core {
            Self::lock(c).metrics.observe(name, v);
        }
    }

    /// Record a trace event at the mirrored sim time. Must only be
    /// called from deterministic (sequential) context.
    pub fn trace(&self, event: TraceEvent) {
        if let Some(c) = &self.core {
            let t = c.now_ms.load(Ordering::Relaxed);
            Self::lock(c).trace.record(t, event);
        }
    }

    /// Record a trace event at an explicit sim time.
    pub fn trace_at(&self, t_ms: u64, event: TraceEvent) {
        if let Some(c) = &self.core {
            Self::lock(c).trace.record(t_ms, event);
        }
    }

    /// Snapshot of the metrics so far (`None` when disabled).
    pub fn metrics(&self) -> Option<MetricsRegistry> {
        self.core.as_ref().map(|c| Self::lock(c).metrics.snapshot())
    }

    /// Copy of the trace so far (`None` when disabled).
    pub fn trace_snapshot(&self) -> Option<Trace> {
        self.core.as_ref().map(|c| Self::lock(c).trace.clone())
    }

    /// Current trace digest (`None` when disabled).
    pub fn digest(&self) -> Option<u64> {
        self.core.as_ref().map(|c| Self::lock(c).trace.digest())
    }

    /// Convenience: counter value, 0 when disabled.
    pub fn counter(&self, name: &str) -> u64 {
        self.core.as_ref().map_or(0, |c| Self::lock(c).metrics.counter(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert_and_cheap() {
        let h = ObsHandle::disabled();
        assert!(!h.is_enabled());
        h.counter_inc("x");
        h.observe("h", 1.0);
        h.trace(TraceEvent::Abandon { request: 1 });
        assert_eq!(h.metrics(), None);
        assert_eq!(h.digest(), None);
        assert_eq!(h.counter("x"), 0);
        assert_eq!(std::mem::size_of::<ObsHandle>(), std::mem::size_of::<usize>());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!ObsHandle::default().is_enabled());
    }

    #[test]
    fn clones_share_the_recorder() {
        let h = ObsHandle::recording(5);
        let h2 = h.clone();
        h.counter_add("c", 2);
        h2.counter_add("c", 3);
        h2.set_now(40);
        h.trace(TraceEvent::Reclaim { request: 1, node: 2 });
        assert_eq!(h.counter("c"), 5);
        let t = h2.trace_snapshot().unwrap();
        assert_eq!(t.entries()[0].t_ms, 40);
        assert_eq!(t.seed(), 5);
    }

    #[test]
    fn parallel_counter_adds_are_deterministic_in_total() {
        let h = ObsHandle::recording(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.counter_inc("n");
                    }
                });
            }
        });
        assert_eq!(h.counter("n"), 4000);
    }
}
