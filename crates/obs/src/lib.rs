//! # dust-obs — deterministic observability for DUST
//!
//! A dependency-free metrics + tracing layer shared by every crate in
//! the workspace. Two halves:
//!
//! * [`MetricsRegistry`] — monotonic counters, gauges, and log-scale
//!   [`Histogram`]s with exactly mergeable snapshots and stable
//!   text/JSON encodings.
//! * [`Trace`] — an append-only structured event log keyed by sim time
//!   and seed, with a running FNV-1a digest so two runs at the same
//!   seed are bit-identical iff their digests match. [`TraceAssert`]
//!   turns traces into regression tests.
//!
//! On top of the trace sit three analysis tiers (all deterministic pure
//! functions of the recorded stream): [`span::build_spans`] reconstructs
//! per-flow causal span trees from the flow identities events carry
//! ([`TraceEvent::flow`]), a [`FlightRecorder`] ring keeps the most
//! recent events for O(capacity) post-mortem dumps
//! ([`ObsHandle::post_mortem`]), and an [`SloEngine`] evaluates
//! declarative health rules online as the sim feeds it.
//!
//! Both live behind [`ObsHandle`], a cheap clonable handle that is a
//! **no-op by default**: `ObsHandle::disabled()` (also `Default`)
//! carries no allocation and every recording call short-circuits on one
//! `Option` check, so instrumented code pays nothing when observability
//! is off. `ObsHandle::recording(seed)` turns everything on.
//!
//! ## Determinism contract
//!
//! Instrumentation must never perturb the instrumented system: handles
//! are passed by value/clone, recording never fails, and nothing reads
//! back from the registry on the hot path. Callers in parallel regions
//! must restrict themselves to counter increments (commutative — totals
//! are deterministic regardless of interleaving) and must not emit
//! trace events, whose order would depend on thread scheduling; the
//! cost engine, for example, decides cache hits in a sequential pre-pass
//! and emits a single summary event per matrix build.

#![warn(missing_docs)]

mod assert;
mod flight;
mod hist;
mod metrics;
pub mod profile;
mod slo;
pub mod span;
mod trace;

pub use assert::TraceAssert;
pub use flight::{dump_entries, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use hist::{Histogram, NUM_BUCKETS, SUB_BUCKETS};
pub use metrics::MetricsRegistry;
pub use profile::{LocalProfiler, ProfileRegistry, ScopeTimer};
pub use slo::{SloBreach, SloEngine, SloKind, SloRule, SloSpec};
pub use span::{build_spans, FlowSpans, Span, SpanForest, SpanOutcome};
pub use trace::{
    DecodedTrace, FlowId, Trace, TraceEntry, TraceEvent, SLO_GLOBAL, TRACE_FORMAT_VERSION,
    TRACE_MAGIC,
};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

#[derive(Debug)]
struct ObsCore {
    /// Sim clock, mirrored by whoever owns the clock (the sim runner)
    /// so layers without one (cost engine, solvers) can stamp events.
    now_ms: AtomicU64,
    inner: Mutex<ObsInner>,
    /// Wall-clock profiler, attached lazily by [`ObsHandle::enable_profiling`]
    /// so the common recording handle pays one `OnceLock` probe per scope
    /// and the disabled handle stays a single `Option` check.
    profile: profile::ProfileSlot,
}

#[derive(Debug)]
struct ObsInner {
    metrics: MetricsRegistry,
    trace: Trace,
    /// Bounded ring of the most recent trace entries, kept alongside the
    /// full trace so post-mortem dumps are O(capacity) regardless of run
    /// length.
    flight: FlightRecorder,
}

impl ObsInner {
    /// Append to the trace and mirror into the flight ring; the entry's
    /// sequence number is shared so a post-mortem window lines up with
    /// the full trace.
    fn record(&mut self, t_ms: u64, event: TraceEvent) {
        let seq = self.trace.len() as u64;
        self.trace.record(t_ms, event);
        self.flight.push(TraceEntry { t_ms, seq, event });
    }
}

/// Shared handle to one run's metrics + trace. Clones are cheap and all
/// point at the same underlying recorder.
#[derive(Debug, Clone, Default)]
pub struct ObsHandle {
    core: Option<Arc<ObsCore>>,
}

impl ObsHandle {
    /// The no-op handle: every recording call returns immediately.
    pub fn disabled() -> Self {
        ObsHandle { core: None }
    }

    /// A live handle recording into a fresh registry and trace, with a
    /// [`DEFAULT_FLIGHT_CAPACITY`]-entry flight recorder riding along.
    pub fn recording(seed: u64) -> Self {
        Self::recording_with_flight(seed, DEFAULT_FLIGHT_CAPACITY)
    }

    /// Like [`ObsHandle::recording`] with an explicit flight-recorder
    /// ring capacity (how many trailing events a post-mortem retains).
    pub fn recording_with_flight(seed: u64, flight_capacity: usize) -> Self {
        ObsHandle {
            core: Some(Arc::new(ObsCore {
                now_ms: AtomicU64::new(0),
                inner: Mutex::new(ObsInner {
                    metrics: MetricsRegistry::new(),
                    trace: Trace::new(seed),
                    flight: FlightRecorder::new(flight_capacity),
                }),
                profile: profile::ProfileSlot::new(),
            })),
        }
    }

    /// True when this handle actually records.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    fn lock(core: &ObsCore) -> MutexGuard<'_, ObsInner> {
        // recording never panics while holding the lock; if a caller's
        // assertion ever poisons it, keep recording anyway
        core.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mirror the sim clock (ms). Called by the clock owner per event.
    pub fn set_now(&self, t_ms: u64) {
        if let Some(c) = &self.core {
            c.now_ms.store(t_ms, Ordering::Relaxed);
        }
    }

    /// Current mirrored sim time, ms (0 when disabled or never set).
    pub fn now(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.now_ms.load(Ordering::Relaxed))
    }

    /// Add `n` to a counter.
    pub fn counter_add(&self, name: &str, n: u64) {
        if let Some(c) = &self.core {
            Self::lock(c).metrics.counter_add(name, n);
        }
    }

    /// Add 1 to a counter.
    pub fn counter_inc(&self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Set a gauge. Must only be called from deterministic (sequential)
    /// context — last write wins.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(c) = &self.core {
            Self::lock(c).metrics.gauge_set(name, v);
        }
    }

    /// Record a histogram sample.
    pub fn observe(&self, name: &str, v: f64) {
        if let Some(c) = &self.core {
            Self::lock(c).metrics.observe(name, v);
        }
    }

    /// Record a trace event at the mirrored sim time. Must only be
    /// called from deterministic (sequential) context.
    pub fn trace(&self, event: TraceEvent) {
        if let Some(c) = &self.core {
            let t = c.now_ms.load(Ordering::Relaxed);
            Self::lock(c).record(t, event);
        }
    }

    /// Record a trace event at an explicit sim time.
    pub fn trace_at(&self, t_ms: u64, event: TraceEvent) {
        if let Some(c) = &self.core {
            Self::lock(c).record(t_ms, event);
        }
    }

    /// Render a post-mortem dump of the flight-recorder window (the most
    /// recent events) tagged with `reason`. `None` when disabled. The
    /// dump is deterministic: same events in, same bytes out — see
    /// [`FlightRecorder::dump`].
    pub fn post_mortem(&self, reason: &str) -> Option<String> {
        self.core.as_ref().map(|c| {
            let g = Self::lock(c);
            g.flight.dump(g.trace.seed(), reason)
        })
    }

    /// Snapshot of the metrics so far (`None` when disabled).
    pub fn metrics(&self) -> Option<MetricsRegistry> {
        self.core.as_ref().map(|c| Self::lock(c).metrics.snapshot())
    }

    /// Copy of the trace so far (`None` when disabled).
    pub fn trace_snapshot(&self) -> Option<Trace> {
        self.core.as_ref().map(|c| Self::lock(c).trace.clone())
    }

    /// Current trace digest (`None` when disabled).
    pub fn digest(&self) -> Option<u64> {
        self.core.as_ref().map(|c| Self::lock(c).trace.digest())
    }

    /// Convenience: counter value, 0 when disabled.
    pub fn counter(&self, name: &str) -> u64 {
        self.core.as_ref().map_or(0, |c| Self::lock(c).metrics.counter(name))
    }

    /// Attach a wall-clock [`ProfileRegistry`] to this handle (no-op on
    /// a disabled handle, idempotent on a recording one). Profiling is
    /// opt-in on top of recording: metrics/trace callers pay one extra
    /// `OnceLock` probe per `prof_*` call until this is invoked.
    pub fn enable_profiling(&self) {
        if let Some(c) = &self.core {
            let _ = c.profile.set(Arc::new(ProfileRegistry::new()));
        }
    }

    /// True when [`ObsHandle::enable_profiling`] has been called.
    pub fn profiling_enabled(&self) -> bool {
        self.profile().is_some()
    }

    /// The attached profiler, if any.
    pub fn profile(&self) -> Option<&Arc<ProfileRegistry>> {
        self.core.as_ref().and_then(|c| c.profile.get())
    }

    /// Open a profiling scope (RAII; closes on drop). `None` — costing
    /// one branch — unless profiling is enabled. Single-threaded use
    /// only: workers fork with [`ObsHandle::prof_fork`].
    pub fn prof_scope(&self, name: &'static str) -> Option<ScopeTimer> {
        self.profile().map(|p| p.scope(name))
    }

    /// Fork a private per-worker profiler (see [`LocalProfiler`]).
    pub fn prof_fork(&self) -> Option<LocalProfiler> {
        self.profile().map(|p| p.fork())
    }

    /// Graft a worker profiler back under the currently open scope.
    /// Join in a deterministic order (merging is commutative, so any
    /// order yields the same tree — but determinism likes discipline).
    pub fn prof_join(&self, local: LocalProfiler) {
        if let Some(p) = self.profile() {
            p.join(local);
        }
    }

    /// The folded-stack profile artifact (`None` unless profiling).
    pub fn profile_report(&self) -> Option<String> {
        self.profile().map(|p| p.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert_and_cheap() {
        let h = ObsHandle::disabled();
        assert!(!h.is_enabled());
        h.counter_inc("x");
        h.observe("h", 1.0);
        h.trace(TraceEvent::Abandon { request: 1 });
        assert_eq!(h.metrics(), None);
        assert_eq!(h.digest(), None);
        assert_eq!(h.counter("x"), 0);
        assert_eq!(h.post_mortem("why"), None);
        assert!(h.prof_scope("x").is_none() && h.prof_fork().is_none());
        h.enable_profiling();
        assert!(!h.profiling_enabled(), "profiling cannot attach to a disabled handle");
        assert_eq!(h.profile_report(), None);
        assert_eq!(std::mem::size_of::<ObsHandle>(), std::mem::size_of::<usize>());
    }

    #[test]
    fn profiling_is_opt_in_on_recording_handles() {
        let h = ObsHandle::recording(1);
        assert!(!h.profiling_enabled());
        assert!(h.prof_scope("x").is_none(), "recording alone must not profile");
        h.enable_profiling();
        h.enable_profiling(); // idempotent
        assert!(h.profiling_enabled());
        {
            let _outer = h.prof_scope("outer");
            let mut w = h.prof_fork().unwrap();
            w.time("job", || ());
            h.prof_join(w);
        }
        let report = h.profile_report().unwrap();
        assert!(report.contains("count outer 1\n"), "{report}");
        assert!(report.contains("count outer;job 1\n"), "{report}");
        // clones share the profiler like they share the recorder
        assert!(h.clone().profiling_enabled());
    }

    #[test]
    fn post_mortem_dumps_the_trailing_window() {
        let h = ObsHandle::recording_with_flight(9, 2);
        for i in 0..5u64 {
            h.trace_at(i * 10, TraceEvent::Abandon { request: i });
        }
        let dump = h.post_mortem("test").unwrap();
        assert!(dump.starts_with("postmortem reason=test seed=9 window=2 dropped=3\n"), "{dump}");
        assert!(dump.contains("30 3 Abandon req=3\n"));
        assert!(dump.contains("40 4 Abandon req=4\n"));
        assert!(!dump.contains("req=2"), "evicted entries must not appear");
        assert_eq!(dump, h.post_mortem("test").unwrap(), "dump is deterministic");
        // the full trace still has everything
        assert_eq!(h.trace_snapshot().unwrap().len(), 5);
    }

    #[test]
    fn default_is_disabled() {
        assert!(!ObsHandle::default().is_enabled());
    }

    #[test]
    fn clones_share_the_recorder() {
        let h = ObsHandle::recording(5);
        let h2 = h.clone();
        h.counter_add("c", 2);
        h2.counter_add("c", 3);
        h2.set_now(40);
        h.trace(TraceEvent::Reclaim { request: 1, node: 2 });
        assert_eq!(h.counter("c"), 5);
        let t = h2.trace_snapshot().unwrap();
        assert_eq!(t.entries()[0].t_ms, 40);
        assert_eq!(t.seed(), 5);
    }

    #[test]
    fn parallel_counter_adds_are_deterministic_in_total() {
        let h = ObsHandle::recording(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.counter_inc("n");
                    }
                });
            }
        });
        assert_eq!(h.counter("n"), 4000);
    }
}
