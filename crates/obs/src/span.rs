//! Causal span reconstruction: from a flat [`Trace`] to per-flow span
//! trees.
//!
//! Every protocol event carries a stable flow identity
//! ([`TraceEvent::flow`]): a transfer's request id, a registering node's
//! id, or a placement round number. [`build_spans`] groups a trace by
//! flow — following REP substitution links so a re-homed transfer stays
//! one flow across its request-id changes — and reconstructs each flow's
//! span tree: a root span covering the flow's lifetime, phase child
//! spans (offer → confirm → hosted → release, or offer → abandon), and
//! retransmit/backoff child spans, one per retransmission gap.
//!
//! The reconstruction is a pure function of the trace: same digest in,
//! same forest (and same per-phase histograms) out. That makes span
//! analytics as reproducible as the golden digests themselves.

use crate::hist::Histogram;
use crate::trace::{FlowId, Trace, TraceEntry, TraceEvent};
use std::collections::BTreeMap;

/// A named interval of sim time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Phase name ("offer", "confirm", "hosted", "release", "abandon",
    /// "registration", "backoff") or the flow kind for root spans.
    pub name: &'static str,
    /// Start, sim ms.
    pub start_ms: u64,
    /// End, sim ms (>= start).
    pub end_ms: u64,
}

impl Span {
    fn new(name: &'static str, start_ms: u64, end_ms: u64) -> Self {
        Span { name, start_ms, end_ms: end_ms.max(start_ms) }
    }

    /// Duration in ms.
    pub fn dur_ms(&self) -> u64 {
        self.end_ms - self.start_ms
    }
}

/// How a flow ended (or stood) at the end of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Transfer confirmed and later released/reclaimed back.
    Released,
    /// Transfer confirmed and still hosted at end of trace.
    Hosted,
    /// Offer exhausted its retry budget.
    Abandoned,
    /// Client refused and no later accept confirmed.
    Refused,
    /// Flow opened but reached no terminal milestone.
    Pending,
    /// Registration ACKed: node went Active.
    Registered,
    /// Registration still awaiting its first ACK.
    Registering,
    /// A placement round (instantaneous flow).
    Round,
}

impl SpanOutcome {
    /// Stable lowercase name for tables and filters.
    pub fn name(self) -> &'static str {
        match self {
            SpanOutcome::Released => "released",
            SpanOutcome::Hosted => "hosted",
            SpanOutcome::Abandoned => "abandoned",
            SpanOutcome::Refused => "refused",
            SpanOutcome::Pending => "pending",
            SpanOutcome::Registered => "registered",
            SpanOutcome::Registering => "registering",
            SpanOutcome::Round => "round",
        }
    }
}

/// One reconstructed flow: root span, phase children, backoff children.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpans {
    /// The flow's identity (transfer ids resolved to their REP root).
    pub flow: FlowId,
    /// Whole-flow span: first to last event of the flow.
    pub root: Span,
    /// Phase child spans in causal order.
    pub phases: Vec<Span>,
    /// One "backoff" child per retransmission gap (previous transmission
    /// to the retransmit that ended the wait).
    pub backoffs: Vec<Span>,
    /// Terminal (or standing) outcome.
    pub outcome: SpanOutcome,
    /// Number of trace events grouped into this flow.
    pub events: usize,
    /// True when the flow has its opening event and every observed
    /// milestone is preceded by the milestone that causes it. A flow
    /// with events but no opener is *orphaned*.
    pub complete: bool,
}

impl FlowSpans {
    /// The phase span named `name`, if reconstructed.
    pub fn phase(&self, name: &str) -> Option<&Span> {
        self.phases.iter().find(|s| s.name == name)
    }
}

/// All flows reconstructed from one trace, plus the events that belong
/// to no flow (fault gate, chaos schedule, solver internals).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanForest {
    /// Flows in `FlowId` order (transfers, then registrations, then
    /// placement rounds — the `FlowId` derive order).
    pub flows: Vec<FlowSpans>,
    /// Total events in the source trace.
    pub total_events: usize,
    /// Events carrying no flow id (infrastructure).
    pub unflowed_events: usize,
    /// Events stranded in flows that lack their opening event.
    pub orphan_events: usize,
}

impl SpanForest {
    /// Flows of one kind, e.g. every transfer.
    pub fn transfers(&self) -> impl Iterator<Item = &FlowSpans> {
        self.flows.iter().filter(|f| matches!(f.flow, FlowId::Transfer(_)))
    }

    /// Count of flows per kind: (transfers, registrations, placements).
    pub fn kind_counts(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for f in &self.flows {
            match f.flow {
                FlowId::Transfer(_) => t.0 += 1,
                FlowId::Registration(_) => t.1 += 1,
                FlowId::Placement(_) => t.2 += 1,
            }
        }
        t
    }

    /// Per-phase latency histograms over every flow (backoff gaps under
    /// `"backoff"`). Deterministic: histogram text encodings are stable.
    pub fn phase_histograms(&self) -> BTreeMap<&'static str, Histogram> {
        let mut out: BTreeMap<&'static str, Histogram> = BTreeMap::new();
        for f in &self.flows {
            for s in f.phases.iter().chain(&f.backoffs) {
                out.entry(s.name).or_default().record(s.dur_ms() as f64);
            }
        }
        out
    }

    /// Critical-path breakdown: per phase name, (total ms, span count),
    /// in phase-name order. Shares of the summed total tell which phase
    /// dominates end-to-end latency.
    pub fn critical_path(&self) -> Vec<(&'static str, u64, u64)> {
        let mut acc: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for f in &self.flows {
            for s in f.phases.iter().chain(&f.backoffs) {
                let e = acc.entry(s.name).or_insert((0, 0));
                e.0 += s.dur_ms();
                e.1 += 1;
            }
        }
        acc.into_iter().map(|(k, (ms, n))| (k, ms, n)).collect()
    }
}

/// First event time per kind within one flow's entries.
fn first(entries: &[TraceEntry], pred: impl Fn(&TraceEvent) -> bool) -> Option<u64> {
    entries.iter().find(|e| pred(&e.event)).map(|e| e.t_ms)
}

fn build_transfer(flow: FlowId, entries: &[TraceEntry]) -> FlowSpans {
    use TraceEvent::*;
    let open = first(entries, |e| matches!(e, Offer { .. } | Rep { .. }));
    let accepted = first(entries, |e| matches!(e, ClientAccept { .. }));
    let refused = first(entries, |e| matches!(e, ClientRefuse { .. }));
    let decision = match (accepted, refused) {
        (Some(a), Some(r)) => Some(a.min(r)),
        (a, r) => a.or(r),
    };
    let confirmed = first(entries, |e| matches!(e, OfferAccepted { .. }));
    let release_sent = first(entries, |e| matches!(e, ReleaseSent { .. }));
    let reclaim = first(entries, |e| matches!(e, Reclaim { .. }));
    let released = first(entries, |e| matches!(e, ClientReleased { .. } | ReleaseApplied { .. }));
    let abandon = first(entries, |e| matches!(e, Abandon { .. }));

    let start = entries[0].t_ms;
    let end = entries[entries.len() - 1].t_ms;
    let mut phases = Vec::new();
    if let (Some(o), Some(d)) = (open, decision) {
        phases.push(Span::new("offer", o, d));
    }
    if let (Some(a), Some(c)) = (accepted, confirmed) {
        phases.push(Span::new("confirm", a, c));
    }
    let release_start = match (release_sent, reclaim) {
        (Some(s), Some(r)) => Some(s.min(r)),
        (s, r) => s.or(r),
    };
    if let (Some(c), Some(rs)) = (confirmed, release_start) {
        phases.push(Span::new("hosted", c, rs));
    }
    if let (Some(rs), Some(rel)) = (release_start, released) {
        phases.push(Span::new("release", rs, rel));
    }
    if let (Some(o), Some(ab)) = (open, abandon) {
        phases.push(Span::new("abandon", o, ab));
    }

    let mut backoffs = Vec::new();
    let mut prev = open.unwrap_or(start);
    for e in entries {
        if let Retransmit { .. } = e.event {
            backoffs.push(Span::new("backoff", prev, e.t_ms));
            prev = e.t_ms;
        }
    }

    let outcome = if abandon.is_some() {
        SpanOutcome::Abandoned
    } else if released.is_some() {
        SpanOutcome::Released
    } else if confirmed.is_some() {
        SpanOutcome::Hosted
    } else if refused.is_some() && accepted.is_none() {
        SpanOutcome::Refused
    } else {
        SpanOutcome::Pending
    };

    let complete = open.is_some()
        && (confirmed.is_none() || accepted.is_some())
        && (released.is_none() || release_start.is_some());

    FlowSpans {
        flow,
        root: Span::new("transfer", start, end),
        phases,
        backoffs,
        outcome,
        events: entries.len(),
        complete,
    }
}

fn build_registration(flow: FlowId, entries: &[TraceEntry]) -> FlowSpans {
    use TraceEvent::*;
    let opened = first(entries, |e| matches!(e, ClientRegister { .. }));
    let registered = first(entries, |e| matches!(e, ClientRegistered { .. }));
    let start = entries[0].t_ms;
    let end = entries[entries.len() - 1].t_ms;

    let mut phases = Vec::new();
    if let (Some(o), Some(r)) = (opened, registered) {
        phases.push(Span::new("registration", o, r));
    }

    // Every re-sent ClientRegister after the first is a backoff child:
    // the client waited REGISTER_RETRY_MS without an ACK.
    let mut backoffs = Vec::new();
    let mut prev: Option<u64> = None;
    for e in entries {
        if let ClientRegister { .. } = e.event {
            if let Some(p) = prev {
                backoffs.push(Span::new("backoff", p, e.t_ms));
            }
            prev = Some(e.t_ms);
        }
    }

    let outcome =
        if registered.is_some() { SpanOutcome::Registered } else { SpanOutcome::Registering };

    FlowSpans {
        flow,
        root: Span::new("registration", start, end),
        phases,
        backoffs,
        outcome,
        events: entries.len(),
        complete: opened.is_some(),
    }
}

fn build_placement(flow: FlowId, entries: &[TraceEntry]) -> FlowSpans {
    let start = entries[0].t_ms;
    let end = entries[entries.len() - 1].t_ms;
    FlowSpans {
        flow,
        root: Span::new("placement", start, end),
        phases: Vec::new(),
        backoffs: Vec::new(),
        outcome: SpanOutcome::Round,
        events: entries.len(),
        complete: true,
    }
}

/// Reconstruct every flow's span tree from a trace.
///
/// REP substitution links (`Rep { request, orig, .. }` with `orig != 0`)
/// are resolved transitively, so a transfer that was re-homed twice is
/// one flow keyed by its original request id.
pub fn build_spans(trace: &Trace) -> SpanForest {
    // Pass 1: request-id aliasing from REP links.
    let mut alias: BTreeMap<u64, u64> = BTreeMap::new();
    for e in trace.entries() {
        if let TraceEvent::Rep { request, orig, .. } = e.event {
            if orig != 0 && orig != request {
                alias.insert(request, orig);
            }
        }
    }
    let resolve = |mut r: u64| {
        // Alias chains are short (one hop per REP); cap the walk anyway.
        for _ in 0..alias.len() {
            match alias.get(&r) {
                Some(&next) => r = next,
                None => break,
            }
        }
        r
    };

    // Pass 2: group entries by resolved flow, preserving trace order.
    let mut groups: BTreeMap<FlowId, Vec<TraceEntry>> = BTreeMap::new();
    let mut unflowed = 0usize;
    for e in trace.entries() {
        match e.event.flow() {
            Some(FlowId::Transfer(r)) => {
                groups.entry(FlowId::Transfer(resolve(r))).or_default().push(*e);
            }
            Some(flow) => groups.entry(flow).or_default().push(*e),
            None => unflowed += 1,
        }
    }

    // Pass 3: build each flow's tree.
    let mut flows = Vec::with_capacity(groups.len());
    let mut orphan_events = 0usize;
    for (flow, entries) in groups {
        let built = match flow {
            FlowId::Transfer(_) => build_transfer(flow, &entries),
            FlowId::Registration(_) => build_registration(flow, &entries),
            FlowId::Placement(_) => build_placement(flow, &entries),
        };
        if !built.complete && matches!(flow, FlowId::Transfer(_) | FlowId::Registration(_)) {
            let has_opener = match flow {
                FlowId::Transfer(_) => entries
                    .iter()
                    .any(|e| matches!(e.event, TraceEvent::Offer { .. } | TraceEvent::Rep { .. })),
                _ => entries.iter().any(|e| matches!(e.event, TraceEvent::ClientRegister { .. })),
            };
            if !has_opener {
                orphan_events += built.events;
            }
        }
        flows.push(built);
    }

    SpanForest { flows, total_events: trace.len(), unflowed_events: unflowed, orphan_events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent::*;

    fn trace(events: &[(u64, TraceEvent)]) -> Trace {
        let mut t = Trace::new(0);
        for &(t_ms, ev) in events {
            t.record(t_ms, ev);
        }
        t
    }

    #[test]
    fn happy_path_transfer_yields_all_four_phases() {
        let t = trace(&[
            (5000, Offer { request: 1, from: 2, to: 4 }),
            (5020, ClientAccept { request: 1, node: 4 }),
            (5040, OfferAccepted { request: 1, node: 4 }),
            (9000, ReleaseSent { request: 1, to: 4 }),
            (9030, ClientReleased { request: 1, node: 4 }),
        ]);
        let forest = build_spans(&t);
        assert_eq!(forest.flows.len(), 1);
        let f = &forest.flows[0];
        assert_eq!(f.flow, FlowId::Transfer(1));
        assert!(f.complete);
        assert_eq!(f.outcome, SpanOutcome::Released);
        assert_eq!(f.root, Span { name: "transfer", start_ms: 5000, end_ms: 9030 });
        assert_eq!(f.phase("offer").unwrap().dur_ms(), 20);
        assert_eq!(f.phase("confirm").unwrap().dur_ms(), 20);
        assert_eq!(f.phase("hosted").unwrap().dur_ms(), 3960);
        assert_eq!(f.phase("release").unwrap().dur_ms(), 30);
        assert!(f.backoffs.is_empty());
        assert_eq!(forest.orphan_events, 0);
    }

    #[test]
    fn retransmits_become_backoff_children_and_abandon_closes_the_flow() {
        let t = trace(&[
            (1000, Offer { request: 3, from: 1, to: 2 }),
            (3000, Retransmit { request: 3, attempt: 2 }),
            (7000, Retransmit { request: 3, attempt: 3 }),
            (7500, Abandon { request: 3 }),
        ]);
        let f = &build_spans(&t).flows[0];
        assert_eq!(f.outcome, SpanOutcome::Abandoned);
        assert_eq!(f.backoffs.len(), 2);
        assert_eq!(f.backoffs[0], Span { name: "backoff", start_ms: 1000, end_ms: 3000 });
        assert_eq!(f.backoffs[1], Span { name: "backoff", start_ms: 3000, end_ms: 7000 });
        assert_eq!(f.phase("abandon").unwrap().dur_ms(), 6500);
        assert!(f.complete);
    }

    #[test]
    fn rep_links_merge_request_ids_into_one_flow() {
        let t = trace(&[
            (1000, Offer { request: 1, from: 2, to: 3 }),
            (1020, ClientAccept { request: 1, node: 3 }),
            (1040, OfferAccepted { request: 1, node: 3 }),
            // host 3 dies; replica request 2 supersedes request 1
            (6000, Rep { request: 2, orig: 1, failed: 3, to: 4 }),
            (6020, ClientAccept { request: 2, node: 4 }),
            (6040, OfferAccepted { request: 2, node: 4 }),
            // and host 4 dies too: request 5 chains through 2 back to 1
            (9000, Rep { request: 5, orig: 2, failed: 4, to: 0 }),
        ]);
        let forest = build_spans(&t);
        assert_eq!(forest.flows.len(), 1, "aliasing must merge all three ids");
        let f = &forest.flows[0];
        assert_eq!(f.flow, FlowId::Transfer(1), "flow keyed by the root request id");
        assert_eq!(f.events, 7);
        assert_eq!(f.outcome, SpanOutcome::Hosted);
    }

    #[test]
    fn transfer_without_opener_is_orphaned() {
        let t = trace(&[(100, ClientAccept { request: 9, node: 1 })]);
        let forest = build_spans(&t);
        assert_eq!(forest.orphan_events, 1);
        assert!(!forest.flows[0].complete);
    }

    #[test]
    fn registration_spans_cover_retries_until_ack() {
        let t = trace(&[
            (0, ClientRegister { node: 5 }),
            (1000, ClientRegister { node: 5 }),
            (2000, ClientRegister { node: 5 }),
            (2005, Register { node: 5 }),
            (2005, RegisterAck { node: 5 }),
            (2010, ClientRegistered { node: 5 }),
        ]);
        let f = &build_spans(&t).flows[0];
        assert_eq!(f.flow, FlowId::Registration(5));
        assert_eq!(f.outcome, SpanOutcome::Registered);
        assert!(f.complete);
        assert_eq!(f.phase("registration").unwrap().dur_ms(), 2010);
        assert_eq!(f.backoffs.len(), 2, "two re-sends, two backoff children");
    }

    #[test]
    fn infrastructure_events_are_counted_but_not_flowed() {
        let t = trace(&[
            (0, FaultDrop { to_manager: true }),
            (1, PlacementRound { round: 0, offers: 0 }),
        ]);
        let forest = build_spans(&t);
        assert_eq!(forest.unflowed_events, 1);
        assert_eq!(forest.kind_counts(), (0, 0, 1));
        assert_eq!(forest.flows[0].outcome, SpanOutcome::Round);
    }

    #[test]
    fn phase_histograms_and_critical_path_aggregate_across_flows() {
        let t = trace(&[
            (0, Offer { request: 1, from: 0, to: 1 }),
            (10, ClientAccept { request: 1, node: 1 }),
            (0, Offer { request: 2, from: 0, to: 2 }),
            (30, ClientAccept { request: 2, node: 2 }),
        ]);
        let forest = build_spans(&t);
        let hists = forest.phase_histograms();
        assert_eq!(hists["offer"].count(), 2);
        let cp = forest.critical_path();
        assert_eq!(cp, vec![("offer", 40, 2)]);
    }
}
