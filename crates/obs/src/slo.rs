//! Online SLO engine: declarative health rules evaluated incrementally.
//!
//! A [`SloSpec`] is parsed from a compact text form like
//! `convergence<=15000,retransmit_rate<=0.25,abandons<=0,overload_dwell<=20000`
//! and evaluated by an [`SloEngine`] that the sim runner feeds as the
//! run unfolds. The engine is a pure observer — it reads protocol
//! counters and node samples but never feeds anything back — so a run
//! with an engine attached is bit-identical to one without. Each rule
//! fires **at most once per scope** (once globally, or once per node for
//! per-node rules), producing [`SloBreach`]es that the runner traces as
//! `SloBreach` events; alerts are therefore part of the digested event
//! stream and as reproducible as the run itself.
//!
//! Rules:
//!
//! * `convergence<=MS` — the first offloaded transfer must be applied
//!   within `MS` ms of sim start (the paper's "time to shed load").
//! * `retransmit_rate<=R` — offer retransmits per offer sent must stay
//!   at or below `R`.
//! * `abandons<=N` — at most `N` offers may exhaust their retry budget.
//! * `overload_dwell<=MS` — no node may sit at or above the CPU
//!   overload threshold for more than `MS` consecutive ms.

use crate::trace::SLO_GLOBAL;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Which health dimension a rule constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloKind {
    /// Time-to-first-applied-transfer ceiling, ms.
    Convergence,
    /// Offer retransmits per offer sent, ratio.
    RetransmitRate,
    /// Abandoned-offer budget, count.
    Abandons,
    /// Consecutive CPU-overload dwell ceiling per node, ms.
    OverloadDwell,
}

impl SloKind {
    /// Stable spec/report name.
    pub fn name(self) -> &'static str {
        match self {
            SloKind::Convergence => "convergence",
            SloKind::RetransmitRate => "retransmit_rate",
            SloKind::Abandons => "abandons",
            SloKind::OverloadDwell => "overload_dwell",
        }
    }
}

impl fmt::Display for SloKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One declarative rule: `kind <= threshold`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloRule {
    /// Constrained dimension.
    pub kind: SloKind,
    /// Inclusive ceiling the observed value must not exceed.
    pub threshold: f64,
}

/// An ordered set of rules. Rule indices (used in `SloBreach` trace
/// events) are positions in this list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloSpec {
    /// The rules, in spec order.
    pub rules: Vec<SloRule>,
}

impl SloSpec {
    /// Parse a comma-separated spec, e.g.
    /// `convergence<=15000,retransmit_rate<=0.25`. Every clause must be
    /// `<name><=<value>` with a known name and a finite non-negative
    /// value.
    pub fn parse(s: &str) -> Result<SloSpec, String> {
        let mut rules = Vec::new();
        for clause in s.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (name, value) = clause
                .split_once("<=")
                .ok_or_else(|| format!("SLO clause `{clause}`: expected <name><=<value>"))?;
            let kind = match name.trim() {
                "convergence" => SloKind::Convergence,
                "retransmit_rate" => SloKind::RetransmitRate,
                "abandons" => SloKind::Abandons,
                "overload_dwell" => SloKind::OverloadDwell,
                other => {
                    return Err(format!(
                        "SLO clause `{clause}`: unknown rule `{other}` (know: convergence, \
                         retransmit_rate, abandons, overload_dwell)"
                    ));
                }
            };
            let threshold: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("SLO clause `{clause}`: `{value}` is not a number"))?;
            if !threshold.is_finite() || threshold < 0.0 {
                return Err(format!("SLO clause `{clause}`: threshold must be finite and >= 0"));
            }
            rules.push(SloRule { kind, threshold });
        }
        if rules.is_empty() {
            return Err("empty SLO spec".to_string());
        }
        Ok(SloSpec { rules })
    }
}

/// One fired rule: which rule, where, what was observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloBreach {
    /// Index of the rule in its [`SloSpec`].
    pub rule: u32,
    /// The rule's dimension.
    pub kind: SloKind,
    /// Offending node for per-node rules, `None` for fleet-wide ones.
    pub node: Option<u32>,
    /// Observed value at fire time (ms, ratio, or count per kind).
    pub observed: f64,
    /// The rule's threshold.
    pub threshold: f64,
    /// Sim time the rule fired, ms.
    pub at_ms: u64,
}

impl SloBreach {
    /// Node id as traced: the node, or [`SLO_GLOBAL`] for fleet-wide.
    pub fn node_code(&self) -> u32 {
        self.node.unwrap_or(SLO_GLOBAL)
    }

    /// Observed value in milli-units (`round(observed * 1000)`), the
    /// integer payload traced in `SloBreach` events.
    pub fn value_m(&self) -> u64 {
        (self.observed * 1000.0).round() as u64
    }

    /// One-line deterministic report form.
    pub fn to_line(&self) -> String {
        let scope = match self.node {
            Some(n) => format!("node={n}"),
            None => "node=*".to_string(),
        };
        format!(
            "breach rule={} {} observed={} threshold={} at_ms={}",
            self.kind, scope, self.observed, self.threshold, self.at_ms
        )
    }
}

/// Incremental evaluator for one run. Feed it from the sim loop via the
/// `on_*` hooks; each returns the breaches that call newly fired (often
/// empty) so the caller can trace them at the current sim time.
#[derive(Debug, Clone)]
pub struct SloEngine {
    spec: SloSpec,
    /// CPU % at or above which a node counts as overloaded (the
    /// scenario's `c_max`).
    overload_threshold: f64,
    first_transfer_ms: Option<u64>,
    /// Per-node start of the current contiguous overload stretch.
    dwell_start: BTreeMap<u32, u64>,
    /// (rule index, node code) pairs that already fired.
    fired: BTreeSet<(u32, u32)>,
    breaches: Vec<SloBreach>,
}

impl SloEngine {
    /// An engine for `spec`, treating CPU >= `overload_threshold` (%) as
    /// overloaded for `overload_dwell` rules.
    pub fn new(spec: SloSpec, overload_threshold: f64) -> Self {
        SloEngine {
            spec,
            overload_threshold,
            first_transfer_ms: None,
            dwell_start: BTreeMap::new(),
            fired: BTreeSet::new(),
            breaches: Vec::new(),
        }
    }

    /// The spec this engine evaluates.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// All breaches fired so far, in fire order.
    pub fn breaches(&self) -> &[SloBreach] {
        &self.breaches
    }

    /// True once any rule has fired.
    pub fn breached(&self) -> bool {
        !self.breaches.is_empty()
    }

    fn fire(
        &mut self,
        rule: u32,
        kind: SloKind,
        node: Option<u32>,
        observed: f64,
        threshold: f64,
        at_ms: u64,
    ) -> Option<SloBreach> {
        let key = (rule, node.unwrap_or(SLO_GLOBAL));
        if !self.fired.insert(key) {
            return None;
        }
        let b = SloBreach { rule, kind, node, observed, threshold, at_ms };
        self.breaches.push(b);
        Some(b)
    }

    /// Feed cumulative protocol counters (offers sent, offer
    /// retransmits, abandons) at sim time `now_ms`.
    pub fn on_protocol(
        &mut self,
        now_ms: u64,
        offers_sent: u64,
        retransmits: u64,
        abandons: u64,
    ) -> Vec<SloBreach> {
        let mut out = Vec::new();
        for (i, rule) in self.spec.rules.clone().iter().enumerate() {
            let fired = match rule.kind {
                SloKind::RetransmitRate if offers_sent > 0 => {
                    let rate = retransmits as f64 / offers_sent as f64;
                    (rate > rule.threshold)
                        .then(|| self.fire(i as u32, rule.kind, None, rate, rule.threshold, now_ms))
                }
                SloKind::Abandons => (abandons as f64 > rule.threshold).then(|| {
                    self.fire(i as u32, rule.kind, None, abandons as f64, rule.threshold, now_ms)
                }),
                _ => None,
            };
            if let Some(Some(b)) = fired {
                out.push(b);
            }
        }
        out
    }

    /// Note that a transfer was applied at `now_ms` (convergence clock).
    pub fn on_transfer_applied(&mut self, now_ms: u64) -> Vec<SloBreach> {
        if self.first_transfer_ms.is_none() {
            self.first_transfer_ms = Some(now_ms);
            return self.check_convergence(now_ms, now_ms as f64);
        }
        Vec::new()
    }

    /// Feed one node CPU sample (%) at `now_ms` for dwell tracking.
    pub fn on_cpu(&mut self, now_ms: u64, node: u32, cpu_percent: f64) -> Vec<SloBreach> {
        if !self.spec.rules.iter().any(|r| r.kind == SloKind::OverloadDwell) {
            return Vec::new();
        }
        if cpu_percent < self.overload_threshold {
            self.dwell_start.remove(&node);
            return Vec::new();
        }
        let start = *self.dwell_start.entry(node).or_insert(now_ms);
        let dwell = (now_ms - start) as f64;
        let mut out = Vec::new();
        for (i, rule) in self.spec.rules.clone().iter().enumerate() {
            if rule.kind == SloKind::OverloadDwell && dwell > rule.threshold {
                if let Some(b) =
                    self.fire(i as u32, rule.kind, Some(node), dwell, rule.threshold, now_ms)
                {
                    out.push(b);
                }
            }
        }
        out
    }

    /// Periodic tick at `now_ms`: fires `convergence` once its deadline
    /// passes with no transfer applied yet.
    pub fn on_tick(&mut self, now_ms: u64) -> Vec<SloBreach> {
        if self.first_transfer_ms.is_some() {
            return Vec::new();
        }
        self.check_convergence(now_ms, now_ms as f64)
    }

    fn check_convergence(&mut self, now_ms: u64, observed: f64) -> Vec<SloBreach> {
        let mut out = Vec::new();
        for (i, rule) in self.spec.rules.clone().iter().enumerate() {
            if rule.kind == SloKind::Convergence && observed > rule.threshold {
                if let Some(b) =
                    self.fire(i as u32, rule.kind, None, observed, rule.threshold, now_ms)
                {
                    out.push(b);
                }
            }
        }
        out
    }

    /// Deterministic multi-line report: a summary line plus one line per
    /// breach in fire order.
    pub fn report(&self) -> String {
        let mut out =
            format!("slo: {} rule(s), {} breach(es)\n", self.spec.rules.len(), self.breaches.len());
        for b in &self.breaches {
            out.push_str("  ");
            out.push_str(&b.to_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(s: &str) -> SloSpec {
        SloSpec::parse(s).expect("valid spec")
    }

    #[test]
    fn parse_accepts_the_full_rule_set() {
        let s = spec("convergence<=15000, retransmit_rate<=0.25,abandons<=0,overload_dwell<=20000");
        assert_eq!(s.rules.len(), 4);
        assert_eq!(s.rules[1].kind, SloKind::RetransmitRate);
        assert_eq!(s.rules[1].threshold, 0.25);
    }

    #[test]
    fn parse_rejects_junk_loudly() {
        assert!(SloSpec::parse("").unwrap_err().contains("empty"));
        assert!(SloSpec::parse("convergence=5").unwrap_err().contains("expected"));
        assert!(SloSpec::parse("latency<=5").unwrap_err().contains("unknown rule"));
        assert!(SloSpec::parse("abandons<=x").unwrap_err().contains("not a number"));
        assert!(SloSpec::parse("abandons<=-1").unwrap_err().contains(">= 0"));
    }

    #[test]
    fn convergence_fires_once_when_the_deadline_passes_unmet() {
        let mut e = SloEngine::new(spec("convergence<=5000"), 100.0);
        assert!(e.on_tick(4000).is_empty());
        let fired = e.on_tick(6000);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, SloKind::Convergence);
        assert_eq!(fired[0].at_ms, 6000);
        assert!(e.on_tick(7000).is_empty(), "fires at most once");
        assert!(e.breached());
    }

    #[test]
    fn convergence_is_satisfied_by_an_early_transfer() {
        let mut e = SloEngine::new(spec("convergence<=5000"), 100.0);
        assert!(e.on_transfer_applied(3000).is_empty());
        assert!(e.on_tick(60000).is_empty());
        assert!(!e.breached());
    }

    #[test]
    fn late_first_transfer_still_breaches_convergence() {
        let mut e = SloEngine::new(spec("convergence<=5000"), 100.0);
        let fired = e.on_transfer_applied(9000);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].observed, 9000.0);
    }

    #[test]
    fn retransmit_rate_and_abandons_watch_the_counters() {
        let mut e = SloEngine::new(spec("retransmit_rate<=0.5,abandons<=1"), 100.0);
        assert!(e.on_protocol(1000, 4, 2, 0).is_empty(), "rate at ceiling is fine");
        let fired = e.on_protocol(2000, 4, 3, 2);
        assert_eq!(fired.len(), 2, "both rules breach");
        assert_eq!(fired[0].kind, SloKind::RetransmitRate);
        assert_eq!(fired[1].kind, SloKind::Abandons);
        assert!(e.on_protocol(3000, 4, 4, 9).is_empty(), "each fires once");
    }

    #[test]
    fn overload_dwell_is_per_node_and_resets_on_recovery() {
        let mut e = SloEngine::new(spec("overload_dwell<=3000"), 20.0);
        // node 1 dips below the threshold mid-stretch: clock restarts
        assert!(e.on_cpu(0, 1, 25.0).is_empty());
        assert!(e.on_cpu(2000, 1, 10.0).is_empty());
        assert!(e.on_cpu(3000, 1, 25.0).is_empty());
        assert!(e.on_cpu(5000, 1, 25.0).is_empty(), "dwell 2000 after reset");
        // node 2 stays hot past the ceiling
        assert!(e.on_cpu(0, 2, 30.0).is_empty());
        let fired = e.on_cpu(4000, 2, 30.0);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].node, Some(2));
        assert_eq!(fired[0].observed, 4000.0);
        // node 1 can still fire independently later
        let fired = e.on_cpu(8000, 1, 25.0);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].node, Some(1));
    }

    #[test]
    fn report_and_value_m_are_deterministic() {
        let mut e = SloEngine::new(spec("retransmit_rate<=0.25"), 100.0);
        let fired = e.on_protocol(1000, 3, 1, 0);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].value_m(), 333, "1/3 in milli-units");
        assert_eq!(fired[0].node_code(), SLO_GLOBAL);
        let report = e.report();
        assert!(report.starts_with("slo: 1 rule(s), 1 breach(es)\n"), "got: {report}");
        assert!(report.contains("breach rule=retransmit_rate node=*"), "got: {report}");
    }
}
