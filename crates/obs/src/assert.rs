//! Test helper for asserting over recorded traces.
//!
//! `TraceAssert` wraps a [`Trace`] and provides pattern counts, window
//! counts, expect/forbid assertions, and precedence checks — the
//! building blocks of the trace-based protocol regression tests (e.g.
//! "no `ClientAccept` after a `ClientReleased` for the same request",
//! "every `Abandon` is preceded by the full retry budget of
//! `Retransmit` events").
//!
//! With [`TraceAssert::with_postmortem`], a failing assertion writes a
//! flight-recorder style dump (the tail of the trace) to the given path
//! before panicking, so CI can upload the black box as an artifact.

use crate::flight::{dump_entries, DEFAULT_FLIGHT_CAPACITY};
use crate::trace::{Trace, TraceEntry};
use std::path::PathBuf;

/// Assertion surface over an immutable trace.
#[derive(Debug, Clone)]
pub struct TraceAssert<'a> {
    trace: &'a Trace,
    dump_path: Option<PathBuf>,
}

impl<'a> TraceAssert<'a> {
    /// Wrap a recorded trace.
    pub fn new(trace: &'a Trace) -> Self {
        TraceAssert { trace, dump_path: None }
    }

    /// On assertion failure, write a post-mortem dump (the last
    /// [`DEFAULT_FLIGHT_CAPACITY`] entries) to `path` before panicking.
    /// Parent directories are created; write errors are swallowed — a
    /// failing assertion must still panic with its own message.
    pub fn with_postmortem(mut self, path: impl Into<PathBuf>) -> Self {
        self.dump_path = Some(path.into());
        self
    }

    /// Panic with `msg`, writing the post-mortem dump first if one was
    /// requested via [`TraceAssert::with_postmortem`].
    #[track_caller]
    fn fail(&self, msg: String) -> ! {
        if let Some(path) = &self.dump_path {
            let entries = self.trace.entries();
            let tail = &entries[entries.len().saturating_sub(DEFAULT_FLIGHT_CAPACITY)..];
            let reason = msg.split(':').next().unwrap_or("assert");
            let dump = dump_entries(self.trace.seed(), reason, tail, entries.len() as u64);
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let _ = std::fs::write(path, &dump);
            panic!("{msg} (postmortem written to {})", path.display());
        }
        panic!("{msg}");
    }

    /// The underlying entries, in record order.
    pub fn entries(&self) -> &'a [TraceEntry] {
        self.trace.entries()
    }

    /// Number of events of a given kind.
    pub fn count(&self, kind: &str) -> usize {
        self.entries().iter().filter(|e| e.event.kind() == kind).count()
    }

    /// Number of entries matching an arbitrary predicate.
    pub fn count_where(&self, pred: impl Fn(&TraceEntry) -> bool) -> usize {
        self.entries().iter().filter(|e| pred(e)).count()
    }

    /// Number of events of a kind inside the inclusive sim-time window.
    pub fn count_in_window(&self, kind: &str, from_ms: u64, to_ms: u64) -> usize {
        self.count_where(|e| e.event.kind() == kind && (from_ms..=to_ms).contains(&e.t_ms))
    }

    /// Panic unless at least one event of `kind` was recorded.
    #[track_caller]
    pub fn expect(&self, kind: &str) -> &Self {
        if self.count(kind) == 0 {
            self.fail(format!("expected at least one `{kind}` event, trace has none"));
        }
        self
    }

    /// Panic unless at least `min` events of `kind` were recorded.
    #[track_caller]
    pub fn expect_at_least(&self, kind: &str, min: usize) -> &Self {
        let n = self.count(kind);
        if n < min {
            self.fail(format!("expected >= {min} `{kind}` events, trace has {n}"));
        }
        self
    }

    /// Panic if any entry matches the predicate.
    #[track_caller]
    pub fn forbid(&self, what: &str, pred: impl Fn(&TraceEntry) -> bool) -> &Self {
        if let Some(e) = self.entries().iter().find(|e| pred(e)) {
            self.fail(format!(
                "forbidden event ({what}) present: {} (t={} seq={})",
                e.event, e.t_ms, e.seq
            ));
        }
        self
    }

    /// For every entry matching `anchor`, panic if any *later* entry
    /// matches `later(anchor_entry, later_entry)`. Precedence guard for
    /// per-request orderings (tombstone → no re-accept).
    #[track_caller]
    pub fn forbid_after(
        &self,
        what: &str,
        anchor: impl Fn(&TraceEntry) -> bool,
        later: impl Fn(&TraceEntry, &TraceEntry) -> bool,
    ) -> &Self {
        let entries = self.entries();
        for (i, a) in entries.iter().enumerate() {
            if !anchor(a) {
                continue;
            }
            if let Some(b) = entries[i + 1..].iter().find(|b| later(a, b)) {
                self.fail(format!(
                    "forbidden ordering ({what}): {} (seq={}) followed by {} (seq={})",
                    a.event, a.seq, b.event, b.seq
                ));
            }
        }
        self
    }

    /// Number of entries before `seq` that match the predicate.
    pub fn preceding(&self, seq: u64, pred: impl Fn(&TraceEntry) -> bool) -> usize {
        self.entries().iter().take(seq as usize).filter(|e| pred(e)).count()
    }

    /// Panic unless the trace digest equals `expected`.
    #[track_caller]
    pub fn assert_digest(&self, expected: u64) -> &Self {
        if self.trace.digest() != expected {
            self.fail(format!(
                "trace digest mismatch: got {:016x}, expected {expected:016x}",
                self.trace.digest(),
            ));
        }
        self
    }

    /// Panic unless two traces have identical digests.
    #[track_caller]
    pub fn assert_same_digest(&self, other: &Trace) -> &Self {
        if self.trace.digest() != other.digest() {
            self.fail(format!(
                "trace digests diverge: {:016x} vs {:016x}",
                self.trace.digest(),
                other.digest(),
            ));
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn sample() -> Trace {
        let mut t = Trace::new(1);
        t.record(0, TraceEvent::Offer { request: 1, from: 0, to: 2 });
        t.record(3, TraceEvent::Retransmit { request: 1, attempt: 2 });
        t.record(5, TraceEvent::Abandon { request: 1 });
        t
    }

    #[test]
    fn counts_and_windows() {
        let t = sample();
        let a = TraceAssert::new(&t);
        assert_eq!(a.count("Offer"), 1);
        assert_eq!(a.count_in_window("Retransmit", 0, 3), 1);
        assert_eq!(a.count_in_window("Retransmit", 4, 9), 0);
        a.expect("Abandon").expect_at_least("Offer", 1);
    }

    #[test]
    #[should_panic(expected = "forbidden event")]
    fn forbid_fires() {
        let t = sample();
        TraceAssert::new(&t).forbid("no abandons", |e| e.event.kind() == "Abandon");
    }

    #[test]
    #[should_panic(expected = "forbidden ordering")]
    fn forbid_after_fires() {
        let t = sample();
        TraceAssert::new(&t).forbid_after(
            "retransmit after offer",
            |e| e.event.kind() == "Offer",
            |a, b| b.event.kind() == "Retransmit" && b.event.request() == a.event.request(),
        );
    }

    #[test]
    fn preceding_counts_only_earlier_entries() {
        let t = sample();
        let a = TraceAssert::new(&t);
        let abandon_seq = a.entries().iter().find(|e| e.event.kind() == "Abandon").unwrap().seq;
        assert_eq!(a.preceding(abandon_seq, |e| e.event.kind() == "Retransmit"), 1);
    }

    #[test]
    fn digest_assertions() {
        let t = sample();
        let u = sample();
        TraceAssert::new(&t).assert_digest(t.digest()).assert_same_digest(&u);
    }

    #[test]
    fn failing_assertion_writes_a_postmortem_dump() {
        let t = sample();
        let path = std::env::temp_dir().join("dust-obs-assert-test/postmortem.txt");
        let _ = std::fs::remove_file(&path);
        let result = std::panic::catch_unwind(|| {
            TraceAssert::new(&t).with_postmortem(&path).assert_digest(0xdead_beef);
        });
        assert!(result.is_err(), "assertion must still panic");
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("postmortem written to"), "got: {msg}");
        let dump = std::fs::read_to_string(&path).expect("dump file");
        assert!(dump.starts_with("postmortem reason=trace_digest_mismatch seed=1 window=3"));
        assert!(dump.contains("Abandon req=1"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn passing_assertions_write_nothing() {
        let t = sample();
        let path = std::env::temp_dir().join("dust-obs-assert-test/clean.txt");
        let _ = std::fs::remove_file(&path);
        TraceAssert::new(&t).with_postmortem(&path).expect("Offer").assert_digest(t.digest());
        assert!(!path.exists(), "no dump on success");
    }
}
