//! Metrics registry: monotonic counters, gauges, histograms.
//!
//! The registry doubles as its own snapshot type — `snapshot()` is a
//! deep clone, and snapshots can be [`MetricsRegistry::merge`]d (counters
//! add, gauges keep the max, histograms merge bucket-wise) with exact
//! associativity/commutativity. All maps are `BTreeMap`s so every
//! encoding ([`MetricsRegistry::to_text`], [`MetricsRegistry::to_json`])
//! is byte-stable regardless of registration order timing.

use crate::hist::Histogram;
use std::collections::BTreeMap;

/// Counters, gauges, and histograms keyed by dotted names.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `n` to a monotonic counter, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Set a gauge to its latest value.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Record one sample into a named histogram.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms.entry(name.to_string()).or_default().record(v);
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Deep copy of the current state.
    pub fn snapshot(&self) -> MetricsRegistry {
        self.clone()
    }

    /// Fold another registry in: counters add, gauges keep the max,
    /// histograms merge bucket-wise. Associative and commutative.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(f64::NEG_INFINITY);
            if v > *e {
                *e = v;
            }
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Stable line-oriented text encoding:
    ///
    /// ```text
    /// counter proto.offers_sent 12
    /// gauge cost.workers 4
    /// hist lp.simplex.pivots count=5 min=2 max=9 buckets=141:3,145:2
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter {k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge {k} {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!("hist {k} {}\n", h.encode()));
        }
        out
    }

    /// Inverse of [`MetricsRegistry::to_text`]; `None` on malformed input.
    pub fn from_text(text: &str) -> Option<MetricsRegistry> {
        let mut m = MetricsRegistry::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (kind, rest) = line.split_once(' ')?;
            let (name, value) = rest.split_once(' ')?;
            match kind {
                "counter" => {
                    m.counters.insert(name.to_string(), value.parse().ok()?);
                }
                "gauge" => {
                    m.gauges.insert(name.to_string(), value.parse().ok()?);
                }
                "hist" => {
                    m.histograms.insert(name.to_string(), Histogram::decode(value)?);
                }
                _ => return None,
            }
        }
        Some(m)
    }

    /// Prometheus text exposition (format 0.0.4). Dotted names are
    /// sanitized to `[a-zA-Z0-9_]` and prefixed `dust_`; histograms are
    /// rendered as cumulative `_bucket{le="..."}` series over the
    /// non-empty log-scale buckets plus the mandatory `+Inf` bucket,
    /// then `_sum` (from the histogram's fixed-point accumulator — see
    /// the `hist` module docs for why the sum is not a float internally)
    /// and `_count`, as the text format requires. Output is byte-stable
    /// per registry state like every other encoding here.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 5);
            out.push_str("dust_");
            for c in name.chars() {
                out.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
            }
            out
        }
        let mut out = String::new();
        for (k, v) in &self.counters {
            let n = sanitize(k);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (k, v) in &self.gauges {
            let n = sanitize(k);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", json_f64(*v)));
        }
        for (k, h) in &self.histograms {
            let n = sanitize(k);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            for (_, _, hi, c) in h.nonzero_buckets() {
                cumulative += c;
                if hi.is_finite() {
                    out.push_str(&format!("{n}_bucket{{le=\"{hi}\"}} {cumulative}\n"));
                }
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
            out.push_str(&format!("{n}_sum {}\n", json_f64(h.sum())));
            out.push_str(&format!("{n}_count {}\n", h.count()));
        }
        out
    }

    /// Stable JSON encoding (sorted keys, shortest-roundtrip floats).
    /// Histograms are summarized as count/min/max/p50/p99 plus sparse
    /// buckets. Suitable for byte-for-byte diffing across runs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_entries(&mut out, self.counters.iter().map(|(k, v)| (k, v.to_string())));
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, self.gauges.iter().map(|(k, v)| (k, json_f64(*v))));
        out.push_str("},\"histograms\":{");
        push_entries(
            &mut out,
            self.histograms.iter().map(|(k, h)| {
                let mut v = format!("{{\"count\":{}", h.count());
                if let (Some(mn), Some(mx)) = (h.min(), h.max()) {
                    v.push_str(&format!(",\"min\":{},\"max\":{}", json_f64(mn), json_f64(mx)));
                    let p50 = h.quantile(0.5).unwrap();
                    let p99 = h.quantile(0.99).unwrap();
                    v.push_str(&format!(",\"p50\":{},\"p99\":{}", json_f64(p50), json_f64(p99)));
                }
                v.push_str(",\"buckets\":{");
                let mut first = true;
                for (i, _, _, c) in h.nonzero_buckets() {
                    if !first {
                        v.push(',');
                    }
                    v.push_str(&format!("\"{i}\":{c}"));
                    first = false;
                }
                v.push_str("}}");
                (k, v)
            }),
        );
        out.push_str("}}");
        out
    }
}

/// JSON-safe float rendering (JSON has no inf/nan literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn push_entries<'a>(out: &mut String, it: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (k, v) in it {
        if !first {
            out.push(',');
        }
        // names are code-controlled dotted identifiers; escape the two
        // characters that could break the framing anyway
        let k = k.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!("\"{k}\":{v}"));
        first = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic_and_default_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.counter_add("x", 2);
        m.counter_add("x", 3);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn text_round_trips() {
        let mut m = MetricsRegistry::new();
        m.counter_add("a.b", 7);
        m.gauge_set("g", 1.25);
        m.observe("h", 3.0);
        m.observe("h", 900.5);
        assert_eq!(MetricsRegistry::from_text(&m.to_text()), Some(m));
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        a.gauge_set("g", 2.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 4);
        b.gauge_set("g", 1.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.gauge("g"), Some(2.0));
    }

    #[test]
    fn prometheus_exposition_is_stable_and_sanitized() {
        let mut m = MetricsRegistry::new();
        m.counter_add("proto.offers_sent", 3);
        m.gauge_set("sim.active_transfers", 2.0);
        m.observe("span.offer_ms", 20.0);
        m.observe("span.offer_ms", 40.0);
        let p = m.to_prometheus();
        assert_eq!(p, m.to_prometheus(), "exposition must be byte-stable");
        assert!(p.contains("# TYPE dust_proto_offers_sent counter\ndust_proto_offers_sent 3\n"));
        assert!(p.contains("# TYPE dust_sim_active_transfers gauge\ndust_sim_active_transfers 2\n"));
        assert!(p.contains("# TYPE dust_span_offer_ms histogram\n"));
        assert!(p.contains("dust_span_offer_ms_bucket{le=\"+Inf\"} 2\n"));
        assert!(p.contains("dust_span_offer_ms_sum 60\n"));
        assert!(p.contains("dust_span_offer_ms_count 2\n"));
        // cumulative bucket counts must be nondecreasing and end at count
        let mut last = 0u64;
        for line in p.lines().filter(|l| l.contains("_bucket{le=")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "cumulative counts regressed: {line}");
            last = v;
        }
        assert_eq!(last, 2);
    }

    #[test]
    fn prometheus_exposition_conforms_to_the_text_format() {
        // lint-style pass over the whole exposition, checking the
        // invariants promtool's `check metrics` would: every sample name
        // matches the metric-name grammar, every metric is TYPE-declared
        // before its first sample, histograms carry _sum and _count,
        // the +Inf bucket equals _count, and cumulative buckets never
        // decrease. Runs against a registry with all three kinds and
        // awkward inputs (negative + fractional samples, dotted names).
        let mut m = MetricsRegistry::new();
        m.counter_add("proto.offers_sent", 3);
        m.gauge_set("sim.active-transfers", 2.5);
        for v in [0.1, 7.25, -2.0, 1e9, 0.0] {
            m.observe("span.offer_ms", v);
        }
        m.observe("lp.pivots", 41.0);
        let p = m.to_prometheus();
        let name_ok = |n: &str| {
            !n.is_empty()
                && !n.starts_with(|c: char| c.is_ascii_digit())
                && n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        };
        let mut declared: Vec<(String, String)> = Vec::new(); // (name, type)
        let mut inf_buckets: BTreeMap<String, u64> = BTreeMap::new();
        let mut sums: Vec<String> = Vec::new();
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        let mut cumulative: BTreeMap<String, u64> = BTreeMap::new();
        for line in p.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, ty) = rest.split_once(' ').expect("TYPE line shape");
                assert!(name_ok(name), "bad metric name {name:?}");
                assert!(["counter", "gauge", "histogram"].contains(&ty), "{ty}");
                declared.push((name.to_string(), ty.to_string()));
                continue;
            }
            assert!(!line.starts_with('#'), "only TYPE comments expected: {line}");
            let (sample, value) = line.rsplit_once(' ').expect("sample line shape");
            let bare = sample.split('{').next().unwrap();
            assert!(name_ok(bare), "bad sample name {bare:?}");
            let base = bare
                .strip_suffix("_bucket")
                .or_else(|| bare.strip_suffix("_sum"))
                .or_else(|| bare.strip_suffix("_count"))
                .filter(|b| declared.iter().any(|(n, t)| n == b && t == "histogram"))
                .unwrap_or(bare);
            assert!(
                declared.iter().any(|(n, _)| n == base),
                "sample {sample} before/without its TYPE declaration"
            );
            if bare.ends_with("_bucket") {
                let v: u64 = value.parse().expect("bucket counts are integers");
                let prev = cumulative.entry(base.to_string()).or_insert(0);
                assert!(v >= *prev, "cumulative bucket regressed: {line}");
                *prev = v;
                if sample.contains("le=\"+Inf\"") {
                    inf_buckets.insert(base.to_string(), v);
                }
            } else if bare.ends_with("_sum") && base != bare {
                let _: f64 = value.parse().expect("sum is a float");
                sums.push(base.to_string());
            } else if bare.ends_with("_count") && base != bare {
                counts.insert(base.to_string(), value.parse().expect("count is an integer"));
            }
        }
        let histograms: Vec<&String> =
            declared.iter().filter(|(_, t)| t == "histogram").map(|(n, _)| n).collect();
        assert_eq!(histograms.len(), 2);
        for h in histograms {
            assert!(sums.contains(h), "{h} missing _sum");
            let count = counts.get(h).unwrap_or_else(|| panic!("{h} missing _count"));
            assert_eq!(inf_buckets.get(h), Some(count), "{h}: +Inf bucket != _count");
        }
        // the _sum value reflects the fixed-point accumulator exactly
        assert!(p.contains("dust_span_offer_ms_sum 1000000005.35\n"), "{p}");
    }

    #[test]
    fn json_is_stable_and_sorted() {
        let mut m = MetricsRegistry::new();
        m.counter_add("z", 1);
        m.counter_add("a", 2);
        let j = m.to_json();
        assert!(j.find("\"a\":2").unwrap() < j.find("\"z\":1").unwrap());
        assert_eq!(j, m.to_json());
    }
}
