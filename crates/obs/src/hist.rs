//! Fixed-bucket log-scale histogram with exactly mergeable snapshots.
//!
//! Buckets are derived from the IEEE-754 representation of the recorded
//! value: one power-of-two decade per exponent, split into
//! [`SUB_BUCKETS`] linear sub-buckets from the top mantissa bits. The
//! covered range is `2^-64 ..= 2^64` (plenty for pivot counts, CPU
//! percentages, and second-denominated latencies); values below the
//! range land in a dedicated underflow bucket, values above in an
//! overflow bucket.
//!
//! The struct stores only integer counts plus exact `min`/`max` — no
//! floating-point sum — so [`Histogram::merge`] is *exactly* associative
//! and commutative, and merging per-shard histograms is bit-identical to
//! recording the union in one pass. That property is load-bearing: the
//! trace-digest regression tests hash metric snapshots, and any
//! order-dependence here would make parallel runs diverge.

/// Linear sub-buckets per power-of-two decade.
pub const SUB_BUCKETS: usize = 4;

/// Smallest biased exponent covered (`2^-64`).
const EXP_LO: u64 = 1023 - 64;
/// One past the largest biased exponent covered (`2^64`).
const EXP_HI: u64 = 1023 + 64;
/// Regular (non-under/overflow) bucket count.
const REGULAR: usize = ((EXP_HI - EXP_LO) as usize) * SUB_BUCKETS;
/// Total bucket count: underflow + regular + overflow.
pub const NUM_BUCKETS: usize = REGULAR + 2;

/// Index of the underflow bucket (`v < 2^-64`, including negatives).
const UNDERFLOW: usize = 0;
/// Index of the overflow bucket (`v >= 2^64`).
const OVERFLOW: usize = NUM_BUCKETS - 1;

/// A log-scale histogram of non-negative samples.
///
/// `record` ignores NaN; every other finite value is counted. `min` and
/// `max` track the exact extremes so quantile estimates can be clamped
/// to the observed range.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index for a value. Total order: underflow, then by magnitude.
fn bucket_of(v: f64) -> usize {
    if v <= 0.0 {
        // zero and negatives underflow
        return UNDERFLOW;
    }
    let bits = v.to_bits();
    let exp = bits >> 52; // sign bit is 0 for positives
    if exp < EXP_LO {
        return UNDERFLOW;
    }
    if exp >= EXP_HI {
        return OVERFLOW;
    }
    let sub = ((bits >> 50) & 0b11) as usize; // top 2 mantissa bits
    1 + (exp - EXP_LO) as usize * SUB_BUCKETS + sub
}

/// Inclusive lower edge of a regular bucket; `0.0` for underflow,
/// `2^64` for overflow.
fn lower_edge(idx: usize) -> f64 {
    if idx == UNDERFLOW {
        return 0.0;
    }
    if idx == OVERFLOW {
        return f64::from_bits(EXP_HI << 52);
    }
    let r = idx - 1;
    let exp = EXP_LO + (r / SUB_BUCKETS) as u64;
    let sub = (r % SUB_BUCKETS) as u64;
    f64::from_bits((exp << 52) | (sub << 50))
}

/// Exclusive upper edge of a bucket; `+inf` for overflow.
fn upper_edge(idx: usize) -> f64 {
    if idx == OVERFLOW {
        return f64::INFINITY;
    }
    lower_edge(idx + 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample. NaN is silently dropped.
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Fold another histogram into this one. Exactly associative and
    /// commutative: only integer adds and min/max, no float summation.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`). The estimate is the
    /// upper edge of the bucket holding the rank statistic, clamped to
    /// the observed `[min, max]`, so it always lies within the edges of
    /// the bucket containing the true quantile value. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min);
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(upper_edge(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Non-empty buckets as `(index, lower_edge, upper_edge, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, f64, f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, lower_edge(i), upper_edge(i), c))
    }

    /// Bucket index a value would land in (exposed for property tests).
    pub fn bucket_index(v: f64) -> usize {
        bucket_of(v)
    }

    /// Edges `[lower, upper)` of a bucket index (exposed for tests).
    pub fn bucket_edges(idx: usize) -> (f64, f64) {
        (lower_edge(idx), upper_edge(idx))
    }

    /// Stable one-line text encoding:
    /// `count=N min=<f64> max=<f64> buckets=i:c,i:c`. `min`/`max` use
    /// Rust's shortest-roundtrip float formatting, so decoding restores
    /// the histogram bit-for-bit. An empty histogram omits min/max.
    pub fn encode(&self) -> String {
        let mut s = format!("count={}", self.count);
        if self.count > 0 {
            s.push_str(&format!(" min={} max={}", self.min, self.max));
        }
        s.push_str(" buckets=");
        let mut first = true;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                if !first {
                    s.push(',');
                }
                s.push_str(&format!("{i}:{c}"));
                first = false;
            }
        }
        s
    }

    /// Inverse of [`Histogram::encode`]. Returns `None` on malformed
    /// input (unknown key, bad number, bucket index out of range).
    pub fn decode(text: &str) -> Option<Histogram> {
        let mut h = Histogram::new();
        let mut saw_count = false;
        for tok in text.split_whitespace() {
            let (key, val) = tok.split_once('=')?;
            match key {
                "count" => {
                    h.count = val.parse().ok()?;
                    saw_count = true;
                }
                "min" => h.min = val.parse().ok()?,
                "max" => h.max = val.parse().ok()?,
                "buckets" => {
                    for pair in val.split(',').filter(|p| !p.is_empty()) {
                        let (i, c) = pair.split_once(':')?;
                        let i: usize = i.parse().ok()?;
                        if i >= NUM_BUCKETS {
                            return None;
                        }
                        h.counts[i] = c.parse().ok()?;
                    }
                }
                _ => return None,
            }
        }
        saw_count.then_some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn single_value_quantiles_collapse_to_it() {
        let mut h = Histogram::new();
        h.record(7.25);
        for q in [0.0, 0.1, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(7.25), "q={q}");
        }
    }

    #[test]
    fn bucket_edges_bracket_the_value() {
        for v in [1e-12, 0.001, 0.9, 1.0, 1.5, 2.0, 3.999, 1234.5, 1e18, 1e30] {
            let b = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_edges(b);
            assert!(lo <= v && v < hi, "v={v} bucket {b} [{lo}, {hi})");
        }
    }

    #[test]
    fn zero_and_negatives_underflow() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-3.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(-3.0));
        assert_eq!(h.quantile(1.0), Some(0.0));
    }

    #[test]
    fn nan_is_dropped() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn encode_decode_round_trips_empty() {
        let h = Histogram::new();
        assert_eq!(Histogram::decode(&h.encode()), Some(h));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Histogram::decode("nonsense"), None);
        assert_eq!(Histogram::decode("count=2 buckets=999999:1"), None);
        assert_eq!(Histogram::decode("count=x buckets="), None);
    }
}
