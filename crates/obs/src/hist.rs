//! Fixed-bucket log-scale histogram with exactly mergeable snapshots.
//!
//! Buckets are derived from the IEEE-754 representation of the recorded
//! value: one power-of-two decade per exponent, split into
//! [`SUB_BUCKETS`] linear sub-buckets from the top mantissa bits. The
//! covered range is `2^-64 ..= 2^64` (plenty for pivot counts, CPU
//! percentages, and second-denominated latencies); values below the
//! range land in a dedicated underflow bucket, values above in an
//! overflow bucket.
//!
//! The struct stores integer counts, exact `min`/`max`, and a running
//! sample sum kept as a 256-bit two's-complement **fixed-point**
//! accumulator (units of `2^-64`) rather than a float: float addition
//! is not associative, and [`Histogram::merge`] must be *exactly*
//! associative and commutative so that merging per-shard histograms is
//! bit-identical to recording the union in one pass. That property is
//! load-bearing: the trace-digest regression tests hash metric
//! snapshots, and any order-dependence here would make parallel runs
//! diverge. Each sample contributes a fixed integer increment (a pure
//! function of its bits — truncated below `2^-64`, saturated beyond the
//! accumulator's range), so the total is scheduling-invariant; the sum
//! only becomes a float at exposition time ([`Histogram::sum`]).

/// Linear sub-buckets per power-of-two decade.
pub const SUB_BUCKETS: usize = 4;

/// Smallest biased exponent covered (`2^-64`).
const EXP_LO: u64 = 1023 - 64;
/// One past the largest biased exponent covered (`2^64`).
const EXP_HI: u64 = 1023 + 64;
/// Regular (non-under/overflow) bucket count.
const REGULAR: usize = ((EXP_HI - EXP_LO) as usize) * SUB_BUCKETS;
/// Total bucket count: underflow + regular + overflow.
pub const NUM_BUCKETS: usize = REGULAR + 2;

/// Index of the underflow bucket (`v < 2^-64`, including negatives).
const UNDERFLOW: usize = 0;
/// Index of the overflow bucket (`v >= 2^64`).
const OVERFLOW: usize = NUM_BUCKETS - 1;

/// A log-scale histogram of non-negative samples.
///
/// `record` ignores NaN; every other finite value is counted. `min` and
/// `max` track the exact extremes so quantile estimates can be clamped
/// to the observed range.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    min: f64,
    max: f64,
    /// Sample sum as a 256-bit two's-complement little-endian integer in
    /// units of `2^-64` (see module docs). Wrapping adds only, so merge
    /// stays exactly associative and commutative.
    sum_fixed: [u64; 4],
}

/// The fixed-point accumulator: 4 little-endian limbs, units of `2^-64`.
type Fixed = [u64; 4];

/// Two's-complement negation of a 4-limb value.
fn fixed_negate(x: Fixed) -> Fixed {
    let mut out = [0u64; 4];
    let mut carry = 1u64;
    for (o, limb) in out.iter_mut().zip(x) {
        let (v, c) = (!limb).overflowing_add(carry);
        *o = v;
        carry = u64::from(c);
    }
    out
}

/// `a += b`, wrapping at 2^256 (two's-complement arithmetic).
fn fixed_add(a: &mut Fixed, b: &Fixed) {
    let mut carry = 0u64;
    for (ai, bi) in a.iter_mut().zip(b) {
        let (v1, c1) = ai.overflowing_add(*bi);
        let (v2, c2) = v1.overflowing_add(carry);
        *ai = v2;
        carry = u64::from(c1) + u64::from(c2);
    }
}

/// The fixed-point increment one sample contributes: a pure function of
/// the value's bits. Magnitudes below `2^-64` truncate toward zero;
/// magnitudes at or beyond `2^192` (and infinities) saturate to the
/// largest representable magnitude. NaN never reaches this (dropped by
/// `record`); `-0.0` contributes zero like `+0.0`.
fn fixed_from_f64(v: f64) -> Fixed {
    let bits = v.to_bits();
    let neg = bits >> 63 != 0;
    let exp = (bits >> 52) & 0x7ff;
    let frac = bits & ((1u64 << 52) - 1);
    // largest positive two's-complement magnitude (top/sign bit clear)
    const SATURATED: Fixed = [u64::MAX, u64::MAX, u64::MAX, i64::MAX as u64];
    let mag: Fixed = if exp == 0x7ff {
        SATURATED // infinity: saturate
    } else {
        // v = m * 2^e exactly; in units of 2^-64 that is m << (e + 64)
        let (m, e) =
            if exp == 0 { (frac, -1074i64) } else { (frac | (1 << 52), exp as i64 - 1075) };
        let s = e + 64;
        if m == 0 || s <= -64 {
            [0u64; 4]
        } else if s < 0 {
            [m >> (-s) as u32, 0, 0, 0]
        } else if 52 + s >= 255 {
            SATURATED // would reach the sign bit: saturate
        } else {
            let limb = (s / 64) as usize;
            let wide = u128::from(m) << (s % 64) as u32;
            let mut out = [0u64; 4];
            out[limb] = wide as u64;
            if limb + 1 < 4 {
                out[limb + 1] = (wide >> 64) as u64;
            }
            out
        }
    };
    if neg {
        fixed_negate(mag)
    } else {
        mag
    }
}

/// Exposition-time conversion: `Σ limb_i · 2^(64·i − 64)` with the sign
/// read from the top bit. Floats appear only here, never on the
/// recording path.
fn fixed_to_f64(x: &Fixed) -> f64 {
    let neg = x[3] >> 63 != 0;
    let mag = if neg { fixed_negate(*x) } else { *x };
    let mut v = 0.0f64;
    for (i, limb) in mag.iter().enumerate() {
        v += *limb as f64 * (2.0f64).powi(64 * i as i32 - 64);
    }
    if neg {
        -v
    } else {
        v
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index for a value. Total order: underflow, then by magnitude.
fn bucket_of(v: f64) -> usize {
    if v <= 0.0 {
        // zero and negatives underflow
        return UNDERFLOW;
    }
    let bits = v.to_bits();
    let exp = bits >> 52; // sign bit is 0 for positives
    if exp < EXP_LO {
        return UNDERFLOW;
    }
    if exp >= EXP_HI {
        return OVERFLOW;
    }
    let sub = ((bits >> 50) & 0b11) as usize; // top 2 mantissa bits
    1 + (exp - EXP_LO) as usize * SUB_BUCKETS + sub
}

/// Inclusive lower edge of a regular bucket; `0.0` for underflow,
/// `2^64` for overflow.
fn lower_edge(idx: usize) -> f64 {
    if idx == UNDERFLOW {
        return 0.0;
    }
    if idx == OVERFLOW {
        return f64::from_bits(EXP_HI << 52);
    }
    let r = idx - 1;
    let exp = EXP_LO + (r / SUB_BUCKETS) as u64;
    let sub = (r % SUB_BUCKETS) as u64;
    f64::from_bits((exp << 52) | (sub << 50))
}

/// Exclusive upper edge of a bucket; `+inf` for overflow.
fn upper_edge(idx: usize) -> f64 {
    if idx == OVERFLOW {
        return f64::INFINITY;
    }
    lower_edge(idx + 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum_fixed: [0; 4],
        }
    }

    /// Record one sample. NaN is silently dropped.
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        fixed_add(&mut self.sum_fixed, &fixed_from_f64(v));
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of the recorded samples, converted from the fixed-point
    /// accumulator (see module docs); `0.0` when empty. Resolution is
    /// `2^-64` per sample, so integer-valued and typical fractional
    /// samples sum exactly; the conversion to `f64` happens only here.
    pub fn sum(&self) -> f64 {
        fixed_to_f64(&self.sum_fixed)
    }

    /// Fold another histogram into this one. Exactly associative and
    /// commutative: only integer adds and min/max, no float summation.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        fixed_add(&mut self.sum_fixed, &other.sum_fixed);
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`). The estimate is the
    /// upper edge of the bucket holding the rank statistic, clamped to
    /// the observed `[min, max]`, so it always lies within the edges of
    /// the bucket containing the true quantile value. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min);
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(upper_edge(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Non-empty buckets as `(index, lower_edge, upper_edge, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, f64, f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, lower_edge(i), upper_edge(i), c))
    }

    /// Bucket index a value would land in (exposed for property tests).
    pub fn bucket_index(v: f64) -> usize {
        bucket_of(v)
    }

    /// Edges `[lower, upper)` of a bucket index (exposed for tests).
    pub fn bucket_edges(idx: usize) -> (f64, f64) {
        (lower_edge(idx), upper_edge(idx))
    }

    /// Stable one-line text encoding:
    /// `count=N min=<f64> max=<f64> sum=<hex> buckets=i:c,i:c`.
    /// `min`/`max` use Rust's shortest-roundtrip float formatting and
    /// `sum` is the raw 256-bit accumulator as 64 hex digits (big-endian
    /// limb order), so decoding restores the histogram bit-for-bit. An
    /// empty histogram omits min/max/sum.
    pub fn encode(&self) -> String {
        let mut s = format!("count={}", self.count);
        if self.count > 0 {
            s.push_str(&format!(" min={} max={}", self.min, self.max));
            s.push_str(&format!(
                " sum={:016x}{:016x}{:016x}{:016x}",
                self.sum_fixed[3], self.sum_fixed[2], self.sum_fixed[1], self.sum_fixed[0]
            ));
        }
        s.push_str(" buckets=");
        let mut first = true;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                if !first {
                    s.push(',');
                }
                s.push_str(&format!("{i}:{c}"));
                first = false;
            }
        }
        s
    }

    /// Inverse of [`Histogram::encode`]. Returns `None` on malformed
    /// input (unknown key, bad number, bucket index out of range). A
    /// missing `sum` key is tolerated — pre-sum encodings decode with a
    /// zero accumulator — so persisted metric text stays readable.
    pub fn decode(text: &str) -> Option<Histogram> {
        let mut h = Histogram::new();
        let mut saw_count = false;
        for tok in text.split_whitespace() {
            let (key, val) = tok.split_once('=')?;
            match key {
                "count" => {
                    h.count = val.parse().ok()?;
                    saw_count = true;
                }
                "min" => h.min = val.parse().ok()?,
                "max" => h.max = val.parse().ok()?,
                "sum" => {
                    if val.len() != 64 || !val.is_ascii() {
                        return None;
                    }
                    for (i, chunk) in (0..4).map(|i| (i, &val[i * 16..(i + 1) * 16])) {
                        h.sum_fixed[3 - i] = u64::from_str_radix(chunk, 16).ok()?;
                    }
                }
                "buckets" => {
                    for pair in val.split(',').filter(|p| !p.is_empty()) {
                        let (i, c) = pair.split_once(':')?;
                        let i: usize = i.parse().ok()?;
                        if i >= NUM_BUCKETS {
                            return None;
                        }
                        h.counts[i] = c.parse().ok()?;
                    }
                }
                _ => return None,
            }
        }
        saw_count.then_some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn single_value_quantiles_collapse_to_it() {
        let mut h = Histogram::new();
        h.record(7.25);
        for q in [0.0, 0.1, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(7.25), "q={q}");
        }
    }

    #[test]
    fn bucket_edges_bracket_the_value() {
        for v in [1e-12, 0.001, 0.9, 1.0, 1.5, 2.0, 3.999, 1234.5, 1e18, 1e30] {
            let b = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_edges(b);
            assert!(lo <= v && v < hi, "v={v} bucket {b} [{lo}, {hi})");
        }
    }

    #[test]
    fn zero_and_negatives_underflow() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-3.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(-3.0));
        assert_eq!(h.quantile(1.0), Some(0.0));
    }

    #[test]
    fn nan_is_dropped() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn encode_decode_round_trips_empty() {
        let h = Histogram::new();
        assert_eq!(Histogram::decode(&h.encode()), Some(h));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Histogram::decode("nonsense"), None);
        assert_eq!(Histogram::decode("count=2 buckets=999999:1"), None);
        assert_eq!(Histogram::decode("count=x buckets="), None);
        assert_eq!(Histogram::decode("count=1 sum=beef buckets="), None);
    }

    #[test]
    fn decode_tolerates_missing_sum() {
        // pre-sum encodings (no `sum=` key) must still decode
        let h = Histogram::decode("count=1 min=2 max=2 buckets=265:1").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 0.0, "legacy text decodes with a zero accumulator");
    }

    #[test]
    fn sum_is_exact_for_representable_values() {
        let mut h = Histogram::new();
        for v in [1.0, 2.5, 0.25, 1e6, -3.5] {
            h.record(v);
        }
        assert_eq!(h.sum(), 1.0 + 2.5 + 0.25 + 1e6 - 3.5);
        assert_eq!(Histogram::new().sum(), 0.0);
    }

    #[test]
    fn sum_merge_is_exactly_associative() {
        // shard a value set whose float-summation order matters (1e16
        // and 1.0 don't commute in f64) three ways: all groupings of the
        // fixed-point accumulator agree bit-for-bit
        let vals = [1e16, 1.0, 1.0, -1e16, 0.5, 1e-20];
        let shard = |r: std::ops::Range<usize>| {
            let mut h = Histogram::new();
            for &v in &vals[r] {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (shard(0..2), shard(2..4), shard(4..6));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge grouping must not change a single bit");
        let mut one_pass = Histogram::new();
        for v in vals {
            one_pass.record(v);
        }
        assert_eq!(ab_c, one_pass);
    }

    #[test]
    fn sum_saturates_instead_of_overflowing() {
        let mut h = Histogram::new();
        h.record(f64::INFINITY);
        assert!(h.sum() > 1e50, "saturated accumulator reads as a huge finite sum");
        let mut h = Histogram::new();
        h.record(f64::MAX); // beyond 2^192: saturates, no panic
        assert!(h.sum().is_finite());
    }

    #[test]
    fn sum_round_trips_through_encoding() {
        let mut h = Histogram::new();
        for v in [0.1, 7.25, -2.0, 1e12] {
            h.record(v);
        }
        let back = Histogram::decode(&h.encode()).unwrap();
        assert_eq!(back, h, "sum limbs survive the text round trip bit-for-bit");
    }
}
