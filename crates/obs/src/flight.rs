//! Bounded flight recorder for post-mortem dumps.
//!
//! A [`FlightRecorder`] keeps the last `capacity` trace entries in a
//! fixed ring with O(1) append and no per-event allocation (entries are
//! `Copy`). When a sim invariant breaks or a [`crate::TraceAssert`]
//! fails, [`FlightRecorder::dump`] renders the window as a deterministic
//! text artifact — same events in, same bytes (and digest) out — so a
//! chaos failure ships a reproducible black box instead of a bare
//! assert message.

use crate::trace::{fnv1a, TraceEntry, FNV_OFFSET};

/// Default ring capacity used by `ObsHandle::recording`.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// Fixed-size ring of the most recent [`TraceEntry`]s.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    buf: Vec<TraceEntry>,
    /// Index the next push writes to once the ring is full.
    next: usize,
    /// Total entries ever pushed (>= buf.len()).
    total: u64,
}

impl FlightRecorder {
    /// An empty recorder holding at most `capacity` entries. A zero
    /// capacity is clamped to 1 so `push` stays branch-simple.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder { capacity, buf: Vec::with_capacity(capacity), next: 0, total: 0 }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total entries ever pushed, including ones already evicted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Entries currently held (min(total, capacity)).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was ever pushed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one entry, evicting the oldest once full. O(1).
    pub fn push(&mut self, entry: TraceEntry) {
        if self.buf.len() < self.capacity {
            self.buf.push(entry);
        } else {
            self.buf[self.next] = entry;
            self.next = (self.next + 1) % self.capacity;
        }
        self.total += 1;
    }

    /// The retained window in record order (oldest first).
    pub fn window(&self) -> Vec<TraceEntry> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }

    /// Render the retained window as a deterministic post-mortem dump.
    /// See [`dump_entries`] for the format.
    pub fn dump(&self, seed: u64, reason: &str) -> String {
        dump_entries(seed, reason, &self.window(), self.total)
    }
}

/// Render a post-mortem dump over an explicit entry window. Format:
///
/// ```text
/// postmortem reason=<reason> seed=<seed> window=<kept> dropped=<evicted>
/// <t_ms> <seq> <event>         (one line per retained entry)
/// digest <fnv1a-64 over all preceding lines>
/// ```
///
/// Whitespace in `reason` is folded to `_` so the header stays one
/// token-parseable line. The digest covers the header and every entry
/// line, so two dumps are byte-identical iff their digests match.
pub fn dump_entries(seed: u64, reason: &str, window: &[TraceEntry], total: u64) -> String {
    let reason: String = reason.chars().map(|c| if c.is_whitespace() { '_' } else { c }).collect();
    let dropped = total.saturating_sub(window.len() as u64);
    let mut out = format!(
        "postmortem reason={reason} seed={seed} window={} dropped={dropped}\n",
        window.len()
    );
    for e in window {
        out.push_str(&e.to_line());
        out.push('\n');
    }
    let digest = fnv1a(FNV_OFFSET, out.as_bytes());
    out.push_str(&format!("digest {digest:016x}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn entry(i: u64) -> TraceEntry {
        TraceEntry { t_ms: i * 10, seq: i, event: TraceEvent::Abandon { request: i } }
    }

    #[test]
    fn ring_keeps_the_most_recent_entries_in_order() {
        let mut fr = FlightRecorder::new(4);
        for i in 0..10 {
            fr.push(entry(i));
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.total(), 10);
        let seqs: Vec<u64> = fr.window().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "window must be the tail, oldest first");
    }

    #[test]
    fn window_is_stable_before_wraparound() {
        let mut fr = FlightRecorder::new(8);
        for i in 0..3 {
            fr.push(entry(i));
        }
        let seqs: Vec<u64> = fr.window().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn dump_is_deterministic_and_counts_evictions() {
        let mk = || {
            let mut fr = FlightRecorder::new(2);
            for i in 0..5 {
                fr.push(entry(i));
            }
            fr.dump(7, "ledger drift")
        };
        let dump = mk();
        assert_eq!(dump, mk(), "same window must dump identical bytes");
        assert!(dump.starts_with("postmortem reason=ledger_drift seed=7 window=2 dropped=3\n"));
        assert!(dump.trim_end().lines().last().unwrap().starts_with("digest "));
    }

    #[test]
    fn dump_digest_is_sensitive_to_content() {
        let a = dump_entries(1, "x", &[entry(0)], 1);
        let b = dump_entries(1, "x", &[entry(1)], 1);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut fr = FlightRecorder::new(0);
        fr.push(entry(0));
        fr.push(entry(1));
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.window()[0].seq, 1);
    }
}
