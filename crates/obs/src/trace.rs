//! Deterministic event tracing with a running FNV-1a digest.
//!
//! A [`Trace`] is an append-only log of [`TraceEntry`]s keyed by sim
//! time and sequence number, seeded with the run's RNG seed. Every entry
//! has a stable one-line text encoding; the 64-bit FNV-1a digest is
//! folded over those lines (plus the seed) as entries are recorded, so
//! two runs produce the same digest iff they produced the same event
//! stream at the same times — the bit-identity the golden-trace
//! regression tests pin down.
//!
//! Event payloads are integers only (node ids, request ids, counts):
//! no floats means no formatting ambiguity in the encoding.

use std::fmt;
use std::io;

/// Version of the [`Trace::to_binary`] encoding. Bumped whenever the
/// framing (not the event payload) changes; [`Trace::decode_binary`]
/// refuses streams from other versions with a loud error instead of
/// silently mismatching digests.
pub const TRACE_FORMAT_VERSION: u16 = 2;

/// Magic bytes opening every versioned binary trace stream.
pub const TRACE_MAGIC: [u8; 4] = *b"DTRC";

/// One structured event. Fields are raw ids (`u32` node, `u64` request)
/// so the crate stays dependency-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing ids/counts
pub enum TraceEvent {
    /// Manager received an Offload-capable registration.
    Register { node: u32 },
    /// Manager ACKed a registration.
    RegisterAck { node: u32 },
    /// Manager received a STAT update.
    Stat { node: u32 },
    /// Manager received a keepalive.
    Keepalive { node: u32 },
    /// Manager sent an Offload-Request.
    Offer { request: u64, from: u32, to: u32 },
    /// Manager confirmed a hosting (first accepting Offload-ACK).
    OfferAccepted { request: u64, node: u32 },
    /// Manager dropped a hosting on a refusing Offload-ACK.
    OfferRefused { request: u64, node: u32 },
    /// Manager sent a REP (replica substitution) for a failed host.
    /// `orig` is the request id the replica supersedes (0 = unknown),
    /// linking the new flow back to the one it continues.
    Rep { request: u64, orig: u64, failed: u32, to: u32 },
    /// Manager sent (or retransmitted) a Release.
    ReleaseSent { request: u64, to: u32 },
    /// Manager retransmitted an expired unconfirmed offer.
    Retransmit { request: u64, attempt: u32 },
    /// Manager abandoned an offer after exhausting its retry budget.
    Abandon { request: u64 },
    /// Manager reclaimed a hosting back to a recovered owner.
    Reclaim { request: u64, node: u32 },
    /// Client accepted an Offload-Request (sent accept=true).
    ClientAccept { request: u64, node: u32 },
    /// Client refused an Offload-Request (sent accept=false).
    ClientRefuse { request: u64, node: u32 },
    /// Client released a hosted workload (tombstone created).
    ClientReleased { request: u64, node: u32 },
    /// Simulator applied a confirmed transfer to the physical model.
    TransferApplied { request: u64, from: u32, to: u32 },
    /// Simulator applied a replica substitution.
    ReplicaApplied { request: u64, to: u32 },
    /// Simulator reverted a transfer on Release.
    ReleaseApplied { request: u64, node: u32 },
    /// A stale transfer was superseded by a newer REP for the same id.
    TransferSuperseded { request: u64 },
    /// Fault gate dropped an envelope.
    FaultDrop { to_manager: bool },
    /// Fault gate duplicated an envelope.
    FaultDuplicate { to_manager: bool },
    /// Chaos schedule killed a node.
    NodeKilled { node: u32 },
    /// Chaos schedule revived a node.
    NodeRevived { node: u32 },
    /// Cost-engine row cache hit for a source node.
    CacheHit { node: u32 },
    /// Cost-engine row cache miss for a source node.
    CacheMiss { node: u32 },
    /// Cost matrix assembled: totals for one build.
    MatrixBuilt { rows: u32, hits: u32, misses: u32 },
    /// One simplex solve finished (pivot counts by phase).
    SimplexSolve { pivots: u64, phase1: u64, phase2: u64 },
    /// One transportation-simplex solve finished (MODI pivots).
    TransportSolve { pivots: u64 },
    /// One branch-and-bound solve finished (nodes explored).
    BranchAndBound { nodes: u64 },
    /// Client sent (or retransmitted) an Offload-capable registration.
    ClientRegister { node: u32 },
    /// Client saw its first registration ACK and went Active.
    ClientRegistered { node: u32 },
    /// Manager finished one placement round, sending `offers` offers.
    PlacementRound { round: u64, offers: u32 },
    /// Online SLO engine fired a rule breach. `rule` is the rule's index
    /// in its spec, `node` the offender (`SLO_GLOBAL` for fleet-wide
    /// rules), `value_m` the observed value in milli-units.
    SloBreach { rule: u32, node: u32, value_m: u64 },
    /// A failure storm cascaded: `node` was killed because its CPU
    /// (`cpu_m`, milli-percent) crossed the storm's cascade threshold
    /// under load.
    StormCascade { node: u32, cpu_m: u64 },
    /// Manager ran a delta round: of `checked` confirmed hostings,
    /// `degraded` drifted past the re-home threshold and only those were
    /// re-solved — the full placement engine stayed cold.
    DeltaRound { round: u64, checked: u32, degraded: u32 },
    /// A delta round re-homed one degraded hosted flow: the hosting under
    /// `old` (destination `old_to`) was released and re-offered as
    /// `request` toward `new_to`.
    Rehome { request: u64, old: u64, from: u32, old_to: u32, new_to: u32 },
    /// Seeded churn drift retuned `links` link utilizations and scaled
    /// `agents` agent data rates.
    DriftApplied { links: u32, agents: u32 },
}

/// Sentinel `node` value on [`TraceEvent::SloBreach`] for rules that
/// apply to the whole fleet rather than one node.
pub const SLO_GLOBAL: u32 = u32::MAX;

/// Stable causal-flow identity for an event: the unit of work it belongs
/// to. Flows are what [`crate::span::build_spans`] groups by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlowId {
    /// One transfer's lifecycle, keyed by its (root) request id.
    Transfer(u64),
    /// One node's registration lifecycle, keyed by node id.
    Registration(u32),
    /// One placement round, keyed by round number.
    Placement(u64),
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FlowId::Transfer(r) => write!(f, "t:{r}"),
            FlowId::Registration(n) => write!(f, "n:{n}"),
            FlowId::Placement(r) => write!(f, "p:{r}"),
        }
    }
}

impl TraceEvent {
    /// Stable kind name used in the text encoding and by `TraceAssert`.
    pub fn kind(&self) -> &'static str {
        use TraceEvent::*;
        match self {
            Register { .. } => "Register",
            RegisterAck { .. } => "RegisterAck",
            Stat { .. } => "Stat",
            Keepalive { .. } => "Keepalive",
            Offer { .. } => "Offer",
            OfferAccepted { .. } => "OfferAccepted",
            OfferRefused { .. } => "OfferRefused",
            Rep { .. } => "Rep",
            ReleaseSent { .. } => "ReleaseSent",
            Retransmit { .. } => "Retransmit",
            Abandon { .. } => "Abandon",
            Reclaim { .. } => "Reclaim",
            ClientAccept { .. } => "ClientAccept",
            ClientRefuse { .. } => "ClientRefuse",
            ClientReleased { .. } => "ClientReleased",
            TransferApplied { .. } => "TransferApplied",
            ReplicaApplied { .. } => "ReplicaApplied",
            ReleaseApplied { .. } => "ReleaseApplied",
            TransferSuperseded { .. } => "TransferSuperseded",
            FaultDrop { .. } => "FaultDrop",
            FaultDuplicate { .. } => "FaultDuplicate",
            NodeKilled { .. } => "NodeKilled",
            NodeRevived { .. } => "NodeRevived",
            CacheHit { .. } => "CacheHit",
            CacheMiss { .. } => "CacheMiss",
            MatrixBuilt { .. } => "MatrixBuilt",
            SimplexSolve { .. } => "SimplexSolve",
            TransportSolve { .. } => "TransportSolve",
            BranchAndBound { .. } => "BranchAndBound",
            ClientRegister { .. } => "ClientRegister",
            ClientRegistered { .. } => "ClientRegistered",
            PlacementRound { .. } => "PlacementRound",
            SloBreach { .. } => "SloBreach",
            StormCascade { .. } => "StormCascade",
            DeltaRound { .. } => "DeltaRound",
            Rehome { .. } => "Rehome",
            DriftApplied { .. } => "DriftApplied",
        }
    }

    /// The request id this event concerns, if any.
    pub fn request(&self) -> Option<u64> {
        use TraceEvent::*;
        match *self {
            Offer { request, .. }
            | OfferAccepted { request, .. }
            | OfferRefused { request, .. }
            | Rep { request, .. }
            | ReleaseSent { request, .. }
            | Retransmit { request, .. }
            | Abandon { request }
            | Reclaim { request, .. }
            | ClientAccept { request, .. }
            | ClientRefuse { request, .. }
            | ClientReleased { request, .. }
            | TransferApplied { request, .. }
            | ReplicaApplied { request, .. }
            | ReleaseApplied { request, .. }
            | TransferSuperseded { request }
            | Rehome { request, .. } => Some(request),
            _ => None,
        }
    }

    /// The causal flow this event belongs to, if any. Infrastructure
    /// events (fault gate, chaos schedule, solver/cache internals, SLO
    /// breaches) carry no flow and are reported separately.
    pub fn flow(&self) -> Option<FlowId> {
        use TraceEvent::*;
        if let Some(request) = self.request() {
            return Some(FlowId::Transfer(request));
        }
        match *self {
            Register { node }
            | RegisterAck { node }
            | Stat { node }
            | Keepalive { node }
            | ClientRegister { node }
            | ClientRegistered { node } => Some(FlowId::Registration(node)),
            PlacementRound { round, .. } | DeltaRound { round, .. } => {
                Some(FlowId::Placement(round))
            }
            _ => None,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TraceEvent::*;
        match *self {
            Register { node } => write!(f, "Register node={node}"),
            RegisterAck { node } => write!(f, "RegisterAck node={node}"),
            Stat { node } => write!(f, "Stat node={node}"),
            Keepalive { node } => write!(f, "Keepalive node={node}"),
            Offer { request, from, to } => write!(f, "Offer req={request} from={from} to={to}"),
            OfferAccepted { request, node } => write!(f, "OfferAccepted req={request} node={node}"),
            OfferRefused { request, node } => write!(f, "OfferRefused req={request} node={node}"),
            Rep { request, orig, failed, to } => {
                write!(f, "Rep req={request} orig={orig} failed={failed} to={to}")
            }
            ReleaseSent { request, to } => write!(f, "ReleaseSent req={request} to={to}"),
            Retransmit { request, attempt } => {
                write!(f, "Retransmit req={request} attempt={attempt}")
            }
            Abandon { request } => write!(f, "Abandon req={request}"),
            Reclaim { request, node } => write!(f, "Reclaim req={request} node={node}"),
            ClientAccept { request, node } => write!(f, "ClientAccept req={request} node={node}"),
            ClientRefuse { request, node } => write!(f, "ClientRefuse req={request} node={node}"),
            ClientReleased { request, node } => {
                write!(f, "ClientReleased req={request} node={node}")
            }
            TransferApplied { request, from, to } => {
                write!(f, "TransferApplied req={request} from={from} to={to}")
            }
            ReplicaApplied { request, to } => write!(f, "ReplicaApplied req={request} to={to}"),
            ReleaseApplied { request, node } => {
                write!(f, "ReleaseApplied req={request} node={node}")
            }
            TransferSuperseded { request } => write!(f, "TransferSuperseded req={request}"),
            FaultDrop { to_manager } => {
                write!(f, "FaultDrop dir={}", if to_manager { "to_manager" } else { "to_client" })
            }
            FaultDuplicate { to_manager } => write!(
                f,
                "FaultDuplicate dir={}",
                if to_manager { "to_manager" } else { "to_client" }
            ),
            NodeKilled { node } => write!(f, "NodeKilled node={node}"),
            NodeRevived { node } => write!(f, "NodeRevived node={node}"),
            CacheHit { node } => write!(f, "CacheHit node={node}"),
            CacheMiss { node } => write!(f, "CacheMiss node={node}"),
            MatrixBuilt { rows, hits, misses } => {
                write!(f, "MatrixBuilt rows={rows} hits={hits} misses={misses}")
            }
            SimplexSolve { pivots, phase1, phase2 } => {
                write!(f, "SimplexSolve pivots={pivots} phase1={phase1} phase2={phase2}")
            }
            TransportSolve { pivots } => write!(f, "TransportSolve pivots={pivots}"),
            BranchAndBound { nodes } => write!(f, "BranchAndBound nodes={nodes}"),
            ClientRegister { node } => write!(f, "ClientRegister node={node}"),
            ClientRegistered { node } => write!(f, "ClientRegistered node={node}"),
            PlacementRound { round, offers } => {
                write!(f, "PlacementRound round={round} offers={offers}")
            }
            SloBreach { rule, node, value_m } => {
                write!(f, "SloBreach rule={rule} node={node} value_m={value_m}")
            }
            StormCascade { node, cpu_m } => {
                write!(f, "StormCascade node={node} cpu_m={cpu_m}")
            }
            DeltaRound { round, checked, degraded } => {
                write!(f, "DeltaRound round={round} checked={checked} degraded={degraded}")
            }
            Rehome { request, old, from, old_to, new_to } => {
                write!(
                    f,
                    "Rehome req={request} old={old} from={from} old_to={old_to} new_to={new_to}"
                )
            }
            DriftApplied { links, agents } => {
                write!(f, "DriftApplied links={links} agents={agents}")
            }
        }
    }
}

/// One recorded event with its sim-time and sequence coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Sim time the event was recorded at, ms.
    pub t_ms: u64,
    /// Zero-based position in the trace (total order within a run).
    pub seq: u64,
    /// The event itself.
    pub event: TraceEvent,
}

impl TraceEntry {
    /// Stable line encoding: `<t_ms> <seq> <event>`.
    pub fn to_line(&self) -> String {
        format!("{} {} {}", self.t_ms, self.seq, self.event)
    }
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// An append-only event log with a running digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    seed: u64,
    entries: Vec<TraceEntry>,
    digest: u64,
}

impl Trace {
    /// An empty trace for a run at `seed`. The seed is folded into the
    /// digest so traces from different seeds never collide trivially.
    pub fn new(seed: u64) -> Self {
        Trace { seed, entries: Vec::new(), digest: fnv1a(FNV_OFFSET, &seed.to_le_bytes()) }
    }

    /// The seed this trace was recorded under.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Append one event at sim time `t_ms`.
    pub fn record(&mut self, t_ms: u64, event: TraceEvent) {
        let entry = TraceEntry { t_ms, seq: self.entries.len() as u64, event };
        self.digest = fnv1a(self.digest, entry.to_line().as_bytes());
        self.digest = fnv1a(self.digest, b"\n");
        self.entries.push(entry);
    }

    /// All entries in record order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// FNV-1a 64 digest over seed + every encoded line so far.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Full text encoding: header, one line per event, digest footer.
    pub fn to_text(&self) -> String {
        let mut out = Vec::with_capacity(32 + self.entries.len() * 40);
        self.write_text(&mut out).expect("writing to a Vec cannot fail");
        String::from_utf8(out).expect("trace lines are ASCII")
    }

    /// Stream the text encoding to `out` one line at a time — same bytes
    /// as [`Trace::to_text`] without materializing the dump as one
    /// String. This is what `dustctl trace --full` uses so large chaos
    /// sweeps run in bounded memory.
    pub fn write_text<W: io::Write + ?Sized>(&self, out: &mut W) -> io::Result<()> {
        writeln!(out, "trace seed={}", self.seed)?;
        for e in &self.entries {
            writeln!(out, "{} {} {}", e.t_ms, e.seq, e.event)?;
        }
        writeln!(out, "digest {:016x}", self.digest)
    }

    /// Compact binary encoding: magic `DTRC`, format version, then
    /// `seed, count` and one length-prefixed encoded line per entry (all
    /// integers little-endian). The digest is recomputed on decode, so a
    /// tampered stream is detectable by comparing digests, and a stream
    /// from a different format version is rejected loudly.
    pub fn to_binary(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.entries.len() * 32);
        out.extend_from_slice(&TRACE_MAGIC);
        out.extend_from_slice(&TRACE_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for e in &self.entries {
            let line = e.to_line();
            out.extend_from_slice(&(line.len() as u32).to_le_bytes());
            out.extend_from_slice(line.as_bytes());
        }
        out
    }

    /// Decode a versioned binary stream produced by [`Trace::to_binary`].
    ///
    /// The digest is recomputed from the decoded lines exactly as the
    /// recorder computed it, so `decoded.digest` can be compared against
    /// a golden value. Fails loudly (with the offending magic/version in
    /// the message) on format drift instead of returning garbage that
    /// would only surface later as a digest mismatch.
    pub fn decode_binary(bytes: &[u8]) -> Result<DecodedTrace, String> {
        fn take<'a>(bytes: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8], String> {
            if bytes.len() < n {
                return Err(format!("truncated trace stream: expected {n} bytes for {what}"));
            }
            let (head, tail) = bytes.split_at(n);
            *bytes = tail;
            Ok(head)
        }
        let mut rest = bytes;
        let magic = take(&mut rest, 4, "magic")?;
        if magic != TRACE_MAGIC {
            return Err(format!(
                "not a DUST trace: bad magic {magic:02x?} (expected {TRACE_MAGIC:02x?})"
            ));
        }
        let version = u16::from_le_bytes(take(&mut rest, 2, "version")?.try_into().unwrap());
        if version != TRACE_FORMAT_VERSION {
            return Err(format!(
                "trace format v{version} but this build reads v{TRACE_FORMAT_VERSION}; \
                 re-record the trace (golden digests are format-versioned)"
            ));
        }
        let seed = u64::from_le_bytes(take(&mut rest, 8, "seed")?.try_into().unwrap());
        let count = u64::from_le_bytes(take(&mut rest, 8, "count")?.try_into().unwrap());
        let mut lines = Vec::with_capacity(count.min(1 << 20) as usize);
        let mut digest = fnv1a(FNV_OFFSET, &seed.to_le_bytes());
        for i in 0..count {
            let len =
                u32::from_le_bytes(take(&mut rest, 4, "line length")?.try_into().unwrap()) as usize;
            let raw = take(&mut rest, len, "line body")?;
            let line = std::str::from_utf8(raw)
                .map_err(|_| format!("entry {i}: line is not UTF-8"))?
                .to_string();
            digest = fnv1a(digest, line.as_bytes());
            digest = fnv1a(digest, b"\n");
            lines.push(line);
        }
        if !rest.is_empty() {
            return Err(format!("trailing garbage: {} bytes past the last entry", rest.len()));
        }
        Ok(DecodedTrace { version, seed, lines, digest })
    }
}

/// A binary trace stream decoded by [`Trace::decode_binary`]: the raw
/// encoded lines plus the digest recomputed over them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedTrace {
    /// Format version the stream was encoded with.
    pub version: u16,
    /// Seed of the recorded run.
    pub seed: u64,
    /// One encoded `<t_ms> <seq> <event>` line per entry.
    pub lines: Vec<String>,
    /// FNV-1a digest recomputed over seed + lines (matches
    /// [`Trace::digest`] for an untampered stream).
    pub digest: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_events_same_digest() {
        let run = || {
            let mut t = Trace::new(42);
            t.record(0, TraceEvent::Register { node: 1 });
            t.record(5, TraceEvent::Offer { request: 9, from: 1, to: 2 });
            t.record(7, TraceEvent::OfferAccepted { request: 9, node: 2 });
            t.digest()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn digest_is_sensitive_to_order_time_and_seed() {
        let mut a = Trace::new(1);
        a.record(0, TraceEvent::Abandon { request: 1 });
        a.record(0, TraceEvent::Reclaim { request: 1, node: 0 });
        let mut b = Trace::new(1);
        b.record(0, TraceEvent::Reclaim { request: 1, node: 0 });
        b.record(0, TraceEvent::Abandon { request: 1 });
        assert_ne!(a.digest(), b.digest(), "order must matter");

        let mut c = Trace::new(1);
        c.record(1, TraceEvent::Abandon { request: 1 });
        let mut d = Trace::new(1);
        d.record(2, TraceEvent::Abandon { request: 1 });
        assert_ne!(c.digest(), d.digest(), "time must matter");

        assert_ne!(Trace::new(1).digest(), Trace::new(2).digest(), "seed must matter");
    }

    #[test]
    fn text_encoding_carries_digest_footer() {
        let mut t = Trace::new(3);
        t.record(10, TraceEvent::FaultDrop { to_manager: true });
        let text = t.to_text();
        assert!(text.starts_with("trace seed=3\n"));
        assert!(text.contains("10 0 FaultDrop dir=to_manager\n"));
        assert!(text.trim_end().ends_with(&format!("{:016x}", t.digest())));
    }

    #[test]
    fn binary_encoding_is_deterministic() {
        let mk = || {
            let mut t = Trace::new(8);
            t.record(1, TraceEvent::Stat { node: 4 });
            t.record(2, TraceEvent::Keepalive { node: 4 });
            t.to_binary()
        };
        assert_eq!(mk(), mk());
        assert!(mk().len() > 16);
    }

    #[test]
    fn request_accessor_covers_lifecycle_events() {
        assert_eq!(TraceEvent::Abandon { request: 7 }.request(), Some(7));
        assert_eq!(TraceEvent::Stat { node: 1 }.request(), None);
    }

    #[test]
    fn flow_accessor_partitions_events() {
        use TraceEvent::*;
        assert_eq!(
            Offer { request: 9, from: 1, to: 2 }.flow(),
            Some(FlowId::Transfer(9)),
            "request-scoped events belong to their transfer"
        );
        assert_eq!(Rep { request: 4, orig: 2, failed: 1, to: 3 }.flow(), Some(FlowId::Transfer(4)));
        assert_eq!(ClientRegister { node: 5 }.flow(), Some(FlowId::Registration(5)));
        assert_eq!(Keepalive { node: 5 }.flow(), Some(FlowId::Registration(5)));
        assert_eq!(PlacementRound { round: 3, offers: 2 }.flow(), Some(FlowId::Placement(3)));
        assert_eq!(FaultDrop { to_manager: true }.flow(), None, "infrastructure has no flow");
        assert_eq!(SloBreach { rule: 0, node: SLO_GLOBAL, value_m: 1 }.flow(), None);
    }

    #[test]
    fn binary_round_trips_through_decode() {
        let mut t = Trace::new(42);
        t.record(0, TraceEvent::ClientRegister { node: 1 });
        t.record(5, TraceEvent::Offer { request: 9, from: 1, to: 2 });
        let d = Trace::decode_binary(&t.to_binary()).expect("decode");
        assert_eq!(d.version, TRACE_FORMAT_VERSION);
        assert_eq!(d.seed, 42);
        assert_eq!(d.lines.len(), 2);
        assert_eq!(d.lines[0], t.entries()[0].to_line());
        assert_eq!(d.digest, t.digest(), "decode must recompute the recorder's digest");
    }

    #[test]
    fn decode_rejects_bad_magic_loudly() {
        let err = Trace::decode_binary(b"NOPE\x02\x00rest").unwrap_err();
        assert!(err.contains("bad magic"), "got: {err}");
    }

    #[test]
    fn decode_rejects_other_versions_loudly() {
        let mut bytes = Trace::new(1).to_binary();
        bytes[4] = TRACE_FORMAT_VERSION as u8 + 1; // bump the version field
        let err = Trace::decode_binary(&bytes).unwrap_err();
        assert!(err.contains("trace format v"), "got: {err}");
        assert!(err.contains("re-record"), "got: {err}");
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_garbage() {
        let mut t = Trace::new(1);
        t.record(0, TraceEvent::Abandon { request: 1 });
        let bytes = t.to_binary();
        assert!(Trace::decode_binary(&bytes[..bytes.len() - 1]).is_err());
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(Trace::decode_binary(&longer).unwrap_err().contains("trailing garbage"));
    }

    #[test]
    fn write_text_streams_the_same_bytes_as_to_text() {
        let mut t = Trace::new(9);
        t.record(1, TraceEvent::PlacementRound { round: 0, offers: 3 });
        let mut streamed = Vec::new();
        t.write_text(&mut streamed).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), t.to_text());
    }
}
