//! Deterministic event tracing with a running FNV-1a digest.
//!
//! A [`Trace`] is an append-only log of [`TraceEntry`]s keyed by sim
//! time and sequence number, seeded with the run's RNG seed. Every entry
//! has a stable one-line text encoding; the 64-bit FNV-1a digest is
//! folded over those lines (plus the seed) as entries are recorded, so
//! two runs produce the same digest iff they produced the same event
//! stream at the same times — the bit-identity the golden-trace
//! regression tests pin down.
//!
//! Event payloads are integers only (node ids, request ids, counts):
//! no floats means no formatting ambiguity in the encoding.

use std::fmt;

/// One structured event. Fields are raw ids (`u32` node, `u64` request)
/// so the crate stays dependency-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing ids/counts
pub enum TraceEvent {
    /// Manager received an Offload-capable registration.
    Register { node: u32 },
    /// Manager ACKed a registration.
    RegisterAck { node: u32 },
    /// Manager received a STAT update.
    Stat { node: u32 },
    /// Manager received a keepalive.
    Keepalive { node: u32 },
    /// Manager sent an Offload-Request.
    Offer { request: u64, from: u32, to: u32 },
    /// Manager confirmed a hosting (first accepting Offload-ACK).
    OfferAccepted { request: u64, node: u32 },
    /// Manager dropped a hosting on a refusing Offload-ACK.
    OfferRefused { request: u64, node: u32 },
    /// Manager sent a REP (replica substitution) for a failed host.
    Rep { request: u64, failed: u32, to: u32 },
    /// Manager sent (or retransmitted) a Release.
    ReleaseSent { request: u64, to: u32 },
    /// Manager retransmitted an expired unconfirmed offer.
    Retransmit { request: u64, attempt: u32 },
    /// Manager abandoned an offer after exhausting its retry budget.
    Abandon { request: u64 },
    /// Manager reclaimed a hosting back to a recovered owner.
    Reclaim { request: u64, node: u32 },
    /// Client accepted an Offload-Request (sent accept=true).
    ClientAccept { request: u64, node: u32 },
    /// Client refused an Offload-Request (sent accept=false).
    ClientRefuse { request: u64, node: u32 },
    /// Client released a hosted workload (tombstone created).
    ClientReleased { request: u64, node: u32 },
    /// Simulator applied a confirmed transfer to the physical model.
    TransferApplied { request: u64, from: u32, to: u32 },
    /// Simulator applied a replica substitution.
    ReplicaApplied { request: u64, to: u32 },
    /// Simulator reverted a transfer on Release.
    ReleaseApplied { request: u64, node: u32 },
    /// A stale transfer was superseded by a newer REP for the same id.
    TransferSuperseded { request: u64 },
    /// Fault gate dropped an envelope.
    FaultDrop { to_manager: bool },
    /// Fault gate duplicated an envelope.
    FaultDuplicate { to_manager: bool },
    /// Chaos schedule killed a node.
    NodeKilled { node: u32 },
    /// Chaos schedule revived a node.
    NodeRevived { node: u32 },
    /// Cost-engine row cache hit for a source node.
    CacheHit { node: u32 },
    /// Cost-engine row cache miss for a source node.
    CacheMiss { node: u32 },
    /// Cost matrix assembled: totals for one build.
    MatrixBuilt { rows: u32, hits: u32, misses: u32 },
    /// One simplex solve finished (pivot counts by phase).
    SimplexSolve { pivots: u64, phase1: u64, phase2: u64 },
    /// One transportation-simplex solve finished (MODI pivots).
    TransportSolve { pivots: u64 },
    /// One branch-and-bound solve finished (nodes explored).
    BranchAndBound { nodes: u64 },
}

impl TraceEvent {
    /// Stable kind name used in the text encoding and by `TraceAssert`.
    pub fn kind(&self) -> &'static str {
        use TraceEvent::*;
        match self {
            Register { .. } => "Register",
            RegisterAck { .. } => "RegisterAck",
            Stat { .. } => "Stat",
            Keepalive { .. } => "Keepalive",
            Offer { .. } => "Offer",
            OfferAccepted { .. } => "OfferAccepted",
            OfferRefused { .. } => "OfferRefused",
            Rep { .. } => "Rep",
            ReleaseSent { .. } => "ReleaseSent",
            Retransmit { .. } => "Retransmit",
            Abandon { .. } => "Abandon",
            Reclaim { .. } => "Reclaim",
            ClientAccept { .. } => "ClientAccept",
            ClientRefuse { .. } => "ClientRefuse",
            ClientReleased { .. } => "ClientReleased",
            TransferApplied { .. } => "TransferApplied",
            ReplicaApplied { .. } => "ReplicaApplied",
            ReleaseApplied { .. } => "ReleaseApplied",
            TransferSuperseded { .. } => "TransferSuperseded",
            FaultDrop { .. } => "FaultDrop",
            FaultDuplicate { .. } => "FaultDuplicate",
            NodeKilled { .. } => "NodeKilled",
            NodeRevived { .. } => "NodeRevived",
            CacheHit { .. } => "CacheHit",
            CacheMiss { .. } => "CacheMiss",
            MatrixBuilt { .. } => "MatrixBuilt",
            SimplexSolve { .. } => "SimplexSolve",
            TransportSolve { .. } => "TransportSolve",
            BranchAndBound { .. } => "BranchAndBound",
        }
    }

    /// The request id this event concerns, if any.
    pub fn request(&self) -> Option<u64> {
        use TraceEvent::*;
        match *self {
            Offer { request, .. }
            | OfferAccepted { request, .. }
            | OfferRefused { request, .. }
            | Rep { request, .. }
            | ReleaseSent { request, .. }
            | Retransmit { request, .. }
            | Abandon { request }
            | Reclaim { request, .. }
            | ClientAccept { request, .. }
            | ClientRefuse { request, .. }
            | ClientReleased { request, .. }
            | TransferApplied { request, .. }
            | ReplicaApplied { request, .. }
            | ReleaseApplied { request, .. }
            | TransferSuperseded { request } => Some(request),
            _ => None,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TraceEvent::*;
        match *self {
            Register { node } => write!(f, "Register node={node}"),
            RegisterAck { node } => write!(f, "RegisterAck node={node}"),
            Stat { node } => write!(f, "Stat node={node}"),
            Keepalive { node } => write!(f, "Keepalive node={node}"),
            Offer { request, from, to } => write!(f, "Offer req={request} from={from} to={to}"),
            OfferAccepted { request, node } => write!(f, "OfferAccepted req={request} node={node}"),
            OfferRefused { request, node } => write!(f, "OfferRefused req={request} node={node}"),
            Rep { request, failed, to } => write!(f, "Rep req={request} failed={failed} to={to}"),
            ReleaseSent { request, to } => write!(f, "ReleaseSent req={request} to={to}"),
            Retransmit { request, attempt } => {
                write!(f, "Retransmit req={request} attempt={attempt}")
            }
            Abandon { request } => write!(f, "Abandon req={request}"),
            Reclaim { request, node } => write!(f, "Reclaim req={request} node={node}"),
            ClientAccept { request, node } => write!(f, "ClientAccept req={request} node={node}"),
            ClientRefuse { request, node } => write!(f, "ClientRefuse req={request} node={node}"),
            ClientReleased { request, node } => {
                write!(f, "ClientReleased req={request} node={node}")
            }
            TransferApplied { request, from, to } => {
                write!(f, "TransferApplied req={request} from={from} to={to}")
            }
            ReplicaApplied { request, to } => write!(f, "ReplicaApplied req={request} to={to}"),
            ReleaseApplied { request, node } => {
                write!(f, "ReleaseApplied req={request} node={node}")
            }
            TransferSuperseded { request } => write!(f, "TransferSuperseded req={request}"),
            FaultDrop { to_manager } => {
                write!(f, "FaultDrop dir={}", if to_manager { "to_manager" } else { "to_client" })
            }
            FaultDuplicate { to_manager } => write!(
                f,
                "FaultDuplicate dir={}",
                if to_manager { "to_manager" } else { "to_client" }
            ),
            NodeKilled { node } => write!(f, "NodeKilled node={node}"),
            NodeRevived { node } => write!(f, "NodeRevived node={node}"),
            CacheHit { node } => write!(f, "CacheHit node={node}"),
            CacheMiss { node } => write!(f, "CacheMiss node={node}"),
            MatrixBuilt { rows, hits, misses } => {
                write!(f, "MatrixBuilt rows={rows} hits={hits} misses={misses}")
            }
            SimplexSolve { pivots, phase1, phase2 } => {
                write!(f, "SimplexSolve pivots={pivots} phase1={phase1} phase2={phase2}")
            }
            TransportSolve { pivots } => write!(f, "TransportSolve pivots={pivots}"),
            BranchAndBound { nodes } => write!(f, "BranchAndBound nodes={nodes}"),
        }
    }
}

/// One recorded event with its sim-time and sequence coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Sim time the event was recorded at, ms.
    pub t_ms: u64,
    /// Zero-based position in the trace (total order within a run).
    pub seq: u64,
    /// The event itself.
    pub event: TraceEvent,
}

impl TraceEntry {
    /// Stable line encoding: `<t_ms> <seq> <event>`.
    pub fn to_line(&self) -> String {
        format!("{} {} {}", self.t_ms, self.seq, self.event)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// An append-only event log with a running digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    seed: u64,
    entries: Vec<TraceEntry>,
    digest: u64,
}

impl Trace {
    /// An empty trace for a run at `seed`. The seed is folded into the
    /// digest so traces from different seeds never collide trivially.
    pub fn new(seed: u64) -> Self {
        Trace { seed, entries: Vec::new(), digest: fnv1a(FNV_OFFSET, &seed.to_le_bytes()) }
    }

    /// The seed this trace was recorded under.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Append one event at sim time `t_ms`.
    pub fn record(&mut self, t_ms: u64, event: TraceEvent) {
        let entry = TraceEntry { t_ms, seq: self.entries.len() as u64, event };
        self.digest = fnv1a(self.digest, entry.to_line().as_bytes());
        self.digest = fnv1a(self.digest, b"\n");
        self.entries.push(entry);
    }

    /// All entries in record order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// FNV-1a 64 digest over seed + every encoded line so far.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Full text encoding: header, one line per event, digest footer.
    pub fn to_text(&self) -> String {
        let mut out = format!("trace seed={}\n", self.seed);
        for e in &self.entries {
            out.push_str(&e.to_line());
            out.push('\n');
        }
        out.push_str(&format!("digest {:016x}\n", self.digest));
        out
    }

    /// Compact binary encoding: `seed, count` then one length-prefixed
    /// encoded line per entry (all integers little-endian). The digest
    /// is recomputed on decode, so a tampered stream is detectable by
    /// comparing digests.
    pub fn to_binary(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.entries.len() * 32);
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for e in &self.entries {
            let line = e.to_line();
            out.extend_from_slice(&(line.len() as u32).to_le_bytes());
            out.extend_from_slice(line.as_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_events_same_digest() {
        let run = || {
            let mut t = Trace::new(42);
            t.record(0, TraceEvent::Register { node: 1 });
            t.record(5, TraceEvent::Offer { request: 9, from: 1, to: 2 });
            t.record(7, TraceEvent::OfferAccepted { request: 9, node: 2 });
            t.digest()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn digest_is_sensitive_to_order_time_and_seed() {
        let mut a = Trace::new(1);
        a.record(0, TraceEvent::Abandon { request: 1 });
        a.record(0, TraceEvent::Reclaim { request: 1, node: 0 });
        let mut b = Trace::new(1);
        b.record(0, TraceEvent::Reclaim { request: 1, node: 0 });
        b.record(0, TraceEvent::Abandon { request: 1 });
        assert_ne!(a.digest(), b.digest(), "order must matter");

        let mut c = Trace::new(1);
        c.record(1, TraceEvent::Abandon { request: 1 });
        let mut d = Trace::new(1);
        d.record(2, TraceEvent::Abandon { request: 1 });
        assert_ne!(c.digest(), d.digest(), "time must matter");

        assert_ne!(Trace::new(1).digest(), Trace::new(2).digest(), "seed must matter");
    }

    #[test]
    fn text_encoding_carries_digest_footer() {
        let mut t = Trace::new(3);
        t.record(10, TraceEvent::FaultDrop { to_manager: true });
        let text = t.to_text();
        assert!(text.starts_with("trace seed=3\n"));
        assert!(text.contains("10 0 FaultDrop dir=to_manager\n"));
        assert!(text.trim_end().ends_with(&format!("{:016x}", t.digest())));
    }

    #[test]
    fn binary_encoding_is_deterministic() {
        let mk = || {
            let mut t = Trace::new(8);
            t.record(1, TraceEvent::Stat { node: 4 });
            t.record(2, TraceEvent::Keepalive { node: 4 });
            t.to_binary()
        };
        assert_eq!(mk(), mk());
        assert!(mk().len() > 16);
    }

    #[test]
    fn request_accessor_covers_lifecycle_events() {
        assert_eq!(TraceEvent::Abandon { request: 7 }.request(), Some(7));
        assert_eq!(TraceEvent::Stat { node: 1 }.request(), None);
    }
}
