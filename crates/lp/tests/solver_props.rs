//! Seeded random-instance tests pitting the three solvers against each
//! other and against first principles: the specialized transportation
//! solver must match the general simplex on random instances, simplex
//! optima must be feasible and never beaten by random feasible points,
//! branch-and-bound must dominate LP-relaxation bounds correctly, and LP
//! duality must hold exactly.

use dust_lp::{solve, solve_mip, Cmp, Problem, Sense, Status, TransportProblem, TransportStatus};
use dust_topology::SplitMix64;

/// Build the transportation instance as a general LP and solve with simplex.
fn transport_via_simplex(tp: &TransportProblem) -> Option<f64> {
    let m = tp.supply.len();
    let n = tp.capacity.len();
    let mut p = Problem::new();
    let mut vars = Vec::with_capacity(m * n);
    for i in 0..m {
        for j in 0..n {
            let c = tp.cost[i * n + j];
            if c.is_finite() {
                vars.push(Some(p.add_nonneg(c)));
            } else {
                vars.push(None); // forbidden: simply omit the variable
            }
        }
    }
    for i in 0..m {
        let terms: Vec<_> = (0..n).filter_map(|j| vars[i * n + j].map(|v| (v, 1.0))).collect();
        p.add_constraint(&terms, Cmp::Eq, tp.supply[i]);
    }
    for j in 0..n {
        let terms: Vec<_> = (0..m).filter_map(|i| vars[i * n + j].map(|v| (v, 1.0))).collect();
        p.add_constraint(&terms, Cmp::Le, tp.capacity[j]);
    }
    let s = solve(&p);
    (s.status == Status::Optimal).then_some(s.objective)
}

/// A random transportation instance: 1–4 sources, 1–4 sinks, ~10 % of the
/// cost cells forbidden (infinite). Deterministic in `seed`.
fn arb_transport(seed: u64) -> TransportProblem {
    let mut rng = SplitMix64::new(seed);
    let m = 1 + rng.below(4) as usize;
    let n = 1 + rng.below(4) as usize;
    let supply: Vec<f64> = (0..m).map(|_| rng.range_f64(0.0, 40.0)).collect();
    let capacity: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 60.0)).collect();
    let cost: Vec<f64> = (0..m * n)
        .map(|_| if rng.below(10) == 0 { f64::INFINITY } else { rng.range_f64(0.1, 20.0) })
        .collect();
    TransportProblem::new(supply, capacity, cost)
}

/// MODI and simplex agree on optimality status and objective.
#[test]
fn transportation_matches_simplex() {
    for seed in 0..128u64 {
        let tp = arb_transport(seed);
        let fast = tp.solve();
        let general = transport_via_simplex(&tp);
        match (fast.status, general) {
            (TransportStatus::Optimal, Some(obj)) => {
                assert!(
                    (fast.objective - obj).abs() <= 1e-5 * obj.abs().max(1.0),
                    "seed {seed}: MODI {} vs simplex {}",
                    fast.objective,
                    obj
                );
            }
            (TransportStatus::Infeasible, None) => {}
            (a, b) => panic!("seed {seed}: status mismatch: {a:?} vs {b:?}"),
        }
    }
}

/// Optimal transportation flows satisfy supply equality and capacity.
#[test]
fn transportation_flows_feasible() {
    for seed in 0..128u64 {
        let tp = arb_transport(seed);
        let s = tp.solve();
        if s.status != TransportStatus::Optimal {
            continue;
        }
        let n = tp.capacity.len();
        for (i, &sup) in tp.supply.iter().enumerate() {
            let shipped: f64 = (0..n).map(|j| s.flow[i * n + j]).sum();
            assert!((shipped - sup).abs() < 1e-6, "seed {seed} row {i}: {shipped} != {sup}");
        }
        for (j, &cap) in tp.capacity.iter().enumerate() {
            let recv: f64 = (0..tp.supply.len()).map(|i| s.flow[i * n + j]).sum();
            assert!(recv <= cap + 1e-6, "seed {seed} col {j}: {recv} > {cap}");
        }
        for &f in &s.flow {
            assert!(f >= -1e-9, "seed {seed}: negative flow {f}");
        }
    }
}

/// Simplex optimum on random bounded LPs is feasible and not beaten by
/// sampled feasible corners of the box.
#[test]
fn simplex_optimum_dominates_box_samples() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(seed);
        let n = 1 + rng.below(4) as usize;
        let costs: Vec<f64> = (0..4).map(|_| rng.range_f64(-5.0, 5.0)).collect();
        let caps: Vec<f64> = (0..4).map(|_| rng.range_f64(1.0, 10.0)).collect();
        let mut p = Problem::new();
        let vars: Vec<_> =
            (0..n).map(|i| p.add_var(0.0, caps[i % caps.len()], costs[i % costs.len()])).collect();
        // a coupling constraint to make it non-trivial
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        let budget: f64 = caps.iter().take(n).sum::<f64>() / 2.0;
        p.add_constraint(&terms, Cmp::Le, budget);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal, "seed {seed}");
        assert!(p.is_feasible(&s.x, 1e-6), "seed {seed}");
        // corners of the box clipped to the budget: all-zero is feasible
        assert!(s.objective <= 1e-9, "seed {seed}: all-zeros is feasible with objective 0");
    }
}

/// Branch-and-bound objective is never better than the LP relaxation and
/// its point is integral and feasible.
#[test]
fn mip_bounded_by_relaxation() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(seed);
        let n = 1 + rng.below(3) as usize;
        let costs: Vec<f64> = (0..4).map(|_| rng.range_f64(0.5, 5.0)).collect();
        let weights: Vec<f64> = (0..4).map(|_| rng.range_f64(0.5, 5.0)).collect();
        let budget = rng.range_f64(2.0, 10.0);
        // knapsack: max Σ c_i b_i  s.t. Σ w_i b_i <= budget
        let mut mip = Problem::new();
        mip.set_sense(Sense::Maximize);
        let vars: Vec<_> = (0..n).map(|i| mip.add_bool(costs[i % costs.len()])).collect();
        let terms: Vec<_> =
            vars.iter().enumerate().map(|(i, &v)| (v, weights[i % weights.len()])).collect();
        mip.add_constraint(&terms, Cmp::Le, budget);

        // LP relaxation: same model, continuous [0,1] vars
        let mut lp = Problem::new();
        lp.set_sense(Sense::Maximize);
        let cvars: Vec<_> = (0..n).map(|i| lp.add_var(0.0, 1.0, costs[i % costs.len()])).collect();
        let cterms: Vec<_> =
            cvars.iter().enumerate().map(|(i, &v)| (v, weights[i % weights.len()])).collect();
        lp.add_constraint(&cterms, Cmp::Le, budget);

        let mi = solve_mip(&mip);
        let re = solve(&lp);
        assert_eq!(mi.status, Status::Optimal, "seed {seed}");
        assert_eq!(re.status, Status::Optimal, "seed {seed}");
        assert!(
            mi.objective <= re.objective + 1e-6,
            "seed {seed}: MIP {} must not beat relaxation {}",
            mi.objective,
            re.objective
        );
        assert!(mip.is_feasible(&mi.x, 1e-6), "seed {seed}");
        for &v in &mi.x {
            assert!((v - v.round()).abs() < 1e-6, "seed {seed}: non-integral value {v}");
        }
    }
}

/// Scaling all costs scales the transportation objective linearly.
#[test]
fn transportation_objective_scales() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(seed ^ 0xA5A5);
        let tp = arb_transport(seed);
        let k = rng.range_f64(1.0, 10.0);
        let s1 = tp.solve();
        let scaled = TransportProblem::new(
            tp.supply.clone(),
            tp.capacity.clone(),
            tp.cost.iter().map(|c| c * k).collect(),
        );
        let s2 = scaled.solve();
        assert_eq!(s1.status, s2.status, "seed {seed}");
        if s1.status == TransportStatus::Optimal {
            assert!(
                (s2.objective - k * s1.objective).abs() <= 1e-6 * (1.0 + s2.objective.abs()),
                "seed {seed}"
            );
        }
    }
}

/// LP duality holds on every random optimal instance: dual feasibility,
/// complementary slackness, and strong duality.
#[test]
fn transportation_duality() {
    for seed in 0..128u64 {
        let tp = arb_transport(seed);
        let s = tp.solve();
        if s.status != TransportStatus::Optimal {
            continue;
        }
        let n = tp.capacity.len();
        // dual feasibility + complementary slackness
        for (i, &u) in s.row_potentials.iter().enumerate() {
            for (j, &v) in s.col_potentials.iter().enumerate() {
                let c = tp.cost[i * n + j];
                if !c.is_finite() {
                    continue;
                }
                let reduced = c - u - v;
                assert!(reduced >= -1e-6, "seed {seed}: dual infeasible ({i},{j}): {reduced}");
                if s.flow[i * n + j] > 1e-7 {
                    assert!(
                        reduced.abs() < 1e-6,
                        "seed {seed}: complementary slackness ({i},{j}): {reduced}"
                    );
                }
            }
        }
        // strong duality (dummy-normalized): primal == dual objective
        let dual: f64 = s
            .row_potentials
            .iter()
            .zip(&tp.supply)
            .map(|(u, a)| u * a)
            .chain(s.col_potentials.iter().zip(&tp.capacity).map(|(v, b)| v * b))
            .sum();
        assert!(
            (dual - s.objective).abs() <= 1e-5 * (1.0 + s.objective.abs()),
            "seed {seed}: strong duality: {dual} vs {}",
            s.objective
        );
    }
}
