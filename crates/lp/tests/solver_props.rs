//! Property tests pitting the three solvers against each other and against
//! first principles: the specialized transportation solver must match the
//! general simplex on random instances, simplex optima must be feasible and
//! never beaten by random feasible points, and branch-and-bound must
//! dominate LP-relaxation bounds correctly.

use dust_lp::{
    solve, solve_mip, Cmp, Problem, Sense, Status, TransportProblem, TransportStatus,
};
use proptest::prelude::*;

/// Build the transportation instance as a general LP and solve with simplex.
fn transport_via_simplex(tp: &TransportProblem) -> Option<f64> {
    let m = tp.supply.len();
    let n = tp.capacity.len();
    let mut p = Problem::new();
    let mut vars = Vec::with_capacity(m * n);
    for i in 0..m {
        for j in 0..n {
            let c = tp.cost[i * n + j];
            if c.is_finite() {
                vars.push(Some(p.add_nonneg(c)));
            } else {
                vars.push(None); // forbidden: simply omit the variable
            }
        }
    }
    for i in 0..m {
        let terms: Vec<_> = (0..n)
            .filter_map(|j| vars[i * n + j].map(|v| (v, 1.0)))
            .collect();
        p.add_constraint(&terms, Cmp::Eq, tp.supply[i]);
    }
    for j in 0..n {
        let terms: Vec<_> = (0..m)
            .filter_map(|i| vars[i * n + j].map(|v| (v, 1.0)))
            .collect();
        p.add_constraint(&terms, Cmp::Le, tp.capacity[j]);
    }
    let s = solve(&p);
    (s.status == Status::Optimal).then_some(s.objective)
}

fn arb_transport() -> impl Strategy<Value = TransportProblem> {
    (1usize..5, 1usize..5).prop_flat_map(|(m, n)| {
        (
            proptest::collection::vec(0.0f64..40.0, m),
            proptest::collection::vec(0.0f64..60.0, n),
            proptest::collection::vec(
                prop_oneof![9 => (0.1f64..20.0).boxed(), 1 => Just(f64::INFINITY).boxed()],
                m * n,
            ),
        )
            .prop_map(|(s, c, costs)| TransportProblem::new(s, c, costs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// MODI and simplex agree on optimality status and objective.
    #[test]
    fn transportation_matches_simplex(tp in arb_transport()) {
        let fast = tp.solve();
        let general = transport_via_simplex(&tp);
        match (fast.status, general) {
            (TransportStatus::Optimal, Some(obj)) => {
                prop_assert!((fast.objective - obj).abs() <= 1e-5 * obj.abs().max(1.0),
                    "MODI {} vs simplex {}", fast.objective, obj);
            }
            (TransportStatus::Infeasible, None) => {}
            (a, b) => prop_assert!(false, "status mismatch: {a:?} vs {b:?}"),
        }
    }

    /// Optimal transportation flows satisfy supply equality and capacity.
    #[test]
    fn transportation_flows_feasible(tp in arb_transport()) {
        let s = tp.solve();
        if s.status == TransportStatus::Optimal {
            let n = tp.capacity.len();
            for (i, &sup) in tp.supply.iter().enumerate() {
                let shipped: f64 = (0..n).map(|j| s.flow[i * n + j]).sum();
                prop_assert!((shipped - sup).abs() < 1e-6, "row {i}: {shipped} != {sup}");
            }
            for (j, &cap) in tp.capacity.iter().enumerate() {
                let recv: f64 = (0..tp.supply.len()).map(|i| s.flow[i * n + j]).sum();
                prop_assert!(recv <= cap + 1e-6, "col {j}: {recv} > {cap}");
            }
            for &f in &s.flow {
                prop_assert!(f >= -1e-9, "negative flow {f}");
            }
        }
    }

    /// Simplex optimum on random bounded LPs is feasible and not beaten by
    /// sampled feasible corners of the box.
    #[test]
    fn simplex_optimum_dominates_box_samples(
        n in 1usize..5,
        costs in proptest::collection::vec(-5.0f64..5.0, 4),
        caps in proptest::collection::vec(1.0f64..10.0, 4),
    ) {
        let mut p = Problem::new();
        let vars: Vec<_> = (0..n).map(|i| p.add_var(0.0, caps[i % caps.len()], costs[i % costs.len()])).collect();
        // a coupling constraint to make it non-trivial
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        let budget: f64 = caps.iter().take(n).sum::<f64>() / 2.0;
        p.add_constraint(&terms, Cmp::Le, budget);
        let s = solve(&p);
        prop_assert_eq!(s.status, Status::Optimal);
        prop_assert!(p.is_feasible(&s.x, 1e-6));
        // corners of the box clipped to the budget: all-zero is feasible
        prop_assert!(s.objective <= 0.0 + 1e-9, "all-zeros is feasible with objective 0");
    }

    /// Branch-and-bound objective is never better than the LP relaxation
    /// and its point is integral and feasible.
    #[test]
    fn mip_bounded_by_relaxation(
        n in 1usize..4,
        costs in proptest::collection::vec(0.5f64..5.0, 4),
        weights in proptest::collection::vec(0.5f64..5.0, 4),
        budget in 2.0f64..10.0,
    ) {
        // knapsack: max Σ c_i b_i  s.t. Σ w_i b_i <= budget
        let mut mip = Problem::new();
        mip.set_sense(Sense::Maximize);
        let vars: Vec<_> = (0..n).map(|i| mip.add_bool(costs[i % costs.len()])).collect();
        let terms: Vec<_> = vars.iter().enumerate().map(|(i, &v)| (v, weights[i % weights.len()])).collect();
        mip.add_constraint(&terms, Cmp::Le, budget);

        // LP relaxation: same model, continuous [0,1] vars
        let mut lp = Problem::new();
        lp.set_sense(Sense::Maximize);
        let cvars: Vec<_> = (0..n).map(|i| lp.add_var(0.0, 1.0, costs[i % costs.len()])).collect();
        let cterms: Vec<_> = cvars.iter().enumerate().map(|(i, &v)| (v, weights[i % weights.len()])).collect();
        lp.add_constraint(&cterms, Cmp::Le, budget);

        let mi = solve_mip(&mip);
        let re = solve(&lp);
        prop_assert_eq!(mi.status, Status::Optimal);
        prop_assert_eq!(re.status, Status::Optimal);
        prop_assert!(mi.objective <= re.objective + 1e-6,
            "MIP {} must not beat relaxation {}", mi.objective, re.objective);
        prop_assert!(mip.is_feasible(&mi.x, 1e-6));
        for &v in &mi.x {
            prop_assert!((v - v.round()).abs() < 1e-6, "non-integral value {v}");
        }
    }

    /// Scaling all costs scales the transportation objective linearly.
    #[test]
    fn transportation_objective_scales(tp in arb_transport(), k in 1.0f64..10.0) {
        let s1 = tp.solve();
        let scaled = TransportProblem::new(
            tp.supply.clone(),
            tp.capacity.clone(),
            tp.cost.iter().map(|c| c * k).collect(),
        );
        let s2 = scaled.solve();
        prop_assert_eq!(s1.status, s2.status);
        if s1.status == TransportStatus::Optimal {
            prop_assert!((s2.objective - k * s1.objective).abs() <= 1e-6 * (1.0 + s2.objective.abs()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// LP duality holds on every random optimal instance: dual feasibility,
    /// complementary slackness, and strong duality.
    #[test]
    fn transportation_duality(tp in arb_transport()) {
        let s = tp.solve();
        if s.status != TransportStatus::Optimal {
            return Ok(());
        }
        let n = tp.capacity.len();
        // dual feasibility + complementary slackness
        for (i, &u) in s.row_potentials.iter().enumerate() {
            for (j, &v) in s.col_potentials.iter().enumerate() {
                let c = tp.cost[i * n + j];
                if !c.is_finite() { continue; }
                let reduced = c - u - v;
                prop_assert!(reduced >= -1e-6, "dual infeasible ({i},{j}): {reduced}");
                if s.flow[i * n + j] > 1e-7 {
                    prop_assert!(reduced.abs() < 1e-6,
                        "complementary slackness ({i},{j}): {reduced}");
                }
            }
        }
        // strong duality (dummy-normalized): primal == dual objective
        let dual: f64 = s.row_potentials.iter().zip(&tp.supply).map(|(u, a)| u * a)
            .chain(s.col_potentials.iter().zip(&tp.capacity).map(|(v, b)| v * b))
            .sum();
        prop_assert!((dual - s.objective).abs() <= 1e-5 * (1.0 + s.objective.abs()),
            "strong duality: {dual} vs {}", s.objective);
    }
}
